//! Reproduction harness support.
//!
//! The experiment registry itself lives in
//! [`padc_sim::experiments::registry`] (so `padcsim --suite` and the
//! benches enumerate the same list); this crate re-exports it for the
//! `repro` binary and for backwards compatibility with existing
//! `padc_bench::{registry, find}` callers.

#![warn(missing_docs)]

pub use padc_sim::experiments::registry::{
    find, registry, suite_jobs, suite_jobs_profiled, suite_jobs_with, table_stash, Experiment,
    SuiteOptions, TableStash,
};
