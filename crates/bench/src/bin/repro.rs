//! Reproduction harness: regenerates every table and figure of the paper's
//! evaluation, in parallel, with per-experiment fault isolation.
//!
//! ```text
//! repro [--quick|--smoke] [--jobs N] [--jsonl PATH] [--resume FILE]
//!       [--summary PATH] [--store DIR] [--json|--csv|--bars COL]
//!       [--no-progress] [--profile] [--exec planned|monolithic]
//!       [--fast-forward off|global|horizon|event] [<experiment-id>...]
//! repro --list
//! ```
//!
//! With no ids, every registered experiment runs (`all` is accepted as an
//! alias). With no scale flag, experiments run at
//! `ExpConfig::at(Scale::Full)` scale (the paper's workload counts);
//! `--quick`/`--smoke` shrink runs for fast iteration.
//!
//! `--exec` selects how planned experiments execute their simulation
//! units: `planned` (default) fans them out as first-class sub-jobs on
//! the shared worker pool, `monolithic` runs them inline in plan order —
//! the compatibility path the determinism gate byte-diffs against the
//! planned artifact. Both modes produce identical JSONL bytes.
//!
//! Execution goes through the `padc-harness` unified scheduler:
//! experiments run on a worker pool (`--jobs N`, default
//! `available_parallelism()`), each under `catch_unwind`, so one panicking
//! experiment becomes a structured failure row instead of killing the
//! suite; per-workload fan-out inside experiments is scheduled onto the
//! *same* pool, so `--jobs N` bounds total simulation threads. The JSONL
//! stream (`--jsonl`, `-` for stdout) is emitted in registry order and
//! contains no timing data, so its bytes are identical for any `--jobs`
//! value. Timings go to the stderr progress lines and to the `--summary`
//! JSON — or, with `--profile`, into a per-experiment `"profile"` object
//! appended to each JSONL payload (hot-path counters and phase wall
//! times; wall times make profiled artifacts non-deterministic, so the
//! determinism gates run without it). `--fast-forward off|global|horizon|event`
//! selects how stall cycles are elided (default `horizon`, the per-core
//! event horizon; results are bit-identical in every mode — the flag
//! exists for the equivalence gate and for timing comparisons);
//! `--no-fast-forward` is shorthand for `--fast-forward off`.
//!
//! `--resume FILE` makes the run incremental: settled rows (complete JSON,
//! `"status":"ok"`) of the prior artifact are re-emitted verbatim without
//! executing their experiments; missing, truncated, or failed rows are
//! re-run. With no explicit `--jsonl`, the regenerated artifact replaces
//! FILE. On a fully settled artifact, zero experiments execute and the
//! output is byte-identical to the input.
//!
//! `--store DIR` (or the `PADC_STORE` environment variable) makes runs
//! incremental at **unit** granularity, across invocations and across
//! overlapping experiment selections: every planned simulation unit
//! resolves against a persistent content-addressed store before it is
//! scheduled, and computed misses are written back atomically. A warm
//! rerun executes zero simulation units and produces byte-identical JSONL
//! (see DESIGN.md §12). The stderr line `store: hits=H misses=M
//! coalesced=C` and matching `--summary` fields report the telemetry.
//!
//! Exit status: `0` when every experiment succeeds, `1` when any job
//! panics or runs over budget, `2` on usage errors (including unknown
//! experiment ids).

use std::io::Write as _;
use std::time::Duration;

use padc_bench::{find, registry, suite_jobs_with, table_stash, Experiment, SuiteOptions};
use padc_harness::{run_suite, HarnessConfig, JobStatus, ResumeArtifact};
use padc_sim::experiments::{single_run_stats, ExecMode, ExpConfig, Scale};

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: repro [--quick|--smoke] [--jobs N] [--jsonl PATH] [--resume FILE]\n\
         \x20            [--summary PATH] [--store DIR] [--json|--csv|--bars COL]\n\
         \x20            [--no-progress] [--profile] [--exec planned|monolithic]\n\
         \x20            [--fast-forward off|global|horizon|event] [<id>...]\n\
         \x20      repro --list\n\
         known ids:"
    );
    for e in registry() {
        eprintln!("  {:<10} {}", e.id, e.paper_ref);
    }
    std::process::exit(2);
}

fn flag_value(iter: &mut std::slice::Iter<'_, String>, flag: &str) -> String {
    iter.next()
        .unwrap_or_else(|| {
            eprintln!("{flag} expects a value");
            std::process::exit(2);
        })
        .clone()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::at(Scale::Full);
    let mut json = false;
    let mut csv = false;
    let mut bars: Option<String> = None;
    let mut jobs_flag: usize = 0;
    let mut jsonl_path: Option<String> = None;
    let mut resume_path: Option<String> = None;
    let mut summary_path: Option<String> = None;
    let mut budget: Option<Duration> = None;
    let mut progress = true;
    let mut profile = false;
    let mut exec = ExecMode::default();
    let mut store_flag: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quick" => cfg = ExpConfig::at(Scale::Quick),
            "--smoke" => cfg = ExpConfig::at(Scale::Smoke),
            "--json" => json = true,
            "--csv" => csv = true,
            "--bars" => bars = Some(flag_value(&mut iter, "--bars")),
            "--jobs" | "-j" => {
                let v = flag_value(&mut iter, "--jobs");
                jobs_flag = v.parse().unwrap_or_else(|_| {
                    eprintln!("--jobs expects a positive integer, got {v:?}");
                    std::process::exit(2);
                });
            }
            "--jsonl" => jsonl_path = Some(flag_value(&mut iter, "--jsonl")),
            "--resume" => resume_path = Some(flag_value(&mut iter, "--resume")),
            "--summary" => summary_path = Some(flag_value(&mut iter, "--summary")),
            "--store" => store_flag = Some(flag_value(&mut iter, "--store")),
            "--budget-seconds" => {
                let v = flag_value(&mut iter, "--budget-seconds");
                let secs: u64 = v.parse().unwrap_or_else(|_| {
                    eprintln!("--budget-seconds expects an integer, got {v:?}");
                    std::process::exit(2);
                });
                budget = Some(Duration::from_secs(secs));
            }
            "--no-progress" => progress = false,
            "--profile" => profile = true,
            "--exec" => {
                let v = flag_value(&mut iter, "--exec");
                exec = v.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--fast-forward" => {
                let v = flag_value(&mut iter, "--fast-forward");
                let mode = v.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
                padc_sim::set_fast_forward_mode_default(mode);
            }
            "--no-fast-forward" => padc_sim::set_fast_forward_default(false),
            other if other.starts_with("--fast-forward=") => {
                let mode = other["--fast-forward=".len()..]
                    .parse()
                    .unwrap_or_else(|e| {
                        eprintln!("{e}");
                        std::process::exit(2);
                    });
                padc_sim::set_fast_forward_mode_default(mode);
            }
            "--list" => {
                for e in registry() {
                    println!("{:<10} {}", e.id, e.paper_ref);
                }
                return;
            }
            "--help" | "-h" => usage_and_exit(),
            "all" => {}
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => ids.push(other.to_string()),
        }
    }

    // Resolve the experiment selection against the registry; unknown names
    // are a hard error with a clear message, not a silent skip.
    let selected: Vec<Experiment> = if ids.is_empty() {
        registry()
    } else {
        ids.iter()
            .map(|id| {
                find(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment id: {id}");
                    eprintln!("run `repro --list` for the registered ids");
                    std::process::exit(2);
                })
            })
            .collect()
    };
    let order: Vec<&'static str> = selected.iter().map(|e| e.id).collect();
    let refs: Vec<&'static str> = selected.iter().map(|e| e.paper_ref).collect();

    // Resume: trust settled rows of the prior artifact, re-run the rest.
    // With no explicit --jsonl the regenerated artifact replaces the
    // resumed file (safe: the file is fully read before the suite starts,
    // and a crash mid-run leaves a valid shorter artifact to resume from).
    let artifact = resume_path.as_deref().map(|path| {
        if !ids.is_empty() && jsonl_path.as_deref().is_none_or(|out| out == path) {
            eprintln!(
                "--resume with an experiment subset would overwrite {path} with partial \
                 results; pass a different --jsonl destination"
            );
            std::process::exit(2);
        }
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let artifact = ResumeArtifact::parse(&text);
                eprintln!(
                    "resume: {} settled row(s) in {path}, {} line(s) distrusted",
                    artifact.len(),
                    artifact.lines_rejected
                );
                artifact
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                eprintln!("resume: {path} not found, running everything");
                ResumeArtifact::default()
            }
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        }
    });
    if jsonl_path.is_none() {
        jsonl_path = resume_path.clone();
    }

    if profile {
        padc_sim::profile::set_timing_enabled(true);
    }
    if let Some(dir) =
        store_flag.or_else(|| std::env::var("PADC_STORE").ok().filter(|s| !s.is_empty()))
    {
        padc_sim::experiments::install_unit_store(std::path::Path::new(&dir)).unwrap_or_else(|e| {
            eprintln!("cannot open store {dir}: {e}");
            std::process::exit(2);
        });
    }
    let stash = table_stash();
    let mut jobs = suite_jobs_with(
        selected,
        cfg,
        Some(stash.clone()),
        SuiteOptions { profile, exec },
    );
    if let Some(artifact) = &artifact {
        for job in &mut jobs {
            if let Some(row) = artifact.row(&job.id) {
                job.cached_row = Some(row.to_string());
            }
        }
    }
    let harness_cfg = HarnessConfig {
        workers: jobs_flag,
        budget,
        progress,
    };

    let mut jsonl_file;
    let mut jsonl_stdout;
    let jsonl_sink: Option<&mut dyn std::io::Write> = match jsonl_path.as_deref() {
        None => None,
        Some("-") => {
            jsonl_stdout = std::io::stdout().lock();
            Some(&mut jsonl_stdout)
        }
        Some(path) => {
            jsonl_file = std::fs::File::create(path).unwrap_or_else(|e| {
                eprintln!("cannot create {path}: {e}");
                std::process::exit(2);
            });
            Some(&mut jsonl_file)
        }
    };

    let mut stderr = std::io::stderr().lock();
    let mut summary =
        run_suite(&jobs, &harness_cfg, jsonl_sink, &mut stderr).expect("suite I/O failed");
    if padc_sim::experiments::unit_store_installed() {
        let stats = padc_sim::experiments::unit_cache_stats();
        for (name, v) in [
            ("store_hits", stats.store_hits),
            ("store_misses", stats.store_misses),
            ("units_coalesced", stats.units_coalesced),
        ] {
            summary.extras.push((name.to_string(), v));
        }
        // Machine-readable store telemetry: the determinism and perf gates
        // parse this line; keep the key=value form stable.
        writeln!(
            stderr,
            "store: hits={} misses={} coalesced={}",
            stats.store_hits, stats.store_misses, stats.units_coalesced
        )
        .expect("stderr");
    }

    // Human-readable rendering, in registry order, from the stash the jobs
    // filled. Suppressed when the JSONL stream already owns stdout.
    if jsonl_path.as_deref() != Some("-") {
        let stash = stash.lock().expect("stash lock");
        let mut stdout = std::io::stdout().lock();
        for (i, id) in order.iter().enumerate() {
            let outcome = &summary.outcomes[i];
            writeln!(stdout, "# {} — {} ({:.1}s)", id, refs[i], outcome.seconds).expect("stdout");
            match stash.get(*id) {
                Some(tables) => {
                    for t in tables {
                        if json {
                            writeln!(
                                stdout,
                                "{}",
                                serde_json::to_string_pretty(t).expect("tables serialize")
                            )
                            .expect("stdout");
                        } else if csv {
                            writeln!(stdout, "{}", t.to_csv()).expect("stdout");
                        } else if let Some(col) = &bars {
                            match t.to_bars(col, 50) {
                                Some(chart) => writeln!(stdout, "{chart}").expect("stdout"),
                                None => writeln!(stdout, "{t}").expect("stdout"),
                            }
                        } else {
                            writeln!(stdout, "{t}").expect("stdout");
                        }
                    }
                }
                None if outcome.status == JobStatus::Skipped => {
                    writeln!(
                        stdout,
                        "  resumed: settled row reused from the prior artifact"
                    )
                    .expect("stdout");
                }
                None => {
                    writeln!(
                        stdout,
                        "  FAILED ({}): {}",
                        outcome.status.as_str(),
                        outcome.error.as_deref().unwrap_or("no detail")
                    )
                    .expect("stdout");
                }
            }
        }
    }

    if let Some(path) = &summary_path {
        std::fs::write(path, summary.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
    }

    let failed = summary.failed();
    writeln!(
        stderr,
        "suite: {}/{} ok, {} resumed, {} failed, {} workers, {:.1}s wall",
        summary.ok(),
        summary.outcomes.len(),
        summary.skipped(),
        failed,
        summary.workers,
        summary.wall_seconds
    )
    .expect("stderr");
    let (requested, computed) = single_run_stats();
    if requested > 0 {
        // Machine-readable memo telemetry: `requested - computed` is the
        // cross-experiment dedup win (perf_gate.sh parses this line).
        writeln!(
            stderr,
            "single_run_memo: requested={requested} computed={computed}"
        )
        .expect("stderr");
    }
    if failed > 0 {
        for o in &summary.outcomes {
            if matches!(o.status, JobStatus::Panicked | JobStatus::OverBudget) {
                writeln!(
                    stderr,
                    "  {}: {} — {}",
                    o.id,
                    o.status.as_str(),
                    o.error.as_deref().unwrap_or("no detail")
                )
                .expect("stderr");
            }
        }
        std::process::exit(1);
    }
}
