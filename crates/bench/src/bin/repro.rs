//! Reproduction harness: regenerates every table and figure of the paper's
//! evaluation.
//!
//! ```text
//! repro [--quick|--smoke] [--json|--csv|--bars COL] <experiment-id>...
//! repro --list
//! repro all
//! ```
//!
//! With no scale flag, experiments run at `ExpConfig::full()` scale (the
//! paper's workload counts). `--quick` shrinks runs for fast iteration.

use std::io::Write as _;

use padc_bench::{find, registry};
use padc_sim::experiments::ExpConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::full();
    let mut json = false;
    let mut csv = false;
    let mut bars: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quick" => cfg = ExpConfig::quick(),
            "--smoke" => cfg = ExpConfig::smoke(),
            "--json" => json = true,
            "--csv" => csv = true,
            "--bars" => {
                bars = Some(
                    iter.next()
                        .unwrap_or_else(|| {
                            eprintln!("--bars expects a column name");
                            std::process::exit(2);
                        })
                        .clone(),
                )
            }
            "--list" => {
                for e in registry() {
                    println!("{:<8} {}", e.id, e.paper_ref);
                }
                return;
            }
            "all" => ids = registry().iter().map(|e| e.id.to_string()).collect(),
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("usage: repro [--quick|--smoke] [--json] <id>... | all | --list");
        eprintln!("known ids:");
        for e in registry() {
            eprintln!("  {:<8} {}", e.id, e.paper_ref);
        }
        std::process::exit(2);
    }
    let mut stdout = std::io::stdout().lock();
    for id in &ids {
        let Some(e) = find(id) else {
            eprintln!("unknown experiment id: {id}");
            std::process::exit(2);
        };
        let start = std::time::Instant::now();
        let tables = (e.run)(&cfg);
        writeln!(
            stdout,
            "# {} — {} ({:.1}s)",
            e.id,
            e.paper_ref,
            start.elapsed().as_secs_f64()
        )
        .expect("stdout");
        for t in &tables {
            if json {
                writeln!(
                    stdout,
                    "{}",
                    serde_json::to_string_pretty(t).expect("tables serialize")
                )
                .expect("stdout");
            } else if csv {
                writeln!(stdout, "{}", t.to_csv()).expect("stdout");
            } else if let Some(col) = &bars {
                match t.to_bars(col, 50) {
                    Some(chart) => writeln!(stdout, "{chart}").expect("stdout"),
                    None => writeln!(stdout, "{t}").expect("stdout"),
                }
            } else {
                writeln!(stdout, "{t}").expect("stdout");
            }
        }
    }
}
