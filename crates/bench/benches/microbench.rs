//! Criterion micro-benchmarks for the simulator's hot paths: DRAM command
//! stepping, cache probes, prefetcher training, controller scheduling at
//! varying occupancy, and end-to-end simulation throughput per policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use padc_core::{AccuracyTracker, ControllerConfig, MemoryController, SchedulingPolicy};
use padc_sim::{SimConfig, System};
use padc_types::{AccessKind, CoreId, LineAddr, RequestKind};
use padc_workloads::profiles;

fn bench_dram_channel(c: &mut Criterion) {
    use padc_dram::{Channel, DramConfig};
    let cfg = DramConfig::default();
    c.bench_function("dram/advance_row_hit_stream", |b| {
        b.iter_batched(
            || Channel::new(&cfg),
            |mut ch| {
                let mut now = 0;
                for i in 0..64u64 {
                    loop {
                        match ch.advance(0, 0, false, now) {
                            padc_dram::StepOutcome::CasIssued { .. } => break,
                            _ => now += 10,
                        }
                    }
                    now += 10;
                    std::hint::black_box(i);
                }
                ch
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_cache(c: &mut Criterion) {
    use padc_cache::{Cache, CacheConfig};
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1));
    group.bench_function("probe_hit", |b| {
        let mut cache = Cache::new(CacheConfig::l2_private());
        for i in 0..1024u64 {
            cache.fill(LineAddr::new(i), false, false, false);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            std::hint::black_box(cache.probe(LineAddr::new(i), false))
        })
    });
    group.bench_function("fill_evict", |b| {
        let mut cache = Cache::new(CacheConfig::l1d());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(cache.fill(LineAddr::new(i), false, false, false))
        })
    });
    group.finish();
}

fn bench_prefetchers(c: &mut Criterion) {
    use padc_prefetch::{build, AccessEvent, PrefetcherKind};
    let mut group = c.benchmark_group("prefetcher_on_access");
    for kind in PrefetcherKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, k| {
                let mut p = build(*k);
                let mut out = Vec::new();
                let mut line = 0u64;
                b.iter(|| {
                    line += 1;
                    out.clear();
                    p.on_access(
                        &AccessEvent {
                            core: CoreId::new(0),
                            line: LineAddr::new(line),
                            pc: 0x400,
                            hit: !line.is_multiple_of(4),
                            runahead: false,
                        },
                        &mut out,
                    );
                    std::hint::black_box(out.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_controller_scheduling(c: &mut Criterion) {
    use padc_dram::{DramConfig, MappingScheme};
    let mut group = c.benchmark_group("controller_tick");
    for occupancy in [8usize, 64, 128] {
        for policy in [
            SchedulingPolicy::DemandFirst,
            SchedulingPolicy::Padc,
            SchedulingPolicy::PadcRank,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{policy:?}"), occupancy),
                &occupancy,
                |b, &occ| {
                    let tracker = AccuracyTracker::new(4, 100_000);
                    b.iter_batched(
                        || {
                            let mut cfg = ControllerConfig::from_policy(policy, 4);
                            cfg.buffer_entries = 128;
                            let mut mc = MemoryController::new(
                                cfg,
                                DramConfig::default(),
                                MappingScheme::Linear,
                            );
                            for i in 0..occ as u64 {
                                mc.enqueue(
                                    CoreId::new((i % 4) as usize),
                                    LineAddr::new(i * 97),
                                    AccessKind::Load,
                                    if i % 2 == 0 {
                                        RequestKind::Demand
                                    } else {
                                        RequestKind::Prefetch
                                    },
                                    0,
                                )
                                .expect("space");
                            }
                            mc
                        },
                        |mut mc| {
                            for now in 0..100u64 {
                                std::hint::black_box(mc.tick(now * 10, &tracker));
                            }
                            mc
                        },
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    use padc_cpu::TraceSource;
    use padc_workloads::TraceGen;
    let mut group = c.benchmark_group("tracegen");
    group.throughput(Throughput::Elements(1));
    for profile in [profiles::libquantum(), profiles::milc()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(&profile.name),
            &profile,
            |b, p| {
                let mut g = TraceGen::new(p, 0, 1);
                b.iter(|| std::hint::black_box(g.next_op()))
            },
        );
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for policy in [
        SchedulingPolicy::DemandFirst,
        SchedulingPolicy::DemandPrefetchEqual,
        SchedulingPolicy::Padc,
    ] {
        group.bench_with_input(
            BenchmarkId::new("single_core_libquantum_20k", format!("{policy:?}")),
            &policy,
            |b, &p| {
                b.iter(|| {
                    let mut cfg = SimConfig::single_core(p);
                    cfg.max_instructions = 20_000;
                    let mut sys = System::new(cfg, vec![profiles::libquantum()]);
                    std::hint::black_box(sys.run().total_cycles)
                })
            },
        );
    }
    group.bench_function("four_core_mixed_10k", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::new(4, SchedulingPolicy::Padc);
            cfg.max_instructions = 10_000;
            let w = padc_workloads::Workload::from_names(&[
                "omnetpp_06",
                "libquantum_06",
                "galgel_00",
                "GemsFDTD_06",
            ]);
            let mut sys = System::new(cfg, w.benchmarks);
            std::hint::black_box(sys.run().total_cycles)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dram_channel,
    bench_cache,
    bench_prefetchers,
    bench_controller_scheduling,
    bench_trace_generation,
    bench_end_to_end
);
criterion_main!(benches);
