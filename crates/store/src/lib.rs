//! `padc-store` — a persistent, content-addressed cache of simulation
//! results.
//!
//! Entries are keyed by the SHA-256 digest of a caller-supplied **meta**
//! document (for the simulator: a fingerprint of the code version plus the
//! full result-shaping configuration). Each entry is one file under
//! `<root>/objects/<xy>/<digest>` holding a small self-describing header,
//! the meta bytes, and the payload bytes:
//!
//! ```text
//! padc-store v1 <meta_len> <payload_len>\n
//! <meta bytes>\n
//! <payload bytes>\n
//! ```
//!
//! The design inherits the repo's resume posture: **nothing on disk is
//! trusted**. [`Store::load`] re-derives the expected entry shape and
//! byte-compares the stored meta against the meta the caller would write
//! today; any anomaly — missing file, truncated file, malformed header,
//! length mismatch, meta mismatch, non-UTF-8 bytes — is a cache miss, never
//! an error. Writers go through a temp file in the same directory followed
//! by an atomic rename, so concurrent readers (and concurrent writers of
//! the same digest, which by construction carry identical bytes) can share
//! one store directory without locks.
//!
//! The content-addressed path *is* the index: lookup is O(1) in the entry
//! count. [`Store::gc`] walks the object tree and evicts
//! least-recently-used entries (loads touch mtimes, best-effort) until the
//! store fits a byte budget.

#![warn(missing_docs)]

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

/// Format tag written at the front of every entry file.
const MAGIC: &str = "padc-store v1";

/// SHA-256 of `data` (FIPS 180-4), used to content-address entries.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());
    for chunk in msg.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (word, bytes) in w.iter_mut().zip(chunk.chunks_exact(4)) {
            *word = u32::from_be_bytes(bytes.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *slot = slot.wrapping_add(v);
        }
    }
    let mut out = [0u8; 32];
    for (chunk, v) in out.chunks_exact_mut(4).zip(h) {
        chunk.copy_from_slice(&v.to_be_bytes());
    }
    out
}

/// Lowercase-hex SHA-256 of `data` — the entry key format used throughout.
pub fn digest_hex(data: &[u8]) -> String {
    let mut s = String::with_capacity(64);
    for b in sha256(data) {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Size and entry-count summary of a store directory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Valid-looking entry files (content-addressed names only).
    pub entries: u64,
    /// Total bytes those entries occupy.
    pub bytes: u64,
}

/// Result of one [`Store::gc`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Entries evicted (least-recently-used first).
    pub evicted: u64,
    /// Bytes freed by the eviction.
    pub freed_bytes: u64,
    /// Entries remaining after the pass.
    pub remaining_entries: u64,
    /// Bytes remaining after the pass.
    pub remaining_bytes: u64,
}

/// A content-addressed store rooted at one directory.
///
/// Cheap to clone conceptually (it holds only the root path); open one per
/// process, or several against the same directory — all operations are
/// safe under concurrent multi-process use (see the crate docs).
#[derive(Debug)]
pub struct Store {
    objects: PathBuf,
}

/// Distinguishes concurrently written temp files within one process.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns any error from creating the `objects` directory.
    pub fn open(root: &Path) -> io::Result<Store> {
        let objects = root.join("objects");
        fs::create_dir_all(&objects)?;
        Ok(Store { objects })
    }

    /// The entry file path for a digest: `objects/<first-two>/<digest>`.
    fn entry_path(&self, digest: &str) -> PathBuf {
        let shard = digest.get(..2).unwrap_or("xx");
        self.objects.join(shard).join(digest)
    }

    /// Loads the payload stored under `digest`, validating the entry
    /// against `expected_meta`.
    ///
    /// Returns `None` — a miss, never an error — unless the entry exists,
    /// parses, declares lengths matching its actual bytes, and stores meta
    /// bytes exactly equal to `expected_meta`. A hit touches the entry's
    /// mtime (best-effort) so [`Store::gc`] evicts least-recently-used
    /// entries first.
    pub fn load(&self, digest: &str, expected_meta: &str) -> Option<String> {
        let path = self.entry_path(digest);
        let bytes = fs::read(&path).ok()?;
        let payload = parse_entry(&bytes, expected_meta)?;
        if let Ok(f) = fs::File::open(&path) {
            let _ = f.set_modified(SystemTime::now());
        }
        Some(payload)
    }

    /// Writes `payload` under `digest`, tagged with `meta`, atomically
    /// (temp file in the shard directory + rename). Concurrent writers of
    /// the same digest are safe: by construction they carry identical
    /// bytes, and rename is atomic, so readers see either a complete old
    /// entry, no entry, or a complete new one.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error; the temp file is removed on failure.
    pub fn put(&self, digest: &str, meta: &str, payload: &str) -> io::Result<()> {
        let path = self.entry_path(digest);
        let shard = path.parent().expect("entry path has a shard dir");
        fs::create_dir_all(shard)?;
        let tmp = shard.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(format!("{MAGIC} {} {}\n", meta.len(), payload.len()).as_bytes())?;
            f.write_all(meta.as_bytes())?;
            f.write_all(b"\n")?;
            f.write_all(payload.as_bytes())?;
            f.write_all(b"\n")?;
            drop(f);
            fs::rename(&tmp, &path)
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// Walks the object tree, returning `(path, len, mtime)` per entry.
    /// Stale temp files (from crashed writers) are deleted on sight.
    fn walk(&self) -> io::Result<Vec<(PathBuf, u64, SystemTime)>> {
        let mut out = Vec::new();
        for shard in fs::read_dir(&self.objects)? {
            let shard = shard?;
            if !shard.file_type()?.is_dir() {
                continue;
            }
            for entry in fs::read_dir(shard.path())? {
                let entry = entry?;
                let name = entry.file_name();
                if name.to_string_lossy().starts_with(".tmp-") {
                    let _ = fs::remove_file(entry.path());
                    continue;
                }
                let md = entry.metadata()?;
                if !md.is_file() {
                    continue;
                }
                let mtime = md.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                out.push((entry.path(), md.len(), mtime));
            }
        }
        Ok(out)
    }

    /// Entry count and total size.
    ///
    /// # Errors
    ///
    /// Returns any error from walking the object tree.
    pub fn stats(&self) -> io::Result<StoreStats> {
        let entries = self.walk()?;
        Ok(StoreStats {
            entries: entries.len() as u64,
            bytes: entries.iter().map(|(_, len, _)| len).sum(),
        })
    }

    /// Evicts least-recently-used entries until the store occupies at most
    /// `max_bytes` (mtime order, path as a deterministic tie-break).
    ///
    /// # Errors
    ///
    /// Returns any error from walking the object tree; individual
    /// removals are best-effort (an entry deleted concurrently is fine).
    pub fn gc(&self, max_bytes: u64) -> io::Result<GcOutcome> {
        let mut entries = self.walk()?;
        entries.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        let mut total: u64 = entries.iter().map(|(_, len, _)| len).sum();
        let mut outcome = GcOutcome::default();
        let mut kept = entries.len() as u64;
        for (path, len, _) in &entries {
            if total <= max_bytes {
                break;
            }
            if fs::remove_file(path).is_ok() {
                outcome.evicted += 1;
                outcome.freed_bytes += len;
                kept -= 1;
            }
            total -= len;
        }
        outcome.remaining_entries = kept;
        outcome.remaining_bytes = total;
        Ok(outcome)
    }
}

/// Strict entry parse: header magic, declared lengths, exact byte layout,
/// meta equality, UTF-8 payload — or `None`.
fn parse_entry(bytes: &[u8], expected_meta: &str) -> Option<String> {
    let header_end = bytes.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&bytes[..header_end]).ok()?;
    let rest = header.strip_prefix(MAGIC)?.strip_prefix(' ')?;
    let (meta_len_s, payload_len_s) = rest.split_once(' ')?;
    let meta_len: usize = meta_len_s.parse().ok()?;
    let payload_len: usize = payload_len_s.parse().ok()?;
    let body = &bytes[header_end + 1..];
    // Exact layout: meta, '\n', payload, '\n' — anything shorter is a
    // truncated write, anything longer a corrupt or foreign file.
    if body.len() != meta_len + 1 + payload_len + 1 {
        return None;
    }
    if body.get(meta_len) != Some(&b'\n') || body.last() != Some(&b'\n') {
        return None;
    }
    if &body[..meta_len] != expected_meta.as_bytes() {
        return None;
    }
    let payload = &body[meta_len + 1..meta_len + 1 + payload_len];
    String::from_utf8(payload.to_vec()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "padc-store-test-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sha256_matches_fips_vectors() {
        assert_eq!(
            digest_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            digest_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        // Multi-block input (> 64 bytes) exercises the chunk loop.
        let long = "a".repeat(200);
        assert_eq!(
            digest_hex(long.as_bytes()),
            "c2a908d98f5df987ade41b5fce213067efbcc21ef2240212a41e54b5e7c28ae5"
        );
    }

    #[test]
    fn round_trip_hits_only_on_matching_meta() {
        let dir = temp_dir("roundtrip");
        let store = Store::open(&dir).expect("open");
        let meta = "{\"fingerprint\":\"v1\"}";
        let digest = digest_hex(meta.as_bytes());
        assert_eq!(store.load(&digest, meta), None, "empty store misses");
        store.put(&digest, meta, "{\"ipc\":1}").expect("put");
        assert_eq!(store.load(&digest, meta).as_deref(), Some("{\"ipc\":1}"));
        assert_eq!(
            store.load(&digest, "{\"fingerprint\":\"v2\"}"),
            None,
            "wrong meta must miss"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn multi_line_payloads_and_metas_round_trip() {
        let dir = temp_dir("newlines");
        let store = Store::open(&dir).expect("open");
        let meta = "line1\nline2";
        let payload = "p1\n\np3\n";
        let digest = digest_hex(meta.as_bytes());
        store.put(&digest, meta, payload).expect("put");
        assert_eq!(store.load(&digest, meta).as_deref(), Some(payload));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_corrupt_entries_miss() {
        let dir = temp_dir("corrupt");
        let store = Store::open(&dir).expect("open");
        let meta = "m";
        let digest = digest_hex(meta.as_bytes());
        store.put(&digest, meta, "payload-bytes").expect("put");
        let path = store.entry_path(&digest);

        // Truncation: drop the final bytes.
        let full = fs::read(&path).expect("read");
        fs::write(&path, &full[..full.len() - 3]).expect("truncate");
        assert_eq!(store.load(&digest, meta), None);

        // Garbage header.
        fs::write(&path, b"not-a-store-entry\nm\npayload-bytes\n").expect("garble");
        assert_eq!(store.load(&digest, meta), None);

        // Length lies: declared payload length shorter than actual.
        fs::write(&path, b"padc-store v1 1 7\nm\npayload-bytes\n").expect("lie");
        assert_eq!(store.load(&digest, meta), None);

        // A rewrite recovers.
        store.put(&digest, meta, "payload-bytes").expect("re-put");
        assert_eq!(store.load(&digest, meta).as_deref(), Some("payload-bytes"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_evicts_lru_first_and_reports_stats() {
        let dir = temp_dir("gc");
        let store = Store::open(&dir).expect("open");
        let entries: Vec<(String, String)> = (0..4)
            .map(|i| {
                let meta = format!("meta-{i}");
                let digest = digest_hex(meta.as_bytes());
                store
                    .put(&digest, &meta, &format!("payload-{i}"))
                    .expect("put");
                (digest, meta)
            })
            .collect();
        let stats = store.stats().expect("stats");
        assert_eq!(stats.entries, 4);
        assert!(stats.bytes > 0);

        // Touch entry 0 so it is the most recently used.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(store.load(&entries[0].0, &entries[0].1).is_some());

        // Budget for roughly one entry: the untouched three go first.
        let per_entry = stats.bytes / 4;
        let out = store.gc(per_entry).expect("gc");
        assert_eq!(out.evicted, 3, "{out:?}");
        assert_eq!(out.remaining_entries, 1);
        assert!(
            store.load(&entries[0].0, &entries[0].1).is_some(),
            "recently used entry survives"
        );
        assert_eq!(store.load(&entries[1].0, &entries[1].1), None);

        // gc to zero clears everything.
        let out = store.gc(0).expect("gc all");
        assert_eq!(out.remaining_entries, 0);
        assert_eq!(store.stats().expect("stats").entries, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_and_readers_never_see_partial_entries() {
        let dir = temp_dir("race");
        let store = std::sync::Arc::new(Store::open(&dir).expect("open"));
        let meta = "shared-meta";
        let digest = digest_hex(meta.as_bytes());
        let payload = "x".repeat(4096);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let store = std::sync::Arc::clone(&store);
                let (digest, payload) = (digest.clone(), payload.clone());
                scope.spawn(move || {
                    for _ in 0..50 {
                        store.put(&digest, meta, &payload).expect("put");
                    }
                });
            }
            for _ in 0..2 {
                let store = std::sync::Arc::clone(&store);
                let (digest, payload) = (digest.clone(), payload.clone());
                scope.spawn(move || {
                    for _ in 0..200 {
                        if let Some(seen) = store.load(&digest, meta) {
                            assert_eq!(seen, payload, "reader saw a partial entry");
                        }
                    }
                });
            }
        });
        assert_eq!(store.load(&digest, meta).as_deref(), Some(payload.as_str()));
        // No stray temp files survive a clean run.
        let stats = store.stats().expect("stats");
        assert_eq!(stats.entries, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_on_empty_store() {
        let dir = temp_dir("empty");
        let store = Store::open(&dir).expect("open");
        assert_eq!(store.stats().expect("stats"), StoreStats::default());
        assert_eq!(store.gc(0).expect("gc"), GcOutcome::default());
        let _ = fs::remove_dir_all(&dir);
    }
}
