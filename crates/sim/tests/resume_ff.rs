//! Resume × fast-forward-mode coverage: `--resume` must re-emit settled
//! rows byte-identically even when the resumed artifact was produced
//! under a *different* `--fast-forward` mode, and freshly re-run rows
//! must match the original bytes too (fast-forwarding is invisible in
//! results, so mode changes between runs cannot poison an artifact).
//!
//! Single `#[test]` on purpose: the suite runs below flip the
//! process-wide fast-forward default, which would race against parallel
//! tests in the same binary.

use padc_harness::{HarnessConfig, ResumeArtifact};
use padc_sim::experiments::{registry::find, suite_jobs, ExpConfig, Scale};
use padc_sim::FastForwardMode;

const IDS: [&str; 2] = ["fig1", "tab5"];

/// Runs the two-experiment suite at smoke scale, optionally resuming from
/// `artifact`, and returns (jsonl bytes, ok count, skipped count).
fn suite_bytes(artifact: Option<&ResumeArtifact>) -> (Vec<u8>, usize, usize) {
    let selected = IDS
        .iter()
        .map(|id| find(id).expect("registered experiment id"))
        .collect();
    let mut jobs = suite_jobs(selected, ExpConfig::at(Scale::Smoke), None);
    if let Some(artifact) = artifact {
        for job in &mut jobs {
            if let Some(row) = artifact.row(&job.id) {
                job.cached_row = Some(row.to_string());
            }
        }
    }
    let cfg = HarnessConfig {
        workers: 2,
        budget: None,
        progress: false,
    };
    let mut jsonl = Vec::new();
    let mut progress = Vec::new();
    let summary =
        padc_harness::run_suite(&jobs, &cfg, Some(&mut jsonl), &mut progress).expect("suite I/O");
    (jsonl, summary.ok(), summary.skipped())
}

#[test]
fn resume_across_fast_forward_modes_is_byte_identical() {
    // Reference artifact: produced cycle-by-cycle.
    padc_sim::set_fast_forward_mode_default(FastForwardMode::Off);
    let (reference, ok, _) = suite_bytes(None);
    assert_eq!(ok, IDS.len());

    // A fully settled off-mode artifact resumed under horizon: zero
    // executions, bytes re-emitted verbatim.
    padc_sim::set_fast_forward_mode_default(FastForwardMode::Horizon);
    let artifact = ResumeArtifact::parse(std::str::from_utf8(&reference).expect("utf8"));
    assert_eq!(artifact.len(), IDS.len());
    let (resumed, ok, skipped) = suite_bytes(Some(&artifact));
    assert_eq!(
        resumed, reference,
        "settled rows were not re-emitted verbatim"
    );
    assert_eq!((ok, skipped), (0, IDS.len()));

    // A partial artifact (first row only): the missing experiment re-runs
    // under horizon, yet the full artifact still matches the off-mode
    // bytes — fast-forwarding is invisible in results.
    let first_line_end = reference.iter().position(|&b| b == b'\n').expect("row") + 1;
    let partial =
        ResumeArtifact::parse(std::str::from_utf8(&reference[..first_line_end]).expect("utf8"));
    assert_eq!(partial.len(), 1);
    let (mixed, ok, skipped) = suite_bytes(Some(&partial));
    assert_eq!(
        mixed, reference,
        "horizon-mode re-run diverged from off-mode bytes"
    );
    assert_eq!((ok, skipped), (1, 1));

    // Same partial resume under global jumps.
    padc_sim::set_fast_forward_mode_default(FastForwardMode::Global);
    let (mixed, ok, skipped) = suite_bytes(Some(&partial));
    assert_eq!(
        mixed, reference,
        "global-mode re-run diverged from off-mode bytes"
    );
    assert_eq!((ok, skipped), (1, 1));

    // Same partial resume under event-driven controller stepping.
    padc_sim::set_fast_forward_mode_default(FastForwardMode::Event);
    let (mixed, ok, skipped) = suite_bytes(Some(&partial));
    assert_eq!(
        mixed, reference,
        "event-mode re-run diverged from off-mode bytes"
    );
    assert_eq!((ok, skipped), (1, 1));

    // And the reverse direction: a fully settled artifact *produced* under
    // event mode resumes byte-identically with the default mode — the new
    // mode cannot poison artifacts consumed by older runs either.
    let (ev_reference, ok, _) = suite_bytes(None);
    assert_eq!(ok, IDS.len());
    assert_eq!(
        ev_reference, reference,
        "event-mode artifact differs from off-mode artifact"
    );
    padc_sim::set_fast_forward_mode_default(FastForwardMode::Horizon);
    let ev_artifact = ResumeArtifact::parse(std::str::from_utf8(&ev_reference).expect("utf8"));
    let (resumed, ok, skipped) = suite_bytes(Some(&ev_artifact));
    assert_eq!(
        resumed, reference,
        "event-mode rows were not re-emitted verbatim under horizon"
    );
    assert_eq!((ok, skipped), (0, IDS.len()));

    // Leave the process default at the shipped default.
    padc_sim::set_fast_forward_mode_default(FastForwardMode::Horizon);
}
