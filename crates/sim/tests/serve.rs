//! Integration test of `padcsim serve`'s concurrency contract: two
//! concurrent clients with overlapping experiment sets must each receive a
//! complete, correctly-ordered event stream whose row bytes match the
//! batch suite, while the shared units behind the overlap are computed
//! **once** (each distinct unit executes exactly one sub-job and writes
//! exactly one store entry).

use std::fs;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use padc_harness::{run_suite, HarnessConfig};
use padc_sim::experiments::{self, ExpConfig, Scale};
use padc_sim::serve::{shared_writer, ServeState};
use padc_store::Store;

/// A `Write` that appends into a shared buffer the test can read back.
#[derive(Clone, Default)]
struct Capture(Arc<Mutex<Vec<u8>>>);

impl Capture {
    fn take(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for Capture {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Batch-suite JSONL for `ids` at smoke scale: the byte-identity
/// reference for serve `row` events.
fn batch_rows(ids: &[&str]) -> Vec<String> {
    let selected: Vec<_> = ids
        .iter()
        .map(|id| experiments::find(id).expect("known id"))
        .collect();
    let jobs = experiments::suite_jobs(selected, ExpConfig::at(Scale::Smoke), None);
    let cfg = HarnessConfig {
        workers: 1,
        budget: None,
        progress: false,
    };
    let mut jsonl = Vec::new();
    let mut progress = std::io::sink();
    run_suite(&jobs, &cfg, Some(&mut jsonl), &mut progress).expect("suite runs");
    String::from_utf8(jsonl)
        .expect("JSONL is UTF-8")
        .lines()
        .map(str::to_string)
        .collect()
}

/// The `data` payloads of `req`'s row events, in arrival order, plus a
/// check that the stream is exactly accepted → rows → done.
fn rows_of(output: &str, req: &str, expected_jobs: usize) -> Vec<String> {
    let mine: Vec<&str> = output
        .lines()
        .filter(|l| {
            serde_json::parse(l).expect("event line is JSON").get("req")
                == serde_json::parse(&format!("{{\"req\":\"{req}\"}}"))
                    .unwrap()
                    .get("req")
        })
        .collect();
    assert_eq!(
        mine.len(),
        expected_jobs + 2,
        "{req}: accepted + {expected_jobs} rows + done, got: {mine:#?}"
    );
    let first = serde_json::parse(mine[0]).unwrap();
    assert_eq!(first.get("event").unwrap().as_str(), Some("accepted"));
    assert_eq!(
        first.get("jobs").unwrap().as_f64(),
        Some(expected_jobs as f64)
    );
    let last = serde_json::parse(mine[mine.len() - 1]).unwrap();
    assert_eq!(last.get("event").unwrap().as_str(), Some("done"));
    assert_eq!(last.get("ok").unwrap().as_f64(), Some(expected_jobs as f64));
    assert_eq!(last.get("failed").unwrap().as_f64(), Some(0.0));
    mine[1..mine.len() - 1]
        .iter()
        .map(|l| {
            let ev = serde_json::parse(l).unwrap();
            assert_eq!(ev.get("event").unwrap().as_str(), Some("row"));
            // Recover the verbatim data bytes: strip the event envelope.
            let prefix = format!("{{\"req\":\"{req}\",\"event\":\"row\",\"data\":");
            let line = l.strip_prefix(prefix.as_str()).expect("envelope prefix");
            line.strip_suffix('}').expect("envelope suffix").to_string()
        })
        .collect()
}

#[test]
fn concurrent_overlapping_clients_share_units_and_get_batch_identical_rows() {
    let dir = std::env::temp_dir().join(format!("padc-serve-test-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    experiments::install_unit_store(&dir).expect("store opens");

    let a_ids = ["fig6", "tab5"];
    let b_ids = ["fig6", "tab7"];
    let state = ServeState::new(2, Scale::Smoke);
    let before = experiments::unit_cache_stats();

    let (a_sink, b_sink) = (Capture::default(), Capture::default());
    std::thread::scope(|scope| {
        for (ids, sink, req) in [(&a_ids, &a_sink, "a"), (&b_ids, &b_sink, "b")] {
            let out = shared_writer(sink.clone());
            let line = format!(
                "{{\"id\":\"{req}\",\"experiments\":[\"{}\",\"{}\"],\"scale\":\"smoke\"}}",
                ids[0], ids[1]
            );
            let state = &state;
            scope.spawn(move || state.handle_line(&line, &out));
        }
    });

    // Each client gets its complete stream, rows in request order, and the
    // data bytes are exactly the batch suite's JSONL for its selection.
    let (a_out, b_out) = (a_sink.take(), b_sink.take());
    assert_eq!(rows_of(&a_out, "a", 2), batch_rows(&a_ids));
    assert_eq!(rows_of(&b_out, "b", 2), batch_rows(&b_ids));

    // The overlap (the whole fig6 grid, plus the grid cells tab5 and tab7
    // share with it) was computed once: each distinct unit executed exactly
    // one sub-job and wrote exactly one store entry, and the coalescing
    // counter saw the duplicate resolutions.
    let after = experiments::unit_cache_stats();
    let executed = state.subjobs_executed();
    let entries = Store::open(&dir)
        .expect("store reopens")
        .stats()
        .expect("stats")
        .entries;
    assert_eq!(
        executed, entries,
        "every distinct unit computed exactly once"
    );
    assert!(
        after.units_coalesced - before.units_coalesced >= entries,
        "overlapping requests must coalesce on shared units"
    );
    assert_eq!(after.store_misses - before.store_misses, entries);

    state.shutdown();
    experiments::uninstall_unit_store();
    let _ = fs::remove_dir_all(&dir);
}
