//! Property tests for the §5.2 metric definitions.

use padc_sim::metrics::{
    gmean, harmonic_speedup, individual_speedups, unfairness, weighted_speedup,
};
use proptest::prelude::*;

fn arb_ipcs(n: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (
        prop::collection::vec(0.01f64..4.0, n..=n),
        prop::collection::vec(0.01f64..4.0, n..=n),
    )
}

proptest! {
    /// WS is the sum of individual speedups; bounded by N * max(IS).
    #[test]
    fn ws_bounds((together, alone) in arb_ipcs(4)) {
        let is = individual_speedups(&together, &alone);
        let ws = weighted_speedup(&together, &alone);
        let sum: f64 = is.iter().sum();
        prop_assert!((ws - sum).abs() < 1e-9);
        let max = is.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(ws <= 4.0 * max + 1e-9);
    }

    /// HS is a mean: it lies between the min and max individual speedup,
    /// and never exceeds the arithmetic mean.
    #[test]
    fn hs_is_a_mean((together, alone) in arb_ipcs(4)) {
        let is = individual_speedups(&together, &alone);
        let hs = harmonic_speedup(&together, &alone);
        let min = is.iter().cloned().fold(f64::MAX, f64::min);
        let max = is.iter().cloned().fold(f64::MIN, f64::max);
        let amean: f64 = is.iter().sum::<f64>() / is.len() as f64;
        prop_assert!(hs >= min - 1e-9, "hs {hs} < min {min}");
        prop_assert!(hs <= max + 1e-9, "hs {hs} > max {max}");
        prop_assert!(hs <= amean + 1e-9, "hs {hs} > amean {amean}");
    }

    /// UF is at least 1 and scale-invariant.
    #[test]
    fn uf_properties((together, alone) in arb_ipcs(4), k in 0.1f64..10.0) {
        let uf = unfairness(&together, &alone);
        prop_assert!(uf >= 1.0 - 1e-9);
        let scaled: Vec<f64> = together.iter().map(|x| x * k).collect();
        let uf_scaled = unfairness(&scaled, &alone);
        prop_assert!((uf - uf_scaled).abs() < 1e-6 * uf.max(1.0));
    }

    /// The geometric mean lies between min and max and is multiplicative.
    #[test]
    fn gmean_properties(xs in prop::collection::vec(0.01f64..100.0, 1..20), k in 0.1f64..10.0) {
        let g = gmean(&xs);
        let min = xs.iter().cloned().fold(f64::MAX, f64::min);
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        prop_assert!((gmean(&scaled) - g * k).abs() < 1e-6 * (g * k).max(1.0));
    }

    /// Identical together/alone vectors give neutral metrics.
    #[test]
    fn identical_runs_are_neutral(xs in prop::collection::vec(0.01f64..4.0, 2..8)) {
        prop_assert!((weighted_speedup(&xs, &xs) - xs.len() as f64).abs() < 1e-9);
        prop_assert!((harmonic_speedup(&xs, &xs) - 1.0).abs() < 1e-9);
        prop_assert!((unfairness(&xs, &xs) - 1.0).abs() < 1e-9);
    }
}
