//! Equivalence tests for idle-cycle fast-forwarding (DESIGN.md §11).
//!
//! Fast-forward jumps must be invisible in the results: a [`System`] run
//! with fast-forwarding produces a byte-identical [`Report`] to the same
//! system stepped cycle by cycle. These tests exercise that contract over
//! randomized small configurations and pin down the one event source that
//! is always a jump bound — the accuracy tracker's interval rollover.

use padc_core::SchedulingPolicy;
use padc_sim::{SimConfig, System};
use padc_workloads::{profiles, BenchProfile};
use proptest::prelude::*;

const POLICIES: [SchedulingPolicy; 5] = [
    SchedulingPolicy::DemandPrefetchEqual,
    SchedulingPolicy::DemandFirst,
    SchedulingPolicy::PrefetchFirst,
    SchedulingPolicy::ApsOnly,
    SchedulingPolicy::Padc,
];

/// A small mix of benchmarks with distinct memory behavior: streaming
/// (libquantum), pointer-chasing / low-MLP (mcf), and mostly-compute
/// (gcc).
fn bench(i: usize) -> BenchProfile {
    match i % 3 {
        0 => profiles::libquantum(),
        1 => profiles::mcf(),
        _ => profiles::gcc(),
    }
}

fn small_config(seed: u64, cores: usize, policy_idx: usize, instructions: u64) -> SimConfig {
    let mut cfg = SimConfig::new(cores, POLICIES[policy_idx % POLICIES.len()]);
    cfg.seed = seed;
    cfg.max_instructions = instructions;
    cfg.max_cycles = 40_000_000;
    cfg
}

fn workloads(cores: usize, first: usize) -> Vec<BenchProfile> {
    (0..cores).map(|i| bench(first + i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full report — every stat the suite serializes — is
    /// byte-identical with fast-forwarding on and off.
    #[test]
    fn reports_are_byte_identical(seed in 1u64..1_000,
                                  cores in 1usize..4,
                                  policy_idx in 0usize..5,
                                  first_bench in 0usize..3,
                                  instructions in 2_000u64..10_000) {
        let cfg = small_config(seed, cores, policy_idx, instructions);

        let mut slow = System::new(cfg.clone(), workloads(cores, first_bench));
        slow.set_fast_forward(false);
        let slow_report = slow.run();

        let mut fast = System::new(cfg, workloads(cores, first_bench));
        fast.set_fast_forward(true);
        let fast_report = fast.run();

        let slow_json = serde_json::to_string(&slow_report).expect("serialize");
        let fast_json = serde_json::to_string(&fast_report).expect("serialize");
        prop_assert_eq!(slow_json, fast_json);
        // Both paths must agree on termination time as well.
        prop_assert_eq!(slow.now(), fast.now());
        // Sanity: the fast path actually skipped something, otherwise this
        // test exercises nothing (idle cycles exist in any DRAM-bound run).
        prop_assert!(fast.profile().ff_cycles_skipped > 0,
                     "fast-forward never fired");
        prop_assert_eq!(fast.profile().cycles_stepped, slow.profile().cycles_stepped
                        - fast.profile().ff_cycles_skipped);
    }
}

/// PAR interval rollovers are an explicit fast-forward event source: both
/// paths must observe every 100K-cycle accuracy-tracker rollover at the
/// same cycle, in the same order — otherwise APD thresholds and APS
/// prioritization would diverge.
#[test]
fn par_rollovers_land_on_the_same_cycles() {
    let cfg = small_config(7, 2, 4, 4_000); // Padc: APD + APS exercised
    let mut slow = System::new(cfg.clone(), workloads(2, 0));
    slow.set_fast_forward(false);
    let mut fast = System::new(cfg, workloads(2, 0));
    fast.set_fast_forward(true);

    // Record the cycle at which each rollover becomes *pending* (the value
    // of `next_accuracy_rollover` changes exactly when one is consumed).
    let mut slow_rollovers = Vec::new();
    while !slow.finished() {
        let before = slow.next_accuracy_rollover();
        slow.step();
        let after = slow.next_accuracy_rollover();
        if after != before {
            slow_rollovers.push((before, slow.now()));
        }
    }
    let mut fast_rollovers = Vec::new();
    while !fast.finished() {
        let before = fast.next_accuracy_rollover();
        fast.step();
        let after = fast.next_accuracy_rollover();
        if after != before {
            fast_rollovers.push((before, fast.now()));
        }
        fast.try_fast_forward();
    }

    assert!(!slow_rollovers.is_empty(), "run too short to roll over");
    // Each rollover fires at its scheduled cycle on both paths: the tick
    // that consumes rollover `r` is cycle `r` itself (now == r + 1 after).
    for &(r, after) in &slow_rollovers {
        assert_eq!(after, r + 1, "slow path serviced a rollover late");
    }
    assert_eq!(slow_rollovers, fast_rollovers);
}

/// Fast-forward jumps never cross a pending rollover: a jump taken with
/// the tracker about to roll over must stop at or before that boundary.
#[test]
fn jumps_stop_at_rollover_boundaries() {
    let cfg = small_config(11, 1, 1, 6_000);
    let mut sys = System::new(cfg, workloads(1, 0));
    sys.set_fast_forward(true);
    while !sys.finished() {
        let bound = sys.next_accuracy_rollover();
        sys.step();
        let skipped = sys.try_fast_forward();
        if skipped > 0 {
            assert!(
                sys.now() <= bound,
                "jump to {} crossed the rollover pending at {bound}",
                sys.now()
            );
        }
    }
}
