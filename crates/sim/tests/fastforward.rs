//! Equivalence tests for idle-cycle fast-forwarding (DESIGN.md §11).
//!
//! Fast-forwarding must be invisible in the results: a [`System`] run in
//! any [`FastForwardMode`] produces a byte-identical [`Report`] to the
//! same system stepped cycle by cycle (`Off`). These tests exercise that
//! contract over randomized multi-core configurations — for the
//! global-jump mode, the per-core event horizon, and event-driven
//! controller stepping — check the core-cycle and controller-cycle
//! accounting invariants, and pin down the one event source that is
//! always a jump bound: the accuracy tracker's interval rollover.

use padc_core::SchedulingPolicy;
use padc_dram::RefreshPolicy;
use padc_sim::{FastForwardMode, SimConfig, System};
use padc_workloads::{profiles, BenchProfile};
use proptest::prelude::*;

const POLICIES: [SchedulingPolicy; 5] = [
    SchedulingPolicy::DemandPrefetchEqual,
    SchedulingPolicy::DemandFirst,
    SchedulingPolicy::PrefetchFirst,
    SchedulingPolicy::ApsOnly,
    SchedulingPolicy::Padc,
];

/// Refresh configurations the equivalence matrix ranges over: the legacy
/// no-refresh default, and the three [`RefreshPolicy`] variants with
/// extended timing on (per-bank/DARP enable it implicitly). Every mode
/// pair must stay byte-identical under each of them — in particular the
/// DARP refresh-pull pass, which fires at controller boundaries, must be
/// invisible to event-driven stepping (DESIGN.md §15).
const REFRESH_CONFIGS: [Option<RefreshPolicy>; 4] = [
    None,
    Some(RefreshPolicy::AllBank),
    Some(RefreshPolicy::PerBank),
    Some(RefreshPolicy::Darp),
];

/// A small mix of benchmarks with distinct memory behavior: streaming
/// (libquantum), pointer-chasing / low-MLP (mcf), and mostly-compute
/// (gcc).
fn bench(i: usize) -> BenchProfile {
    match i % 3 {
        0 => profiles::libquantum(),
        1 => profiles::mcf(),
        _ => profiles::gcc(),
    }
}

fn small_config(seed: u64, cores: usize, policy_idx: usize, instructions: u64) -> SimConfig {
    let mut cfg = SimConfig::new(cores, POLICIES[policy_idx % POLICIES.len()]);
    cfg.seed = seed;
    cfg.max_instructions = instructions;
    cfg.max_cycles = 40_000_000;
    cfg
}

fn refresh_config(cfg: SimConfig, refresh_idx: usize) -> SimConfig {
    match REFRESH_CONFIGS[refresh_idx % REFRESH_CONFIGS.len()] {
        None => cfg,
        Some(policy) => cfg
            .with_extended_timing(padc_dram::ExtendedTiming::default())
            .with_refresh_policy(policy),
    }
}

fn workloads(cores: usize, first: usize) -> Vec<BenchProfile> {
    (0..cores).map(|i| bench(first + i)).collect()
}

/// Runs one configuration in `mode`, returning the serialized report,
/// the profile, and the termination cycle.
fn run_mode(
    cfg: &SimConfig,
    cores: usize,
    first_bench: usize,
    mode: FastForwardMode,
) -> (String, padc_sim::profile::SimProfile, u64) {
    let mut sys = System::new(cfg.clone(), workloads(cores, first_bench));
    sys.set_fast_forward_mode(mode);
    let report = sys.run();
    let json = serde_json::to_string(&report).expect("serialize");
    (json, *sys.profile(), sys.now())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full report — every stat the suite serializes — is
    /// byte-identical across all four fast-forward modes, and the
    /// cycle-accounting invariants hold in each:
    /// `core_cycles_ticked + core_cycles_skipped == cores × total_cycles`
    /// and `ctrl_cycles_stepped + ctrl_cycles_skipped == total_cycles`.
    #[test]
    fn reports_are_byte_identical(seed in 1u64..1_000,
                                  cores in 1usize..4,
                                  policy_idx in 0usize..5,
                                  first_bench in 0usize..3,
                                  refresh_idx in 0usize..4,
                                  instructions in 2_000u64..10_000) {
        let cfg = refresh_config(
            small_config(seed, cores, policy_idx, instructions),
            refresh_idx,
        );

        let (off_json, off_p, off_now) =
            run_mode(&cfg, cores, first_bench, FastForwardMode::Off);
        let (glob_json, glob_p, glob_now) =
            run_mode(&cfg, cores, first_bench, FastForwardMode::Global);
        let (hor_json, hor_p, hor_now) =
            run_mode(&cfg, cores, first_bench, FastForwardMode::Horizon);
        let (ev_json, ev_p, ev_now) =
            run_mode(&cfg, cores, first_bench, FastForwardMode::Event);

        prop_assert_eq!(&off_json, &glob_json, "global-jump mode diverged");
        prop_assert_eq!(&off_json, &hor_json, "horizon mode diverged");
        prop_assert_eq!(&off_json, &ev_json, "event mode diverged");
        // All paths must agree on termination time as well.
        prop_assert_eq!(off_now, glob_now);
        prop_assert_eq!(off_now, hor_now);
        prop_assert_eq!(off_now, ev_now);
        // Sanity: the fast paths actually skipped something, otherwise
        // this test exercises nothing (idle cycles exist in any
        // DRAM-bound run).
        prop_assert!(glob_p.ff_cycles_skipped > 0, "global jumps never fired");
        prop_assert_eq!(glob_p.cycles_stepped,
                        off_p.cycles_stepped - glob_p.ff_cycles_skipped);
        // Cycle accounting: every (core, cycle) pair was either ticked for
        // real or replayed as a stall bump, exactly once — and every global
        // cycle either executed the controller phase or was covered by a
        // proven-idle bound.
        for (name, p) in [("off", &off_p), ("global", &glob_p),
                          ("horizon", &hor_p), ("event", &ev_p)] {
            prop_assert_eq!(
                p.core_cycles_ticked + p.core_cycles_skipped,
                cores as u64 * off_now,
                "core-cycle accounting broken in {} mode", name
            );
            prop_assert_eq!(
                p.ctrl_cycles_stepped + p.ctrl_cycles_skipped,
                off_now,
                "controller-cycle accounting broken in {} mode", name
            );
        }
        // The per-core horizon strictly supersedes global jumps: every
        // globally skippable cycle is inside some per-core lag window.
        prop_assert!(hor_p.core_cycles_skipped >= glob_p.core_cycles_skipped,
                     "horizon skipped fewer core-cycles than global");
        // Event mode executes the controller only at proven event times,
        // so it never steps the controller more than horizon does — and
        // every executed controller cycle is an event it fired.
        prop_assert!(ev_p.ctrl_cycles_stepped <= hor_p.ctrl_cycles_stepped,
                     "event mode stepped the controller more than horizon");
        prop_assert_eq!(ev_p.ctrl_events_fired, ev_p.ctrl_cycles_stepped);
        prop_assert_eq!(hor_p.ctrl_events_fired, 0);
    }
}

/// An 8-core memory-hog mix (the configuration the CI perf gate guards):
/// all four modes agree byte-for-byte, the horizon skips strictly more
/// core-cycles than global jumps alone — the whole point of the per-core
/// event horizon — and event mode executes strictly fewer controller
/// cycles than horizon while firing at least one event per DRAM command.
#[test]
fn eight_core_memory_hog_mix_agrees_across_modes() {
    let mut cfg = SimConfig::new(8, SchedulingPolicy::Padc);
    cfg.seed = 3;
    cfg.max_instructions = 5_000;
    cfg.max_cycles = 40_000_000;
    let benches = [
        profiles::mcf(),
        profiles::libquantum(),
        profiles::lbm(),
        profiles::milc(),
        profiles::mcf(),
        profiles::libquantum(),
        profiles::lbm(),
        profiles::milc(),
    ];
    let run = |mode: FastForwardMode| {
        let mut sys = System::new(cfg.clone(), benches.to_vec());
        sys.set_fast_forward_mode(mode);
        let report = sys.run();
        (
            serde_json::to_string(&report).expect("serialize"),
            *sys.profile(),
        )
    };
    let (off_json, off_p) = run(FastForwardMode::Off);
    let (glob_json, glob_p) = run(FastForwardMode::Global);
    let (hor_json, hor_p) = run(FastForwardMode::Horizon);
    let (ev_json, ev_p) = run(FastForwardMode::Event);
    assert_eq!(off_json, glob_json);
    assert_eq!(off_json, hor_json);
    assert_eq!(off_json, ev_json);
    assert!(
        hor_p.core_skip_ratio() > glob_p.core_skip_ratio(),
        "horizon ({:.3}) should beat global ({:.3}) on an 8-core mix",
        hor_p.core_skip_ratio(),
        glob_p.core_skip_ratio()
    );
    assert!(hor_p.horizon_resyncs > 0, "horizon never lagged a core");
    assert_eq!(off_p.core_cycles_skipped, 0);
    // Event mode: the controller phase runs only at fired events, skips a
    // real fraction of stepped cycles, and its accounting closes.
    assert!(
        ev_p.ctrl_cycles_stepped < hor_p.ctrl_cycles_stepped,
        "event mode should elide controller cycles on a memory-hog mix \
         (event {} vs horizon {})",
        ev_p.ctrl_cycles_stepped,
        hor_p.ctrl_cycles_stepped
    );
    assert!(ev_p.ctrl_events_fired > 0, "no controller events fired");
    assert!(
        ev_p.ctrl_skip_ratio() > hor_p.ctrl_skip_ratio(),
        "event ctrl_skip_ratio ({:.3}) should beat horizon ({:.3})",
        ev_p.ctrl_skip_ratio(),
        hor_p.ctrl_skip_ratio()
    );
}

/// Deterministic sweep of the full refresh × fast-forward matrix: each
/// refresh policy (and the no-refresh legacy default) agrees byte-for-byte
/// across all four modes, and the per-bank policies actually refresh. The
/// proptest above samples this space; this pins every cell.
#[test]
fn refresh_policies_agree_across_all_modes() {
    for (refresh_idx, refresh) in REFRESH_CONFIGS.iter().enumerate() {
        let cfg = refresh_config(small_config(5, 2, 4, 6_000), refresh_idx);
        let mut off = System::new(cfg.clone(), workloads(2, 0));
        off.set_fast_forward_mode(FastForwardMode::Off);
        let off_report = off.run();
        let off_json = serde_json::to_string(&off_report).expect("serialize");
        for mode in [
            FastForwardMode::Global,
            FastForwardMode::Horizon,
            FastForwardMode::Event,
        ] {
            let (json, _, now) = run_mode(&cfg, 2, 0, mode);
            assert_eq!(
                off_json, json,
                "{mode:?} diverged under refresh config {refresh_idx}"
            );
            assert_eq!(off.now(), now);
        }
        let refreshes: u64 = off_report.channels.iter().map(|c| c.refreshes).sum();
        match refresh {
            None => assert_eq!(refreshes, 0, "refresh without extended timing"),
            Some(_) => assert!(
                refreshes > 0,
                "refresh config {refresh_idx} never refreshed"
            ),
        }
    }
}

/// PAR interval rollovers are an explicit fast-forward event source: both
/// paths must observe every 100K-cycle accuracy-tracker rollover at the
/// same cycle, in the same order — otherwise APD thresholds and APS
/// prioritization would diverge.
#[test]
fn par_rollovers_land_on_the_same_cycles() {
    let cfg = small_config(7, 2, 4, 4_000); // Padc: APD + APS exercised
    let mut slow = System::new(cfg.clone(), workloads(2, 0));
    slow.set_fast_forward(false);
    let mut fast = System::new(cfg, workloads(2, 0));
    fast.set_fast_forward(true);

    // Record the cycle at which each rollover becomes *pending* (the value
    // of `next_accuracy_rollover` changes exactly when one is consumed).
    let mut slow_rollovers = Vec::new();
    while !slow.finished() {
        let before = slow.next_accuracy_rollover();
        slow.step();
        let after = slow.next_accuracy_rollover();
        if after != before {
            slow_rollovers.push((before, slow.now()));
        }
    }
    let mut fast_rollovers = Vec::new();
    while !fast.finished() {
        let before = fast.next_accuracy_rollover();
        fast.step();
        let after = fast.next_accuracy_rollover();
        if after != before {
            fast_rollovers.push((before, fast.now()));
        }
        fast.try_fast_forward();
    }

    assert!(!slow_rollovers.is_empty(), "run too short to roll over");
    // Each rollover fires at its scheduled cycle on both paths: the tick
    // that consumes rollover `r` is cycle `r` itself (now == r + 1 after).
    for &(r, after) in &slow_rollovers {
        assert_eq!(after, r + 1, "slow path serviced a rollover late");
    }
    assert_eq!(slow_rollovers, fast_rollovers);
}

/// Fast-forward jumps never cross a pending rollover: a jump taken with
/// the tracker about to roll over must stop at or before that boundary.
#[test]
fn jumps_stop_at_rollover_boundaries() {
    let cfg = small_config(11, 1, 1, 6_000);
    let mut sys = System::new(cfg, workloads(1, 0));
    sys.set_fast_forward(true);
    while !sys.finished() {
        let bound = sys.next_accuracy_rollover();
        sys.step();
        let skipped = sys.try_fast_forward();
        if skipped > 0 {
            assert!(
                sys.now() <= bound,
                "jump to {} crossed the rollover pending at {bound}",
                sys.now()
            );
        }
    }
}
