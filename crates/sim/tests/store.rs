//! End-to-end tests of the persistent content-addressed unit store
//! (DESIGN.md §12): cold, warm, and no-store suite runs must produce
//! byte-identical JSONL; a warm run must execute zero simulation units;
//! and poisoned entries (truncation, fingerprint drift, garbage) must be
//! recomputed — never trusted — while the store self-heals.
//!
//! The store slot and the in-memory claim map are process-wide, so the
//! whole scenario lives in **one** `#[test]`, phased in order.
//! `reset_memory_cells()` between phases simulates fresh processes; each
//! phase's run goes all the way through `run_suite`, the same path the
//! CLIs use.

use std::fs;
use std::path::{Path, PathBuf};

use padc_harness::{run_suite, HarnessConfig, Summary};
use padc_sim::experiments::{self, ExpConfig, Scale};
use padc_store::Store;

const SUBSET: [&str; 2] = ["fig6", "tab5"];

/// Runs the smoke-scale subset through the suite, returning the JSONL
/// bytes and the summary.
fn run_subset() -> (String, Summary) {
    let selected: Vec<_> = SUBSET
        .iter()
        .map(|id| experiments::find(id).expect("known id"))
        .collect();
    let jobs = experiments::suite_jobs(selected, ExpConfig::at(Scale::Smoke), None);
    let cfg = HarnessConfig {
        workers: 2,
        budget: None,
        progress: false,
    };
    let mut jsonl = Vec::new();
    let mut progress = std::io::sink();
    let summary = run_suite(&jobs, &cfg, Some(&mut jsonl), &mut progress).expect("suite runs");
    assert_eq!(summary.failed(), 0, "subset must succeed");
    (String::from_utf8(jsonl).expect("JSONL is UTF-8"), summary)
}

/// All entry files under `<dir>/objects/<shard>/`, sorted for determinism.
fn entry_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for shard in fs::read_dir(dir.join("objects")).expect("objects dir") {
        let shard = shard.expect("shard entry").path();
        if shard.is_dir() {
            for f in fs::read_dir(&shard).expect("shard dir") {
                out.push(f.expect("entry file").path());
            }
        }
    }
    out.sort();
    out
}

#[test]
fn store_runs_are_byte_identical_and_strictly_validated() {
    let dir = std::env::temp_dir().join(format!("padc-store-test-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);

    // Phase 0 — baseline without any store: the reference bytes.
    let (baseline, _) = run_subset();
    assert!(!baseline.is_empty());

    // Phase 1 — cold store: every unit misses, is computed, and is written
    // back; the artifact must not change.
    experiments::install_unit_store(&dir).expect("store opens");
    let before = experiments::unit_cache_stats();
    let (cold, _) = run_subset();
    assert_eq!(cold, baseline, "cold-store run changed the artifact");
    let after_cold = experiments::unit_cache_stats();
    let cold_misses = after_cold.store_misses - before.store_misses;
    assert!(cold_misses > 0, "cold run must miss");
    assert_eq!(
        after_cold.store_hits - before.store_hits,
        0,
        "cold run cannot hit"
    );
    let entries = entry_files(&dir);
    assert_eq!(
        entries.len() as u64,
        cold_misses,
        "every miss writes exactly one entry"
    );

    // Phase 2 — warm store in a "fresh process": every unit resolves from
    // disk, zero simulation units execute, bytes identical.
    experiments::reset_memory_cells();
    let (warm, warm_summary) = run_subset();
    assert_eq!(warm, baseline, "warm-store run changed the artifact");
    let after_warm = experiments::unit_cache_stats();
    assert_eq!(
        after_warm.store_misses - after_cold.store_misses,
        0,
        "warm run must not miss"
    );
    assert_eq!(
        after_warm.store_hits - after_cold.store_hits,
        cold_misses,
        "warm run resolves every unit from disk"
    );
    assert_eq!(
        warm_summary.subjobs_executed, 0,
        "a fully warm run must execute zero simulation units"
    );

    // Phase 3 — poisoned store: a truncated entry, a garbage entry, and an
    // entry whose fingerprint drifted (same lengths, different meta bytes)
    // must all be treated as misses and recomputed; the artifact stays
    // byte-identical and the rewrite heals the store.
    let truncated = &entries[0];
    let bytes = fs::read(truncated).expect("entry readable");
    fs::write(truncated, &bytes[..bytes.len() / 2]).expect("truncate entry");
    let garbage = &entries[1];
    fs::write(garbage, b"not a store entry").expect("garbage entry");
    let drifted = &entries[2];
    let text = fs::read_to_string(drifted).expect("entry is UTF-8");
    assert!(text.contains("result-v1"), "meta carries the fingerprint");
    fs::write(drifted, text.replace("result-v1", "result-v9")).expect("drift fingerprint");

    experiments::reset_memory_cells();
    let (healed, _) = run_subset();
    assert_eq!(healed, baseline, "poisoned entries leaked into results");
    let after_heal = experiments::unit_cache_stats();
    assert_eq!(
        after_heal.store_misses - after_warm.store_misses,
        3,
        "exactly the three poisoned entries must recompute"
    );
    assert_eq!(
        after_heal.store_hits - after_warm.store_hits,
        cold_misses - 3,
        "intact entries still hit"
    );

    // Phase 4 — the recomputation healed the store: a further fresh run is
    // all hits again.
    experiments::reset_memory_cells();
    let (rewarm, rewarm_summary) = run_subset();
    assert_eq!(rewarm, baseline);
    let after_rewarm = experiments::unit_cache_stats();
    assert_eq!(after_rewarm.store_misses - after_heal.store_misses, 0);
    assert_eq!(rewarm_summary.subjobs_executed, 0);

    // Phase 5 — gc keeps the newest entries and the stats add up.
    let store = Store::open(&dir).expect("store reopens");
    let stats = store.stats().expect("stats");
    assert_eq!(stats.entries, cold_misses);
    let outcome = store.gc(stats.bytes / 2).expect("gc runs");
    assert!(outcome.evicted > 0);
    assert!(outcome.remaining_bytes <= stats.bytes / 2);
    assert_eq!(outcome.remaining_entries + outcome.evicted, stats.entries);

    // Phase 6 — uninstalling the store restores the legacy execution path
    // and the same bytes.
    experiments::uninstall_unit_store();
    experiments::reset_memory_cells();
    let (plain, _) = run_subset();
    assert_eq!(plain, baseline, "no-store run changed the artifact");

    let _ = fs::remove_dir_all(&dir);
}
