//! `padcsim` — run one simulation from the command line.
//!
//! ```text
//! padcsim --cores 4 --policy padc --instructions 300000 \
//!         --bench omnetpp_06 --bench libquantum_06 --bench galgel_00 --bench GemsFDTD_06
//! padcsim --config system.json --bench milc_06           # full SimConfig from JSON
//! padcsim --print-config --cores 2 --policy demand-first # dump the config as JSON
//! padcsim --trace trace.txt --policy padc                # replay a recorded trace
//! padcsim --suite --smoke --jobs 4 --jsonl out.jsonl     # experiment suite via padc-harness
//! ```

use padc_core::SchedulingPolicy;
use padc_cpu::TraceSource;
use padc_dram::RefreshPolicy;
use padc_sim::{FastForwardMode, SimConfig, System};
use padc_workloads::{profiles, TraceFileSource};

/// Parses `--fast-forward MODE` / `--fast-forward=MODE`.
fn parse_ff_mode(s: &str) -> Result<FastForwardMode, String> {
    s.parse()
}

/// Parses `--refresh-policy MODE` (`all-bank` | `per-bank` | `darp`).
fn parse_refresh_policy(s: &str) -> Result<RefreshPolicy, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "all-bank" | "allbank" => RefreshPolicy::AllBank,
        "per-bank" | "perbank" => RefreshPolicy::PerBank,
        "darp" => RefreshPolicy::Darp,
        other => return Err(format!("unknown refresh policy {other:?}")),
    })
}

fn parse_policy(s: &str) -> Result<SchedulingPolicy, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "demand-first" | "demandfirst" | "df" => SchedulingPolicy::DemandFirst,
        "demand-pref-equal" | "equal" | "frfcfs" => SchedulingPolicy::DemandPrefetchEqual,
        "prefetch-first" | "pf" => SchedulingPolicy::PrefetchFirst,
        "aps" | "aps-only" => SchedulingPolicy::ApsOnly,
        "padc" | "aps-apd" => SchedulingPolicy::Padc,
        "padc-rank" | "rank" => SchedulingPolicy::PadcRank,
        other => return Err(format!("unknown policy {other:?}")),
    })
}

struct Args {
    cores: usize,
    policy: SchedulingPolicy,
    instructions: u64,
    benches: Vec<String>,
    traces: Vec<String>,
    config_path: Option<String>,
    print_config: bool,
    no_prefetch: bool,
    json: bool,
    profile: bool,
    fast_forward: Option<FastForwardMode>,
    refresh_policy: Option<RefreshPolicy>,
    extended_timing: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cores: 1,
        policy: SchedulingPolicy::Padc,
        instructions: 200_000,
        benches: Vec::new(),
        traces: Vec::new(),
        config_path: None,
        print_config: false,
        no_prefetch: false,
        json: false,
        profile: false,
        fast_forward: None,
        refresh_policy: None,
        extended_timing: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--cores" => args.cores = value("--cores")?.parse().map_err(|e| format!("{e}"))?,
            "--policy" => args.policy = parse_policy(&value("--policy")?)?,
            "--instructions" => {
                args.instructions = value("--instructions")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--bench" => args.benches.push(value("--bench")?),
            "--trace" => args.traces.push(value("--trace")?),
            "--config" => args.config_path = Some(value("--config")?),
            "--print-config" => args.print_config = true,
            "--no-prefetch" => args.no_prefetch = true,
            "--json" => args.json = true,
            "--profile" => args.profile = true,
            "--fast-forward" => args.fast_forward = Some(parse_ff_mode(&value("--fast-forward")?)?),
            "--no-fast-forward" => args.fast_forward = Some(FastForwardMode::Off),
            "--refresh-policy" => {
                args.refresh_policy = Some(parse_refresh_policy(&value("--refresh-policy")?)?)
            }
            "--extended-timing" => args.extended_timing = true,
            other if other.starts_with("--fast-forward=") => {
                args.fast_forward = Some(parse_ff_mode(&other["--fast-forward=".len()..])?)
            }
            "--list-benchmarks" => {
                for p in profiles::all() {
                    println!("{:<22} class {}", p.name, p.class.code());
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!(
                    "usage: padcsim [--config FILE.json] [--cores N] [--policy P] \
                     [--instructions N] [--no-prefetch] [--json] [--profile] \
                     [--fast-forward off|global|horizon|event] [--no-fast-forward] \
                     [--refresh-policy all-bank|per-bank|darp] [--extended-timing] \
                     (--bench NAME ... | --trace FILE ...) | --print-config | --list-benchmarks"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// `padcsim --suite`: run registered experiments on the `padc-harness`
/// unified scheduler (experiments and their per-workload fan-out share one
/// worker pool, so `--jobs N` bounds total simulation threads). Shares the
/// registry (and therefore ids, payloads, and JSONL bytes) with `repro`;
/// this entry point is the minimal suite-runner — use `repro` for table
/// rendering and bar charts.
fn run_suite_mode(args: &[String]) -> ! {
    use padc_sim::experiments::{
        registry::find, single_run_stats, suite_jobs_with, ExecMode, ExpConfig, Scale, SuiteOptions,
    };

    let mut cfg = ExpConfig::at(Scale::Full);
    let mut workers = 0usize;
    let mut jsonl_path: Option<String> = None;
    let mut resume_path: Option<String> = None;
    let mut summary_path: Option<String> = None;
    let mut profile = false;
    let mut exec = ExecMode::default();
    let mut store_flag: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter();
    let die = |msg: String| -> ! {
        eprintln!("error: {msg} (try --help)");
        std::process::exit(2);
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(format!("{name} expects a value")))
        };
        match flag.as_str() {
            "--quick" => cfg = ExpConfig::at(Scale::Quick),
            "--smoke" => cfg = ExpConfig::at(Scale::Smoke),
            "--jobs" | "-j" => {
                let v = value("--jobs");
                workers = v
                    .parse()
                    .unwrap_or_else(|_| die(format!("--jobs expects an integer, got {v:?}")));
            }
            "--jsonl" => jsonl_path = Some(value("--jsonl")),
            "--resume" => resume_path = Some(value("--resume")),
            "--summary" => summary_path = Some(value("--summary")),
            "--store" => store_flag = Some(value("--store")),
            "--profile" => profile = true,
            "--exec" => {
                let v = value("--exec");
                exec = v.parse().unwrap_or_else(|e| die(e));
            }
            "--fast-forward" => {
                let v = value("--fast-forward");
                let mode = v.parse().unwrap_or_else(|e| die(e));
                padc_sim::set_fast_forward_mode_default(mode);
            }
            "--no-fast-forward" => padc_sim::set_fast_forward_default(false),
            other if other.starts_with("--fast-forward=") => {
                let mode = other["--fast-forward=".len()..]
                    .parse()
                    .unwrap_or_else(|e| die(e));
                padc_sim::set_fast_forward_mode_default(mode);
            }
            "--list" => {
                for e in padc_sim::experiments::experiment_registry() {
                    println!("{:<10} {}", e.id, e.paper_ref);
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!(
                    "usage: padcsim --suite [--quick|--smoke] [--jobs N] [--jsonl PATH] \
                     [--resume FILE] [--summary PATH] [--store DIR] [--profile] \
                     [--exec planned|monolithic] \
                     [--fast-forward off|global|horizon|event] [--no-fast-forward] \
                     [--list] [<experiment-id>...]"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => die(format!("unknown --suite flag {other:?}")),
            other => ids.push(other.to_string()),
        }
    }
    let selected = if ids.is_empty() {
        padc_sim::experiments::experiment_registry()
    } else {
        ids.iter()
            .map(|id| {
                find(id).unwrap_or_else(|| {
                    eprintln!("error: unknown experiment id: {id}");
                    eprintln!("run `padcsim --suite --list` for the registered ids");
                    std::process::exit(2);
                })
            })
            .collect()
    };
    // Resume: trust settled rows of the prior artifact, re-run the rest
    // (same semantics as `repro --resume`). With no explicit --jsonl the
    // regenerated artifact replaces the resumed file.
    let artifact = resume_path.as_deref().map(|path| {
        if !ids.is_empty() && jsonl_path.as_deref().is_none_or(|out| out == path) {
            die(format!(
                "--resume with an experiment subset would overwrite {path} with partial \
                 results; pass a different --jsonl destination"
            ));
        }
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let artifact = padc_harness::ResumeArtifact::parse(&text);
                eprintln!(
                    "resume: {} settled row(s) in {path}, {} line(s) distrusted",
                    artifact.len(),
                    artifact.lines_rejected
                );
                artifact
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                eprintln!("resume: {path} not found, running everything");
                padc_harness::ResumeArtifact::default()
            }
            Err(e) => die(format!("cannot read {path}: {e}")),
        }
    });
    if jsonl_path.is_none() {
        jsonl_path = resume_path.clone();
    }

    if profile {
        padc_sim::profile::set_timing_enabled(true);
    }
    if let Some(dir) = store_dir_from(store_flag) {
        padc_sim::experiments::install_unit_store(std::path::Path::new(&dir))
            .unwrap_or_else(|e| die(format!("cannot open store {dir}: {e}")));
    }
    let mut jobs = suite_jobs_with(selected, cfg, None, SuiteOptions { profile, exec });
    if let Some(artifact) = &artifact {
        for job in &mut jobs {
            if let Some(row) = artifact.row(&job.id) {
                job.cached_row = Some(row.to_string());
            }
        }
    }
    let harness_cfg = padc_harness::HarnessConfig {
        workers,
        budget: None,
        progress: true,
    };
    let mut jsonl_file;
    let mut jsonl_stdout;
    let jsonl_sink: Option<&mut dyn std::io::Write> = match jsonl_path.as_deref() {
        None => {
            jsonl_stdout = std::io::stdout().lock();
            Some(&mut jsonl_stdout)
        }
        Some("-") => {
            jsonl_stdout = std::io::stdout().lock();
            Some(&mut jsonl_stdout)
        }
        Some(path) => {
            jsonl_file = std::fs::File::create(path)
                .unwrap_or_else(|e| die(format!("cannot create {path}: {e}")));
            Some(&mut jsonl_file)
        }
    };
    let mut stderr = std::io::stderr().lock();
    let mut summary = padc_harness::run_suite(&jobs, &harness_cfg, jsonl_sink, &mut stderr)
        .expect("suite I/O failed");
    if padc_sim::experiments::unit_store_installed() {
        let stats = padc_sim::experiments::unit_cache_stats();
        for (name, v) in [
            ("store_hits", stats.store_hits),
            ("store_misses", stats.store_misses),
            ("units_coalesced", stats.units_coalesced),
        ] {
            summary.extras.push((name.to_string(), v));
        }
        // Machine-readable store telemetry: the determinism and perf gates
        // parse this line; keep the key=value form stable.
        eprintln!(
            "store: hits={} misses={} coalesced={}",
            stats.store_hits, stats.store_misses, stats.units_coalesced
        );
    }
    if let Some(path) = &summary_path {
        std::fs::write(path, summary.to_json())
            .unwrap_or_else(|e| die(format!("cannot write {path}: {e}")));
    }
    eprintln!(
        "suite: {}/{} ok, {} resumed, {} failed, {} workers, {:.1}s wall",
        summary.ok(),
        summary.outcomes.len(),
        summary.skipped(),
        summary.failed(),
        summary.workers,
        summary.wall_seconds
    );
    let (requested, computed) = single_run_stats();
    if requested > 0 {
        // Machine-readable memo telemetry: `requested - computed` is the
        // cross-experiment dedup win (perf_gate.sh parses this line).
        eprintln!("single_run_memo: requested={requested} computed={computed}");
    }
    std::process::exit(if summary.failed() > 0 { 1 } else { 0 });
}

/// Resolves the unit-store directory: the `--store DIR` flag beats the
/// `PADC_STORE` environment variable; neither means no store.
fn store_dir_from(flag: Option<String>) -> Option<String> {
    flag.or_else(|| std::env::var("PADC_STORE").ok().filter(|s| !s.is_empty()))
}

/// `padcsim serve`: long-running experiment request server (line-delimited
/// JSON over stdio or a Unix socket); see `padc_sim::serve` for the
/// protocol.
fn run_serve_mode(args: &[String]) -> ! {
    use padc_sim::experiments::Scale;

    let die = |msg: String| -> ! {
        eprintln!("error: {msg} (try padcsim serve --help)");
        std::process::exit(2);
    };
    let mut workers = 0usize;
    let mut scale = Scale::Full;
    let mut store_flag: Option<String> = None;
    let mut socket: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(format!("{name} expects a value")))
        };
        match flag.as_str() {
            "--quick" => scale = Scale::Quick,
            "--smoke" => scale = Scale::Smoke,
            "--jobs" | "-j" => {
                let v = value("--jobs");
                workers = v
                    .parse()
                    .unwrap_or_else(|_| die(format!("--jobs expects an integer, got {v:?}")));
            }
            "--store" => store_flag = Some(value("--store")),
            "--socket" => socket = Some(value("--socket")),
            "--stdio" => socket = None,
            "--fast-forward" => {
                let v = value("--fast-forward");
                let mode = v.parse().unwrap_or_else(|e| die(e));
                padc_sim::set_fast_forward_mode_default(mode);
            }
            "--no-fast-forward" => padc_sim::set_fast_forward_default(false),
            other if other.starts_with("--fast-forward=") => {
                let mode = other["--fast-forward=".len()..]
                    .parse()
                    .unwrap_or_else(|e| die(e));
                padc_sim::set_fast_forward_mode_default(mode);
            }
            "--help" | "-h" => {
                println!(
                    "usage: padcsim serve [--stdio | --socket PATH] [--jobs N] \
                     [--quick|--smoke] [--store DIR] \
                     [--fast-forward off|global|horizon|event] [--no-fast-forward]\n\
                     requests: one JSON object per line, e.g. \
                     {{\"id\":\"r1\",\"experiments\":[\"fig6\"],\"scale\":\"smoke\"}}"
                );
                std::process::exit(0);
            }
            other => die(format!("unknown serve flag {other:?}")),
        }
    }
    if let Some(dir) = store_dir_from(store_flag) {
        padc_sim::experiments::install_unit_store(std::path::Path::new(&dir))
            .unwrap_or_else(|e| die(format!("cannot open store {dir}: {e}")));
        eprintln!("serve: unit store at {dir}");
    }
    let state = padc_sim::serve::ServeState::new(workers, scale);
    let result = match &socket {
        Some(path) => {
            eprintln!("serve: listening on {path}");
            padc_sim::serve::serve_unix(&state, std::path::Path::new(path))
        }
        None => {
            eprintln!("serve: reading requests from stdin");
            padc_sim::serve::serve_stdio(&state, std::io::stdin().lock(), std::io::stdout())
        }
    };
    let counters = padc_sim::profile::service_counters();
    eprintln!(
        "serve: requests={} subjobs_executed={} store: hits={} misses={} coalesced={}",
        counters.serve_requests,
        state.subjobs_executed(),
        counters.store_hits,
        counters.store_misses,
        counters.units_coalesced
    );
    match result {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// `padcsim store <stats|gc>`: inspect and bound the content-addressed
/// unit store without running anything.
fn run_store_mode(args: &[String]) -> ! {
    let die = |msg: String| -> ! {
        eprintln!("error: {msg} (try padcsim store --help)");
        std::process::exit(2);
    };
    let mut action: Option<String> = None;
    let mut store_flag: Option<String> = None;
    let mut max_bytes: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(format!("{name} expects a value")))
        };
        match arg.as_str() {
            "--store" => store_flag = Some(value("--store")),
            "--max-bytes" => {
                let v = value("--max-bytes");
                max_bytes =
                    Some(v.parse().unwrap_or_else(|_| {
                        die(format!("--max-bytes expects an integer, got {v:?}"))
                    }));
            }
            "--help" | "-h" => {
                println!(
                    "usage: padcsim store (stats | gc --max-bytes N) [--store DIR]\n\
                     the store directory falls back to $PADC_STORE"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => die(format!("unknown store flag {other:?}")),
            other if action.is_none() => action = Some(other.to_string()),
            other => die(format!("unexpected argument {other:?}")),
        }
    }
    let dir = store_dir_from(store_flag)
        .unwrap_or_else(|| die("no store directory: pass --store DIR or set PADC_STORE".into()));
    let store = padc_store::Store::open(std::path::Path::new(&dir))
        .unwrap_or_else(|e| die(format!("cannot open store {dir}: {e}")));
    match action.as_deref() {
        Some("stats") | None => {
            let s = store
                .stats()
                .unwrap_or_else(|e| die(format!("stats failed: {e}")));
            println!("store: entries={} bytes={}", s.entries, s.bytes);
        }
        Some("gc") => {
            let max = max_bytes.unwrap_or_else(|| die("gc requires --max-bytes N".into()));
            let o = store
                .gc(max)
                .unwrap_or_else(|e| die(format!("gc failed: {e}")));
            println!(
                "store gc: evicted={} freed_bytes={} remaining_entries={} remaining_bytes={}",
                o.evicted, o.freed_bytes, o.remaining_entries, o.remaining_bytes
            );
        }
        Some(other) => die(format!("unknown store action {other:?} (stats|gc)")),
    }
    std::process::exit(0);
}

/// `--profile`: the hot-path counters as one `profile: {json}` stderr
/// line, so it composes with `--json` on stdout. The object is the
/// serde-serialized [`padc_sim::profile::SimProfile`] — the same shape
/// the suite surfaces (`repro`, `padcsim --suite`, `padcsim serve`) embed
/// in JSONL rows — and scripts/perf_gate.sh greps its `"core_skip_pct"`,
/// `"ctrl_skip_pct"`, and `"owner_*"` keys; keep them stable.
fn print_profile(p: &padc_sim::profile::SimProfile) {
    eprintln!(
        "profile: {}",
        serde_json::to_string(p).expect("profile serializes")
    );
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match raw.first().map(String::as_str) {
        Some("--suite") => run_suite_mode(&raw[1..]),
        Some("serve") => run_serve_mode(&raw[1..]),
        Some("store") => run_store_mode(&raw[1..]),
        _ => {}
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e} (try --help)");
            std::process::exit(2);
        }
    };
    let cores = if !args.traces.is_empty() {
        args.traces.len()
    } else if !args.benches.is_empty() {
        args.benches.len()
    } else {
        args.cores
    };
    let mut cfg = match &args.config_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(2);
            });
            serde_json::from_str::<SimConfig>(&text).unwrap_or_else(|e| {
                eprintln!("error: invalid config {path}: {e}");
                std::process::exit(2);
            })
        }
        None => SimConfig::new(cores, args.policy),
    };
    if args.config_path.is_none() {
        cfg.max_instructions = args.instructions;
        if args.no_prefetch {
            cfg = cfg.without_prefetching();
        }
    }
    if args.extended_timing {
        cfg = cfg.with_extended_timing(padc_dram::ExtendedTiming::default());
    }
    if let Some(policy) = args.refresh_policy {
        cfg = cfg.with_refresh_policy(policy);
    }
    if args.print_config {
        println!(
            "{}",
            serde_json::to_string_pretty(&cfg).expect("config serializes")
        );
        return;
    }

    if let Some(mode) = args.fast_forward {
        padc_sim::set_fast_forward_mode_default(mode);
    }
    if args.profile {
        padc_sim::profile::set_timing_enabled(true);
    }
    let mut sys = if !args.traces.is_empty() {
        let mut traces: Vec<Box<dyn TraceSource>> = Vec::new();
        for t in &args.traces {
            match TraceFileSource::from_path(std::path::Path::new(t)) {
                Ok(src) => traces.push(Box::new(src)),
                Err(e) => {
                    eprintln!("error: trace {t}: {e}");
                    std::process::exit(2);
                }
            }
        }
        System::with_traces(cfg, traces, args.traces.clone())
    } else {
        if args.benches.is_empty() {
            eprintln!("error: provide --bench or --trace (or --help)");
            std::process::exit(2);
        }
        let benches: Vec<_> = args
            .benches
            .iter()
            .map(|n| {
                profiles::by_name(n).unwrap_or_else(|| {
                    eprintln!("error: unknown benchmark {n} (try --list-benchmarks)");
                    std::process::exit(2);
                })
            })
            .collect();
        System::new(cfg, benches)
    };
    let report = sys.run();
    if args.profile {
        print_profile(sys.profile());
    }

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serializes")
        );
        return;
    }
    println!("cycles: {}", report.total_cycles);
    for c in &report.per_core {
        println!(
            "{:<22} IPC={:.3} MPKI={:.1} SPL={:.1} ACC={:.0}% COV={:.0}% sent={} dropped={} traffic={}",
            c.benchmark,
            c.ipc(),
            c.mpki(),
            c.spl(),
            c.acc() * 100.0,
            c.cov() * 100.0,
            c.prefetches_sent,
            c.prefetches_dropped,
            c.traffic.total(),
        );
    }
    let t = report.traffic();
    println!(
        "traffic: {} lines (demand {}, useful pf {}, useless pf {}); DRAM row-hit {:.0}%",
        t.total(),
        t.demand,
        t.pref_useful,
        t.pref_useless,
        report
            .channels
            .first()
            .map(|c| c.row_hit_rate() * 100.0)
            .unwrap_or(0.0),
    );
}
