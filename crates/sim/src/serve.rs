//! `padcsim serve`: a long-running experiment request server.
//!
//! The batch CLIs pay the full suite cost per invocation. Serve mode keeps
//! one process alive with a persistent [`SuiteService`] worker pool and
//! accepts **line-delimited JSON requests** — over stdio or a Unix socket
//! — each selecting a set of registry experiments and a scale. Every
//! request is admitted through the same pure plan phase as the batch
//! suite, its jobs execute on the shared pool (so concurrent requests
//! load-balance against each other under one `--jobs N` bound), and its
//! rows stream back as JSONL events as soon as each settles.
//!
//! [`ServeState::new`] turns on unit coalescing
//! ([`set_unit_coalescing`](crate::experiments::set_unit_coalescing)), so
//! concurrent requests whose plans overlap resolve the shared
//! [`SimUnit`](crate::experiments::SimUnit)s against one in-memory claim
//! map: each distinct unit is computed **once** no matter how many clients
//! are waiting on it, and with a store installed warm units are not
//! computed at all.
//!
//! # Protocol
//!
//! One request per line:
//!
//! ```json
//! {"id":"r1","experiments":["fig6","tab5"],"scale":"smoke"}
//! ```
//!
//! `experiments` is an array of registry ids or `"all"` (default);
//! `scale` is `full|quick|smoke` (default: the server's scale); `exec` is
//! `planned|monolithic` (default planned); integer `seed` and
//! `instructions` override the scale preset. The response is a stream of
//! events, each one JSON line tagged with the request id:
//!
//! ```json
//! {"req":"r1","event":"accepted","jobs":2}
//! {"req":"r1","event":"row","data":{"id":"fig6","status":"ok","result":{...}}}
//! {"req":"r1","event":"done","ok":2,"failed":0,"subjobs_executed":64,...}
//! {"req":"bad","event":"error","message":"unknown experiment id \"figx\""}
//! ```
//!
//! `row` events arrive in request order (the `run_suite` streaming rule)
//! and `data` carries the exact row object the batch suite would have
//! written, so a client concatenating `data` lines reproduces the batch
//! JSONL byte-for-byte. Events from concurrent requests interleave on a
//! shared output, but every event is written line-atomically under one
//! lock; the `done` counters are process-cumulative snapshots.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use padc_harness::{JobStatus, ServiceConfig, SuiteService};
use serde_json::Value;

use crate::experiments::{
    self, suite_jobs_with, ExecMode, ExpConfig, Experiment, Scale, SuiteOptions,
};

/// Output shared by concurrent request handlers. Every event is written as
/// one whole line under the lock, so interleaved streams never split a
/// line.
pub type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// Wraps a writer for shared, line-atomic use.
pub fn shared_writer(w: impl Write + Send + 'static) -> SharedWriter {
    Arc::new(Mutex::new(Box::new(w)))
}

/// One parsed, admitted request.
struct Request {
    id: String,
    experiments: Vec<Experiment>,
    cfg: ExpConfig,
    exec: ExecMode,
}

/// The server: a persistent worker pool plus the request protocol.
pub struct ServeState {
    service: SuiteService,
    default_scale: Scale,
    next_request: AtomicU64,
}

impl ServeState {
    /// Starts the worker pool (`workers = 0` means all cores) and enables
    /// process-wide unit coalescing so overlapping requests share work.
    pub fn new(workers: usize, default_scale: Scale) -> Self {
        experiments::set_unit_coalescing(true);
        ServeState {
            service: SuiteService::new(&ServiceConfig {
                workers,
                budget: None,
            }),
            default_scale,
            next_request: AtomicU64::new(1),
        }
    }

    /// Handles one request line end-to-end: parse, admit, execute, stream.
    /// Blocks until the request's batch settles, so callers run each line
    /// on its own thread when they want concurrency (see [`serve_lines`]).
    /// Empty lines are ignored; malformed ones produce an `error` event.
    pub fn handle_line(&self, line: &str, out: &SharedWriter) {
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        crate::profile::note_serve_request();
        let seq = self.next_request.fetch_add(1, Ordering::Relaxed);
        let fallback_id = format!("req-{seq}");
        match self.parse_request(line, &fallback_id) {
            Ok(request) => self.run_request(request, out),
            Err((id, message)) => emit_error(out, &id, &message),
        }
    }

    /// Total sub-job units executed through the shared pool so far.
    pub fn subjobs_executed(&self) -> u64 {
        self.service.subjobs_executed()
    }

    /// Stops the worker pool and joins it (also happens on drop).
    pub fn shutdown(self) {
        self.service.shutdown();
    }

    fn parse_request(&self, line: &str, fallback_id: &str) -> Result<Request, (String, String)> {
        let value = serde_json::parse(line)
            .map_err(|e| (fallback_id.to_string(), format!("invalid JSON: {e}")))?;
        let id = value
            .get("id")
            .and_then(Value::as_str)
            .unwrap_or(fallback_id)
            .to_string();
        if value.as_object().is_none() {
            return Err((id, "request must be a JSON object".to_string()));
        }
        let scale = match value.get("scale").and_then(Value::as_str) {
            None => self.default_scale,
            Some("full") => Scale::Full,
            Some("quick") => Scale::Quick,
            Some("smoke") => Scale::Smoke,
            Some(other) => {
                return Err((id, format!("unknown scale {other:?} (full|quick|smoke)")));
            }
        };
        let mut cfg = ExpConfig::at(scale);
        if let Some(v) = value.get("seed") {
            cfg.seed = serde_json::from_value(v).map_err(|e| (id.clone(), format!("seed: {e}")))?;
        }
        if let Some(v) = value.get("instructions") {
            let n: u64 = serde_json::from_value(v)
                .map_err(|e| (id.clone(), format!("instructions: {e}")))?;
            cfg.instructions = n;
            cfg.instructions_single = n;
        }
        let exec = match value.get("exec").and_then(Value::as_str) {
            None => ExecMode::default(),
            Some(s) => s.parse().map_err(|e: String| (id.clone(), e))?,
        };
        let selected = match value.get("experiments") {
            None => experiments::experiment_registry(),
            Some(Value::Str(s)) if s == "all" => experiments::experiment_registry(),
            Some(Value::Array(requested)) => {
                let mut selected = Vec::new();
                for v in requested.iter() {
                    let Some(exp_id) = v.as_str() else {
                        return Err((id, "experiments must be an array of id strings".to_string()));
                    };
                    match experiments::find(exp_id) {
                        Some(e) => selected.push(e),
                        None => return Err((id, format!("unknown experiment id {exp_id:?}"))),
                    }
                }
                if selected.is_empty() {
                    return Err((id, "experiments array is empty".to_string()));
                }
                selected
            }
            Some(_) => {
                return Err((
                    id,
                    "experiments must be \"all\" or an array of id strings".to_string(),
                ));
            }
        };
        Ok(Request {
            id,
            experiments: selected,
            cfg,
            exec,
        })
    }

    fn run_request(&self, request: Request, out: &SharedWriter) {
        let jobs = suite_jobs_with(
            request.experiments,
            request.cfg,
            None,
            SuiteOptions {
                profile: false,
                exec: request.exec,
            },
        );
        let id_json = serde_json::to_string(&request.id).expect("string serializes");
        emit(
            out,
            &format!(
                "{{\"req\":{id_json},\"event\":\"accepted\",\"jobs\":{}}}",
                jobs.len()
            ),
        );
        let handle = self.service.submit(jobs);
        let streamed = handle.collect_ordered(|_, completed| {
            let mut w = out.lock().expect("serve writer poisoned");
            writeln!(
                w,
                "{{\"req\":{id_json},\"event\":\"row\",\"data\":{}}}",
                completed.row.trim_end()
            )?;
            w.flush()
        });
        match streamed {
            Ok(completions) => {
                let failed = completions
                    .iter()
                    .filter(|c| !matches!(c.status, JobStatus::Ok | JobStatus::Skipped))
                    .count();
                let counters = crate::profile::service_counters();
                emit(
                    out,
                    &format!(
                        "{{\"req\":{id_json},\"event\":\"done\",\"ok\":{},\"failed\":{failed},\
                         \"subjobs_executed\":{},\"store_hits\":{},\"store_misses\":{},\
                         \"units_coalesced\":{}}}",
                        completions.len() - failed,
                        self.service.subjobs_executed(),
                        counters.store_hits,
                        counters.store_misses,
                        counters.units_coalesced,
                    ),
                );
            }
            Err(e) => emit_error(out, &request.id, &format!("stream aborted: {e}")),
        }
    }
}

/// Writes one event line under the shared lock. Best-effort: a client that
/// hung up must not take the server down.
fn emit(out: &SharedWriter, line: &str) {
    let mut w = out.lock().expect("serve writer poisoned");
    let _ = writeln!(w, "{line}");
    let _ = w.flush();
}

fn emit_error(out: &SharedWriter, id: &str, message: &str) {
    let id = serde_json::to_string(&id).expect("string serializes");
    let message = serde_json::to_string(&message).expect("string serializes");
    emit(
        out,
        &format!("{{\"req\":{id},\"event\":\"error\",\"message\":{message}}}"),
    );
}

/// Reads request lines from `input` until EOF, handling each on its own
/// thread (so back-to-back requests from one client still coalesce), and
/// returns once every request has finished.
///
/// # Errors
///
/// Propagates read errors from `input`; write errors to `out` only abort
/// the affected request.
pub fn serve_lines(state: &ServeState, input: impl BufRead, out: &SharedWriter) -> io::Result<()> {
    std::thread::scope(|scope| {
        for line in input.lines() {
            let line = line?;
            let out = Arc::clone(out);
            scope.spawn(move || state.handle_line(&line, &out));
        }
        Ok(())
    })
}

/// Serves stdio: requests from `input`, events to `output`. Returns at
/// EOF. The `padcsim serve --stdio` entry point.
///
/// # Errors
///
/// Propagates read errors from `input`.
pub fn serve_stdio(
    state: &ServeState,
    input: impl BufRead,
    output: impl Write + Send + 'static,
) -> io::Result<()> {
    let out = shared_writer(output);
    serve_lines(state, input, &out)
}

/// Binds `path` (replacing any stale socket file) and serves each
/// connection on its own thread until the process is killed. The
/// `padcsim serve --socket PATH` entry point.
///
/// # Errors
///
/// Fails if the socket cannot be bound; per-connection I/O errors only
/// drop that connection.
pub fn serve_unix(state: &ServeState, path: &Path) -> io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    std::thread::scope(|scope| loop {
        match listener.accept() {
            Ok((stream, _)) => {
                scope.spawn(move || {
                    let Ok(read_half) = stream.try_clone() else {
                        return;
                    };
                    let out = shared_writer(stream);
                    let _ = serve_lines(state, BufReader::new(read_half), &out);
                });
            }
            Err(e) => {
                eprintln!("serve: accept failed: {e}");
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A `Write` that appends into a shared buffer the test can read back.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Capture {
        fn take(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn events(output: &str) -> Vec<Value> {
        output
            .lines()
            .map(|l| serde_json::parse(l).expect("every event line is JSON"))
            .collect()
    }

    #[test]
    fn serve_streams_rows_and_reports_errors() {
        let state = ServeState::new(1, Scale::Smoke);
        let sink = Capture::default();
        let out = shared_writer(sink.clone());

        // A valid two-experiment request streams accepted, rows in request
        // order, then done.
        state.handle_line(
            "{\"id\":\"r1\",\"experiments\":[\"cost\",\"tab6\"],\"scale\":\"smoke\"}",
            &out,
        );
        let lines = sink.take();
        let evs = events(&lines);
        assert_eq!(evs.len(), 4, "accepted + 2 rows + done: {lines}");
        assert_eq!(evs[0].get("event").unwrap().as_str(), Some("accepted"));
        assert_eq!(evs[0].get("req").unwrap().as_str(), Some("r1"));
        for (ev, id) in evs[1..3].iter().zip(["cost", "tab6"]) {
            assert_eq!(ev.get("event").unwrap().as_str(), Some("row"));
            let data = ev.get("data").expect("row carries data");
            assert_eq!(data.get("id").unwrap().as_str(), Some(id));
            assert_eq!(data.get("status").unwrap().as_str(), Some("ok"));
        }
        assert_eq!(evs[3].get("event").unwrap().as_str(), Some("done"));
        assert_eq!(evs[3].get("ok").unwrap().as_f64(), Some(2.0));
        assert_eq!(evs[3].get("failed").unwrap().as_f64(), Some(0.0));

        // Malformed requests produce error events, not crashes.
        for (line, needle) in [
            ("not json", "invalid JSON"),
            (
                "{\"id\":\"rx\",\"experiments\":[\"nope\"]}",
                "unknown experiment",
            ),
            ("{\"id\":\"ry\",\"scale\":\"huge\"}", "unknown scale"),
            ("{\"id\":\"rz\",\"experiments\":[]}", "empty"),
            ("[1,2]", "JSON object"),
        ] {
            let sink = Capture::default();
            let out = shared_writer(sink.clone());
            state.handle_line(line, &out);
            let evs = events(&sink.take());
            assert_eq!(evs.len(), 1, "one error event for {line:?}");
            assert_eq!(evs[0].get("event").unwrap().as_str(), Some("error"));
            let message = evs[0].get("message").unwrap().as_str().unwrap();
            assert!(message.contains(needle), "{message:?} lacks {needle:?}");
        }

        // Blank lines are ignored.
        let sink = Capture::default();
        let out = shared_writer(sink.clone());
        state.handle_line("   ", &out);
        assert!(sink.take().is_empty());
        state.shutdown();
    }

    #[test]
    fn serve_lines_drives_concurrent_requests_to_completion() {
        let state = ServeState::new(2, Scale::Smoke);
        let sink = Capture::default();
        let out = shared_writer(sink.clone());
        let input = "{\"id\":\"a\",\"experiments\":[\"cost\"]}\n\
                     {\"id\":\"b\",\"experiments\":[\"tab6\"]}\n";
        serve_lines(&state, input.as_bytes(), &out).expect("serving stdio input succeeds");
        let lines = sink.take();
        let evs = events(&lines);
        // Interleaving is scheduling-dependent, but each request must get
        // its full accepted/row/done stream on intact lines.
        for id in ["a", "b"] {
            for event in ["accepted", "row", "done"] {
                assert!(
                    evs.iter()
                        .any(|e| e.get("req").unwrap().as_str() == Some(id)
                            && e.get("event").unwrap().as_str() == Some(event)),
                    "request {id} lacks {event} event in {lines}"
                );
            }
        }
        state.shutdown();
    }
}
