//! Multi-core experiments: case studies (§6.3.1–6.3.5), system-size
//! aggregates (Figs. 9, 16, 17), ranking (Figs. 19, 20), dual controllers
//! (Figs. 21, 22), and shared last-level caches (Figs. 26, 27).

use padc_core::SchedulingPolicy;
use padc_workloads::{random_workloads, Workload};

use crate::{metrics, SimConfig};

use super::infra::{
    alone_ipcs, average_over_workloads, parallel_map, run_workload, standard_arms, ExpConfig,
    ExpTable, PolicyArm,
};

/// The paper's three 4-core case studies (§6.3.1–6.3.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CaseStudy {
    /// Case I: four prefetch-friendly applications.
    AllFriendly,
    /// Case II: four prefetch-unfriendly applications.
    AllUnfriendly,
    /// Case III: two friendly + two unfriendly.
    Mixed,
}

impl CaseStudy {
    /// The benchmark mix (matching the paper's figures).
    pub fn benchmarks(self) -> [&'static str; 4] {
        match self {
            CaseStudy::AllFriendly => ["swim_00", "bwaves_06", "leslie3d_06", "soplex_06"],
            CaseStudy::AllUnfriendly => ["art_00", "galgel_00", "ammp_00", "milc_06"],
            CaseStudy::Mixed => ["omnetpp_06", "libquantum_06", "galgel_00", "GemsFDTD_06"],
        }
    }

    /// Experiment id used by the repro harness.
    pub fn id(self) -> &'static str {
        match self {
            CaseStudy::AllFriendly => "case1",
            CaseStudy::AllUnfriendly => "case2",
            CaseStudy::Mixed => "case3",
        }
    }
}

/// Runs one case study: returns (individual speedups, system metrics,
/// per-application traffic breakdown) — the paper's paired figures (10–15).
pub fn case_study(case: CaseStudy, exp: &ExpConfig) -> Vec<ExpTable> {
    let w = Workload::from_names(&case.benchmarks());
    let alone = alone_ipcs(&w, exp);
    let arms = standard_arms();
    let reports = parallel_map(arms.len(), |a| run_workload(&arms[a], &w, exp));

    let mut speedups = ExpTable::new(
        &format!("{}-is", case.id()),
        "Individual speedup over running alone",
        &case.benchmarks(),
    );
    let mut system = ExpTable::new(
        &format!("{}-sys", case.id()),
        "System performance and total traffic",
        &["WS", "HS", "UF", "traffic(lines)"],
    );
    let mut traffic = ExpTable::new(
        &format!("{}-traffic", case.id()),
        "Per-arm traffic breakdown (lines)",
        &["demand", "pref-useful", "pref-useless"],
    );
    for (a, arm) in arms.iter().enumerate() {
        let r = &reports[a];
        let ipcs: Vec<f64> = r.per_core.iter().map(|c| c.ipc()).collect();
        let is = metrics::individual_speedups(&ipcs, &alone);
        speedups.push(arm.label, is);
        system.push(
            arm.label,
            vec![
                metrics::weighted_speedup(&ipcs, &alone),
                metrics::harmonic_speedup(&ipcs, &alone),
                metrics::unfairness(&ipcs, &alone),
                r.traffic().total() as f64,
            ],
        );
        let tr = r.traffic();
        traffic.push(
            arm.label,
            vec![
                tr.demand as f64,
                tr.pref_useful as f64,
                tr.pref_useless as f64,
            ],
        );
    }
    vec![speedups, system, traffic]
}

/// Shared implementation for the N-core aggregate figures.
fn aggregate(
    id: &str,
    title: &str,
    cores: usize,
    count: usize,
    arms: &[PolicyArm],
    exp: &ExpConfig,
) -> ExpTable {
    let workloads = random_workloads(count, cores, exp.seed);
    let alone: Vec<Vec<f64>> = parallel_map(workloads.len(), |i| alone_ipcs(&workloads[i], exp));
    let mut t = ExpTable::new(id, title, &["WS", "HS", "UF", "traffic(lines)"]);
    for arm in arms {
        let o = average_over_workloads(arm, &workloads, &alone, exp);
        t.push(arm.label, vec![o.ws, o.hs, o.uf, o.traffic_total]);
    }
    t
}

/// Fig. 9: 2-core averages over the workload set.
pub fn fig9_2core(exp: &ExpConfig) -> ExpTable {
    aggregate(
        "fig9",
        "2-core average system performance and traffic",
        2,
        exp.workloads_2core,
        &standard_arms(),
        exp,
    )
}

/// Fig. 16: 4-core averages.
pub fn fig16_4core(exp: &ExpConfig) -> ExpTable {
    aggregate(
        "fig16",
        "4-core average system performance and traffic",
        4,
        exp.workloads_4core,
        &standard_arms(),
        exp,
    )
}

/// Fig. 17: 8-core averages.
pub fn fig17_8core(exp: &ExpConfig) -> ExpTable {
    aggregate(
        "fig17",
        "8-core average system performance and traffic",
        8,
        exp.workloads_8core,
        &standard_arms(),
        exp,
    )
}

fn ranking_arms() -> Vec<PolicyArm> {
    vec![
        PolicyArm {
            label: "demand-first",
            build: |n| SimConfig::new(n, SchedulingPolicy::DemandFirst),
        },
        PolicyArm {
            label: "PADC",
            build: |n| SimConfig::new(n, SchedulingPolicy::Padc),
        },
        PolicyArm {
            label: "PADC-rank",
            build: |n| SimConfig::new(n, SchedulingPolicy::PadcRank),
        },
    ]
}

/// Fig. 19: PADC with shortest-job-first ranking, 4-core.
pub fn fig19_ranking_4core(exp: &ExpConfig) -> ExpTable {
    aggregate(
        "fig19",
        "PADC with request ranking, 4-core (WS/HS/UF/traffic)",
        4,
        exp.workloads_4core,
        &ranking_arms(),
        exp,
    )
}

/// Fig. 20: PADC with ranking, 8-core.
pub fn fig20_ranking_8core(exp: &ExpConfig) -> ExpTable {
    aggregate(
        "fig20",
        "PADC with request ranking, 8-core (WS/HS/UF/traffic)",
        8,
        exp.workloads_8core,
        &ranking_arms(),
        exp,
    )
}

fn dual_controller_arms() -> Vec<PolicyArm> {
    fn with_two_channels(mut cfg: SimConfig) -> SimConfig {
        cfg.dram.channels = 2;
        cfg
    }
    vec![
        PolicyArm {
            label: "no-pref",
            build: |n| {
                with_two_channels(
                    SimConfig::new(n, SchedulingPolicy::DemandFirst).without_prefetching(),
                )
            },
        },
        PolicyArm {
            label: "demand-first",
            build: |n| with_two_channels(SimConfig::new(n, SchedulingPolicy::DemandFirst)),
        },
        PolicyArm {
            label: "demand-pref-equal",
            build: |n| with_two_channels(SimConfig::new(n, SchedulingPolicy::DemandPrefetchEqual)),
        },
        PolicyArm {
            label: "aps-only",
            build: |n| with_two_channels(SimConfig::new(n, SchedulingPolicy::ApsOnly)),
        },
        PolicyArm {
            label: "aps-apd (PADC)",
            build: |n| with_two_channels(SimConfig::new(n, SchedulingPolicy::Padc)),
        },
    ]
}

/// Fig. 21: dual memory controllers, 4-core.
pub fn fig21_dual_controller_4core(exp: &ExpConfig) -> ExpTable {
    aggregate(
        "fig21",
        "Dual memory controllers, 4-core",
        4,
        exp.workloads_4core,
        &dual_controller_arms(),
        exp,
    )
}

/// Fig. 22: dual memory controllers, 8-core.
pub fn fig22_dual_controller_8core(exp: &ExpConfig) -> ExpTable {
    aggregate(
        "fig22",
        "Dual memory controllers, 8-core",
        8,
        exp.workloads_8core,
        &dual_controller_arms(),
        exp,
    )
}

fn shared_l2_arms() -> Vec<PolicyArm> {
    fn shared(mut cfg: SimConfig) -> SimConfig {
        cfg.shared_l2 = true;
        cfg
    }
    vec![
        PolicyArm {
            label: "no-pref",
            build: |n| {
                shared(SimConfig::new(n, SchedulingPolicy::DemandFirst).without_prefetching())
            },
        },
        PolicyArm {
            label: "demand-first",
            build: |n| shared(SimConfig::new(n, SchedulingPolicy::DemandFirst)),
        },
        PolicyArm {
            label: "demand-pref-equal",
            build: |n| shared(SimConfig::new(n, SchedulingPolicy::DemandPrefetchEqual)),
        },
        PolicyArm {
            label: "aps-only",
            build: |n| shared(SimConfig::new(n, SchedulingPolicy::ApsOnly)),
        },
        PolicyArm {
            label: "aps-apd (PADC)",
            build: |n| shared(SimConfig::new(n, SchedulingPolicy::Padc)),
        },
    ]
}

/// Fig. 26: shared last-level cache, 4-core.
pub fn fig26_shared_l2_4core(exp: &ExpConfig) -> ExpTable {
    aggregate(
        "fig26",
        "Shared L2 (2MB/16-way), 4-core",
        4,
        exp.workloads_4core,
        &shared_l2_arms(),
        exp,
    )
}

/// Fig. 27: shared last-level cache, 8-core.
pub fn fig27_shared_l2_8core(exp: &ExpConfig) -> ExpTable {
    aggregate(
        "fig27",
        "Shared L2 (4MB/32-way), 8-core",
        8,
        exp.workloads_8core,
        &shared_l2_arms(),
        exp,
    )
}

/// Table 8: effect of urgent-request prioritization on the mixed case
/// study — individual speedups, UF, WS, HS for APS/PADC with and without
/// urgency.
pub fn tab8_urgency(exp: &ExpConfig) -> ExpTable {
    fn no_urgency(mut cfg: SimConfig) -> SimConfig {
        cfg.controller.urgency = false;
        cfg
    }
    let arms = [
        PolicyArm {
            label: "demand-first",
            build: |n| SimConfig::new(n, SchedulingPolicy::DemandFirst),
        },
        PolicyArm {
            label: "aps-no-urgent",
            build: |n| no_urgency(SimConfig::new(n, SchedulingPolicy::ApsOnly)),
        },
        PolicyArm {
            label: "aps",
            build: |n| SimConfig::new(n, SchedulingPolicy::ApsOnly),
        },
        PolicyArm {
            label: "aps-apd-no-urgent",
            build: |n| no_urgency(SimConfig::new(n, SchedulingPolicy::Padc)),
        },
        PolicyArm {
            label: "aps-apd (PADC)",
            build: |n| SimConfig::new(n, SchedulingPolicy::Padc),
        },
    ];
    let case = CaseStudy::Mixed;
    let w = Workload::from_names(&case.benchmarks());
    let alone = alone_ipcs(&w, exp);
    let reports = parallel_map(arms.len(), |a| run_workload(&arms[a], &w, exp));
    let mut t = ExpTable::new(
        "tab8",
        "Effect of prioritizing urgent requests (mixed 4-core workload)",
        &[
            "IS(omnetpp)",
            "IS(libquantum)",
            "IS(galgel)",
            "IS(GemsFDTD)",
            "UF",
            "WS",
            "HS",
        ],
    );
    for (a, arm) in arms.iter().enumerate() {
        let ipcs: Vec<f64> = reports[a].per_core.iter().map(|c| c.ipc()).collect();
        let mut row = metrics::individual_speedups(&ipcs, &alone);
        row.push(metrics::unfairness(&ipcs, &alone));
        row.push(metrics::weighted_speedup(&ipcs, &alone));
        row.push(metrics::harmonic_speedup(&ipcs, &alone));
        t.push(arm.label, row);
    }
    t
}

fn identical_apps(id: &str, title: &str, bench: &str, exp: &ExpConfig) -> ExpTable {
    let w = Workload::from_names(&[bench; 4]);
    let alone = alone_ipcs(&w, exp);
    let arms = standard_arms();
    let reports = parallel_map(arms.len(), |a| run_workload(&arms[a], &w, exp));
    let mut t = ExpTable::new(id, title, &["IS0", "IS1", "IS2", "IS3", "WS", "HS", "UF"]);
    for (a, arm) in arms.iter().enumerate() {
        let ipcs: Vec<f64> = reports[a].per_core.iter().map(|c| c.ipc()).collect();
        let mut row = metrics::individual_speedups(&ipcs, &alone);
        row.push(metrics::weighted_speedup(&ipcs, &alone));
        row.push(metrics::harmonic_speedup(&ipcs, &alone));
        row.push(metrics::unfairness(&ipcs, &alone));
        t.push(arm.label, row);
    }
    t
}

/// Table 9: four copies of libquantum on the 4-core system.
pub fn tab9_identical_libquantum(exp: &ExpConfig) -> ExpTable {
    identical_apps(
        "tab9",
        "Four identical prefetch-friendly applications (libquantum x4)",
        "libquantum_06",
        exp,
    )
}

/// Table 10: four copies of milc on the 4-core system.
pub fn tab10_identical_milc(exp: &ExpConfig) -> ExpTable {
    identical_apps(
        "tab10",
        "Four identical prefetch-unfriendly applications (milc x4)",
        "milc_06",
        exp,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_produces_three_tables() {
        let tables = case_study(CaseStudy::Mixed, &ExpConfig::smoke());
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].rows.len(), 5);
        assert!(tables[1].get("aps-apd (PADC)", "WS").unwrap() > 0.0);
    }

    #[test]
    fn identical_apps_have_similar_speedups_under_padc() {
        let t = tab9_identical_libquantum(&ExpConfig::smoke());
        let padc: Vec<f64> = (0..4)
            .map(|i| t.get("aps-apd (PADC)", &format!("IS{i}")).unwrap())
            .collect();
        let max = padc.iter().cloned().fold(f64::MIN, f64::max);
        let min = padc.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 1.6, "identical apps should progress evenly");
    }

    #[test]
    fn two_core_aggregate_runs_at_smoke_scale() {
        let t = fig9_2core(&ExpConfig::smoke());
        assert_eq!(t.rows.len(), 5);
        assert!(t.get("demand-first", "WS").unwrap() > 0.0);
    }
}
