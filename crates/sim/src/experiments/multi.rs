//! Multi-core experiments: case studies (§6.3.1–6.3.5), system-size
//! aggregates (Figs. 9, 16, 17), ranking (Figs. 19, 20), dual controllers
//! (Figs. 21, 22), and shared last-level caches (Figs. 26, 27).
//!
//! Every experiment here is a grid of independent simulations, so all of
//! them use the plan/execute/reduce contract: `plan` enumerates one
//! [`SimUnit`] per (workload, policy-arm) pair plus the deduplicated
//! `IPC_alone` normalization units, and `reduce` folds the reports into
//! the paper's tables. The public per-figure functions execute the same
//! plan inline (or on the shared pool when called under the harness).

use padc_core::SchedulingPolicy;
use padc_workloads::{random_workloads, Workload};

use crate::{metrics, SimConfig};

use super::infra::{
    average_outcomes, plan_alone_units, standard_arms, ExecMode, ExpConfig, ExpKind, ExpTable,
    PolicyArm, SimUnit, UnitKey, UnitResult, UnitResults, WorkloadOutcome,
};

/// The paper's three 4-core case studies (§6.3.1–6.3.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CaseStudy {
    /// Case I: four prefetch-friendly applications.
    AllFriendly,
    /// Case II: four prefetch-unfriendly applications.
    AllUnfriendly,
    /// Case III: two friendly + two unfriendly.
    Mixed,
}

impl CaseStudy {
    /// The benchmark mix (matching the paper's figures).
    pub fn benchmarks(self) -> [&'static str; 4] {
        match self {
            CaseStudy::AllFriendly => ["swim_00", "bwaves_06", "leslie3d_06", "soplex_06"],
            CaseStudy::AllUnfriendly => ["art_00", "galgel_00", "ammp_00", "milc_06"],
            CaseStudy::Mixed => ["omnetpp_06", "libquantum_06", "galgel_00", "GemsFDTD_06"],
        }
    }

    /// Experiment id used by the repro harness.
    pub fn id(self) -> &'static str {
        match self {
            CaseStudy::AllFriendly => "case1",
            CaseStudy::AllUnfriendly => "case2",
            CaseStudy::Mixed => "case3",
        }
    }
}

/// Plans one workload under each arm, after its alone-normalization units.
fn single_workload_plan(w: &Workload, arms: &[PolicyArm], exp: &ExpConfig) -> Vec<SimUnit> {
    let mut units = plan_alone_units(std::slice::from_ref(w), exp);
    for arm in arms {
        units.push(SimUnit::workload(arm, "", w, exp));
    }
    units
}

fn case_plan(case: CaseStudy, exp: &ExpConfig) -> Vec<SimUnit> {
    let w = Workload::from_names(&case.benchmarks());
    single_workload_plan(&w, &standard_arms(), exp)
}

fn case_reduce(case: CaseStudy, exp: &ExpConfig, results: &[UnitResult]) -> Vec<ExpTable> {
    let w = Workload::from_names(&case.benchmarks());
    let idx = UnitResults::new(results);
    let alone = idx.alone_ipcs(&w, exp);
    let arms = standard_arms();

    let mut speedups = ExpTable::new(
        &format!("{}-is", case.id()),
        "Individual speedup over running alone",
        &case.benchmarks(),
    );
    let mut system = ExpTable::new(
        &format!("{}-sys", case.id()),
        "System performance and total traffic",
        &["WS", "HS", "UF", "traffic(lines)"],
    );
    let mut traffic = ExpTable::new(
        &format!("{}-traffic", case.id()),
        "Per-arm traffic breakdown (lines)",
        &["demand", "pref-useful", "pref-useless"],
    );
    for arm in &arms {
        let r = idx.get(&UnitKey::workload(arm.label, "", &w, exp));
        let ipcs: Vec<f64> = r.per_core.iter().map(|c| c.ipc()).collect();
        let is = metrics::individual_speedups(&ipcs, &alone);
        speedups.push(arm.label, is);
        system.push(
            arm.label,
            vec![
                metrics::weighted_speedup(&ipcs, &alone),
                metrics::harmonic_speedup(&ipcs, &alone),
                metrics::unfairness(&ipcs, &alone),
                r.traffic().total() as f64,
            ],
        );
        let tr = r.traffic();
        traffic.push(
            arm.label,
            vec![
                tr.demand as f64,
                tr.pref_useful as f64,
                tr.pref_useless as f64,
            ],
        );
    }
    vec![speedups, system, traffic]
}

/// Runs one case study: returns (individual speedups, system metrics,
/// per-application traffic breakdown) — the paper's paired figures (10–15).
pub fn case_study(case: CaseStudy, exp: &ExpConfig) -> Vec<ExpTable> {
    case_kind(case).tables(exp, ExecMode::Planned)
}

/// Plan/reduce kind for one case study.
pub(crate) fn case_kind(case: CaseStudy) -> ExpKind {
    ExpKind::planned(
        move |exp| case_plan(case, exp),
        move |exp, results| case_reduce(case, exp, results),
    )
}

/// Shared shape of the N-core aggregate figures: a workload-count knob, a
/// core count, and an arm list, reduced to per-arm WS/HS/UF/traffic means.
#[derive(Clone, Copy)]
struct AggSpec {
    id: &'static str,
    title: &'static str,
    cores: usize,
    count: fn(&ExpConfig) -> usize,
    arms: fn() -> Vec<PolicyArm>,
}

impl AggSpec {
    fn workloads(&self, exp: &ExpConfig) -> Vec<Workload> {
        random_workloads((self.count)(exp), self.cores, exp.seed)
    }

    fn plan(&self, exp: &ExpConfig) -> Vec<SimUnit> {
        let workloads = self.workloads(exp);
        let mut units = plan_alone_units(&workloads, exp);
        for arm in (self.arms)() {
            for w in &workloads {
                units.push(SimUnit::workload(&arm, "", w, exp));
            }
        }
        units
    }

    fn reduce(&self, exp: &ExpConfig, results: &[UnitResult]) -> ExpTable {
        let workloads = self.workloads(exp);
        let idx = UnitResults::new(results);
        let alone: Vec<Vec<f64>> = workloads.iter().map(|w| idx.alone_ipcs(w, exp)).collect();
        let mut t = ExpTable::new(self.id, self.title, &["WS", "HS", "UF", "traffic(lines)"]);
        for arm in (self.arms)() {
            let outcomes: Vec<WorkloadOutcome> = workloads
                .iter()
                .enumerate()
                .map(|(i, w)| {
                    let r = idx.get(&UnitKey::workload(arm.label, "", w, exp));
                    WorkloadOutcome::from_report(r, &alone[i])
                })
                .collect();
            let o = average_outcomes(&outcomes);
            t.push(arm.label, vec![o.ws, o.hs, o.uf, o.traffic_total]);
        }
        t
    }

    fn kind(self) -> ExpKind {
        ExpKind::planned(
            move |exp| self.plan(exp),
            move |exp, results| vec![self.reduce(exp, results)],
        )
    }

    fn table(self, exp: &ExpConfig) -> ExpTable {
        let units = self.plan(exp);
        let results = super::infra::execute_units(&units, ExecMode::Planned);
        self.reduce(exp, &results)
    }
}

fn fig9_spec() -> AggSpec {
    AggSpec {
        id: "fig9",
        title: "2-core average system performance and traffic",
        cores: 2,
        count: |e| e.workloads_2core,
        arms: standard_arms,
    }
}

/// Fig. 9: 2-core averages over the workload set.
pub fn fig9_2core(exp: &ExpConfig) -> ExpTable {
    fig9_spec().table(exp)
}

pub(crate) fn fig9_kind() -> ExpKind {
    fig9_spec().kind()
}

fn fig16_spec() -> AggSpec {
    AggSpec {
        id: "fig16",
        title: "4-core average system performance and traffic",
        cores: 4,
        count: |e| e.workloads_4core,
        arms: standard_arms,
    }
}

/// Fig. 16: 4-core averages.
pub fn fig16_4core(exp: &ExpConfig) -> ExpTable {
    fig16_spec().table(exp)
}

pub(crate) fn fig16_kind() -> ExpKind {
    fig16_spec().kind()
}

fn fig17_spec() -> AggSpec {
    AggSpec {
        id: "fig17",
        title: "8-core average system performance and traffic",
        cores: 8,
        count: |e| e.workloads_8core,
        arms: standard_arms,
    }
}

/// Fig. 17: 8-core averages.
pub fn fig17_8core(exp: &ExpConfig) -> ExpTable {
    fig17_spec().table(exp)
}

pub(crate) fn fig17_kind() -> ExpKind {
    fig17_spec().kind()
}

fn ranking_arms() -> Vec<PolicyArm> {
    vec![
        PolicyArm::new("demand-first", |n| {
            SimConfig::new(n, SchedulingPolicy::DemandFirst)
        }),
        PolicyArm::new("PADC", |n| SimConfig::new(n, SchedulingPolicy::Padc)),
        PolicyArm::new("PADC-rank", |n| {
            SimConfig::new(n, SchedulingPolicy::PadcRank)
        }),
    ]
}

fn fig19_spec() -> AggSpec {
    AggSpec {
        id: "fig19",
        title: "PADC with request ranking, 4-core (WS/HS/UF/traffic)",
        cores: 4,
        count: |e| e.workloads_4core,
        arms: ranking_arms,
    }
}

/// Fig. 19: PADC with shortest-job-first ranking, 4-core.
pub fn fig19_ranking_4core(exp: &ExpConfig) -> ExpTable {
    fig19_spec().table(exp)
}

pub(crate) fn fig19_kind() -> ExpKind {
    fig19_spec().kind()
}

fn fig20_spec() -> AggSpec {
    AggSpec {
        id: "fig20",
        title: "PADC with request ranking, 8-core (WS/HS/UF/traffic)",
        cores: 8,
        count: |e| e.workloads_8core,
        arms: ranking_arms,
    }
}

/// Fig. 20: PADC with ranking, 8-core.
pub fn fig20_ranking_8core(exp: &ExpConfig) -> ExpTable {
    fig20_spec().table(exp)
}

pub(crate) fn fig20_kind() -> ExpKind {
    fig20_spec().kind()
}

fn dual_controller_arms() -> Vec<PolicyArm> {
    standard_arms()
        .into_iter()
        .map(|arm| arm.mutated(|cfg| cfg.dram.channels = 2))
        .collect()
}

fn fig21_spec() -> AggSpec {
    AggSpec {
        id: "fig21",
        title: "Dual memory controllers, 4-core",
        cores: 4,
        count: |e| e.workloads_4core,
        arms: dual_controller_arms,
    }
}

/// Fig. 21: dual memory controllers, 4-core.
pub fn fig21_dual_controller_4core(exp: &ExpConfig) -> ExpTable {
    fig21_spec().table(exp)
}

pub(crate) fn fig21_kind() -> ExpKind {
    fig21_spec().kind()
}

fn fig22_spec() -> AggSpec {
    AggSpec {
        id: "fig22",
        title: "Dual memory controllers, 8-core",
        cores: 8,
        count: |e| e.workloads_8core,
        arms: dual_controller_arms,
    }
}

/// Fig. 22: dual memory controllers, 8-core.
pub fn fig22_dual_controller_8core(exp: &ExpConfig) -> ExpTable {
    fig22_spec().table(exp)
}

pub(crate) fn fig22_kind() -> ExpKind {
    fig22_spec().kind()
}

fn shared_l2_arms() -> Vec<PolicyArm> {
    standard_arms()
        .into_iter()
        .map(|arm| arm.mutated(|cfg| cfg.shared_l2 = true))
        .collect()
}

fn fig26_spec() -> AggSpec {
    AggSpec {
        id: "fig26",
        title: "Shared L2 (2MB/16-way), 4-core",
        cores: 4,
        count: |e| e.workloads_4core,
        arms: shared_l2_arms,
    }
}

/// Fig. 26: shared last-level cache, 4-core.
pub fn fig26_shared_l2_4core(exp: &ExpConfig) -> ExpTable {
    fig26_spec().table(exp)
}

pub(crate) fn fig26_kind() -> ExpKind {
    fig26_spec().kind()
}

fn fig27_spec() -> AggSpec {
    AggSpec {
        id: "fig27",
        title: "Shared L2 (4MB/32-way), 8-core",
        cores: 8,
        count: |e| e.workloads_8core,
        arms: shared_l2_arms,
    }
}

/// Fig. 27: shared last-level cache, 8-core.
pub fn fig27_shared_l2_8core(exp: &ExpConfig) -> ExpTable {
    fig27_spec().table(exp)
}

pub(crate) fn fig27_kind() -> ExpKind {
    fig27_spec().kind()
}

fn tab8_arms() -> Vec<PolicyArm> {
    fn no_urgency(mut cfg: SimConfig) -> SimConfig {
        cfg.controller.urgency = false;
        cfg
    }
    vec![
        PolicyArm::new("demand-first", |n| {
            SimConfig::new(n, SchedulingPolicy::DemandFirst)
        }),
        PolicyArm::new("aps-no-urgent", |n| {
            no_urgency(SimConfig::new(n, SchedulingPolicy::ApsOnly))
        }),
        PolicyArm::new("aps", |n| SimConfig::new(n, SchedulingPolicy::ApsOnly)),
        PolicyArm::new("aps-apd-no-urgent", |n| {
            no_urgency(SimConfig::new(n, SchedulingPolicy::Padc))
        }),
        PolicyArm::new("aps-apd (PADC)", |n| {
            SimConfig::new(n, SchedulingPolicy::Padc)
        }),
    ]
}

fn tab8_plan(exp: &ExpConfig) -> Vec<SimUnit> {
    let w = Workload::from_names(&CaseStudy::Mixed.benchmarks());
    single_workload_plan(&w, &tab8_arms(), exp)
}

fn tab8_reduce(exp: &ExpConfig, results: &[UnitResult]) -> ExpTable {
    let w = Workload::from_names(&CaseStudy::Mixed.benchmarks());
    let idx = UnitResults::new(results);
    let alone = idx.alone_ipcs(&w, exp);
    let mut t = ExpTable::new(
        "tab8",
        "Effect of prioritizing urgent requests (mixed 4-core workload)",
        &[
            "IS(omnetpp)",
            "IS(libquantum)",
            "IS(galgel)",
            "IS(GemsFDTD)",
            "UF",
            "WS",
            "HS",
        ],
    );
    for arm in &tab8_arms() {
        let r = idx.get(&UnitKey::workload(arm.label, "", &w, exp));
        let ipcs: Vec<f64> = r.per_core.iter().map(|c| c.ipc()).collect();
        let mut row = metrics::individual_speedups(&ipcs, &alone);
        row.push(metrics::unfairness(&ipcs, &alone));
        row.push(metrics::weighted_speedup(&ipcs, &alone));
        row.push(metrics::harmonic_speedup(&ipcs, &alone));
        t.push(arm.label, row);
    }
    t
}

/// Table 8: effect of urgent-request prioritization on the mixed case
/// study — individual speedups, UF, WS, HS for APS/PADC with and without
/// urgency.
pub fn tab8_urgency(exp: &ExpConfig) -> ExpTable {
    tab8_kind().tables(exp, ExecMode::Planned).remove(0)
}

pub(crate) fn tab8_kind() -> ExpKind {
    ExpKind::planned(tab8_plan, |exp, results| vec![tab8_reduce(exp, results)])
}

fn identical_plan(bench: &str, exp: &ExpConfig) -> Vec<SimUnit> {
    let w = Workload::from_names(&[bench; 4]);
    single_workload_plan(&w, &standard_arms(), exp)
}

fn identical_reduce(
    id: &str,
    title: &str,
    bench: &str,
    exp: &ExpConfig,
    results: &[UnitResult],
) -> ExpTable {
    let w = Workload::from_names(&[bench; 4]);
    let idx = UnitResults::new(results);
    let alone = idx.alone_ipcs(&w, exp);
    let mut t = ExpTable::new(id, title, &["IS0", "IS1", "IS2", "IS3", "WS", "HS", "UF"]);
    for arm in &standard_arms() {
        let r = idx.get(&UnitKey::workload(arm.label, "", &w, exp));
        let ipcs: Vec<f64> = r.per_core.iter().map(|c| c.ipc()).collect();
        let mut row = metrics::individual_speedups(&ipcs, &alone);
        row.push(metrics::weighted_speedup(&ipcs, &alone));
        row.push(metrics::harmonic_speedup(&ipcs, &alone));
        row.push(metrics::unfairness(&ipcs, &alone));
        t.push(arm.label, row);
    }
    t
}

fn identical_kind(id: &'static str, title: &'static str, bench: &'static str) -> ExpKind {
    ExpKind::planned(
        move |exp| identical_plan(bench, exp),
        move |exp, results| vec![identical_reduce(id, title, bench, exp, results)],
    )
}

/// Table 9: four copies of libquantum on the 4-core system.
pub fn tab9_identical_libquantum(exp: &ExpConfig) -> ExpTable {
    tab9_kind().tables(exp, ExecMode::Planned).remove(0)
}

pub(crate) fn tab9_kind() -> ExpKind {
    identical_kind(
        "tab9",
        "Four identical prefetch-friendly applications (libquantum x4)",
        "libquantum_06",
    )
}

/// Table 10: four copies of milc on the 4-core system.
pub fn tab10_identical_milc(exp: &ExpConfig) -> ExpTable {
    tab10_kind().tables(exp, ExecMode::Planned).remove(0)
}

pub(crate) fn tab10_kind() -> ExpKind {
    identical_kind(
        "tab10",
        "Four identical prefetch-unfriendly applications (milc x4)",
        "milc_06",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn case_study_produces_three_tables() {
        let tables = case_study(CaseStudy::Mixed, &ExpConfig::at(Scale::Smoke));
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].rows.len(), 5);
        assert!(tables[1].get("aps-apd (PADC)", "WS").unwrap() > 0.0);
    }

    #[test]
    fn identical_apps_have_similar_speedups_under_padc() {
        let t = tab9_identical_libquantum(&ExpConfig::at(Scale::Smoke));
        let padc: Vec<f64> = (0..4)
            .map(|i| t.get("aps-apd (PADC)", &format!("IS{i}")).unwrap())
            .collect();
        let max = padc.iter().cloned().fold(f64::MIN, f64::max);
        let min = padc.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 1.6, "identical apps should progress evenly");
    }

    #[test]
    fn two_core_aggregate_runs_at_smoke_scale() {
        let t = fig9_2core(&ExpConfig::at(Scale::Smoke));
        assert_eq!(t.rows.len(), 5);
        assert!(t.get("demand-first", "WS").unwrap() > 0.0);
    }

    #[test]
    fn aggregate_plans_one_unit_per_workload_arm_pair_plus_alone() {
        let exp = ExpConfig::at(Scale::Smoke);
        let spec = fig16_spec();
        let units = spec.plan(&exp);
        let workloads = spec.workloads(&exp);
        let arm_count = (spec.arms)().len();
        let distinct: std::collections::HashSet<String> = workloads
            .iter()
            .flat_map(|w| w.benchmarks.iter().map(|b| b.name.clone()))
            .collect();
        assert_eq!(
            units.len(),
            distinct.len() + arm_count * workloads.len(),
            "plan = dedup'd alone units + one unit per (workload, arm)"
        );
        // Keys are unique — the reduce index must be able to address every
        // unit unambiguously.
        let keys: std::collections::HashSet<_> = units.iter().map(|u| u.key.clone()).collect();
        assert_eq!(keys.len(), units.len());
    }

    #[test]
    fn planned_fig16_matches_legacy_monolithic_computation() {
        use super::super::infra::{alone_ipcs, run_workload};
        let exp = ExpConfig::at(Scale::Smoke);
        let spec = fig16_spec();
        // Transcription of the pre-redesign monolithic `aggregate` body:
        // sequential alone normalization, then per-arm workload runs.
        let workloads = spec.workloads(&exp);
        let alone: Vec<Vec<f64>> = workloads.iter().map(|w| alone_ipcs(w, &exp)).collect();
        let mut legacy = ExpTable::new(spec.id, spec.title, &["WS", "HS", "UF", "traffic(lines)"]);
        for arm in (spec.arms)() {
            let outcomes: Vec<WorkloadOutcome> = workloads
                .iter()
                .enumerate()
                .map(|(i, w)| {
                    let r = run_workload(&arm, w, &exp);
                    WorkloadOutcome::from_report(&r, &alone[i])
                })
                .collect();
            let o = average_outcomes(&outcomes);
            legacy.push(arm.label, vec![o.ws, o.hs, o.uf, o.traffic_total]);
        }
        let planned = fig16_kind().tables(&exp, ExecMode::Planned).remove(0);
        assert_eq!(
            serde_json::to_string(&planned).unwrap(),
            serde_json::to_string(&legacy).unwrap(),
            "plan/execute/reduce must reproduce the legacy monolithic tables byte-for-byte"
        );
    }

    #[test]
    fn planned_fig16_matches_monolithic_execution() {
        let exp = ExpConfig::at(Scale::Smoke);
        let planned = fig16_kind().tables(&exp, ExecMode::Planned);
        let monolithic = fig16_kind().tables(&exp, ExecMode::Monolithic);
        let a = serde_json::to_string(&planned).unwrap();
        let b = serde_json::to_string(&monolithic).unwrap();
        assert_eq!(
            a, b,
            "planned and monolithic paths must agree byte-for-byte"
        );
    }
}
