use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use padc_core::SchedulingPolicy;
use padc_workloads::{BenchProfile, Workload};
use serde::{Deserialize, Serialize};

use crate::{metrics, Report, SimConfig, System};

/// Preset experiment scales, from paper-scale runs down to test smoke.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Scale {
    /// Paper-scale workload counts at a laptop-friendly instruction budget.
    Full,
    /// Reduced scale for quick looks.
    Quick,
    /// Tiny scale for the test suite.
    Smoke,
}

/// Scale knobs shared by all experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ExpConfig {
    /// Instructions each core retires before its stats freeze
    /// (multi-core runs).
    pub instructions: u64,
    /// Instructions for single-core runs (cheaper, so they run longer —
    /// long enough for the larger single-core L2 to wrap and exercise
    /// pollution/writeback effects).
    pub instructions_single: u64,
    /// Multiprogrammed workloads per multi-core aggregate (the paper uses
    /// 54 / 32 / 21 for 2 / 4 / 8 cores).
    pub workloads_2core: usize,
    /// 4-core workload count.
    pub workloads_4core: usize,
    /// 8-core workload count.
    pub workloads_8core: usize,
    /// Workload count for parameter sweeps (each sweep point re-runs the
    /// whole set, so sweeps use a smaller sample).
    pub workloads_sweep: usize,
    /// Workload-selection and trace seed.
    pub seed: u64,
}

impl ExpConfig {
    /// The configuration for a preset [`Scale`].
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Full => ExpConfig {
                instructions: 400_000,
                instructions_single: 800_000,
                workloads_2core: 32,
                workloads_4core: 24,
                workloads_8core: 12,
                workloads_sweep: 8,
                seed: 1,
            },
            Scale::Quick => ExpConfig {
                instructions: 120_000,
                instructions_single: 250_000,
                workloads_2core: 10,
                workloads_4core: 8,
                workloads_8core: 5,
                workloads_sweep: 4,
                seed: 1,
            },
            Scale::Smoke => ExpConfig {
                instructions: 25_000,
                instructions_single: 30_000,
                workloads_2core: 2,
                workloads_4core: 2,
                workloads_8core: 1,
                workloads_sweep: 1,
                seed: 1,
            },
        }
    }

    /// Returns the config with a different workload/trace seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a different multi-core instruction budget.
    /// The single-core budget is raised to at least the same value so
    /// `IPC_alone` runs never retire fewer instructions than the shared
    /// runs they normalize.
    pub fn with_instructions(mut self, instructions: u64) -> Self {
        self.instructions = instructions;
        self.instructions_single = self.instructions_single.max(instructions);
        self
    }
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self::at(Scale::Full)
    }
}

/// One result table: the rows/series of one paper figure or table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExpTable {
    /// Experiment id (e.g. `"fig6"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers (after the row label).
    pub columns: Vec<String>,
    /// Rows: label plus one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl ExpTable {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        ExpTable {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), values));
    }

    /// Looks up a cell by row label and column name.
    pub fn get(&self, row: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows
            .iter()
            .find(|(label, _)| label == row)
            .map(|(_, vals)| vals[col])
    }
}

impl ExpTable {
    /// Renders the table as RFC-4180-style CSV (label column first).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(&field(&self.id));
        for c in &self.columns {
            out.push(',');
            out.push_str(&field(c));
        }
        out.push('\n');
        for (label, vals) in &self.rows {
            out.push_str(&field(label));
            for v in vals {
                out.push(',');
                out.push_str(&format!("{v}"));
            }
            out.push('\n');
        }
        out
    }

    /// Renders one column as a labelled ASCII bar chart (the paper's bar
    /// figures, in a terminal).
    ///
    /// Returns `None` if the column does not exist or holds no positive
    /// values.
    pub fn to_bars(&self, column: &str, width: usize) -> Option<String> {
        let col = self.columns.iter().position(|c| c == column)?;
        let max = self
            .rows
            .iter()
            .map(|(_, v)| v[col])
            .fold(f64::NEG_INFINITY, f64::max);
        if max.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return None;
        }
        let label_w = self.rows.iter().map(|(l, _)| l.len()).max()?.max(4);
        let mut out = format!("{} — {} [{}]\n", self.id, self.title, column);
        for (label, vals) in &self.rows {
            let v = vals[col];
            let n = ((v / max) * width as f64).round().max(0.0) as usize;
            out.push_str(&format!(
                "{label:<label_w$} {:<width$} {v:.3}\n",
                "#".repeat(n)
            ));
        }
        Some(out)
    }
}

impl fmt::Display for ExpTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {}", self.id, self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(4))
            .max()
            .unwrap_or(4)
            .max(4);
        write!(f, "{:<label_w$}", "")?;
        for c in &self.columns {
            write!(f, " {:>14}", c)?;
        }
        writeln!(f)?;
        for (label, vals) in &self.rows {
            write!(f, "{label:<label_w$}")?;
            for v in vals {
                if v.abs() >= 1000.0 {
                    write!(f, " {:>14.0}", v)?;
                } else {
                    write!(f, " {:>14.3}", v)?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A named system variant evaluated in a figure: a label plus a
/// configuration recipe.
///
/// The recipe is a clonable closure, so sweep arms can capture their sweep
/// parameter (row-buffer size, L2 capacity, prefetcher kind, ...) instead
/// of hand-rolling one `fn` per point.
#[derive(Clone)]
pub struct PolicyArm {
    /// Bar label, matching the paper's legends.
    pub label: &'static str,
    build: Arc<dyn Fn(usize) -> SimConfig + Send + Sync>,
}

impl PolicyArm {
    /// Creates an arm from a label and a config recipe.
    pub fn new(
        label: &'static str,
        build: impl Fn(usize) -> SimConfig + Send + Sync + 'static,
    ) -> Self {
        PolicyArm {
            label,
            build: Arc::new(build),
        }
    }

    /// Builds the `SimConfig` for this arm given a core count.
    pub fn build(&self, cores: usize) -> SimConfig {
        (self.build)(cores)
    }

    /// Returns a new arm applying `mutate` on top of this arm's recipe —
    /// how sweep points wrap the standard arms with a captured parameter.
    pub fn mutated(&self, mutate: impl Fn(&mut SimConfig) + Send + Sync + 'static) -> Self {
        let base = self.build.clone();
        PolicyArm {
            label: self.label,
            build: Arc::new(move |n| {
                let mut cfg = base(n);
                mutate(&mut cfg);
                cfg
            }),
        }
    }
}

impl fmt::Debug for PolicyArm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PolicyArm({})", self.label)
    }
}

/// The paper's standard five-arm comparison (Figs. 6–17).
pub(crate) fn standard_arms() -> Vec<PolicyArm> {
    vec![
        PolicyArm::new("no-pref", |n| {
            SimConfig::new(n, SchedulingPolicy::DemandFirst).without_prefetching()
        }),
        PolicyArm::new("demand-first", |n| {
            SimConfig::new(n, SchedulingPolicy::DemandFirst)
        }),
        PolicyArm::new("demand-pref-equal", |n| {
            SimConfig::new(n, SchedulingPolicy::DemandPrefetchEqual)
        }),
        PolicyArm::new("aps-only", |n| SimConfig::new(n, SchedulingPolicy::ApsOnly)),
        PolicyArm::new("aps-apd (PADC)", |n| {
            SimConfig::new(n, SchedulingPolicy::Padc)
        }),
    ]
}

/// The canonical `IPC_alone` arm (§5.2): single-core, demand-first.
/// Labelled "demand-first" so the memo shares entries with the
/// demand-first arm of the single-core grids (identical configuration).
pub(crate) fn alone_arm() -> PolicyArm {
    PolicyArm::new("demand-first", |n| {
        SimConfig::new(n, SchedulingPolicy::DemandFirst)
    })
}

// ---------------------------------------------------------------------------
// The plan/execute/reduce contract.
// ---------------------------------------------------------------------------

/// Deterministic identity of one planned simulation.
///
/// Two units with equal keys are byte-for-byte the same simulation: the
/// arm label names a config recipe, `variant` disambiguates recipes that
/// reuse a label within one experiment (sweep points, open vs closed row),
/// and benchmarks/instructions/seed pin the inputs. Nothing else
/// (wall-clock, worker id, execution order) enters the key, which is what
/// makes planned execution safe to reorder, dedupe, and memoize.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct UnitKey {
    /// Policy-arm label (the paper legend).
    pub arm: String,
    /// Config variant within the experiment (`""` when the arm label
    /// already determines the config; e.g. `"row=2KB"` for sweep points).
    pub variant: String,
    /// Benchmark names in core order (one entry for alone runs).
    pub benchmarks: Vec<String>,
    /// Instruction budget per core.
    pub instructions: u64,
    /// Workload/trace seed.
    pub seed: u64,
}

impl UnitKey {
    /// Key of a multiprogrammed run of `w` under `arm`.
    pub fn workload(arm: &str, variant: &str, w: &Workload, exp: &ExpConfig) -> Self {
        UnitKey {
            arm: arm.to_string(),
            variant: variant.to_string(),
            benchmarks: w.benchmarks.iter().map(|b| b.name.clone()).collect(),
            instructions: exp.instructions,
            seed: exp.seed,
        }
    }

    /// Key of a single-core run of `bench` under `arm` (grid cells and
    /// `IPC_alone` normalization runs; note the single-core instruction
    /// budget).
    pub fn single(arm: &str, bench: &BenchProfile, exp: &ExpConfig) -> Self {
        UnitKey {
            arm: arm.to_string(),
            variant: "alone".to_string(),
            benchmarks: vec![bench.name.clone()],
            instructions: exp.instructions_single,
            seed: exp.seed,
        }
    }

    /// Key of the canonical §5.2 `IPC_alone` run of `bench`.
    pub fn alone(bench: &BenchProfile, exp: &ExpConfig) -> Self {
        Self::single(alone_arm().label, bench, exp)
    }
}

/// One planned simulation: a deterministic key plus the work recipe.
#[derive(Clone)]
pub struct SimUnit {
    /// The unit's deterministic identity.
    pub key: UnitKey,
    work: UnitWork,
}

#[derive(Clone)]
enum UnitWork {
    /// Multiprogrammed run: arm recipe applied to a workload.
    Workload { arm: PolicyArm, workload: Workload },
    /// Single-core run (memoized process-wide; see `run_single_at`).
    Single { arm: PolicyArm, bench: BenchProfile },
}

impl SimUnit {
    /// Plans a multiprogrammed run of `w` under `arm`.
    pub fn workload(arm: &PolicyArm, variant: &str, w: &Workload, exp: &ExpConfig) -> Self {
        SimUnit {
            key: UnitKey::workload(arm.label, variant, w, exp),
            work: UnitWork::Workload {
                arm: arm.clone(),
                workload: w.clone(),
            },
        }
    }

    /// Plans a single-core run of `bench` under `arm`.
    ///
    /// Single-core results memoize process-wide keyed by *(label, bench,
    /// instructions, seed)* — the label must determine the single-core
    /// config, so only pass arms whose recipe is label-stable (the
    /// standard arms and the canonical alone arm qualify; sweep-mutated
    /// arms must **not** be planned as single units).
    pub fn single(arm: &PolicyArm, bench: &BenchProfile, exp: &ExpConfig) -> Self {
        SimUnit {
            key: UnitKey::single(arm.label, bench, exp),
            work: UnitWork::Single {
                arm: arm.clone(),
                bench: bench.clone(),
            },
        }
    }

    /// Plans the canonical §5.2 `IPC_alone` run of `bench` (single-core,
    /// demand-first) used to normalize every multi-core metric.
    pub fn alone(bench: &BenchProfile, exp: &ExpConfig) -> Self {
        Self::single(&alone_arm(), bench, exp)
    }

    /// Runs the simulation this unit names. Deterministic: depends only on
    /// the key and the arm recipe.
    pub fn execute(&self) -> Report {
        match &self.work {
            UnitWork::Single { arm, bench } => {
                run_single_at(arm, bench, self.key.instructions, self.key.seed)
            }
            UnitWork::Workload { arm, workload } => {
                let mut cfg = arm.build(workload.cores());
                cfg.max_instructions = self.key.instructions;
                cfg.seed = self.key.seed;
                System::new(cfg, workload.benchmarks.clone()).run()
            }
        }
    }

    /// The unit's content-address document for the persistent store: the
    /// simulator fingerprint plus the **full** result-shaping inputs — the
    /// exact [`SimConfig`] [`execute`](Self::execute) would build and the
    /// benchmark profiles it would run, serialized to canonical JSON.
    ///
    /// Labels and variants are deliberately excluded: two arms that build
    /// identical configs share one entry (the same sharing the single-run
    /// memo exploits). Knobs proven observationally equivalent (the
    /// fast-forward mode) are also excluded — DESIGN.md §10 states the
    /// soundness rule and when
    /// [`RESULT_SCHEMA_VERSION`](super::RESULT_SCHEMA_VERSION) must be
    /// bumped instead.
    pub fn store_meta(&self) -> String {
        let (cfg, benches) = match &self.work {
            UnitWork::Single { arm, bench } => {
                let mut cfg = arm.build(1);
                cfg.max_instructions = self.key.instructions;
                cfg.seed = self.key.seed;
                (cfg, vec![bench.clone()])
            }
            UnitWork::Workload { arm, workload } => {
                let mut cfg = arm.build(workload.cores());
                cfg.max_instructions = self.key.instructions;
                cfg.seed = self.key.seed;
                (cfg, workload.benchmarks.clone())
            }
        };
        format!(
            "{{\"fingerprint\":{},\"config\":{},\"benchmarks\":{}}}",
            serde_json::to_string(&super::unit_cache::fingerprint()).expect("string serializes"),
            serde_json::to_string(&cfg).expect("config serializes"),
            serde_json::to_string(&benches).expect("profiles serialize"),
        )
    }
}

impl fmt::Debug for SimUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimUnit({:?})", self.key)
    }
}

/// The report of one executed [`SimUnit`].
#[derive(Clone, Debug)]
pub struct UnitResult {
    /// The unit's identity.
    pub key: UnitKey,
    /// The simulation report.
    pub report: Report,
}

/// How planned units execute.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExecMode {
    /// Units fan out onto the shared harness worker pool (inline when no
    /// pool is installed). The default.
    #[default]
    Planned,
    /// Units run inline on the calling thread, in plan order — the
    /// compatibility path the determinism gate byte-diffs against.
    Monolithic,
}

impl std::str::FromStr for ExecMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "planned" => Ok(ExecMode::Planned),
            "monolithic" => Ok(ExecMode::Monolithic),
            other => Err(format!(
                "unknown exec mode {other:?} (expected planned|monolithic)"
            )),
        }
    }
}

/// Executes every planned unit, returning results in plan order.
///
/// `Planned` mode schedules the units as first-class sub-jobs on the
/// shared `padc-harness` pool (so `--jobs N` load-balances across all
/// units of all experiments); `Monolithic` runs them inline. Both modes
/// produce identical results — units are independent simulations.
///
/// With a persistent store installed (or serve-mode coalescing on), units
/// first resolve through the content-addressed unit cache
/// (the `unit_cache` module): validated disk entries and in-flight
/// duplicates are never scheduled, so a fully warm run executes zero
/// simulations. Without it, this is exactly the legacy path.
pub fn execute_units(units: &[SimUnit], mode: ExecMode) -> Vec<UnitResult> {
    let reports: Vec<Report> = if super::unit_cache::active() {
        super::unit_cache::execute_cached(units, mode)
    } else {
        match mode {
            ExecMode::Planned => parallel_map(units.len(), |i| units[i].execute()),
            ExecMode::Monolithic => units.iter().map(|u| u.execute()).collect(),
        }
    };
    units
        .iter()
        .zip(reports)
        .map(|(u, report)| UnitResult {
            key: u.key.clone(),
            report,
        })
        .collect()
}

/// Key-indexed view over a slice of unit results, for `reduce` phases.
pub struct UnitResults<'a> {
    by_key: HashMap<&'a UnitKey, &'a Report>,
}

impl<'a> UnitResults<'a> {
    /// Indexes `results` by key.
    pub fn new(results: &'a [UnitResult]) -> Self {
        UnitResults {
            by_key: results.iter().map(|r| (&r.key, &r.report)).collect(),
        }
    }

    /// The report for `key`.
    ///
    /// # Panics
    ///
    /// Panics if the plan did not produce a unit with this key — a bug in
    /// the experiment's plan/reduce pairing, not a runtime condition.
    pub fn get(&self, key: &UnitKey) -> &'a Report {
        self.by_key
            .get(key)
            .unwrap_or_else(|| panic!("reduce requested unplanned unit {key:?}"))
    }

    /// `IPC_alone` of one benchmark (canonical §5.2 run).
    pub fn alone_ipc(&self, bench: &BenchProfile, exp: &ExpConfig) -> f64 {
        self.get(&UnitKey::alone(bench, exp)).per_core[0].ipc()
    }

    /// `IPC_alone` for each benchmark of a workload.
    pub fn alone_ipcs(&self, w: &Workload, exp: &ExpConfig) -> Vec<f64> {
        w.benchmarks
            .iter()
            .map(|b| self.alone_ipc(b, exp))
            .collect()
    }
}

/// Plans the deduplicated set of `IPC_alone` units for a workload set:
/// one unit per *distinct* benchmark, in first-appearance order. The
/// process-wide memo then dedupes further across experiments, so each
/// normalization run is computed exactly once per suite.
pub fn plan_alone_units(workloads: &[Workload], exp: &ExpConfig) -> Vec<SimUnit> {
    let mut seen = HashSet::new();
    let mut units = Vec::new();
    for w in workloads {
        for b in &w.benchmarks {
            if seen.insert(b.name.clone()) {
                units.push(SimUnit::alone(b, exp));
            }
        }
    }
    units
}

/// How an experiment executes: the legacy monolithic closure, or the
/// two-phase plan/reduce contract.
pub enum ExpKind {
    /// One opaque runner (non-grid experiments: fig2, fig4, cost, tab6).
    Monolithic(fn(&ExpConfig) -> Vec<ExpTable>),
    /// Plan independent simulation units, execute them on the shared
    /// pool, reduce the results into tables after a per-experiment unit
    /// barrier (so table bytes never depend on scheduling).
    Planned(PlannedExperiment),
}

/// Plan phase: enumerates an experiment's independent simulation units.
pub type PlanFn = Arc<dyn Fn(&ExpConfig) -> Vec<SimUnit> + Send + Sync>;

/// Reduce phase: folds unit results (in plan order) into tables.
pub type ReduceFn = Arc<dyn Fn(&ExpConfig, &[UnitResult]) -> Vec<ExpTable> + Send + Sync>;

/// The two phases of a planned experiment.
pub struct PlannedExperiment {
    /// Enumerates the experiment's independent simulation units.
    pub plan: PlanFn,
    /// Folds unit results (in plan order) into tables.
    pub reduce: ReduceFn,
}

impl ExpKind {
    /// Builds a planned kind from the two phases.
    pub fn planned(
        plan: impl Fn(&ExpConfig) -> Vec<SimUnit> + Send + Sync + 'static,
        reduce: impl Fn(&ExpConfig, &[UnitResult]) -> Vec<ExpTable> + Send + Sync + 'static,
    ) -> Self {
        ExpKind::Planned(PlannedExperiment {
            plan: Arc::new(plan),
            reduce: Arc::new(reduce),
        })
    }

    /// Runs the experiment: plan → execute (per `mode`) → reduce, or the
    /// monolithic closure.
    pub fn tables(&self, exp: &ExpConfig, mode: ExecMode) -> Vec<ExpTable> {
        match self {
            ExpKind::Monolithic(run) => run(exp),
            ExpKind::Planned(p) => {
                let units = (p.plan)(exp);
                let results = execute_units(&units, mode);
                (p.reduce)(exp, &results)
            }
        }
    }

    /// Whether this experiment uses the plan/execute/reduce contract.
    pub fn is_planned(&self) -> bool {
        matches!(self, ExpKind::Planned(_))
    }
}

// ---------------------------------------------------------------------------
// Single-run memo.
// ---------------------------------------------------------------------------

/// Process-wide memo of single-core runs: the same (arm, benchmark,
/// scale) tuple recurs across many experiments (the per-benchmark grids
/// of Figs. 6-8 / Tables 5 and 7, and every `IPC_alone` normalization),
/// and runs are deterministic, so each is computed once. Entries are
/// claim-based (`Arc<OnceLock>`): the first requester computes, any
/// concurrent requester for the same key blocks on that one computation
/// instead of duplicating it — "scheduled exactly once" across the suite.
type MemoKey = (String, String, u64, u64);
type MemoCell = Arc<OnceLock<Report>>;

fn single_run_memo() -> &'static Mutex<HashMap<MemoKey, MemoCell>> {
    static MEMO: OnceLock<Mutex<HashMap<MemoKey, MemoCell>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

static SINGLE_RUNS_REQUESTED: AtomicU64 = AtomicU64::new(0);
static SINGLE_RUNS_COMPUTED: AtomicU64 = AtomicU64::new(0);

/// Process-wide `(requested, computed)` counters of the single-run memo.
/// `computed` counts actual simulations; `requested - computed` is the
/// dedup win. Monotonic over the process lifetime.
pub fn single_run_stats() -> (u64, u64) {
    (
        SINGLE_RUNS_REQUESTED.load(Ordering::Relaxed),
        SINGLE_RUNS_COMPUTED.load(Ordering::Relaxed),
    )
}

/// Runs one benchmark alone on a single-core system under the arm's
/// configuration at an explicit (instructions, seed), memoized.
fn run_single_at(arm: &PolicyArm, bench: &BenchProfile, instructions: u64, seed: u64) -> Report {
    SINGLE_RUNS_REQUESTED.fetch_add(1, Ordering::Relaxed);
    let key = (
        arm.label.to_string(),
        bench.name.clone(),
        instructions,
        seed,
    );
    let cell = {
        let mut memo = single_run_memo().lock().expect("memo poisoned");
        memo.entry(key).or_default().clone()
    };
    cell.get_or_init(|| {
        SINGLE_RUNS_COMPUTED.fetch_add(1, Ordering::Relaxed);
        let mut cfg = arm.build(1);
        cfg.max_instructions = instructions;
        cfg.seed = seed;
        System::new(cfg, vec![bench.clone()]).run()
    })
    .clone()
}

/// Runs one benchmark alone on a single-core system under the arm's
/// configuration, returning its (memoized) report. Test-only since the
/// plan/execute/reduce redesign: production paths go through
/// [`SimUnit::execute`]; the legacy-transcription byte tests keep this as
/// the independent reference implementation.
#[cfg(test)]
pub(crate) fn run_single(arm: &PolicyArm, bench: &BenchProfile, exp: &ExpConfig) -> Report {
    run_single_at(arm, bench, exp.instructions_single, exp.seed)
}

/// Runs a multiprogrammed workload under the arm's configuration
/// (test-only reference path; see [`run_single`]).
#[cfg(test)]
pub(crate) fn run_workload(arm: &PolicyArm, w: &Workload, exp: &ExpConfig) -> Report {
    let mut cfg = arm.build(w.cores());
    cfg.max_instructions = exp.instructions;
    cfg.seed = exp.seed;
    System::new(cfg, w.benchmarks.clone()).run()
}

/// `IPC_alone` for each benchmark of a workload — measured on a single-core
/// system with the demand-first policy, as §5.2 specifies (test-only
/// reference path; see [`run_single`]).
#[cfg(test)]
pub(crate) fn alone_ipcs(w: &Workload, exp: &ExpConfig) -> Vec<f64> {
    let arm = alone_arm();
    w.benchmarks
        .iter()
        .map(|b| run_single(&arm, b, exp).per_core[0].ipc())
        .collect()
}

/// Aggregate outcome of one workload under one arm.
#[derive(Clone, Debug, Default)]
pub(crate) struct WorkloadOutcome {
    pub ws: f64,
    pub hs: f64,
    pub uf: f64,
    pub traffic_total: f64,
}

impl WorkloadOutcome {
    /// Computes the outcome of one report against its alone-IPC baseline.
    pub(crate) fn from_report(r: &Report, alone: &[f64]) -> Self {
        let ipcs: Vec<f64> = r.per_core.iter().map(|c| c.ipc()).collect();
        WorkloadOutcome {
            ws: metrics::weighted_speedup(&ipcs, alone),
            hs: metrics::harmonic_speedup(&ipcs, alone),
            uf: metrics::unfairness(&ipcs, alone),
            traffic_total: r.traffic().total() as f64,
        }
    }
}

/// Averages outcomes across workloads (UF clamped: it can be infinite if
/// a core starves completely).
pub(crate) fn average_outcomes(results: &[WorkloadOutcome]) -> WorkloadOutcome {
    let n = results.len().max(1) as f64;
    let mut acc = WorkloadOutcome::default();
    for r in results {
        acc.ws += r.ws / n;
        acc.hs += r.hs / n;
        acc.uf += r.uf.min(100.0) / n;
        acc.traffic_total += r.traffic_total / n;
    }
    acc
}

/// Deterministic fan-out map over `0..n`, in index order.
///
/// Under the suite harness this enqueues the units onto the shared
/// `padc-harness` worker pool (so `--jobs N` bounds *total* simulation
/// threads — this shim never spawns its own); outside the harness (unit
/// tests, direct library use) the units run inline on the calling thread.
pub(crate) fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    padc_harness::subjob_map(n, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trips_and_prints() {
        let mut t = ExpTable::new("figX", "demo", &["WS", "HS"]);
        t.push("demand-first", vec![1.0, 0.5]);
        t.push("PADC", vec![1.1, 0.6]);
        assert_eq!(t.get("PADC", "WS"), Some(1.1));
        assert_eq!(t.get("PADC", "missing"), None);
        assert_eq!(t.get("missing", "WS"), None);
        let s = t.to_string();
        assert!(s.contains("figX"));
        assert!(s.contains("demand-first"));
    }

    #[test]
    fn csv_rendering_escapes_and_lists_rows() {
        let mut t = ExpTable::new("figX", "demo", &["WS", "notes,weird"]);
        t.push("a,b", vec![1.5, 2.0]);
        let csv = t.to_csv();
        assert!(csv.starts_with("figX,WS,\"notes,weird\"\n"));
        assert!(csv.contains("\"a,b\",1.5,2"));
    }

    #[test]
    fn bar_rendering_scales_to_max() {
        let mut t = ExpTable::new("figX", "demo", &["WS"]);
        t.push("small", vec![1.0]);
        t.push("big", vec![2.0]);
        let bars = t.to_bars("WS", 10).expect("column exists");
        assert!(bars.contains("big"));
        let big_line = bars.lines().find(|l| l.starts_with("big")).unwrap();
        let small_line = bars.lines().find(|l| l.starts_with("small")).unwrap();
        let hashes = |l: &str| l.chars().filter(|c| *c == '#').count();
        assert_eq!(hashes(big_line), 10);
        assert_eq!(hashes(small_line), 5);
        assert!(t.to_bars("missing", 10).is_none());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        let mut t = ExpTable::new("x", "x", &["a", "b"]);
        t.push("r", vec![1.0]);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn standard_arms_match_paper_legend() {
        let arms = standard_arms();
        let labels: Vec<_> = arms.iter().map(|a| a.label).collect();
        assert_eq!(
            labels,
            vec![
                "no-pref",
                "demand-first",
                "demand-pref-equal",
                "aps-only",
                "aps-apd (PADC)"
            ]
        );
    }

    #[test]
    fn exp_config_scales_are_ordered() {
        let smoke = ExpConfig::at(Scale::Smoke);
        let quick = ExpConfig::at(Scale::Quick);
        let full = ExpConfig::at(Scale::Full);
        assert!(smoke.instructions < quick.instructions);
        assert!(quick.instructions <= full.instructions);
        assert!(full.workloads_4core >= 24);
        assert!(full.instructions_single >= full.instructions);
    }

    #[test]
    fn default_config_is_full_scale() {
        assert_eq!(ExpConfig::default(), ExpConfig::at(Scale::Full));
    }

    #[test]
    fn builder_setters_chain() {
        let cfg = ExpConfig::at(Scale::Smoke)
            .with_seed(7)
            .with_instructions(50_000);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.instructions, 50_000);
        // The single-core budget never drops below the multi-core budget.
        assert_eq!(cfg.instructions_single, 50_000);
        let cfg = ExpConfig::at(Scale::Full).with_instructions(100);
        assert_eq!(cfg.instructions_single, 800_000);
    }

    #[test]
    fn policy_arm_closures_capture_parameters() {
        let sizes = [2 * 1024u64, 128 * 1024];
        let arms: Vec<PolicyArm> = sizes
            .iter()
            .map(|&size| {
                PolicyArm::new("demand-first", move |n| {
                    let mut cfg = SimConfig::new(n, SchedulingPolicy::DemandFirst);
                    cfg.dram.row_bytes = size;
                    cfg
                })
            })
            .collect();
        assert_eq!(arms[0].build(4).dram.row_bytes, 2 * 1024);
        assert_eq!(arms[1].build(4).dram.row_bytes, 128 * 1024);
        let wrapped = arms[0].mutated(|cfg| cfg.dram.row_bytes = 4096);
        assert_eq!(wrapped.build(2).dram.row_bytes, 4096);
        assert_eq!(arms[0].build(2).dram.row_bytes, 2 * 1024, "base unchanged");
    }

    #[test]
    fn unit_keys_identify_simulations() {
        let exp = ExpConfig::at(Scale::Smoke);
        let w = Workload::from_names(&["milc_06", "swim_00"]);
        let k1 = UnitKey::workload("aps-only", "", &w, &exp);
        let k2 = UnitKey::workload("aps-only", "", &w, &exp);
        assert_eq!(k1, k2);
        assert_ne!(k1, UnitKey::workload("aps-only", "row=2KB", &w, &exp));
        assert_ne!(k1, UnitKey::workload("aps-only", "", &w, &exp.with_seed(2)));
        let b = &w.benchmarks[0];
        assert_eq!(UnitKey::alone(b, &exp).arm, "demand-first");
        assert_eq!(
            UnitKey::alone(b, &exp).instructions,
            exp.instructions_single
        );
    }

    #[test]
    fn plan_alone_units_dedupes_across_workloads() {
        let exp = ExpConfig::at(Scale::Smoke);
        let workloads = vec![
            Workload::from_names(&["milc_06", "swim_00"]),
            Workload::from_names(&["swim_00", "lbm_06"]),
        ];
        let units = plan_alone_units(&workloads, &exp);
        let names: Vec<_> = units.iter().map(|u| u.key.benchmarks[0].clone()).collect();
        assert_eq!(names, vec!["milc_06", "swim_00", "lbm_06"]);
    }

    #[test]
    fn single_run_memo_computes_each_key_once() {
        let exp = ExpConfig::at(Scale::Smoke).with_seed(0xC0FFEE);
        let b = padc_workloads::profiles::by_name("milc_06").expect("catalog");
        let (_, computed_before) = single_run_stats();
        let r1 = SimUnit::alone(&b, &exp).execute();
        let (_, computed_mid) = single_run_stats();
        let r2 = SimUnit::alone(&b, &exp).execute();
        let (requested, computed_after) = single_run_stats();
        assert_eq!(computed_mid, computed_before + 1, "first request computes");
        assert_eq!(computed_after, computed_mid, "second request reuses");
        assert!(requested >= 2);
        assert_eq!(r1.per_core[0].ipc(), r2.per_core[0].ipc());
    }

    #[test]
    fn exec_mode_parses() {
        assert_eq!("planned".parse::<ExecMode>(), Ok(ExecMode::Planned));
        assert_eq!("monolithic".parse::<ExecMode>(), Ok(ExecMode::Monolithic));
        assert!("inline".parse::<ExecMode>().is_err());
    }
}
