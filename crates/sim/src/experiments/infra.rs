use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

use padc_core::SchedulingPolicy;
use padc_workloads::{BenchProfile, Workload};
use serde::{Deserialize, Serialize};

use crate::{metrics, Report, SimConfig, System};

/// Scale knobs shared by all experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ExpConfig {
    /// Instructions each core retires before its stats freeze
    /// (multi-core runs).
    pub instructions: u64,
    /// Instructions for single-core runs (cheaper, so they run longer —
    /// long enough for the larger single-core L2 to wrap and exercise
    /// pollution/writeback effects).
    pub instructions_single: u64,
    /// Multiprogrammed workloads per multi-core aggregate (the paper uses
    /// 54 / 32 / 21 for 2 / 4 / 8 cores).
    pub workloads_2core: usize,
    /// 4-core workload count.
    pub workloads_4core: usize,
    /// 8-core workload count.
    pub workloads_8core: usize,
    /// Workload count for parameter sweeps (each sweep point re-runs the
    /// whole set, so sweeps use a smaller sample).
    pub workloads_sweep: usize,
    /// Workload-selection and trace seed.
    pub seed: u64,
}

impl ExpConfig {
    /// Paper-scale workload counts at a laptop-friendly instruction budget.
    pub fn full() -> Self {
        ExpConfig {
            instructions: 400_000,
            instructions_single: 800_000,
            workloads_2core: 32,
            workloads_4core: 24,
            workloads_8core: 12,
            workloads_sweep: 8,
            seed: 1,
        }
    }

    /// Reduced scale for quick looks.
    pub fn quick() -> Self {
        ExpConfig {
            instructions: 120_000,
            instructions_single: 250_000,
            workloads_2core: 10,
            workloads_4core: 8,
            workloads_8core: 5,
            workloads_sweep: 4,
            seed: 1,
        }
    }

    /// Tiny scale for the test suite.
    pub fn smoke() -> Self {
        ExpConfig {
            instructions: 25_000,
            instructions_single: 30_000,
            workloads_2core: 2,
            workloads_4core: 2,
            workloads_8core: 1,
            workloads_sweep: 1,
            seed: 1,
        }
    }
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// One result table: the rows/series of one paper figure or table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExpTable {
    /// Experiment id (e.g. `"fig6"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers (after the row label).
    pub columns: Vec<String>,
    /// Rows: label plus one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl ExpTable {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        ExpTable {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), values));
    }

    /// Looks up a cell by row label and column name.
    pub fn get(&self, row: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows
            .iter()
            .find(|(label, _)| label == row)
            .map(|(_, vals)| vals[col])
    }
}

impl ExpTable {
    /// Renders the table as RFC-4180-style CSV (label column first).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(&field(&self.id));
        for c in &self.columns {
            out.push(',');
            out.push_str(&field(c));
        }
        out.push('\n');
        for (label, vals) in &self.rows {
            out.push_str(&field(label));
            for v in vals {
                out.push(',');
                out.push_str(&format!("{v}"));
            }
            out.push('\n');
        }
        out
    }

    /// Renders one column as a labelled ASCII bar chart (the paper's bar
    /// figures, in a terminal).
    ///
    /// Returns `None` if the column does not exist or holds no positive
    /// values.
    pub fn to_bars(&self, column: &str, width: usize) -> Option<String> {
        let col = self.columns.iter().position(|c| c == column)?;
        let max = self
            .rows
            .iter()
            .map(|(_, v)| v[col])
            .fold(f64::NEG_INFINITY, f64::max);
        if max.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return None;
        }
        let label_w = self.rows.iter().map(|(l, _)| l.len()).max()?.max(4);
        let mut out = format!("{} — {} [{}]\n", self.id, self.title, column);
        for (label, vals) in &self.rows {
            let v = vals[col];
            let n = ((v / max) * width as f64).round().max(0.0) as usize;
            out.push_str(&format!(
                "{label:<label_w$} {:<width$} {v:.3}\n",
                "#".repeat(n)
            ));
        }
        Some(out)
    }
}

impl fmt::Display for ExpTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {}", self.id, self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(4))
            .max()
            .unwrap_or(4)
            .max(4);
        write!(f, "{:<label_w$}", "")?;
        for c in &self.columns {
            write!(f, " {:>14}", c)?;
        }
        writeln!(f)?;
        for (label, vals) in &self.rows {
            write!(f, "{label:<label_w$}")?;
            for v in vals {
                if v.abs() >= 1000.0 {
                    write!(f, " {:>14.0}", v)?;
                } else {
                    write!(f, " {:>14.3}", v)?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A named system variant evaluated in a figure: a label plus a
/// configuration recipe.
#[derive(Clone)]
pub struct PolicyArm {
    /// Bar label, matching the paper's legends.
    pub label: &'static str,
    /// Builds the `SimConfig` for this arm given a core count.
    pub build: fn(usize) -> SimConfig,
}

impl fmt::Debug for PolicyArm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PolicyArm({})", self.label)
    }
}

/// The paper's standard five-arm comparison (Figs. 6–17).
pub(crate) fn standard_arms() -> Vec<PolicyArm> {
    vec![
        PolicyArm {
            label: "no-pref",
            build: |n| SimConfig::new(n, SchedulingPolicy::DemandFirst).without_prefetching(),
        },
        PolicyArm {
            label: "demand-first",
            build: |n| SimConfig::new(n, SchedulingPolicy::DemandFirst),
        },
        PolicyArm {
            label: "demand-pref-equal",
            build: |n| SimConfig::new(n, SchedulingPolicy::DemandPrefetchEqual),
        },
        PolicyArm {
            label: "aps-only",
            build: |n| SimConfig::new(n, SchedulingPolicy::ApsOnly),
        },
        PolicyArm {
            label: "aps-apd (PADC)",
            build: |n| SimConfig::new(n, SchedulingPolicy::Padc),
        },
    ]
}

/// Process-wide memo of single-core runs: the same (arm, benchmark,
/// scale) tuple recurs across many experiments (the per-benchmark grids
/// of Figs. 6-8 / Tables 5 and 7, and every `IPC_alone` normalization),
/// and runs are deterministic, so each is computed once.
type MemoKey = (String, String, u64, u64);

fn single_run_memo() -> &'static Mutex<HashMap<MemoKey, Report>> {
    static MEMO: OnceLock<Mutex<HashMap<MemoKey, Report>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Runs one benchmark alone on a single-core system under the arm's
/// configuration, returning its (memoized) report.
pub(crate) fn run_single(arm: &PolicyArm, bench: &BenchProfile, exp: &ExpConfig) -> Report {
    let key = (
        arm.label.to_string(),
        bench.name.clone(),
        exp.instructions_single,
        exp.seed,
    );
    if let Some(r) = single_run_memo().lock().expect("memo poisoned").get(&key) {
        return r.clone();
    }
    let mut cfg = (arm.build)(1);
    cfg.max_instructions = exp.instructions_single;
    cfg.seed = exp.seed;
    let r = System::new(cfg, vec![bench.clone()]).run();
    single_run_memo()
        .lock()
        .expect("memo poisoned")
        .insert(key, r.clone());
    r
}

/// Runs a multiprogrammed workload under the arm's configuration.
pub(crate) fn run_workload(arm: &PolicyArm, w: &Workload, exp: &ExpConfig) -> Report {
    let mut cfg = (arm.build)(w.cores());
    cfg.max_instructions = exp.instructions;
    cfg.seed = exp.seed;
    System::new(cfg, w.benchmarks.clone()).run()
}

/// `IPC_alone` for each benchmark of a workload — measured on a single-core
/// system with the demand-first policy, as §5.2 specifies.
pub(crate) fn alone_ipcs(w: &Workload, exp: &ExpConfig) -> Vec<f64> {
    // Labelled "demand-first" so the memo shares entries with the
    // demand-first arm of the single-core grids (identical configuration).
    let arm = PolicyArm {
        label: "demand-first",
        build: |n| SimConfig::new(n, SchedulingPolicy::DemandFirst),
    };
    w.benchmarks
        .iter()
        .map(|b| run_single(&arm, b, exp).per_core[0].ipc())
        .collect()
}

/// Aggregate outcome of one workload under one arm.
#[derive(Clone, Debug, Default)]
pub(crate) struct WorkloadOutcome {
    pub ws: f64,
    pub hs: f64,
    pub uf: f64,
    pub traffic_total: f64,
}

/// Runs `workloads` under `arm` (in parallel across workloads) and averages
/// WS/HS/UF and total traffic.
pub(crate) fn average_over_workloads(
    arm: &PolicyArm,
    workloads: &[Workload],
    alone: &[Vec<f64>],
    exp: &ExpConfig,
) -> WorkloadOutcome {
    let results: Vec<WorkloadOutcome> = parallel_map(workloads.len(), |i| {
        let w = &workloads[i];
        let r = run_workload(arm, w, exp);
        let ipcs: Vec<f64> = r.per_core.iter().map(|c| c.ipc()).collect();
        WorkloadOutcome {
            ws: metrics::weighted_speedup(&ipcs, &alone[i]),
            hs: metrics::harmonic_speedup(&ipcs, &alone[i]),
            uf: metrics::unfairness(&ipcs, &alone[i]),
            traffic_total: r.traffic().total() as f64,
        }
    });
    let n = results.len().max(1) as f64;
    let mut acc = WorkloadOutcome::default();
    for r in &results {
        acc.ws += r.ws / n;
        acc.hs += r.hs / n;
        // UF can be infinite if a core starves completely; clamp for
        // averaging.
        acc.uf += r.uf.min(100.0) / n;
        acc.traffic_total += r.traffic_total / n;
    }
    acc
}

/// Deterministic fan-out map over `0..n`, in index order.
///
/// Under the suite harness this enqueues the units onto the shared
/// `padc-harness` worker pool (so `--jobs N` bounds *total* simulation
/// threads — this shim never spawns its own); outside the harness (unit
/// tests, direct library use) the units run inline on the calling thread.
pub(crate) fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    padc_harness::subjob_map(n, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trips_and_prints() {
        let mut t = ExpTable::new("figX", "demo", &["WS", "HS"]);
        t.push("demand-first", vec![1.0, 0.5]);
        t.push("PADC", vec![1.1, 0.6]);
        assert_eq!(t.get("PADC", "WS"), Some(1.1));
        assert_eq!(t.get("PADC", "missing"), None);
        assert_eq!(t.get("missing", "WS"), None);
        let s = t.to_string();
        assert!(s.contains("figX"));
        assert!(s.contains("demand-first"));
    }

    #[test]
    fn csv_rendering_escapes_and_lists_rows() {
        let mut t = ExpTable::new("figX", "demo", &["WS", "notes,weird"]);
        t.push("a,b", vec![1.5, 2.0]);
        let csv = t.to_csv();
        assert!(csv.starts_with("figX,WS,\"notes,weird\"\n"));
        assert!(csv.contains("\"a,b\",1.5,2"));
    }

    #[test]
    fn bar_rendering_scales_to_max() {
        let mut t = ExpTable::new("figX", "demo", &["WS"]);
        t.push("small", vec![1.0]);
        t.push("big", vec![2.0]);
        let bars = t.to_bars("WS", 10).expect("column exists");
        assert!(bars.contains("big"));
        let big_line = bars.lines().find(|l| l.starts_with("big")).unwrap();
        let small_line = bars.lines().find(|l| l.starts_with("small")).unwrap();
        let hashes = |l: &str| l.chars().filter(|c| *c == '#').count();
        assert_eq!(hashes(big_line), 10);
        assert_eq!(hashes(small_line), 5);
        assert!(t.to_bars("missing", 10).is_none());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        let mut t = ExpTable::new("x", "x", &["a", "b"]);
        t.push("r", vec![1.0]);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn standard_arms_match_paper_legend() {
        let arms = standard_arms();
        let labels: Vec<_> = arms.iter().map(|a| a.label).collect();
        assert_eq!(
            labels,
            vec![
                "no-pref",
                "demand-first",
                "demand-pref-equal",
                "aps-only",
                "aps-apd (PADC)"
            ]
        );
    }

    #[test]
    fn exp_config_scales_are_ordered() {
        assert!(ExpConfig::smoke().instructions < ExpConfig::quick().instructions);
        assert!(ExpConfig::quick().instructions <= ExpConfig::full().instructions);
        assert!(ExpConfig::full().workloads_4core >= 24);
        assert!(ExpConfig::full().instructions_single >= ExpConfig::full().instructions);
    }
}
