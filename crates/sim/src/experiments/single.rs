//! Single-core experiments: Figs. 1, 6, 7, 8 and Tables 5, 7.
//!
//! These are (benchmark, arm) grids. Each grid cell is planned as one
//! [`SimUnit::single`] in benchmark-major order; because single-core
//! units memoize process-wide by *(arm label, benchmark, instructions,
//! seed)*, the five grids share their cells with each other and with
//! every `IPC_alone` normalization run in the multi-core experiments.

use padc_workloads::{profiles, BenchProfile};

use crate::metrics::gmean;
use crate::Report;

use super::infra::{
    standard_arms, ExecMode, ExpConfig, ExpKind, ExpTable, PolicyArm, SimUnit, UnitKey, UnitResult,
    UnitResults,
};

/// The ten benchmarks of Fig. 1 (five prefetch-unfriendly, five friendly).
fn fig1_benchmarks() -> Vec<BenchProfile> {
    [
        "galgel_00",
        "ammp_00",
        "xalancbmk_06",
        "art_00",
        "milc_06",
        "libquantum_06",
        "swim_00",
        "bwaves_06",
        "leslie3d_06",
        "lbm_06",
    ]
    .iter()
    .map(|n| profiles::by_name(n).expect("catalog benchmark"))
    .collect()
}

/// The fifteen benchmarks Fig. 6–8 show individually.
fn fig6_benchmarks() -> Vec<BenchProfile> {
    [
        "swim_00",
        "galgel_00",
        "art_00",
        "ammp_00",
        "gcc_06",
        "mcf_06",
        "libquantum_06",
        "omnetpp_06",
        "xalancbmk_06",
        "bwaves_06",
        "milc_06",
        "cactusADM_06",
        "leslie3d_06",
        "soplex_06",
        "lbm_06",
    ]
    .iter()
    .map(|n| profiles::by_name(n).expect("catalog benchmark"))
    .collect()
}

/// Plans one single-core unit per grid cell, benchmark-major (the same
/// order the legacy `run_grid` executed in).
fn grid_plan(benches: &[BenchProfile], arms: &[PolicyArm], exp: &ExpConfig) -> Vec<SimUnit> {
    let mut units = Vec::with_capacity(benches.len() * arms.len());
    for bench in benches {
        for arm in arms {
            units.push(SimUnit::single(arm, bench, exp));
        }
    }
    units
}

/// Key-indexed grid view for the reduce phases: `report(bench, arm)`
/// addresses one cell.
struct GridView<'a> {
    idx: UnitResults<'a>,
    exp: ExpConfig,
}

impl<'a> GridView<'a> {
    fn new(results: &'a [UnitResult], exp: &ExpConfig) -> Self {
        GridView {
            idx: UnitResults::new(results),
            exp: *exp,
        }
    }

    fn report(&self, bench: &BenchProfile, arm: &PolicyArm) -> &'a Report {
        self.idx.get(&UnitKey::single(arm.label, bench, &self.exp))
    }

    fn ipc(&self, bench: &BenchProfile, arm: &PolicyArm) -> f64 {
        self.report(bench, arm).per_core[0].ipc()
    }
}

fn fig1_reduce(exp: &ExpConfig, results: &[UnitResult]) -> ExpTable {
    let benches = fig1_benchmarks();
    let arms = standard_arms();
    let grid = GridView::new(results, exp);
    let mut t = ExpTable::new(
        "fig1",
        "Normalized IPC of a stream prefetcher under two rigid policies (vs no-pref)",
        &["demand-first", "demand-pref-equal"],
    );
    for bench in &benches {
        let base = grid.ipc(bench, &arms[0]);
        t.push(
            bench.name.clone(),
            vec![
                grid.ipc(bench, &arms[1]) / base,
                grid.ipc(bench, &arms[2]) / base,
            ],
        );
    }
    t
}

/// Fig. 1: IPC of the stream prefetcher under demand-first and
/// demand-prefetch-equal, normalized to no prefetching, for ten benchmarks.
pub fn fig1_motivation(exp: &ExpConfig) -> ExpTable {
    fig1_kind().tables(exp, ExecMode::Planned).remove(0)
}

pub(crate) fn fig1_kind() -> ExpKind {
    ExpKind::planned(
        // no-pref, demand-first, equal
        |exp| grid_plan(&fig1_benchmarks(), &standard_arms()[0..3], exp),
        |exp, results| vec![fig1_reduce(exp, results)],
    )
}

fn fig6_reduce(exp: &ExpConfig, results: &[UnitResult]) -> ExpTable {
    let shown = fig6_benchmarks();
    let all = profiles::all();
    let arms = standard_arms();
    let grid = GridView::new(results, exp);
    let mut t = ExpTable::new(
        "fig6",
        "Single-core normalized IPC (vs demand-first); last row = gmean over 55 benchmarks",
        &[
            "no-pref",
            "demand-first",
            "demand-pref-equal",
            "aps-only",
            "aps-apd (PADC)",
        ],
    );
    let mut norms: Vec<Vec<f64>> = vec![Vec::new(); arms.len()];
    for bench in &all {
        let base = grid.ipc(bench, &arms[1]);
        let row: Vec<f64> = arms.iter().map(|a| grid.ipc(bench, a) / base).collect();
        for (a, v) in row.iter().enumerate() {
            norms[a].push(*v);
        }
        if shown.iter().any(|s| s.name == bench.name) {
            t.push(bench.name.clone(), row);
        }
    }
    t.push("gmean55", norms.iter().map(|v| gmean(v)).collect());
    t
}

/// Fig. 6: single-core IPC for all five arms, normalized to demand-first,
/// for 15 benchmarks plus the gmean over the whole 55-benchmark suite.
pub fn fig6_single_core_ipc(exp: &ExpConfig) -> ExpTable {
    fig6_kind().tables(exp, ExecMode::Planned).remove(0)
}

pub(crate) fn fig6_kind() -> ExpKind {
    ExpKind::planned(
        |exp| grid_plan(&profiles::all(), &standard_arms(), exp),
        |exp, results| vec![fig6_reduce(exp, results)],
    )
}

fn fig7_reduce(exp: &ExpConfig, results: &[UnitResult]) -> ExpTable {
    let shown = fig6_benchmarks();
    let all = profiles::all();
    let arms = standard_arms();
    let grid = GridView::new(results, exp);
    let mut t = ExpTable::new(
        "fig7",
        "Stall cycles per load (SPL), single core; last row = mean over 55 benchmarks",
        &[
            "no-pref",
            "demand-first",
            "demand-pref-equal",
            "aps-only",
            "aps-apd (PADC)",
        ],
    );
    let mut sums = vec![0.0; arms.len()];
    for bench in &all {
        let row: Vec<f64> = arms
            .iter()
            .map(|a| grid.report(bench, a).per_core[0].spl())
            .collect();
        for (a, v) in row.iter().enumerate() {
            sums[a] += v;
        }
        if shown.iter().any(|s| s.name == bench.name) {
            t.push(bench.name.clone(), row);
        }
    }
    t.push(
        "amean55",
        sums.iter().map(|s| s / all.len() as f64).collect(),
    );
    t
}

/// Fig. 7: stall-time per load (SPL) for the 15 shown benchmarks plus the
/// arithmetic mean over all 55.
pub fn fig7_spl(exp: &ExpConfig) -> ExpTable {
    fig7_kind().tables(exp, ExecMode::Planned).remove(0)
}

pub(crate) fn fig7_kind() -> ExpKind {
    ExpKind::planned(
        |exp| grid_plan(&profiles::all(), &standard_arms(), exp),
        |exp, results| vec![fig7_reduce(exp, results)],
    )
}

fn fig8_reduce(exp: &ExpConfig, results: &[UnitResult]) -> ExpTable {
    let all = profiles::all();
    let arms = standard_arms();
    let grid = GridView::new(results, exp);
    let mut t = ExpTable::new(
        "fig8",
        "Bus traffic in cache lines (mean per benchmark over the 55-benchmark suite)",
        &["demand", "pref-useful", "pref-useless", "total"],
    );
    for arm in &arms {
        let mut demand = 0.0;
        let mut useful = 0.0;
        let mut useless = 0.0;
        for bench in &all {
            let tr = grid.report(bench, arm).traffic();
            demand += tr.demand as f64;
            useful += tr.pref_useful as f64;
            useless += tr.pref_useless as f64;
        }
        let n = all.len() as f64;
        t.push(
            arm.label,
            vec![
                demand / n,
                useful / n,
                useless / n,
                (demand + useful + useless) / n,
            ],
        );
    }
    t
}

/// Fig. 8: bus traffic split into demand / useful-prefetch / useless-
/// prefetch lines, per arm, summed over all 55 benchmarks (the paper's
/// `amean55` bars, scaled by the benchmark count).
pub fn fig8_traffic(exp: &ExpConfig) -> ExpTable {
    fig8_kind().tables(exp, ExecMode::Planned).remove(0)
}

pub(crate) fn fig8_kind() -> ExpKind {
    ExpKind::planned(
        |exp| grid_plan(&profiles::all(), &standard_arms(), exp),
        |exp, results| vec![fig8_reduce(exp, results)],
    )
}

fn tab5_reduce(exp: &ExpConfig, results: &[UnitResult]) -> ExpTable {
    let all = profiles::all();
    let arms = standard_arms();
    let grid = GridView::new(results, exp);
    let mut t = ExpTable::new(
        "tab5",
        "Benchmark characteristics (no-pref IPC/MPKI; demand-first IPC/MPKI/RBH/ACC/COV; class)",
        &[
            "IPC(np)", "MPKI(np)", "IPC(df)", "MPKI(df)", "RBH", "ACC", "COV", "class",
        ],
    );
    for bench in &all {
        let np = &grid.report(bench, &arms[0]).per_core[0];
        let df_report = grid.report(bench, &arms[1]);
        let df = &df_report.per_core[0];
        let rbh = df_report.channels[0].row_hit_rate();
        t.push(
            bench.name.clone(),
            vec![
                np.ipc(),
                np.mpki(),
                df.ipc(),
                df.mpki(),
                rbh,
                df.acc(),
                df.cov(),
                bench.class.code() as f64,
            ],
        );
    }
    t
}

/// Table 5: benchmark characteristics with and without the stream
/// prefetcher (IPC, MPKI, RBH, ACC, COV, class) under demand-first.
pub fn tab5_characteristics(exp: &ExpConfig) -> ExpTable {
    tab5_kind().tables(exp, ExecMode::Planned).remove(0)
}

pub(crate) fn tab5_kind() -> ExpKind {
    ExpKind::planned(
        // no-pref + demand-first
        |exp| grid_plan(&profiles::all(), &standard_arms()[0..2], exp),
        |exp, results| vec![tab5_reduce(exp, results)],
    )
}

fn tab7_reduce(exp: &ExpConfig, results: &[UnitResult]) -> ExpTable {
    let shown = [
        "swim_00",
        "galgel_00",
        "art_00",
        "ammp_00",
        "mcf_06",
        "libquantum_06",
        "omnetpp_06",
        "xalancbmk_06",
        "bwaves_06",
        "milc_06",
        "leslie3d_06",
        "soplex_06",
        "lbm_06",
    ];
    let all = profiles::all();
    let arms = standard_arms();
    let grid = GridView::new(results, exp);
    let mut t = ExpTable::new(
        "tab7",
        "Row-buffer hit rate for useful (demand + useful prefetch) requests",
        &[
            "no-pref",
            "demand-first",
            "demand-pref-equal",
            "aps-only",
            "aps-apd (PADC)",
        ],
    );
    let mut sums = vec![0.0; arms.len()];
    for bench in &all {
        let row: Vec<f64> = arms
            .iter()
            .map(|a| grid.report(bench, a).per_core[0].rbhu())
            .collect();
        for (a, v) in row.iter().enumerate() {
            sums[a] += v;
        }
        if shown.contains(&bench.name.as_str()) {
            t.push(bench.name.clone(), row);
        }
    }
    t.push(
        "amean55",
        sums.iter().map(|s| s / all.len() as f64).collect(),
    );
    t
}

/// Table 7: row-buffer hit rate for useful requests (RBHU) under each arm,
/// for the paper's 13 benchmarks plus the mean over the suite.
pub fn tab7_rbhu(exp: &ExpConfig) -> ExpTable {
    tab7_kind().tables(exp, ExecMode::Planned).remove(0)
}

pub(crate) fn tab7_kind() -> ExpKind {
    ExpKind::planned(
        |exp| grid_plan(&profiles::all(), &standard_arms(), exp),
        |exp, results| vec![tab7_reduce(exp, results)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    fn smoke() -> ExpConfig {
        ExpConfig::at(Scale::Smoke)
    }

    #[test]
    fn fig1_produces_ten_rows() {
        let t = fig1_motivation(&smoke());
        assert_eq!(t.rows.len(), 10);
        assert!(t.get("libquantum_06", "demand-first").unwrap() > 0.0);
    }

    #[test]
    fn fig6_has_gmean_row() {
        let t = fig6_single_core_ipc(&smoke());
        assert_eq!(t.rows.len(), 16);
        assert!((t.get("gmean55", "demand-first").unwrap() - 1.0).abs() < 1e-9);
        // Prefetching must help on average even at smoke scale.
        assert!(t.get("gmean55", "no-pref").unwrap() < 1.0);
    }

    #[test]
    fn tab5_reports_every_benchmark() {
        let t = tab5_characteristics(&smoke());
        assert_eq!(t.rows.len(), 55);
        let milc_class = t.get("milc_06", "class").unwrap();
        assert_eq!(milc_class, 2.0);
    }

    #[test]
    fn grid_plans_one_unit_per_cell() {
        let exp = smoke();
        let units = match fig6_kind() {
            ExpKind::Planned(p) => (p.plan)(&exp),
            ExpKind::Monolithic(_) => panic!("fig6 is planned"),
        };
        assert_eq!(units.len(), profiles::all().len() * standard_arms().len());
        // Every unit is single-core at the single-core budget.
        assert!(units
            .iter()
            .all(|u| u.key.benchmarks.len() == 1 && u.key.instructions == exp.instructions_single));
    }
}
