//! Parameter sweeps: row-buffer size (Fig. 23), closed-row policy
//! (Fig. 24), last-level cache size (Fig. 25), and the HAPPY hybrid
//! page-policy extension (`ext-happy`).
//!
//! Sweeps are the densest grids in the suite: every sweep point re-runs
//! the standard arms over the 4-core workload set. Each point's arms are
//! built with [`PolicyArm::mutated`] closures capturing the swept
//! parameter, and the point's units carry the row label as their
//! [`UnitKey::variant`] so the reduce phase can address them. The
//! `IPC_alone` normalization units are planned once for the whole sweep
//! (they do not depend on the swept parameter).

use padc_dram::RowPolicy;
use padc_workloads::{random_workloads, Workload};

use crate::metrics;

use super::infra::{
    plan_alone_units, standard_arms, ExecMode, ExpConfig, ExpKind, ExpTable, SimUnit, UnitKey,
    UnitResult, UnitResults,
};

/// The sweep workload set: 4-core mixes shared by all sweep points.
fn sweep_workloads(exp: &ExpConfig) -> Vec<Workload> {
    random_workloads(exp.workloads_sweep, 4, exp.seed)
}

/// Mean (WS, traffic) over the sweep workloads for one (arm, variant).
fn sweep_point_means(
    idx: &UnitResults<'_>,
    workloads: &[Workload],
    alone: &[Vec<f64>],
    arm_label: &str,
    variant: &str,
    exp: &ExpConfig,
) -> (f64, f64) {
    let results: Vec<(f64, f64)> = workloads
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let r = idx.get(&UnitKey::workload(arm_label, variant, w, exp));
            let ipcs: Vec<f64> = r.per_core.iter().map(|c| c.ipc()).collect();
            (
                metrics::weighted_speedup(&ipcs, &alone[i]),
                r.traffic().total() as f64,
            )
        })
        .collect();
    let n = results.len().max(1) as f64;
    (
        results.iter().map(|r| r.0).sum::<f64>() / n,
        results.iter().map(|r| r.1).sum::<f64>() / n,
    )
}

const FIG23_SIZES: [u64; 7] = [
    2 * 1024,
    4 * 1024,
    8 * 1024,
    16 * 1024,
    32 * 1024,
    64 * 1024,
    128 * 1024,
];

fn fig23_plan(exp: &ExpConfig) -> Vec<SimUnit> {
    let workloads = sweep_workloads(exp);
    let mut units = plan_alone_units(&workloads, exp);
    for size in FIG23_SIZES {
        let variant = format!("{}KB", size / 1024);
        for arm in standard_arms() {
            let arm = arm.mutated(move |cfg| cfg.dram.row_bytes = size);
            for w in &workloads {
                units.push(SimUnit::workload(&arm, &variant, w, exp));
            }
        }
    }
    units
}

fn fig23_reduce(exp: &ExpConfig, results: &[UnitResult]) -> ExpTable {
    let workloads = sweep_workloads(exp);
    let idx = UnitResults::new(results);
    let alone: Vec<Vec<f64>> = workloads.iter().map(|w| idx.alone_ipcs(w, exp)).collect();
    let mut t = ExpTable::new(
        "fig23",
        "Average 4-core WS vs DRAM row-buffer size",
        &[
            "no-pref",
            "demand-first",
            "demand-pref-equal",
            "aps-only",
            "aps-apd (PADC)",
        ],
    );
    for size in FIG23_SIZES {
        let variant = format!("{}KB", size / 1024);
        let row: Vec<f64> = standard_arms()
            .iter()
            .map(|arm| sweep_point_means(&idx, &workloads, &alone, arm.label, &variant, exp).0)
            .collect();
        t.push(variant, row);
    }
    t
}

/// Fig. 23: weighted speedup across DRAM row-buffer sizes (2KB–128KB) on
/// the 4-core system. Columns are the arms, rows the row sizes.
pub fn fig23_row_buffer_sweep(exp: &ExpConfig) -> ExpTable {
    fig23_kind().tables(exp, ExecMode::Planned).remove(0)
}

pub(crate) fn fig23_kind() -> ExpKind {
    ExpKind::planned(fig23_plan, |exp, results| vec![fig23_reduce(exp, results)])
}

/// The arms Fig. 24 reports for the open-row baseline.
const FIG24_OPEN_ARMS: [&str; 2] = ["demand-first", "aps-apd (PADC)"];

fn fig24_plan(exp: &ExpConfig) -> Vec<SimUnit> {
    let workloads = sweep_workloads(exp);
    let mut units = plan_alone_units(&workloads, exp);
    for arm in standard_arms() {
        if !FIG24_OPEN_ARMS.contains(&arm.label) {
            continue; // the open-row baseline only reports these two
        }
        for w in &workloads {
            units.push(SimUnit::workload(&arm, "open-row", w, exp));
        }
    }
    for arm in standard_arms() {
        let arm = arm.mutated(|cfg| *cfg = cfg.clone().with_row_policy(RowPolicy::Closed));
        for w in &workloads {
            units.push(SimUnit::workload(&arm, "closed-row", w, exp));
        }
    }
    units
}

fn fig24_reduce(exp: &ExpConfig, results: &[UnitResult]) -> ExpTable {
    let workloads = sweep_workloads(exp);
    let idx = UnitResults::new(results);
    let alone: Vec<Vec<f64>> = workloads.iter().map(|w| idx.alone_ipcs(w, exp)).collect();
    let mut t = ExpTable::new(
        "fig24",
        "Average 4-core WS and traffic under open- vs closed-row policies",
        &["WS", "traffic(lines)"],
    );
    for arm in standard_arms() {
        if !FIG24_OPEN_ARMS.contains(&arm.label) {
            continue;
        }
        let (ws, tr) = sweep_point_means(&idx, &workloads, &alone, arm.label, "open-row", exp);
        t.push(format!("{} (open-row)", arm.label), vec![ws, tr]);
    }
    for arm in standard_arms() {
        let (ws, tr) = sweep_point_means(&idx, &workloads, &alone, arm.label, "closed-row", exp);
        t.push(format!("{} (closed-row)", arm.label), vec![ws, tr]);
    }
    t
}

/// Fig. 24: the closed-row policy vs the open-row baseline.
pub fn fig24_closed_row(exp: &ExpConfig) -> ExpTable {
    fig24_kind().tables(exp, ExecMode::Planned).remove(0)
}

pub(crate) fn fig24_kind() -> ExpKind {
    ExpKind::planned(fig24_plan, |exp, results| vec![fig24_reduce(exp, results)])
}

/// The arms the HAPPY extension reports: the demand-first baseline (APS
/// and APD both off) against APS alone and the full PADC (APS + APD).
const EXT_HAPPY_ARMS: [&str; 3] = ["demand-first", "aps-only", "aps-apd (PADC)"];

/// The row policies the HAPPY extension compares, keyed by unit variant.
const EXT_HAPPY_POLICIES: [(&str, RowPolicy); 3] = [
    ("open-row", RowPolicy::Open),
    ("closed-row", RowPolicy::Closed),
    ("happy", RowPolicy::Happy),
];

fn ext_happy_plan(exp: &ExpConfig) -> Vec<SimUnit> {
    let workloads = sweep_workloads(exp);
    let mut units = plan_alone_units(&workloads, exp);
    for (variant, policy) in EXT_HAPPY_POLICIES {
        for arm in standard_arms() {
            if !EXT_HAPPY_ARMS.contains(&arm.label) {
                continue;
            }
            let arm = arm.mutated(move |cfg| *cfg = cfg.clone().with_row_policy(policy));
            for w in &workloads {
                units.push(SimUnit::workload(&arm, variant, w, exp));
            }
        }
    }
    units
}

fn ext_happy_reduce(exp: &ExpConfig, results: &[UnitResult]) -> ExpTable {
    let workloads = sweep_workloads(exp);
    let idx = UnitResults::new(results);
    let alone: Vec<Vec<f64>> = workloads.iter().map(|w| idx.alone_ipcs(w, exp)).collect();
    let mut t = ExpTable::new(
        "ext-happy",
        "Extension: HAPPY hybrid page policy vs static open-/closed-row, 4-core",
        &["WS", "traffic(lines)"],
    );
    for (variant, _) in EXT_HAPPY_POLICIES {
        for arm in standard_arms() {
            if !EXT_HAPPY_ARMS.contains(&arm.label) {
                continue;
            }
            let (ws, tr) = sweep_point_means(&idx, &workloads, &alone, arm.label, variant, exp);
            t.push(format!("{} ({variant})", arm.label), vec![ws, tr]);
        }
    }
    t
}

/// Extension (beyond the paper): the HAPPY-style per-row hybrid page
/// policy (Ghasempour et al.; see PAPERS.md) against the paper's static
/// open-row baseline and the Fig. 24 closed-row policy, crossed with
/// PADC's APS/APD mechanisms off (`demand-first`) and on (`aps-only`,
/// `aps-apd`). Prefetch-aware scheduling changes which rows look reusable
/// at precharge time, so the predictor's training feeds back into the
/// schedule this table probes.
pub fn ext_happy(exp: &ExpConfig) -> ExpTable {
    ext_happy_kind().tables(exp, ExecMode::Planned).remove(0)
}

pub(crate) fn ext_happy_kind() -> ExpKind {
    ExpKind::planned(ext_happy_plan, |exp, results| {
        vec![ext_happy_reduce(exp, results)]
    })
}

const FIG25_SIZES_KB: [u64; 5] = [512, 1024, 2048, 4096, 8192];

fn fig25_plan(exp: &ExpConfig) -> Vec<SimUnit> {
    let workloads = sweep_workloads(exp);
    let mut units = plan_alone_units(&workloads, exp);
    for kb in FIG25_SIZES_KB {
        let variant = format!("{kb}KB");
        for arm in standard_arms() {
            let arm = arm.mutated(move |cfg| cfg.l2.size_bytes = kb * 1024);
            for w in &workloads {
                units.push(SimUnit::workload(&arm, &variant, w, exp));
            }
        }
    }
    units
}

fn fig25_reduce(exp: &ExpConfig, results: &[UnitResult]) -> ExpTable {
    let workloads = sweep_workloads(exp);
    let idx = UnitResults::new(results);
    let alone: Vec<Vec<f64>> = workloads.iter().map(|w| idx.alone_ipcs(w, exp)).collect();
    let mut t = ExpTable::new(
        "fig25",
        "Average 4-core WS vs per-core L2 capacity",
        &[
            "no-pref",
            "demand-first",
            "demand-pref-equal",
            "aps-only",
            "aps-apd (PADC)",
        ],
    );
    for kb in FIG25_SIZES_KB {
        let variant = format!("{kb}KB");
        let row: Vec<f64> = standard_arms()
            .iter()
            .map(|arm| sweep_point_means(&idx, &workloads, &alone, arm.label, &variant, exp).0)
            .collect();
        t.push(variant, row);
    }
    t
}

/// Fig. 25: weighted speedup across per-core L2 sizes (512KB–8MB) on the
/// 4-core system.
pub fn fig25_cache_sweep(exp: &ExpConfig) -> ExpTable {
    fig25_kind().tables(exp, ExecMode::Planned).remove(0)
}

pub(crate) fn fig25_kind() -> ExpKind {
    ExpKind::planned(fig25_plan, |exp, results| vec![fig25_reduce(exp, results)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn closed_row_table_has_both_policies() {
        let t = fig24_closed_row(&ExpConfig::at(Scale::Smoke));
        assert!(t.rows.len() >= 7);
        assert!(t
            .rows
            .iter()
            .any(|(l, _)| l.contains("closed-row") && l.contains("PADC")));
    }

    #[test]
    fn ext_happy_plan_crosses_every_policy_with_every_reported_arm() {
        let exp = ExpConfig::at(Scale::Smoke);
        let units = ext_happy_plan(&exp);
        let workloads = sweep_workloads(&exp).len();
        let grid = units.iter().filter(|u| u.key.variant != "alone").count();
        assert_eq!(
            grid,
            EXT_HAPPY_POLICIES.len() * EXT_HAPPY_ARMS.len() * workloads,
            "ext-happy grid is not the full policy x arm x workload cross"
        );
        let keys: std::collections::HashSet<_> = units.iter().map(|u| u.key.clone()).collect();
        assert_eq!(
            keys.len(),
            units.len(),
            "duplicate unit keys in ext-happy plan"
        );
    }

    #[test]
    fn ext_happy_arms_capture_their_row_policy() {
        let arm = standard_arms().remove(1); // demand-first
        let happy = arm.mutated(|cfg| *cfg = cfg.clone().with_row_policy(RowPolicy::Happy));
        assert_eq!(happy.build(4).dram.row_policy, RowPolicy::Happy);
        assert_eq!(arm.build(4).dram.row_policy, RowPolicy::Open);
    }

    #[test]
    fn sweep_plans_cover_every_point_arm_workload_triple() {
        let exp = ExpConfig::at(Scale::Smoke);
        let units = fig23_plan(&exp);
        let arms = standard_arms().len();
        let workloads = sweep_workloads(&exp).len();
        let points = FIG23_SIZES.len();
        assert!(
            units.len() >= arms * workloads * points,
            "{} units < {} points x {} arms x {} workloads",
            units.len(),
            points,
            arms,
            workloads
        );
        // Sweep points must be distinguishable by variant.
        let variants: std::collections::HashSet<_> =
            units.iter().map(|u| u.key.variant.clone()).collect();
        assert!(variants.len() > points, "variants: {variants:?}");
        // And keys must be unique for the reduce index.
        let keys: std::collections::HashSet<_> = units.iter().map(|u| u.key.clone()).collect();
        assert_eq!(keys.len(), units.len());
    }

    #[test]
    fn sweep_arms_capture_their_point() {
        // Two points of the fig23 sweep must build different configs from
        // the *same* arm list — the closure captures the size.
        let arm = standard_arms().remove(1);
        let small = arm.mutated(|cfg| cfg.dram.row_bytes = 2 * 1024);
        let large = arm.mutated(|cfg| cfg.dram.row_bytes = 128 * 1024);
        assert_eq!(small.build(4).dram.row_bytes, 2 * 1024);
        assert_eq!(large.build(4).dram.row_bytes, 128 * 1024);
    }
}
