//! Parameter sweeps: row-buffer size (Fig. 23), closed-row policy
//! (Fig. 24), and last-level cache size (Fig. 25).

use padc_dram::RowPolicy;
use padc_workloads::random_workloads;

use crate::SimConfig;

use super::infra::{alone_ipcs, parallel_map, standard_arms, ExpConfig, ExpTable, PolicyArm};

/// Runs the standard arms over the 4-core workload set with a config
/// mutation applied to every arm, returning average WS per arm.
fn mutated_ws(
    mutate: &(dyn Fn(&mut SimConfig) + Sync),
    exp: &ExpConfig,
) -> Vec<(String, f64, f64)> {
    let workloads = random_workloads(exp.workloads_sweep, 4, exp.seed);
    let alone: Vec<Vec<f64>> = parallel_map(workloads.len(), |i| alone_ipcs(&workloads[i], exp));
    standard_arms()
        .iter()
        .map(|arm| {
            // Wrap the arm with the mutation.
            let wrapped = PolicyArm {
                label: arm.label,
                build: arm.build,
            };
            let outcome = average_over_workloads_mutated(&wrapped, mutate, &workloads, &alone, exp);
            (arm.label.to_string(), outcome.0, outcome.1)
        })
        .collect()
}

fn average_over_workloads_mutated(
    arm: &PolicyArm,
    mutate: &(dyn Fn(&mut SimConfig) + Sync),
    workloads: &[padc_workloads::Workload],
    alone: &[Vec<f64>],
    exp: &ExpConfig,
) -> (f64, f64) {
    let results: Vec<(f64, f64)> = parallel_map(workloads.len(), |i| {
        let w = &workloads[i];
        let mut cfg = (arm.build)(w.cores());
        cfg.max_instructions = exp.instructions;
        cfg.seed = exp.seed;
        mutate(&mut cfg);
        let r = crate::System::new(cfg, w.benchmarks.clone()).run();
        let ipcs: Vec<f64> = r.per_core.iter().map(|c| c.ipc()).collect();
        (
            crate::metrics::weighted_speedup(&ipcs, &alone[i]),
            r.traffic().total() as f64,
        )
    });
    let n = results.len().max(1) as f64;
    (
        results.iter().map(|r| r.0).sum::<f64>() / n,
        results.iter().map(|r| r.1).sum::<f64>() / n,
    )
}

/// Fig. 23: weighted speedup across DRAM row-buffer sizes (2KB–128KB) on
/// the 4-core system. Columns are the arms, rows the row sizes.
pub fn fig23_row_buffer_sweep(exp: &ExpConfig) -> ExpTable {
    let sizes: [u64; 7] = [
        2 * 1024,
        4 * 1024,
        8 * 1024,
        16 * 1024,
        32 * 1024,
        64 * 1024,
        128 * 1024,
    ];
    let mut t = ExpTable::new(
        "fig23",
        "Average 4-core WS vs DRAM row-buffer size",
        &[
            "no-pref",
            "demand-first",
            "demand-pref-equal",
            "aps-only",
            "aps-apd (PADC)",
        ],
    );
    for size in sizes {
        let results = mutated_ws(&move |cfg: &mut SimConfig| cfg.dram.row_bytes = size, exp);
        t.push(
            format!("{}KB", size / 1024),
            results.iter().map(|r| r.1).collect(),
        );
    }
    t
}

/// Fig. 24: the closed-row policy vs the open-row baseline.
pub fn fig24_closed_row(exp: &ExpConfig) -> ExpTable {
    let mut t = ExpTable::new(
        "fig24",
        "Average 4-core WS and traffic under open- vs closed-row policies",
        &["WS", "traffic(lines)"],
    );
    // Open-row baseline (demand-first and PADC).
    let open = mutated_ws(&|_: &mut SimConfig| {}, exp);
    let closed = mutated_ws(
        &|cfg: &mut SimConfig| cfg.dram.row_policy = RowPolicy::Closed,
        exp,
    );
    for (label, ws, tr) in &open {
        if label == "demand-first" || label == "aps-apd (PADC)" {
            t.push(format!("{label} (open-row)"), vec![*ws, *tr]);
        }
    }
    for (label, ws, tr) in &closed {
        t.push(format!("{label} (closed-row)"), vec![*ws, *tr]);
    }
    t
}

/// Fig. 25: weighted speedup across per-core L2 sizes (512KB–8MB) on the
/// 4-core system.
pub fn fig25_cache_sweep(exp: &ExpConfig) -> ExpTable {
    let sizes: [u64; 5] = [512, 1024, 2048, 4096, 8192];
    let mut t = ExpTable::new(
        "fig25",
        "Average 4-core WS vs per-core L2 capacity",
        &[
            "no-pref",
            "demand-first",
            "demand-pref-equal",
            "aps-only",
            "aps-apd (PADC)",
        ],
    );
    for kb in sizes {
        let results = mutated_ws(
            &move |cfg: &mut SimConfig| cfg.l2.size_bytes = kb * 1024,
            exp,
        );
        t.push(format!("{kb}KB"), results.iter().map(|r| r.1).collect());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_row_table_has_both_policies() {
        let t = fig24_closed_row(&ExpConfig::smoke());
        assert!(t.rows.len() >= 7);
        assert!(t
            .rows
            .iter()
            .any(|(l, _)| l.contains("closed-row") && l.contains("PADC")));
    }
}
