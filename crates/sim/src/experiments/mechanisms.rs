//! Interactions with other mechanisms: alternative prefetchers (Fig. 28),
//! DDPF and FDP (Figs. 29, 30), permutation-based interleaving (Fig. 31),
//! runahead execution (Fig. 32), and the hardware-cost tables (1, 2, 6).
//!
//! The mechanism comparisons are (workload, arm) grids like the
//! aggregates, so they use the plan/execute/reduce contract; each arm is
//! a [`PolicyArm`] closure combining a base policy with a configuration
//! mutation. The cost tables (1, 2, 6) are pure computations and stay on
//! the monolithic path.

use padc_core::{cost, DropThresholds, SchedulingPolicy};
use padc_dram::{MappingScheme, RefreshPolicy};
use padc_prefetch::PrefetcherKind;
use padc_workloads::{random_workloads, Workload};

use crate::SimConfig;

use super::infra::{
    plan_alone_units, ExecMode, ExpConfig, ExpKind, ExpTable, PolicyArm, SimUnit, UnitKey,
    UnitResult, UnitResults,
};

/// Builds one mechanism arm: base policy, prefetching on/off, and a
/// configuration mutation captured by the arm's recipe closure.
fn mech_arm(
    label: &'static str,
    policy: SchedulingPolicy,
    prefetch: bool,
    mutate: fn(&mut SimConfig),
) -> PolicyArm {
    PolicyArm::new(label, move |n| {
        let mut cfg = SimConfig::new(n, policy);
        if !prefetch {
            cfg = cfg.without_prefetching();
        }
        mutate(&mut cfg);
        cfg
    })
}

/// Builds an arm list with a shared mutation applied on top of base
/// policies.
fn arms_with(
    labels_policies: &[(&'static str, SchedulingPolicy, bool)],
    mutate: fn(&mut SimConfig),
) -> Vec<PolicyArm> {
    labels_policies
        .iter()
        .map(|(l, p, pf)| mech_arm(l, *p, *pf, mutate))
        .collect()
}

/// The 4-core workload set shared by the mechanism comparisons.
fn mech_workloads(exp: &ExpConfig) -> Vec<Workload> {
    random_workloads(exp.workloads_sweep, 4, exp.seed)
}

/// Plans one arm set: deduplicated alone units, then one unit per
/// (arm, workload) pair tagged with `variant`.
fn plan_arm_set(arms: &[PolicyArm], variant: &str, exp: &ExpConfig) -> Vec<SimUnit> {
    let workloads = mech_workloads(exp);
    let mut units = plan_alone_units(&workloads, exp);
    for arm in arms {
        for w in &workloads {
            units.push(SimUnit::workload(arm, variant, w, exp));
        }
    }
    units
}

/// One reduced table row: WS/HS/UF/traffic means over the workload set.
fn arm_set_row(
    idx: &UnitResults<'_>,
    workloads: &[Workload],
    alone: &[Vec<f64>],
    arm_label: &str,
    variant: &str,
    exp: &ExpConfig,
) -> Vec<f64> {
    let results: Vec<(f64, f64, f64, f64)> = workloads
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let r = idx.get(&UnitKey::workload(arm_label, variant, w, exp));
            let ipcs: Vec<f64> = r.per_core.iter().map(|c| c.ipc()).collect();
            (
                crate::metrics::weighted_speedup(&ipcs, &alone[i]),
                crate::metrics::harmonic_speedup(&ipcs, &alone[i]),
                crate::metrics::unfairness(&ipcs, &alone[i]).min(100.0),
                r.traffic().total() as f64,
            )
        })
        .collect();
    let n = results.len().max(1) as f64;
    vec![
        results.iter().map(|r| r.0).sum::<f64>() / n,
        results.iter().map(|r| r.1).sum::<f64>() / n,
        results.iter().map(|r| r.2).sum::<f64>() / n,
        results.iter().map(|r| r.3).sum::<f64>() / n,
    ]
}

fn reduce_arm_set(
    id: &str,
    title: &str,
    arms: &[PolicyArm],
    variant: &str,
    exp: &ExpConfig,
    idx: &UnitResults<'_>,
) -> ExpTable {
    let workloads = mech_workloads(exp);
    let alone: Vec<Vec<f64>> = workloads.iter().map(|w| idx.alone_ipcs(w, exp)).collect();
    let mut t = ExpTable::new(id, title, &["WS", "HS", "UF", "traffic(lines)"]);
    for arm in arms {
        t.push(
            arm.label,
            arm_set_row(idx, &workloads, &alone, arm.label, variant, exp),
        );
    }
    t
}

/// Plan/reduce kind for a single-table arm-set comparison.
fn arm_set_kind(id: &'static str, title: &'static str, arms: fn() -> Vec<PolicyArm>) -> ExpKind {
    ExpKind::planned(
        move |exp| plan_arm_set(&arms(), "", exp),
        move |exp, results| {
            let idx = UnitResults::new(results);
            vec![reduce_arm_set(id, title, &arms(), "", exp, &idx)]
        },
    )
}

/// The stride / C/DC / Markov variants of Fig. 28 and their shared base
/// arm list.
fn fig28_sets() -> Vec<(&'static str, Vec<PolicyArm>)> {
    fn set_stride(cfg: &mut SimConfig) {
        cfg.prefetcher = cfg.prefetcher.map(|_| PrefetcherKind::Stride);
    }
    fn set_cdc(cfg: &mut SimConfig) {
        cfg.prefetcher = cfg.prefetcher.map(|_| PrefetcherKind::Cdc);
    }
    fn set_markov(cfg: &mut SimConfig) {
        cfg.prefetcher = cfg.prefetcher.map(|_| PrefetcherKind::Markov);
    }
    let base: [(&'static str, SchedulingPolicy, bool); 4] = [
        ("no-pref", SchedulingPolicy::DemandFirst, false),
        ("demand-first", SchedulingPolicy::DemandFirst, true),
        (
            "demand-pref-equal",
            SchedulingPolicy::DemandPrefetchEqual,
            true,
        ),
        ("PADC", SchedulingPolicy::Padc, true),
    ];
    vec![
        ("stride", arms_with(&base, set_stride)),
        ("cdc", arms_with(&base, set_cdc)),
        ("markov", arms_with(&base, set_markov)),
    ]
}

fn fig28_plan(exp: &ExpConfig) -> Vec<SimUnit> {
    let workloads = mech_workloads(exp);
    let mut units = plan_alone_units(&workloads, exp);
    for (name, arms) in fig28_sets() {
        for arm in &arms {
            for w in &workloads {
                units.push(SimUnit::workload(arm, name, w, exp));
            }
        }
    }
    units
}

fn fig28_reduce(exp: &ExpConfig, results: &[UnitResult]) -> Vec<ExpTable> {
    let idx = UnitResults::new(results);
    fig28_sets()
        .into_iter()
        .map(|(name, arms)| {
            reduce_arm_set(
                &format!("fig28-{name}"),
                &format!("PADC under the {name} prefetcher, 4-core"),
                &arms,
                name,
                exp,
                &idx,
            )
        })
        .collect()
}

/// Fig. 28: PADC under the stride, C/DC, and Markov prefetchers (plus the
/// stream default), 4-core averages.
pub fn fig28_prefetchers(exp: &ExpConfig) -> Vec<ExpTable> {
    fig28_kind().tables(exp, ExecMode::Planned)
}

pub(crate) fn fig28_kind() -> ExpKind {
    ExpKind::planned(fig28_plan, fig28_reduce)
}

fn fig29_arms() -> Vec<PolicyArm> {
    fn none(_: &mut SimConfig) {}
    fn ddpf(cfg: &mut SimConfig) {
        cfg.ddpf = true;
    }
    fn fdp(cfg: &mut SimConfig) {
        cfg.fdp = true;
    }
    fn apd(cfg: &mut SimConfig) {
        cfg.controller.apd = true;
    }
    vec![
        mech_arm("demand-first", SchedulingPolicy::DemandFirst, true, none),
        mech_arm(
            "demand-first-ddpf",
            SchedulingPolicy::DemandFirst,
            true,
            ddpf,
        ),
        mech_arm("demand-first-fdp", SchedulingPolicy::DemandFirst, true, fdp),
        mech_arm("demand-first-apd", SchedulingPolicy::DemandFirst, true, apd),
        mech_arm("aps-ddpf", SchedulingPolicy::ApsOnly, true, ddpf),
        mech_arm("aps-fdp", SchedulingPolicy::ApsOnly, true, fdp),
        mech_arm("aps-apd (PADC)", SchedulingPolicy::Padc, true, none),
    ]
}

/// Fig. 29: DDPF and FDP combined with demand-first scheduling and with
/// APS; APD for comparison.
pub fn fig29_ddpf_fdp_demand_first(exp: &ExpConfig) -> ExpTable {
    fig29_kind().tables(exp, ExecMode::Planned).remove(0)
}

pub(crate) fn fig29_kind() -> ExpKind {
    arm_set_kind(
        "fig29",
        "DDPF / FDP / APD with demand-first and APS, 4-core",
        fig29_arms,
    )
}

fn fig30_arms() -> Vec<PolicyArm> {
    fn none(_: &mut SimConfig) {}
    fn ddpf(cfg: &mut SimConfig) {
        cfg.ddpf = true;
    }
    fn fdp(cfg: &mut SimConfig) {
        cfg.fdp = true;
    }
    vec![
        mech_arm("demand-first", SchedulingPolicy::DemandFirst, true, none),
        mech_arm(
            "demand-pref-equal",
            SchedulingPolicy::DemandPrefetchEqual,
            true,
            none,
        ),
        mech_arm(
            "demand-pref-equal-ddpf",
            SchedulingPolicy::DemandPrefetchEqual,
            true,
            ddpf,
        ),
        mech_arm(
            "demand-pref-equal-fdp",
            SchedulingPolicy::DemandPrefetchEqual,
            true,
            fdp,
        ),
        mech_arm("aps", SchedulingPolicy::ApsOnly, true, none),
        mech_arm("aps-apd (PADC)", SchedulingPolicy::Padc, true, none),
    ]
}

/// Fig. 30: DDPF and FDP combined with demand-prefetch-equal scheduling.
pub fn fig30_ddpf_fdp_equal(exp: &ExpConfig) -> ExpTable {
    fig30_kind().tables(exp, ExecMode::Planned).remove(0)
}

pub(crate) fn fig30_kind() -> ExpKind {
    arm_set_kind(
        "fig30",
        "DDPF / FDP with demand-prefetch-equal, 4-core",
        fig30_arms,
    )
}

fn fig31_arms() -> Vec<PolicyArm> {
    fn none(_: &mut SimConfig) {}
    fn perm(cfg: &mut SimConfig) {
        cfg.mapping = MappingScheme::Permutation;
    }
    vec![
        mech_arm("no-pref", SchedulingPolicy::DemandFirst, false, none),
        mech_arm("no-pref-perm", SchedulingPolicy::DemandFirst, false, perm),
        mech_arm("demand-first", SchedulingPolicy::DemandFirst, true, none),
        mech_arm(
            "demand-first-perm",
            SchedulingPolicy::DemandFirst,
            true,
            perm,
        ),
        mech_arm("aps-only-perm", SchedulingPolicy::ApsOnly, true, perm),
        mech_arm("PADC", SchedulingPolicy::Padc, true, none),
        mech_arm("PADC-perm", SchedulingPolicy::Padc, true, perm),
    ]
}

/// Fig. 31: permutation-based page interleaving with and without PADC.
pub fn fig31_permutation(exp: &ExpConfig) -> ExpTable {
    fig31_kind().tables(exp, ExecMode::Planned).remove(0)
}

pub(crate) fn fig31_kind() -> ExpKind {
    arm_set_kind(
        "fig31",
        "Permutation-based page interleaving, 4-core",
        fig31_arms,
    )
}

fn fig32_arms() -> Vec<PolicyArm> {
    fn none(_: &mut SimConfig) {}
    fn ra(cfg: &mut SimConfig) {
        cfg.core.runahead = true;
    }
    vec![
        mech_arm("no-pref", SchedulingPolicy::DemandFirst, false, none),
        mech_arm("no-pref-ra", SchedulingPolicy::DemandFirst, false, ra),
        mech_arm("demand-first", SchedulingPolicy::DemandFirst, true, none),
        mech_arm("demand-first-ra", SchedulingPolicy::DemandFirst, true, ra),
        mech_arm("aps-only-ra", SchedulingPolicy::ApsOnly, true, ra),
        mech_arm("PADC", SchedulingPolicy::Padc, true, none),
        mech_arm("PADC-ra", SchedulingPolicy::Padc, true, ra),
    ]
}

/// Fig. 32: runahead execution with and without PADC.
pub fn fig32_runahead(exp: &ExpConfig) -> ExpTable {
    fig32_kind().tables(exp, ExecMode::Planned).remove(0)
}

pub(crate) fn fig32_kind() -> ExpKind {
    arm_set_kind("fig32", "Runahead execution, 4-core", fig32_arms)
}

fn ext_batch_arms() -> Vec<PolicyArm> {
    fn none(_: &mut SimConfig) {}
    fn batch(cfg: &mut SimConfig) {
        cfg.controller.batching = true;
    }
    vec![
        mech_arm("demand-first", SchedulingPolicy::DemandFirst, true, none),
        mech_arm("PADC", SchedulingPolicy::Padc, true, none),
        mech_arm("PADC-rank", SchedulingPolicy::PadcRank, true, none),
        mech_arm("PADC-batch", SchedulingPolicy::Padc, true, batch),
        mech_arm("PADC-rank-batch", SchedulingPolicy::PadcRank, true, batch),
    ]
}

/// Extension (beyond the paper): PAR-BS-style request batching layered on
/// PADC, compared against plain PADC and PADC-rank on the 4-core system.
pub fn ext_batching(exp: &ExpConfig) -> ExpTable {
    ext_batch_kind().tables(exp, ExecMode::Planned).remove(0)
}

pub(crate) fn ext_batch_kind() -> ExpKind {
    arm_set_kind(
        "ext-batch",
        "Extension: PAR-BS batching on top of PADC, 4-core",
        ext_batch_arms,
    )
}

fn ext_timing_arms() -> Vec<PolicyArm> {
    fn none(_: &mut SimConfig) {}
    fn ext(cfg: &mut SimConfig) {
        *cfg = cfg
            .clone()
            .with_extended_timing(padc_dram::ExtendedTiming::default());
    }
    vec![
        mech_arm("demand-first", SchedulingPolicy::DemandFirst, true, none),
        mech_arm("demand-first-ext", SchedulingPolicy::DemandFirst, true, ext),
        mech_arm("PADC", SchedulingPolicy::Padc, true, none),
        mech_arm("PADC-ext", SchedulingPolicy::Padc, true, ext),
    ]
}

/// Extension (beyond the paper): the full DDR3 constraint set
/// (tRAS/tWR/tRTP/tFAW/refresh) versus the paper's three-latency model.
pub fn ext_timing(exp: &ExpConfig) -> ExpTable {
    ext_timing_kind().tables(exp, ExecMode::Planned).remove(0)
}

pub(crate) fn ext_timing_kind() -> ExpKind {
    arm_set_kind(
        "ext-timing",
        "Extension: full DDR3 timing constraints vs the paper's model, 4-core",
        ext_timing_arms,
    )
}

fn ext_wdrain_arms() -> Vec<PolicyArm> {
    fn none(_: &mut SimConfig) {}
    fn wd(cfg: &mut SimConfig) {
        cfg.controller.write_drain = true;
    }
    vec![
        mech_arm("demand-first", SchedulingPolicy::DemandFirst, true, none),
        mech_arm(
            "demand-first-wdrain",
            SchedulingPolicy::DemandFirst,
            true,
            wd,
        ),
        mech_arm("PADC", SchedulingPolicy::Padc, true, none),
        mech_arm("PADC-wdrain", SchedulingPolicy::Padc, true, wd),
    ]
}

/// Extension (beyond the paper): watermark-based write-drain scheduling
/// versus the paper's writebacks-as-demands treatment.
pub fn ext_write_drain(exp: &ExpConfig) -> ExpTable {
    ext_wdrain_kind().tables(exp, ExecMode::Planned).remove(0)
}

pub(crate) fn ext_wdrain_kind() -> ExpKind {
    arm_set_kind(
        "ext-wdrain",
        "Extension: watermark write-drain vs writebacks-as-demands, 4-core",
        ext_wdrain_arms,
    )
}

/// The stream-vs-DSPatch arm sets: the same four base arms run under the
/// default stream prefetcher and under the DSPatch spatial prefetcher
/// (Bera et al., MICRO 2019; see PAPERS.md). DSPatch's dual-pattern
/// modulator changes its measured accuracy over time, which is exactly
/// the input PADC's APS/APD mechanisms key on — this set probes whether
/// PADC's win holds when the prefetcher's accuracy is itself adaptive.
fn ext_dspatch_sets() -> Vec<(&'static str, Vec<PolicyArm>)> {
    fn keep_stream(_: &mut SimConfig) {}
    fn set_dspatch(cfg: &mut SimConfig) {
        cfg.prefetcher = cfg.prefetcher.map(|_| PrefetcherKind::DsPatch);
    }
    let base: [(&'static str, SchedulingPolicy, bool); 4] = [
        ("no-pref", SchedulingPolicy::DemandFirst, false),
        ("demand-first", SchedulingPolicy::DemandFirst, true),
        (
            "demand-pref-equal",
            SchedulingPolicy::DemandPrefetchEqual,
            true,
        ),
        ("PADC", SchedulingPolicy::Padc, true),
    ];
    vec![
        ("stream", arms_with(&base, keep_stream)),
        ("dspatch", arms_with(&base, set_dspatch)),
    ]
}

fn ext_dspatch_plan(exp: &ExpConfig) -> Vec<SimUnit> {
    let workloads = mech_workloads(exp);
    let mut units = plan_alone_units(&workloads, exp);
    for (name, arms) in ext_dspatch_sets() {
        for arm in &arms {
            for w in &workloads {
                units.push(SimUnit::workload(arm, name, w, exp));
            }
        }
    }
    units
}

fn ext_dspatch_reduce(exp: &ExpConfig, results: &[UnitResult]) -> Vec<ExpTable> {
    let idx = UnitResults::new(results);
    ext_dspatch_sets()
        .into_iter()
        .map(|(name, arms)| {
            reduce_arm_set(
                &format!("ext-dspatch-{name}"),
                &format!("Extension: PADC under the {name} prefetcher, 4-core"),
                &arms,
                name,
                exp,
                &idx,
            )
        })
        .collect()
}

/// Extension (beyond the paper): PADC under the DSPatch dual-pattern
/// spatial prefetcher versus the paper's stream prefetcher, 4-core
/// averages (one table per prefetcher set).
pub fn ext_dspatch(exp: &ExpConfig) -> Vec<ExpTable> {
    ext_dspatch_kind().tables(exp, ExecMode::Planned)
}

pub(crate) fn ext_dspatch_kind() -> ExpKind {
    ExpKind::planned(ext_dspatch_plan, ext_dspatch_reduce)
}

/// The refresh-policy arm sets: demand-first and PADC run under each of
/// the three [`RefreshPolicy`] organizations with extended timing (and
/// therefore refresh) enabled. All-bank refresh blocks the whole channel
/// for t_RFC every t_REFI; per-bank staggers the windows so only one bank
/// at a time is out; DARP additionally pulls refreshes early into idle
/// banks (Chang et al.'s refresh-access parallelism; see PAPERS.md).
/// Refresh steals exactly the bank time prefetches would speculate into,
/// so this set probes whether PADC's win survives — and grows with — the
/// reclaimed refresh bandwidth.
fn ext_refresh_sets() -> Vec<(&'static str, Vec<PolicyArm>)> {
    fn all_bank(cfg: &mut SimConfig) {
        *cfg = cfg
            .clone()
            .with_extended_timing(padc_dram::ExtendedTiming::default())
            .with_refresh_policy(RefreshPolicy::AllBank);
    }
    fn per_bank(cfg: &mut SimConfig) {
        *cfg = cfg.clone().with_refresh_policy(RefreshPolicy::PerBank);
    }
    fn darp(cfg: &mut SimConfig) {
        *cfg = cfg.clone().with_refresh_policy(RefreshPolicy::Darp);
    }
    let base: [(&'static str, SchedulingPolicy, bool); 2] = [
        ("demand-first", SchedulingPolicy::DemandFirst, true),
        ("PADC", SchedulingPolicy::Padc, true),
    ];
    vec![
        ("all-bank", arms_with(&base, all_bank)),
        ("per-bank", arms_with(&base, per_bank)),
        ("darp", arms_with(&base, darp)),
    ]
}

fn ext_refresh_plan(exp: &ExpConfig) -> Vec<SimUnit> {
    let workloads = mech_workloads(exp);
    let mut units = plan_alone_units(&workloads, exp);
    for (name, arms) in ext_refresh_sets() {
        for arm in &arms {
            for w in &workloads {
                units.push(SimUnit::workload(arm, name, w, exp));
            }
        }
    }
    units
}

fn ext_refresh_reduce(exp: &ExpConfig, results: &[UnitResult]) -> Vec<ExpTable> {
    let idx = UnitResults::new(results);
    ext_refresh_sets()
        .into_iter()
        .map(|(name, arms)| {
            reduce_arm_set(
                &format!("ext-refresh-{name}"),
                &format!("Extension: PADC under {name} refresh, 4-core"),
                &arms,
                name,
                exp,
                &idx,
            )
        })
        .collect()
}

/// Extension (beyond the paper): demand-first and PADC under all-bank,
/// per-bank, and DARP refresh organizations, 4-core averages (one table
/// per refresh policy).
pub fn ext_refresh(exp: &ExpConfig) -> Vec<ExpTable> {
    ext_refresh_kind().tables(exp, ExecMode::Planned)
}

pub(crate) fn ext_refresh_kind() -> ExpKind {
    ExpKind::planned(ext_refresh_plan, ext_refresh_reduce)
}

/// Tables 1 and 2: the hardware-cost model, evaluated for the paper's
/// 1/2/4/8-core systems.
pub fn tab1_2_cost(_exp: &ExpConfig) -> ExpTable {
    let mut t = ExpTable::new(
        "cost",
        "PADC storage cost in bits (Tables 1-2); last column = % of L2 capacity",
        &["P", "PSC+PUC+PAR", "U", "ID", "AGE", "total", "%L2"],
    );
    for (cores, lines_per_core, req) in [
        (1u64, 16_384u64, 64u64), // 1MB single-core L2
        (2, 8_192, 64),
        (4, 8_192, 128),
        (8, 8_192, 256),
    ] {
        let c = cost::padc_storage(cores, lines_per_core, req);
        let l2_bytes = lines_per_core * cores * 64;
        t.push(
            format!("{cores}-core"),
            vec![
                c.p_bits as f64,
                (c.psc_bits + c.puc_bits + c.par_bits) as f64,
                c.urgent_bits as f64,
                c.id_bits as f64,
                c.age_bits as f64,
                c.total_bits() as f64,
                cost::fraction_of_l2(&c, l2_bytes) * 100.0,
            ],
        );
    }
    t
}

/// Table 6: the dynamic drop-threshold schedule.
pub fn tab6_thresholds(_exp: &ExpConfig) -> ExpTable {
    let d = DropThresholds::default();
    let mut t = ExpTable::new(
        "tab6",
        "Dynamic APD drop thresholds (cycles) by measured prefetch accuracy",
        &["drop_threshold"],
    );
    for (label, acc) in [
        ("0-10%", 0.05),
        ("10-30%", 0.20),
        ("30-70%", 0.50),
        ("70-100%", 0.85),
    ] {
        t.push(label, vec![d.threshold_for(acc) as f64]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn cost_table_matches_paper_totals() {
        let t = tab1_2_cost(&ExpConfig::at(Scale::Smoke));
        assert_eq!(t.get("4-core", "total"), Some(34_720.0));
        let pct = t.get("4-core", "%L2").unwrap();
        assert!((pct - 0.2).abs() < 0.05, "{pct}");
    }

    #[test]
    fn threshold_table_matches_table6() {
        let t = tab6_thresholds(&ExpConfig::at(Scale::Smoke));
        assert_eq!(t.get("0-10%", "drop_threshold"), Some(100.0));
        assert_eq!(t.get("70-100%", "drop_threshold"), Some(100_000.0));
    }

    #[test]
    fn ext_dspatch_plan_shares_alone_units_across_its_two_tables() {
        let exp = ExpConfig::at(Scale::Smoke);
        let units = ext_dspatch_plan(&exp);
        let alone_count = units.iter().filter(|u| u.key.variant == "alone").count();
        let workloads = mech_workloads(&exp);
        let distinct: std::collections::HashSet<_> = workloads
            .iter()
            .flat_map(|w| w.benchmarks.iter().map(|b| b.name.clone()))
            .collect();
        assert_eq!(
            alone_count,
            distinct.len(),
            "alone units planned once, not per table"
        );
        let keys: std::collections::HashSet<_> = units.iter().map(|u| u.key.clone()).collect();
        assert_eq!(
            keys.len(),
            units.len(),
            "duplicate unit keys in ext-dspatch plan"
        );
    }

    #[test]
    fn ext_dspatch_arms_swap_only_the_prefetcher_kind() {
        let sets = ext_dspatch_sets();
        let stream_padc = sets[0].1.last().unwrap().build(4);
        let dspatch_padc = sets[1].1.last().unwrap().build(4);
        assert_eq!(stream_padc.prefetcher, Some(PrefetcherKind::Stream));
        assert_eq!(dspatch_padc.prefetcher, Some(PrefetcherKind::DsPatch));
        // The no-pref arm stays prefetcher-less under both sets.
        assert_eq!(sets[1].1[0].build(4).prefetcher, None);
    }

    #[test]
    fn ext_refresh_arms_cover_all_three_policies_with_timing_on() {
        let sets = ext_refresh_sets();
        let policies: Vec<_> = sets
            .iter()
            .map(|(name, arms)| (*name, arms.last().unwrap().build(4)))
            .collect();
        assert_eq!(policies.len(), 3);
        for (name, cfg) in &policies {
            assert!(
                cfg.dram.extended.is_some(),
                "{name}: refresh arms need extended timing"
            );
        }
        assert_eq!(policies[0].1.dram.refresh_policy, RefreshPolicy::AllBank);
        assert_eq!(policies[1].1.dram.refresh_policy, RefreshPolicy::PerBank);
        assert_eq!(policies[2].1.dram.refresh_policy, RefreshPolicy::Darp);
    }

    #[test]
    fn ext_refresh_plan_shares_alone_units_across_its_three_tables() {
        let exp = ExpConfig::at(Scale::Smoke);
        let units = ext_refresh_plan(&exp);
        let alone_count = units.iter().filter(|u| u.key.variant == "alone").count();
        let workloads = mech_workloads(&exp);
        let distinct: std::collections::HashSet<_> = workloads
            .iter()
            .flat_map(|w| w.benchmarks.iter().map(|b| b.name.clone()))
            .collect();
        assert_eq!(
            alone_count,
            distinct.len(),
            "alone units planned once, not per table"
        );
        let keys: std::collections::HashSet<_> = units.iter().map(|u| u.key.clone()).collect();
        assert_eq!(
            keys.len(),
            units.len(),
            "duplicate unit keys in ext-refresh plan"
        );
    }

    #[test]
    fn fig28_plan_shares_alone_units_across_its_three_tables() {
        let exp = ExpConfig::at(Scale::Smoke);
        let units = fig28_plan(&exp);
        let alone_count = units.iter().filter(|u| u.key.variant == "alone").count();
        let workloads = mech_workloads(&exp);
        let distinct: std::collections::HashSet<_> = workloads
            .iter()
            .flat_map(|w| w.benchmarks.iter().map(|b| b.name.clone()))
            .collect();
        assert_eq!(
            alone_count,
            distinct.len(),
            "alone units planned once, not per table"
        );
        let keys: std::collections::HashSet<_> = units.iter().map(|u| u.key.clone()).collect();
        assert_eq!(keys.len(), units.len(), "duplicate unit keys in fig28 plan");
    }
}
