//! Interactions with other mechanisms: alternative prefetchers (Fig. 28),
//! DDPF and FDP (Figs. 29, 30), permutation-based interleaving (Fig. 31),
//! runahead execution (Fig. 32), and the hardware-cost tables (1, 2, 6).

use padc_core::{cost, DropThresholds, SchedulingPolicy};
use padc_dram::MappingScheme;
use padc_prefetch::PrefetcherKind;
use padc_workloads::random_workloads;

use crate::SimConfig;

use super::infra::{alone_ipcs, parallel_map, ExpConfig, ExpTable};

/// One arm of a mechanism comparison: label, base policy, prefetching
/// on/off, and a configuration mutation.
type MechanismArm = (String, SchedulingPolicy, bool, fn(&mut SimConfig));

/// Builds an arm list with a shared mutation applied on top of base
/// policies.
fn arms_with(
    labels_policies: &[(&'static str, SchedulingPolicy, bool)],
    mutate: fn(&mut SimConfig),
) -> Vec<MechanismArm> {
    labels_policies
        .iter()
        .map(|(l, p, pf)| (l.to_string(), *p, *pf, mutate))
        .collect()
}

fn run_arm_set(
    id: &str,
    title: &str,
    cores: usize,
    count: usize,
    arms: Vec<MechanismArm>,
    exp: &ExpConfig,
) -> ExpTable {
    let workloads = random_workloads(count, cores, exp.seed);
    let alone: Vec<Vec<f64>> = parallel_map(workloads.len(), |i| alone_ipcs(&workloads[i], exp));
    let mut t = ExpTable::new(id, title, &["WS", "HS", "UF", "traffic(lines)"]);
    for (label, policy, prefetch, mutate) in arms {
        let results: Vec<(f64, f64, f64, f64)> = parallel_map(workloads.len(), |i| {
            let w = &workloads[i];
            let mut cfg = SimConfig::new(w.cores(), policy);
            if !prefetch {
                cfg = cfg.without_prefetching();
            }
            cfg.max_instructions = exp.instructions;
            cfg.seed = exp.seed;
            mutate(&mut cfg);
            let r = crate::System::new(cfg, w.benchmarks.clone()).run();
            let ipcs: Vec<f64> = r.per_core.iter().map(|c| c.ipc()).collect();
            (
                crate::metrics::weighted_speedup(&ipcs, &alone[i]),
                crate::metrics::harmonic_speedup(&ipcs, &alone[i]),
                crate::metrics::unfairness(&ipcs, &alone[i]).min(100.0),
                r.traffic().total() as f64,
            )
        });
        let n = results.len().max(1) as f64;
        t.push(
            label,
            vec![
                results.iter().map(|r| r.0).sum::<f64>() / n,
                results.iter().map(|r| r.1).sum::<f64>() / n,
                results.iter().map(|r| r.2).sum::<f64>() / n,
                results.iter().map(|r| r.3).sum::<f64>() / n,
            ],
        );
    }
    t
}

/// Fig. 28: PADC under the stride, C/DC, and Markov prefetchers (plus the
/// stream default), 4-core averages.
pub fn fig28_prefetchers(exp: &ExpConfig) -> Vec<ExpTable> {
    fn set_stride(cfg: &mut SimConfig) {
        cfg.prefetcher = cfg.prefetcher.map(|_| PrefetcherKind::Stride);
    }
    fn set_cdc(cfg: &mut SimConfig) {
        cfg.prefetcher = cfg.prefetcher.map(|_| PrefetcherKind::Cdc);
    }
    fn set_markov(cfg: &mut SimConfig) {
        cfg.prefetcher = cfg.prefetcher.map(|_| PrefetcherKind::Markov);
    }
    let base: [(&'static str, SchedulingPolicy, bool); 4] = [
        ("no-pref", SchedulingPolicy::DemandFirst, false),
        ("demand-first", SchedulingPolicy::DemandFirst, true),
        (
            "demand-pref-equal",
            SchedulingPolicy::DemandPrefetchEqual,
            true,
        ),
        ("PADC", SchedulingPolicy::Padc, true),
    ];
    let mut out = Vec::new();
    for (name, mutate) in [
        ("stride", set_stride as fn(&mut SimConfig)),
        ("cdc", set_cdc),
        ("markov", set_markov),
    ] {
        out.push(run_arm_set(
            &format!("fig28-{name}"),
            &format!("PADC under the {name} prefetcher, 4-core"),
            4,
            exp.workloads_sweep,
            arms_with(&base, mutate),
            exp,
        ));
    }
    out
}

/// Fig. 29: DDPF and FDP combined with demand-first scheduling and with
/// APS; APD for comparison.
pub fn fig29_ddpf_fdp_demand_first(exp: &ExpConfig) -> ExpTable {
    fn none(_: &mut SimConfig) {}
    fn ddpf(cfg: &mut SimConfig) {
        cfg.ddpf = true;
    }
    fn fdp(cfg: &mut SimConfig) {
        cfg.fdp = true;
    }
    fn apd(cfg: &mut SimConfig) {
        cfg.controller.apd = true;
    }
    let arms: Vec<MechanismArm> = vec![
        (
            "demand-first".into(),
            SchedulingPolicy::DemandFirst,
            true,
            none,
        ),
        (
            "demand-first-ddpf".into(),
            SchedulingPolicy::DemandFirst,
            true,
            ddpf,
        ),
        (
            "demand-first-fdp".into(),
            SchedulingPolicy::DemandFirst,
            true,
            fdp,
        ),
        (
            "demand-first-apd".into(),
            SchedulingPolicy::DemandFirst,
            true,
            apd,
        ),
        ("aps-ddpf".into(), SchedulingPolicy::ApsOnly, true, ddpf),
        ("aps-fdp".into(), SchedulingPolicy::ApsOnly, true, fdp),
        ("aps-apd (PADC)".into(), SchedulingPolicy::Padc, true, none),
    ];
    run_arm_set(
        "fig29",
        "DDPF / FDP / APD with demand-first and APS, 4-core",
        4,
        exp.workloads_sweep,
        arms,
        exp,
    )
}

/// Fig. 30: DDPF and FDP combined with demand-prefetch-equal scheduling.
pub fn fig30_ddpf_fdp_equal(exp: &ExpConfig) -> ExpTable {
    fn none(_: &mut SimConfig) {}
    fn ddpf(cfg: &mut SimConfig) {
        cfg.ddpf = true;
    }
    fn fdp(cfg: &mut SimConfig) {
        cfg.fdp = true;
    }
    let arms: Vec<MechanismArm> = vec![
        (
            "demand-first".into(),
            SchedulingPolicy::DemandFirst,
            true,
            none,
        ),
        (
            "demand-pref-equal".into(),
            SchedulingPolicy::DemandPrefetchEqual,
            true,
            none,
        ),
        (
            "demand-pref-equal-ddpf".into(),
            SchedulingPolicy::DemandPrefetchEqual,
            true,
            ddpf,
        ),
        (
            "demand-pref-equal-fdp".into(),
            SchedulingPolicy::DemandPrefetchEqual,
            true,
            fdp,
        ),
        ("aps".into(), SchedulingPolicy::ApsOnly, true, none),
        ("aps-apd (PADC)".into(), SchedulingPolicy::Padc, true, none),
    ];
    run_arm_set(
        "fig30",
        "DDPF / FDP with demand-prefetch-equal, 4-core",
        4,
        exp.workloads_sweep,
        arms,
        exp,
    )
}

/// Fig. 31: permutation-based page interleaving with and without PADC.
pub fn fig31_permutation(exp: &ExpConfig) -> ExpTable {
    fn none(_: &mut SimConfig) {}
    fn perm(cfg: &mut SimConfig) {
        cfg.mapping = MappingScheme::Permutation;
    }
    let arms: Vec<MechanismArm> = vec![
        ("no-pref".into(), SchedulingPolicy::DemandFirst, false, none),
        (
            "no-pref-perm".into(),
            SchedulingPolicy::DemandFirst,
            false,
            perm,
        ),
        (
            "demand-first".into(),
            SchedulingPolicy::DemandFirst,
            true,
            none,
        ),
        (
            "demand-first-perm".into(),
            SchedulingPolicy::DemandFirst,
            true,
            perm,
        ),
        (
            "aps-only-perm".into(),
            SchedulingPolicy::ApsOnly,
            true,
            perm,
        ),
        ("PADC".into(), SchedulingPolicy::Padc, true, none),
        ("PADC-perm".into(), SchedulingPolicy::Padc, true, perm),
    ];
    run_arm_set(
        "fig31",
        "Permutation-based page interleaving, 4-core",
        4,
        exp.workloads_sweep,
        arms,
        exp,
    )
}

/// Fig. 32: runahead execution with and without PADC.
pub fn fig32_runahead(exp: &ExpConfig) -> ExpTable {
    fn none(_: &mut SimConfig) {}
    fn ra(cfg: &mut SimConfig) {
        cfg.core.runahead = true;
    }
    let arms: Vec<MechanismArm> = vec![
        ("no-pref".into(), SchedulingPolicy::DemandFirst, false, none),
        (
            "no-pref-ra".into(),
            SchedulingPolicy::DemandFirst,
            false,
            ra,
        ),
        (
            "demand-first".into(),
            SchedulingPolicy::DemandFirst,
            true,
            none,
        ),
        (
            "demand-first-ra".into(),
            SchedulingPolicy::DemandFirst,
            true,
            ra,
        ),
        ("aps-only-ra".into(), SchedulingPolicy::ApsOnly, true, ra),
        ("PADC".into(), SchedulingPolicy::Padc, true, none),
        ("PADC-ra".into(), SchedulingPolicy::Padc, true, ra),
    ];
    run_arm_set(
        "fig32",
        "Runahead execution, 4-core",
        4,
        exp.workloads_sweep,
        arms,
        exp,
    )
}

/// Extension (beyond the paper): PAR-BS-style request batching layered on
/// PADC, compared against plain PADC and PADC-rank on the 4-core system.
pub fn ext_batching(exp: &ExpConfig) -> ExpTable {
    fn none(_: &mut SimConfig) {}
    fn batch(cfg: &mut SimConfig) {
        cfg.controller.batching = true;
    }
    let arms: Vec<MechanismArm> = vec![
        (
            "demand-first".into(),
            SchedulingPolicy::DemandFirst,
            true,
            none,
        ),
        ("PADC".into(), SchedulingPolicy::Padc, true, none),
        ("PADC-rank".into(), SchedulingPolicy::PadcRank, true, none),
        ("PADC-batch".into(), SchedulingPolicy::Padc, true, batch),
        (
            "PADC-rank-batch".into(),
            SchedulingPolicy::PadcRank,
            true,
            batch,
        ),
    ];
    run_arm_set(
        "ext-batch",
        "Extension: PAR-BS batching on top of PADC, 4-core",
        4,
        exp.workloads_sweep,
        arms,
        exp,
    )
}

/// Extension (beyond the paper): the full DDR3 constraint set
/// (tRAS/tWR/tRTP/tFAW/refresh) versus the paper's three-latency model.
pub fn ext_timing(exp: &ExpConfig) -> ExpTable {
    fn none(_: &mut SimConfig) {}
    fn ext(cfg: &mut SimConfig) {
        cfg.dram.extended = Some(padc_dram::ExtendedTiming::default());
    }
    let arms: Vec<MechanismArm> = vec![
        (
            "demand-first".into(),
            SchedulingPolicy::DemandFirst,
            true,
            none,
        ),
        (
            "demand-first-ext".into(),
            SchedulingPolicy::DemandFirst,
            true,
            ext,
        ),
        ("PADC".into(), SchedulingPolicy::Padc, true, none),
        ("PADC-ext".into(), SchedulingPolicy::Padc, true, ext),
    ];
    run_arm_set(
        "ext-timing",
        "Extension: full DDR3 timing constraints vs the paper's model, 4-core",
        4,
        exp.workloads_sweep,
        arms,
        exp,
    )
}

/// Extension (beyond the paper): watermark-based write-drain scheduling
/// versus the paper's writebacks-as-demands treatment.
pub fn ext_write_drain(exp: &ExpConfig) -> ExpTable {
    fn none(_: &mut SimConfig) {}
    fn wd(cfg: &mut SimConfig) {
        cfg.controller.write_drain = true;
    }
    let arms: Vec<MechanismArm> = vec![
        (
            "demand-first".into(),
            SchedulingPolicy::DemandFirst,
            true,
            none,
        ),
        (
            "demand-first-wdrain".into(),
            SchedulingPolicy::DemandFirst,
            true,
            wd,
        ),
        ("PADC".into(), SchedulingPolicy::Padc, true, none),
        ("PADC-wdrain".into(), SchedulingPolicy::Padc, true, wd),
    ];
    run_arm_set(
        "ext-wdrain",
        "Extension: watermark write-drain vs writebacks-as-demands, 4-core",
        4,
        exp.workloads_sweep,
        arms,
        exp,
    )
}

/// Tables 1 and 2: the hardware-cost model, evaluated for the paper's
/// 1/2/4/8-core systems.
pub fn tab1_2_cost(_exp: &ExpConfig) -> ExpTable {
    let mut t = ExpTable::new(
        "cost",
        "PADC storage cost in bits (Tables 1-2); last column = % of L2 capacity",
        &["P", "PSC+PUC+PAR", "U", "ID", "AGE", "total", "%L2"],
    );
    for (cores, lines_per_core, req) in [
        (1u64, 16_384u64, 64u64), // 1MB single-core L2
        (2, 8_192, 64),
        (4, 8_192, 128),
        (8, 8_192, 256),
    ] {
        let c = cost::padc_storage(cores, lines_per_core, req);
        let l2_bytes = lines_per_core * cores * 64;
        t.push(
            format!("{cores}-core"),
            vec![
                c.p_bits as f64,
                (c.psc_bits + c.puc_bits + c.par_bits) as f64,
                c.urgent_bits as f64,
                c.id_bits as f64,
                c.age_bits as f64,
                c.total_bits() as f64,
                cost::fraction_of_l2(&c, l2_bytes) * 100.0,
            ],
        );
    }
    t
}

/// Table 6: the dynamic drop-threshold schedule.
pub fn tab6_thresholds(_exp: &ExpConfig) -> ExpTable {
    let d = DropThresholds::default();
    let mut t = ExpTable::new(
        "tab6",
        "Dynamic APD drop thresholds (cycles) by measured prefetch accuracy",
        &["drop_threshold"],
    );
    for (label, acc) in [
        ("0-10%", 0.05),
        ("10-30%", 0.20),
        ("30-70%", 0.50),
        ("70-100%", 0.85),
    ] {
        t.push(label, vec![d.threshold_for(acc) as f64]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_table_matches_paper_totals() {
        let t = tab1_2_cost(&ExpConfig::smoke());
        assert_eq!(t.get("4-core", "total"), Some(34_720.0));
        let pct = t.get("4-core", "%L2").unwrap();
        assert!((pct - 0.2).abs() < 0.05, "{pct}");
    }

    #[test]
    fn threshold_table_matches_table6() {
        let t = tab6_thresholds(&ExpConfig::smoke());
        assert_eq!(t.get("0-10%", "drop_threshold"), Some(100.0));
        assert_eq!(t.get("70-100%", "drop_threshold"), Some(100_000.0));
    }
}
