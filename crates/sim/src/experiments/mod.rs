//! One entry point per table and figure in the paper's evaluation (§6).
//!
//! Every experiment takes an [`ExpConfig`] controlling scale (instructions
//! per core, number of multiprogrammed workloads) and returns one or more
//! [`ExpTable`]s — the same rows/series the paper reports, printable as
//! aligned text. The `padc-bench` crate's `repro` binary maps subcommands
//! (`fig6`, `case2`, `tab7`, ...) onto these functions.
//!
//! Absolute numbers will not match the paper (its substrate was a
//! proprietary x86 simulator running SPEC traces; ours is a synthetic-trace
//! reproduction — see DESIGN.md), but the *shapes* — which policy wins
//! where, and by roughly what factor — are the reproduction target.

mod infra;
mod mechanisms;
mod micro;
mod multi;
pub mod registry;
mod single;
mod sweeps;

pub use infra::{ExpConfig, ExpTable, PolicyArm};
pub use mechanisms::{
    ext_batching, ext_timing, ext_write_drain, fig28_prefetchers, fig29_ddpf_fdp_demand_first,
    fig30_ddpf_fdp_equal, fig31_permutation, fig32_runahead, tab1_2_cost, tab6_thresholds,
};
pub use micro::{fig2_scheduling_example, fig4_service_time_and_phases};
pub use multi::{
    case_study, fig16_4core, fig17_8core, fig19_ranking_4core, fig20_ranking_8core,
    fig21_dual_controller_4core, fig22_dual_controller_8core, fig26_shared_l2_4core,
    fig27_shared_l2_8core, fig9_2core, tab10_identical_milc, tab8_urgency,
    tab9_identical_libquantum, CaseStudy,
};
pub use registry::{
    find, registry as experiment_registry, suite_jobs, suite_jobs_profiled, table_stash,
    Experiment, TableStash,
};
pub use single::{
    fig1_motivation, fig6_single_core_ipc, fig7_spl, fig8_traffic, tab5_characteristics, tab7_rbhu,
};
pub use sweeps::{fig23_row_buffer_sweep, fig24_closed_row, fig25_cache_sweep};
