//! One entry point per table and figure in the paper's evaluation (§6).
//!
//! Every experiment takes an [`ExpConfig`] controlling scale (instructions
//! per core, number of multiprogrammed workloads) and returns one or more
//! [`ExpTable`]s — the same rows/series the paper reports, printable as
//! aligned text. The `padc-bench` crate's `repro` binary maps subcommands
//! (`fig6`, `case2`, `tab7`, ...) onto these functions.
//!
//! Experiments execute through the two-phase plan/execute/reduce contract
//! ([`ExpKind`]): `plan` enumerates independent, deterministically-keyed
//! [`SimUnit`]s, the harness executes them (fanning out onto the shared
//! worker pool in [`ExecMode::Planned`]), and `reduce` folds the unit
//! results into tables after a per-experiment barrier — so result bytes
//! never depend on scheduling. A few non-grid experiments (fig2, fig4,
//! cost, tab6) keep the legacy monolithic path.
//!
//! Absolute numbers will not match the paper (its substrate was a
//! proprietary x86 simulator running SPEC traces; ours is a synthetic-trace
//! reproduction — see DESIGN.md), but the *shapes* — which policy wins
//! where, and by roughly what factor — are the reproduction target.

mod infra;
mod mechanisms;
mod micro;
mod multi;
pub mod registry;
mod single;
mod sweeps;
mod unit_cache;

pub use infra::{
    execute_units, plan_alone_units, single_run_stats, ExecMode, ExpConfig, ExpKind, ExpTable,
    PlannedExperiment, PolicyArm, Scale, SimUnit, UnitKey, UnitResult, UnitResults,
};
pub use mechanisms::{
    ext_batching, ext_dspatch, ext_refresh, ext_timing, ext_write_drain, fig28_prefetchers,
    fig29_ddpf_fdp_demand_first, fig30_ddpf_fdp_equal, fig31_permutation, fig32_runahead,
    tab1_2_cost, tab6_thresholds,
};
pub use micro::{fig2_scheduling_example, fig4_service_time_and_phases};
pub use multi::{
    case_study, fig16_4core, fig17_8core, fig19_ranking_4core, fig20_ranking_8core,
    fig21_dual_controller_4core, fig22_dual_controller_8core, fig26_shared_l2_4core,
    fig27_shared_l2_8core, fig9_2core, tab10_identical_milc, tab8_urgency,
    tab9_identical_libquantum, CaseStudy,
};
pub use registry::{
    find, registry as experiment_registry, suite_jobs, suite_jobs_profiled, suite_jobs_with,
    table_stash, Experiment, SuiteOptions, TableStash,
};
pub use single::{
    fig1_motivation, fig6_single_core_ipc, fig7_spl, fig8_traffic, tab5_characteristics, tab7_rbhu,
};
pub use sweeps::{ext_happy, fig23_row_buffer_sweep, fig24_closed_row, fig25_cache_sweep};
pub use unit_cache::{
    fingerprint as store_fingerprint, install_unit_store, set_unit_coalescing, unit_cache_stats,
    unit_store_installed, UnitCacheStats, RESULT_SCHEMA_VERSION,
};
#[doc(hidden)]
pub use unit_cache::{reset_memory_cells, uninstall_unit_store};
