//! Experiment registry: every reproduction entry point as a self-describing
//! record, plus the adapter that turns registry entries into
//! [`padc_harness::JobSpec`]s for parallel, fault-isolated execution.
//!
//! The registry used to live in `padc-bench`; it moved here so that both
//! CLIs (`repro` in `padc-bench`, `padcsim --suite` in this crate) and the
//! benches enumerate the *same* experiment list. `padc-bench` re-exports
//! these items, so existing `padc_bench::{registry, find}` callers are
//! unaffected.
//!
//! Since the plan/execute/reduce redesign an entry carries an [`ExpKind`]
//! instead of a monolithic runner: grid experiments expose their plan of
//! independent [`SimUnit`](super::SimUnit)s, which the suite jobs fan out
//! onto the shared harness pool, while the few non-grid experiments
//! (fig2, fig4, cost, tab6) keep the monolithic path.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use padc_harness::JobSpec;

use super::infra::ExecMode;
use super::{self as exp, CaseStudy, ExpConfig, ExpKind, ExpTable};

/// Every reproducible artifact: id, paper reference, and how it executes.
pub struct Experiment {
    /// Harness id (`fig6`, `case2`, `tab7`, ...).
    pub id: &'static str,
    /// What the paper calls it.
    pub paper_ref: &'static str,
    /// The execution contract: planned (plan/execute/reduce) or monolithic.
    pub kind: ExpKind,
}

impl Experiment {
    /// Runs the experiment in the default (planned) execution mode.
    pub fn tables(&self, cfg: &ExpConfig) -> Vec<ExpTable> {
        self.tables_with(cfg, ExecMode::default())
    }

    /// Runs the experiment in an explicit execution mode. Both modes
    /// produce identical tables; `Monolithic` is the inline compatibility
    /// path the determinism gate byte-diffs against.
    pub fn tables_with(&self, cfg: &ExpConfig, mode: ExecMode) -> Vec<ExpTable> {
        self.kind.tables(cfg, mode)
    }
}

macro_rules! single_table {
    ($f:path) => {{
        fn runner(c: &ExpConfig) -> Vec<ExpTable> {
            vec![$f(c)]
        }
        ExpKind::Monolithic(runner)
    }};
}

/// The full experiment registry, in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig1",
            paper_ref: "Figure 1 (motivation: rigid policies)",
            kind: exp::single::fig1_kind(),
        },
        Experiment {
            id: "fig2",
            paper_ref: "Figure 2 (scheduling example timelines)",
            kind: single_table!(exp::fig2_scheduling_example),
        },
        Experiment {
            id: "fig4",
            paper_ref: "Figure 4 (service-time histogram; accuracy phases)",
            kind: ExpKind::Monolithic(exp::fig4_service_time_and_phases),
        },
        Experiment {
            id: "fig6",
            paper_ref: "Figure 6 (single-core IPC, 5 policies)",
            kind: exp::single::fig6_kind(),
        },
        Experiment {
            id: "fig7",
            paper_ref: "Figure 7 (stall time per load)",
            kind: exp::single::fig7_kind(),
        },
        Experiment {
            id: "fig8",
            paper_ref: "Figure 8 (bus traffic breakdown)",
            kind: exp::single::fig8_kind(),
        },
        Experiment {
            id: "tab5",
            paper_ref: "Table 5 (benchmark characteristics)",
            kind: exp::single::tab5_kind(),
        },
        Experiment {
            id: "tab7",
            paper_ref: "Table 7 (RBHU)",
            kind: exp::single::tab7_kind(),
        },
        Experiment {
            id: "fig9",
            paper_ref: "Figure 9 (2-core aggregate)",
            kind: exp::multi::fig9_kind(),
        },
        Experiment {
            id: "case1",
            paper_ref: "Figures 10-11 (case study I: all prefetch-friendly)",
            kind: exp::multi::case_kind(CaseStudy::AllFriendly),
        },
        Experiment {
            id: "case2",
            paper_ref: "Figures 12-13 (case study II: all prefetch-unfriendly)",
            kind: exp::multi::case_kind(CaseStudy::AllUnfriendly),
        },
        Experiment {
            id: "case3",
            paper_ref: "Figures 14-15 (case study III: mixed)",
            kind: exp::multi::case_kind(CaseStudy::Mixed),
        },
        Experiment {
            id: "tab8",
            paper_ref: "Table 8 (urgency ablation)",
            kind: exp::multi::tab8_kind(),
        },
        Experiment {
            id: "tab9",
            paper_ref: "Table 9 (4x libquantum)",
            kind: exp::multi::tab9_kind(),
        },
        Experiment {
            id: "tab10",
            paper_ref: "Table 10 (4x milc)",
            kind: exp::multi::tab10_kind(),
        },
        Experiment {
            id: "fig16",
            paper_ref: "Figure 16 (4-core aggregate)",
            kind: exp::multi::fig16_kind(),
        },
        Experiment {
            id: "fig17",
            paper_ref: "Figure 17 (8-core aggregate)",
            kind: exp::multi::fig17_kind(),
        },
        Experiment {
            id: "fig19",
            paper_ref: "Figure 19 (ranking, 4-core)",
            kind: exp::multi::fig19_kind(),
        },
        Experiment {
            id: "fig20",
            paper_ref: "Figure 20 (ranking, 8-core)",
            kind: exp::multi::fig20_kind(),
        },
        Experiment {
            id: "fig21",
            paper_ref: "Figure 21 (dual controllers, 4-core)",
            kind: exp::multi::fig21_kind(),
        },
        Experiment {
            id: "fig22",
            paper_ref: "Figure 22 (dual controllers, 8-core)",
            kind: exp::multi::fig22_kind(),
        },
        Experiment {
            id: "fig23",
            paper_ref: "Figure 23 (row-buffer size sweep)",
            kind: exp::sweeps::fig23_kind(),
        },
        Experiment {
            id: "fig24",
            paper_ref: "Figure 24 (closed-row policy)",
            kind: exp::sweeps::fig24_kind(),
        },
        Experiment {
            id: "fig25",
            paper_ref: "Figure 25 (L2 size sweep)",
            kind: exp::sweeps::fig25_kind(),
        },
        Experiment {
            id: "fig26",
            paper_ref: "Figure 26 (shared L2, 4-core)",
            kind: exp::multi::fig26_kind(),
        },
        Experiment {
            id: "fig27",
            paper_ref: "Figure 27 (shared L2, 8-core)",
            kind: exp::multi::fig27_kind(),
        },
        Experiment {
            id: "fig28",
            paper_ref: "Figure 28 (stride / C/DC / Markov prefetchers)",
            kind: exp::mechanisms::fig28_kind(),
        },
        Experiment {
            id: "fig29",
            paper_ref: "Figure 29 (DDPF/FDP with demand-first and APS)",
            kind: exp::mechanisms::fig29_kind(),
        },
        Experiment {
            id: "fig30",
            paper_ref: "Figure 30 (DDPF/FDP with demand-pref-equal)",
            kind: exp::mechanisms::fig30_kind(),
        },
        Experiment {
            id: "fig31",
            paper_ref: "Figure 31 (permutation-based interleaving)",
            kind: exp::mechanisms::fig31_kind(),
        },
        Experiment {
            id: "fig32",
            paper_ref: "Figure 32 (runahead execution)",
            kind: exp::mechanisms::fig32_kind(),
        },
        Experiment {
            id: "ext-batch",
            paper_ref: "Extension: PAR-BS batching on PADC",
            kind: exp::mechanisms::ext_batch_kind(),
        },
        Experiment {
            id: "ext-timing",
            paper_ref: "Extension: full DDR3 timing constraints",
            kind: exp::mechanisms::ext_timing_kind(),
        },
        Experiment {
            id: "ext-wdrain",
            paper_ref: "Extension: watermark write-drain scheduling",
            kind: exp::mechanisms::ext_wdrain_kind(),
        },
        Experiment {
            id: "ext-dspatch",
            paper_ref: "Extension: DSPatch dual-pattern prefetcher under PADC",
            kind: exp::mechanisms::ext_dspatch_kind(),
        },
        Experiment {
            id: "ext-happy",
            paper_ref: "Extension: HAPPY hybrid page policy",
            kind: exp::sweeps::ext_happy_kind(),
        },
        Experiment {
            id: "ext-refresh",
            paper_ref: "Extension: per-bank refresh and DARP refresh-access parallelism",
            kind: exp::mechanisms::ext_refresh_kind(),
        },
        Experiment {
            id: "cost",
            paper_ref: "Tables 1-2 (hardware cost)",
            kind: single_table!(exp::tab1_2_cost),
        },
        Experiment {
            id: "tab6",
            paper_ref: "Table 6 (drop thresholds)",
            kind: single_table!(exp::tab6_thresholds),
        },
    ]
}

/// Finds an experiment by id.
pub fn find(id: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.id == id)
}

/// Shared stash the suite jobs fill with their rendered tables, so callers
/// can print human-readable output after the parallel run (JSONL payloads
/// carry the same tables as JSON).
pub type TableStash = Arc<Mutex<HashMap<String, Vec<ExpTable>>>>;

/// Creates an empty [`TableStash`].
pub fn table_stash() -> TableStash {
    Arc::new(Mutex::new(HashMap::new()))
}

/// Options for [`suite_jobs_with`].
#[derive(Clone, Copy, Default)]
pub struct SuiteOptions {
    /// Append a hot-path `"profile"` object to each payload.
    pub profile: bool,
    /// How planned experiments execute their units.
    pub exec: ExecMode,
}

/// Adapts registry entries into harness jobs (planned execution, no
/// profiling).
///
/// Each job runs its experiment at `cfg` scale and returns the payload
/// `{"paper_ref":...,"tables":[...]}` as compact JSON. When `stash` is
/// given, the job also deposits its `Vec<ExpTable>` there (keyed by id)
/// for post-run rendering.
pub fn suite_jobs(
    experiments: Vec<Experiment>,
    cfg: ExpConfig,
    stash: Option<TableStash>,
) -> Vec<JobSpec> {
    suite_jobs_with(experiments, cfg, stash, SuiteOptions::default())
}

/// [`suite_jobs`] with profiling toggled (`padcsim --suite --profile`).
pub fn suite_jobs_profiled(
    experiments: Vec<Experiment>,
    cfg: ExpConfig,
    stash: Option<TableStash>,
    profile: bool,
) -> Vec<JobSpec> {
    suite_jobs_with(
        experiments,
        cfg,
        stash,
        SuiteOptions {
            profile,
            ..SuiteOptions::default()
        },
    )
}

/// The fully-parameterized job adapter.
///
/// In the default `Planned` mode each experiment's units fan out as
/// first-class sub-jobs on the shared worker pool, so `--jobs N`
/// load-balances across all units of all experiments; the experiment's
/// `reduce` runs after its own unit barrier, so payload bytes never
/// depend on scheduling. `Monolithic` mode runs every unit inline in plan
/// order — the compatibility path for non-grid experiments and for the
/// determinism gate's planned-vs-monolithic byte-diff.
///
/// When `opts.profile` is set, every job installs a fresh
/// [`ProfileAccum`](crate::profile::ProfileAccum) as the harness task
/// context for the duration of its experiment, so each `System::run` the
/// experiment performs — including runs fanned out over `subjob_map` —
/// folds its counters into that experiment's accumulator. Profiled
/// payloads are **not** byte-stable across runs (wall-clock fields), which
/// is why the determinism gates exercise the unprofiled path.
pub fn suite_jobs_with(
    experiments: Vec<Experiment>,
    cfg: ExpConfig,
    stash: Option<TableStash>,
    opts: SuiteOptions,
) -> Vec<JobSpec> {
    experiments
        .into_iter()
        .map(|e| {
            let stash = stash.clone();
            JobSpec::new(e.id, e.paper_ref, move || {
                let (tables, prof) = if opts.profile {
                    let acc = crate::profile::new_accum();
                    let tables = padc_harness::with_task_context(acc.clone(), || {
                        e.tables_with(&cfg, opts.exec)
                    });
                    (tables, Some(acc.to_json()))
                } else {
                    (e.tables_with(&cfg, opts.exec), None)
                };
                let payload = payload_json(e.paper_ref, &tables, prof.as_deref());
                if let Some(s) = &stash {
                    s.lock()
                        .expect("stash lock")
                        .insert(e.id.to_string(), tables);
                }
                payload
            })
        })
        .collect()
}

/// Renders one job payload: paper reference plus the experiment's tables,
/// plus the optional profile object (appended last so payload prefixes
/// stay stable).
fn payload_json(paper_ref: &str, tables: &[ExpTable], profile: Option<&str>) -> String {
    let profile = match profile {
        Some(p) => format!(",\"profile\":{p}"),
        None => String::new(),
    };
    format!(
        "{{\"paper_ref\":{},\"tables\":{}{profile}}}",
        serde_json::to_string(&paper_ref.to_string()).expect("string serializes"),
        serde_json::to_string(&tables.to_vec()).expect("tables serialize"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn registry_covers_all_paper_artifacts() {
        let ids: Vec<&str> = registry().iter().map(|e| e.id).collect();
        for required in [
            "fig1", "fig2", "fig4", "fig6", "fig7", "fig8", "fig9", "fig16", "fig17", "fig19",
            "fig20", "fig21", "fig22", "fig23", "fig24", "fig25", "fig26", "fig27", "fig28",
            "fig29", "fig30", "fig31", "fig32", "tab5", "tab6", "tab7", "tab8", "tab9", "tab10",
            "case1", "case2", "case3", "cost",
        ] {
            assert!(ids.contains(&required), "missing {required}");
        }
    }

    #[test]
    fn registry_ids_are_unique() {
        let mut ids: Vec<&str> = registry().iter().map(|e| e.id).collect();
        let total = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), total, "duplicate experiment ids in registry");
    }

    #[test]
    fn find_resolves_known_ids() {
        assert!(find("fig6").is_some());
        assert!(find("nonesuch").is_none());
    }

    #[test]
    fn grid_experiments_are_planned_and_pure_ones_are_not() {
        for id in ["fig1", "fig6", "fig9", "fig16", "fig23", "fig28", "tab8"] {
            assert!(
                find(id).unwrap().kind.is_planned(),
                "{id} should be planned"
            );
        }
        for id in ["fig2", "fig4", "cost", "tab6"] {
            assert!(
                !find(id).unwrap().kind.is_planned(),
                "{id} should be monolithic"
            );
        }
    }

    #[test]
    fn tiny_experiments_run_end_to_end() {
        let cfg = ExpConfig::at(Scale::Smoke);
        for id in ["fig2", "cost", "tab6"] {
            let e = find(id).unwrap();
            let tables = e.tables(&cfg);
            assert!(!tables.is_empty(), "{id} produced no tables");
        }
    }

    #[test]
    fn planned_and_monolithic_modes_produce_identical_tables() {
        let cfg = ExpConfig::at(Scale::Smoke);
        let e = find("fig9").unwrap();
        let planned = serde_json::to_string(&e.tables_with(&cfg, ExecMode::Planned)).unwrap();
        let monolithic = serde_json::to_string(&e.tables_with(&cfg, ExecMode::Monolithic)).unwrap();
        assert_eq!(planned, monolithic);
    }

    #[test]
    fn suite_jobs_mirror_the_registry_and_stash_tables() {
        let stash = table_stash();
        let jobs = suite_jobs(
            vec![find("cost").unwrap()],
            ExpConfig::at(Scale::Smoke),
            Some(stash.clone()),
        );
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].id, "cost");
        let payload = (jobs[0].run)();
        assert!(payload.starts_with("{\"paper_ref\":\"Tables 1-2 (hardware cost)\""));
        let parsed = serde_json::parse(&payload).expect("payload is valid JSON");
        assert!(parsed.get("tables").and_then(|t| t.as_array()).is_some());
        assert!(
            parsed.get("profile").is_none(),
            "unprofiled payloads must not carry a profile object"
        );
        assert!(stash.lock().unwrap().contains_key("cost"));
    }

    #[test]
    fn profiled_jobs_append_a_profile_object() {
        let jobs = suite_jobs_profiled(
            vec![find("fig1").unwrap()],
            ExpConfig::at(Scale::Smoke),
            None,
            true,
        );
        let payload = (jobs[0].run)();
        assert!(payload.starts_with("{\"paper_ref\":"));
        let parsed = serde_json::parse(&payload).expect("payload is valid JSON");
        let profile = parsed.get("profile").expect("profile object appended");
        let runs = profile
            .get("runs")
            .and_then(|r| r.as_f64())
            .expect("runs counter");
        assert!(runs > 0.0, "no simulation runs folded into the profile");
        for key in ["cycles_stepped", "ff_jumps", "ff_cycles_skipped", "wall_ns"] {
            assert!(profile.get(key).is_some(), "profile misses {key}");
        }
    }
}
