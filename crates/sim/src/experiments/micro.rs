//! Micro-scale experiments: the Fig. 2 scheduling example and the Fig. 4
//! service-time/phase-behaviour measurements.

use padc_core::{AccuracyTracker, ControllerConfig, MemoryController, SchedulingPolicy};
use padc_dram::{DramConfig, MappingScheme};
use padc_types::{AccessKind, CoreId, Cycle, LineAddr, RequestKind};
use padc_workloads::profiles;

use crate::{SimConfig, System};

use super::infra::{ExpConfig, ExpTable};

/// Fig. 2: the paper's three-request example. Two prefetches (X, Z) target
/// the currently open row; one demand (Y) conflicts. Under demand-first the
/// demand's precharge destroys the open row; under demand-prefetch-equal
/// the two row-hit prefetches are serviced first. The table reports the
/// completion time of each request and the final completion time under both
/// policies — reproducing the 725- vs 575-cycle contrast at our timing
/// parameters.
pub fn fig2_scheduling_example(_exp: &ExpConfig) -> ExpTable {
    let mut t = ExpTable::new(
        "fig2",
        "Rigid-policy example: completion cycles of X/Z (row-hit prefetches) and Y (row-conflict demand)",
        &["X (pref, row A)", "Y (dem, row B)", "Z (pref, row A)", "all done"],
    );
    for policy in [
        SchedulingPolicy::DemandFirst,
        SchedulingPolicy::DemandPrefetchEqual,
    ] {
        let dram = DramConfig::default();
        let lpr = dram.lines_per_row();
        let mut mc = MemoryController::new(
            ControllerConfig::from_policy(policy, 1),
            dram.clone(),
            MappingScheme::Linear,
        );
        let tracker = AccuracyTracker::new(1, 100_000);
        let core = CoreId::new(0);
        // Open row A (row 0 of bank 0) by servicing a dummy demand first.
        mc.enqueue(
            core,
            LineAddr::new(0),
            AccessKind::Load,
            RequestKind::Demand,
            0,
        )
        .expect("space");
        let mut now: Cycle = 0;
        while !mc.is_idle() {
            mc.tick(now, &tracker);
            now += 1;
        }
        let start = now;
        // X and Z: prefetches to row A. Y: demand to row B (same bank).
        let x = mc
            .enqueue(
                core,
                LineAddr::new(1),
                AccessKind::Load,
                RequestKind::Prefetch,
                start,
            )
            .expect("space");
        let y = mc
            .enqueue(
                core,
                LineAddr::new(lpr * 8), // same bank, different row
                AccessKind::Load,
                RequestKind::Demand,
                start,
            )
            .expect("space");
        let z = mc
            .enqueue(
                core,
                LineAddr::new(2),
                AccessKind::Load,
                RequestKind::Prefetch,
                start,
            )
            .expect("space");
        let (mut tx, mut ty, mut tz) = (0u64, 0u64, 0u64);
        while !mc.is_idle() {
            for c in mc.tick(now, &tracker).completions {
                let done = now - start;
                if c.request.id == x {
                    tx = done;
                } else if c.request.id == y {
                    ty = done;
                } else if c.request.id == z {
                    tz = done;
                }
            }
            now += 1;
        }
        t.push(
            policy.label(),
            vec![tx as f64, ty as f64, tz as f64, tx.max(ty).max(tz) as f64],
        );
    }
    t
}

/// Fig. 4: (a) the service-time histogram of useful vs useless prefetches
/// for milc under demand-first, and (b) milc's prefetch-accuracy phase
/// behaviour sampled at every measurement interval.
pub fn fig4_service_time_and_phases(exp: &ExpConfig) -> Vec<ExpTable> {
    let mut cfg = SimConfig::single_core(SchedulingPolicy::DemandFirst);
    // Long enough to cross a full phase cycle of the milc profile (1M
    // instructions), so the accuracy collapse AND recovery both show.
    cfg.max_instructions = (exp.instructions_single * 2).max(1_600_000);
    cfg.seed = exp.seed;
    let mut sys = System::new(cfg, vec![profiles::milc()]);

    let mut phases = ExpTable::new(
        "fig4b",
        "milc prefetch accuracy (PAR) over time (sampled every 500K cycles)",
        &["accuracy"],
    );
    let mut next_sample = 500_000;
    while !sys.finished() && sys.now() < 100_000_000 {
        sys.step();
        if sys.now() >= next_sample {
            phases.push(
                format!("{}K cycles", next_sample / 1000),
                vec![sys.accuracy(0)],
            );
            next_sample += 500_000;
        }
    }
    let report = sys.report();

    let mut hist = ExpTable::new(
        "fig4a",
        "milc prefetch memory-service-time histogram (counts)",
        &["useful", "useless"],
    );
    let labels = [
        "0-200",
        "201-400",
        "401-600",
        "601-800",
        "801-1000",
        "1001-1200",
        "1201-1400",
        "1401-1600",
        "1601+",
    ];
    for (i, label) in labels.iter().enumerate() {
        hist.push(
            *label,
            vec![
                report.pf_service_hist_useful[i] as f64,
                report.pf_service_hist_useless[i] as f64,
            ],
        );
    }
    vec![hist, phases]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_reproduces_the_policy_contrast() {
        let t = fig2_scheduling_example(&ExpConfig::at(crate::experiments::Scale::Smoke));
        // Under demand-first, the conflicting demand finishes first...
        let df_y = t.get("demand-first", "Y (dem, row B)").unwrap();
        let df_x = t.get("demand-first", "X (pref, row A)").unwrap();
        assert!(df_y < df_x, "demand-first must service Y before X");
        // ...under equal treatment, the row-hit prefetches go first and the
        // *total* service time shrinks (the paper's 725 vs 575 contrast).
        let eq_y = t.get("demand-pref-equal", "Y (dem, row B)").unwrap();
        let eq_x = t.get("demand-pref-equal", "X (pref, row A)").unwrap();
        assert!(eq_x < eq_y, "equal must service the row-hit prefetch first");
        let df_total = t.get("demand-first", "all done").unwrap();
        let eq_total = t.get("demand-pref-equal", "all done").unwrap();
        assert!(
            eq_total < df_total,
            "equal finishes all three sooner ({eq_total} vs {df_total})"
        );
    }
}
