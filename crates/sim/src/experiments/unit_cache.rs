//! Content-addressed unit cache: the layer between [`execute_units`] and
//! the disk store.
//!
//! When active, every planned [`SimUnit`] resolves through a process-wide
//! claim map keyed by the SHA-256 digest of the unit's *store meta* — the
//! simulator fingerprint plus the full result-shaping inputs (see
//! [`SimUnit::store_meta`] and DESIGN.md §12). Resolution happens **before**
//! any fan-out:
//!
//! 1. A digest already `Done` in memory (or `InFlight` on another thread)
//!    is coalesced — it never probes the disk nor schedules a sub-job.
//!    Concurrent identical requests through `padcsim serve` therefore
//!    compute each unit once.
//! 2. An unclaimed digest probes the installed [`Store`], strictly: the
//!    entry must validate byte-for-byte against today's meta *and* its
//!    payload must parse as a [`Report`], or it is treated as a miss and
//!    recomputed (the PR 2 resume posture — disk is never trusted).
//! 3. Only the remaining misses are scheduled (fanned out in
//!    [`ExecMode::Planned`], inline in `Monolithic`), so a fully warm run
//!    executes **zero** simulation units. Completed misses are written
//!    back with an atomic put.
//!
//! A panicking compute resets its claim to `Empty` and wakes waiters, the
//! first of which adopts the claim and recomputes inline — a poisoned
//! entry or injected failure can never wedge a waiter.
//!
//! The cache is **off by default**: without a store installed (and outside
//! serve mode) `execute_units` takes the exact legacy path, keeping the
//! established scheduler telemetry (`subjobs_executed`, single-run memo
//! floors) untouched. Reports are exact-integer JSON, so a cache round
//! trip is byte-lossless and cold/warm/no-store artifacts are
//! byte-identical — `scripts/determinism_gate.sh` enforces this.

use std::collections::HashMap;
use std::io;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use padc_store::{digest_hex, Store};

use super::infra::{parallel_map, ExecMode, SimUnit};
use crate::Report;

/// Bumped whenever a change alters simulation results without changing
/// `SimConfig` bytes (new mechanism semantics, trace-generation tweaks,
/// metric accounting fixes). Part of every entry's fingerprint, so stale
/// stores invalidate wholesale instead of serving wrong results.
pub const RESULT_SCHEMA_VERSION: u32 = 1;

/// The code fingerprint stamped into every store entry's meta document.
pub fn fingerprint() -> String {
    format!(
        "padc-sim {} result-v{RESULT_SCHEMA_VERSION}",
        env!("CARGO_PKG_VERSION")
    )
}

/// Point-in-time snapshot of the cache counters (monotonic over the
/// process lifetime; diff two snapshots for a per-run view).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnitCacheStats {
    /// Units resolved from a validated disk entry.
    pub store_hits: u64,
    /// Units that probed the store and had to be computed (counted only
    /// while a store is installed).
    pub store_misses: u64,
    /// Units resolved from (or parked on) an in-memory claim another
    /// request already owned — the serve-mode dedup win.
    pub units_coalesced: u64,
}

static STORE_HITS: AtomicU64 = AtomicU64::new(0);
static STORE_MISSES: AtomicU64 = AtomicU64::new(0);
static UNITS_COALESCED: AtomicU64 = AtomicU64::new(0);

/// Current counter values.
pub fn unit_cache_stats() -> UnitCacheStats {
    UnitCacheStats {
        store_hits: STORE_HITS.load(Ordering::Relaxed),
        store_misses: STORE_MISSES.load(Ordering::Relaxed),
        units_coalesced: UNITS_COALESCED.load(Ordering::Relaxed),
    }
}

/// Serve mode forces the in-memory claim map on even without a disk store.
static COALESCING: AtomicBool = AtomicBool::new(false);

/// Enables (or disables) in-memory unit coalescing independently of a
/// store — `padcsim serve` turns this on so concurrent requests share
/// in-flight units.
pub fn set_unit_coalescing(enabled: bool) {
    COALESCING.store(enabled, Ordering::Relaxed);
}

fn installed_store() -> Option<Arc<Store>> {
    store_slot().lock().expect("store slot poisoned").clone()
}

fn store_slot() -> &'static Mutex<Option<Arc<Store>>> {
    static STORE: OnceLock<Mutex<Option<Arc<Store>>>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(None))
}

/// Opens (creating if needed) the store at `dir` and installs it
/// process-wide; subsequent [`crate::experiments::execute_units`] calls resolve units through
/// it. The `--store DIR` / `PADC_STORE` wiring in `repro` and `padcsim`.
///
/// # Errors
///
/// Returns any error from creating the store directory.
pub fn install_unit_store(dir: &Path) -> io::Result<()> {
    let store = Store::open(dir)?;
    *store_slot().lock().expect("store slot poisoned") = Some(Arc::new(store));
    Ok(())
}

/// True when a disk store is installed.
pub fn unit_store_installed() -> bool {
    installed_store().is_some()
}

/// Uninstalls the store (tests switch store directories within one
/// process; production binaries install once and never call this).
#[doc(hidden)]
pub fn uninstall_unit_store() {
    *store_slot().lock().expect("store slot poisoned") = None;
}

/// Forgets every settled in-memory claim, forcing the next resolution of
/// each digest back to the disk store. Simulates a fresh process in
/// same-process tests of cold/warm behavior.
#[doc(hidden)]
pub fn reset_memory_cells() {
    cells().lock().expect("cell map poisoned").clear();
}

/// Whether `execute_units` should resolve through the cache at all.
pub(crate) fn active() -> bool {
    COALESCING.load(Ordering::Relaxed) || unit_store_installed()
}

enum CellState {
    /// No owner; the next requester claims it.
    Empty,
    /// A requester owns the compute; others park on the condvar.
    InFlight,
    /// Settled result, shared by clone (boxed: a `Report` is ~300 bytes
    /// and the other variants are zero-sized).
    Done(Box<Report>),
}

struct Cell {
    state: Mutex<CellState>,
    /// Signalled on `InFlight` → `Done` and on panic rollback to `Empty`.
    settled: Condvar,
}

fn cells() -> &'static Mutex<HashMap<String, Arc<Cell>>> {
    static CELLS: OnceLock<Mutex<HashMap<String, Arc<Cell>>>> = OnceLock::new();
    CELLS.get_or_init(|| Mutex::new(HashMap::new()))
}

fn cell_for(digest: &str) -> Arc<Cell> {
    let mut map = cells().lock().expect("cell map poisoned");
    Arc::clone(map.entry(digest.to_string()).or_insert_with(|| {
        Arc::new(Cell {
            state: Mutex::new(CellState::Empty),
            settled: Condvar::new(),
        })
    }))
}

/// An owned claim: this thread must either settle the cell with a report
/// or roll it back to `Empty`.
struct Claim {
    cell: Arc<Cell>,
    digest: String,
    meta: String,
}

/// Computes a claimed unit, writes the result through to the store, and
/// settles the claim. On panic the claim rolls back to `Empty` (waking a
/// waiter to adopt it) and the panic resumes — surfacing through the
/// owning job's `catch_unwind` as usual.
fn compute_owned(unit: &SimUnit, claim: &Claim) -> Report {
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| unit.execute()));
    match outcome {
        Ok(report) => {
            if let Some(store) = installed_store() {
                if let Ok(json) = serde_json::to_string(&report) {
                    // Best-effort: a full disk or unwritable store degrades
                    // to recomputation, never to failure.
                    let _ = store.put(&claim.digest, &claim.meta, &json);
                }
            }
            let mut st = claim.cell.state.lock().expect("cell poisoned");
            *st = CellState::Done(Box::new(report.clone()));
            claim.cell.settled.notify_all();
            report
        }
        Err(payload) => {
            let mut st = claim.cell.state.lock().expect("cell poisoned");
            *st = CellState::Empty;
            claim.cell.settled.notify_all();
            drop(st);
            panic::resume_unwind(payload)
        }
    }
}

/// Claims `digest`'s cell for this thread, resolving it from the store if
/// possible. Returns the settled report, a [`Claim`] to compute, or `None`
/// when another thread owns the in-flight compute.
fn try_resolve(digest: &str, meta: &str, cell: &Arc<Cell>) -> Resolution {
    let mut st = cell.state.lock().expect("cell poisoned");
    match &*st {
        CellState::Done(report) => {
            UNITS_COALESCED.fetch_add(1, Ordering::Relaxed);
            Resolution::Ready(report.clone())
        }
        CellState::InFlight => {
            UNITS_COALESCED.fetch_add(1, Ordering::Relaxed);
            Resolution::Parked
        }
        CellState::Empty => {
            if let Some(store) = installed_store() {
                let loaded = store
                    .load(digest, meta)
                    .and_then(|payload| serde_json::from_str::<Report>(&payload).ok());
                if let Some(report) = loaded {
                    STORE_HITS.fetch_add(1, Ordering::Relaxed);
                    *st = CellState::Done(Box::new(report.clone()));
                    cell.settled.notify_all();
                    return Resolution::Ready(Box::new(report));
                }
                STORE_MISSES.fetch_add(1, Ordering::Relaxed);
            }
            *st = CellState::InFlight;
            Resolution::Claimed
        }
    }
}

enum Resolution {
    Ready(Box<Report>),
    Claimed,
    Parked,
}

/// Cache-aware unit execution: resolve every unit (memory, then store),
/// fan out only the misses, park on other threads' in-flight computes.
/// Returns reports in plan order.
pub(crate) fn execute_cached(units: &[SimUnit], mode: ExecMode) -> Vec<Report> {
    let mut out: Vec<Option<Report>> = (0..units.len()).map(|_| None).collect();
    let mut computes: Vec<(usize, Claim)> = Vec::new();
    let mut parked: Vec<(usize, Arc<Cell>)> = Vec::new();

    for (i, unit) in units.iter().enumerate() {
        let meta = unit.store_meta();
        let digest = digest_hex(meta.as_bytes());
        let cell = cell_for(&digest);
        match try_resolve(&digest, &meta, &cell) {
            Resolution::Ready(report) => out[i] = Some(*report),
            Resolution::Claimed => computes.push((i, Claim { cell, digest, meta })),
            Resolution::Parked => parked.push((i, cell)),
        }
    }

    // Only the misses are scheduled: a fully warm run fans out nothing.
    let computed: Vec<Report> = match mode {
        ExecMode::Planned => parallel_map(computes.len(), |j| {
            let (i, claim) = &computes[j];
            compute_owned(&units[*i], claim)
        }),
        ExecMode::Monolithic => computes
            .iter()
            .map(|(i, claim)| compute_owned(&units[*i], claim))
            .collect(),
    };
    for ((i, _), report) in computes.iter().zip(computed) {
        out[*i] = Some(report);
    }

    // Park on other owners' cells. If an owner panicked (cell rolled back
    // to Empty), adopt the claim and compute inline.
    for (i, cell) in parked {
        let mut st = cell.state.lock().expect("cell poisoned");
        loop {
            match &*st {
                CellState::Done(report) => {
                    out[i] = Some(report.as_ref().clone());
                    break;
                }
                CellState::InFlight => {
                    st = cell.settled.wait(st).expect("cell poisoned");
                }
                CellState::Empty => {
                    *st = CellState::InFlight;
                    drop(st);
                    let meta = units[i].store_meta();
                    let digest = digest_hex(meta.as_bytes());
                    let claim = Claim {
                        cell: Arc::clone(&cell),
                        digest,
                        meta,
                    };
                    out[i] = Some(compute_owned(&units[i], &claim));
                    break;
                }
            }
        }
    }

    out.into_iter()
        .map(|r| r.expect("every unit resolved"))
        .collect()
}
