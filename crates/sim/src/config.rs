use padc_cache::CacheConfig;
use padc_core::{ControllerConfig, SchedulingPolicy};
use padc_cpu::CoreConfig;
use padc_dram::{DramConfig, ExtendedTiming, MappingScheme, RefreshPolicy, RowPolicy};
use padc_prefetch::PrefetcherKind;
use padc_types::Cycle;
use serde::{Deserialize, Serialize};

/// The memory-policy surface of a [`SimConfig`], gathered into one typed
/// struct: row-buffer management (including the HAPPY hybrid policy that
/// used to be reachable only through the raw `dram.row_policy` knob),
/// refresh organization, and the optional extended DDR3 timing set the
/// refresh machinery depends on (`t_refi`/`t_rfc` live there).
///
/// This is a *view*: the fields are stored on [`SimConfig::dram`] (whose
/// serialized form — and therefore every store digest — is unchanged),
/// and [`SimConfig::mem_policy`] / [`SimConfig::with_mem_policy`] project
/// it out and back. Builder methods mirror the `SimConfig` ones so policy
/// bundles compose before being applied.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct MemPolicyConfig {
    /// Row-buffer management policy (open/closed/HAPPY).
    pub row_policy: RowPolicy,
    /// Refresh organization (all-bank, per-bank, or per-bank + DARP
    /// pulls). Ignored unless `extended` timing is enabled.
    pub refresh_policy: RefreshPolicy,
    /// Extended DDR3 constraints (tRAS/tWR/tRTP/tFAW + `t_refi`/`t_rfc`);
    /// `None` keeps the paper's three-latency model and disables refresh.
    pub extended: Option<ExtendedTiming>,
}

impl MemPolicyConfig {
    /// Returns the bundle with a different row policy.
    #[must_use]
    pub fn with_row_policy(mut self, policy: RowPolicy) -> Self {
        self.row_policy = policy;
        self
    }

    /// Returns the bundle with a different refresh policy. Per-bank
    /// policies only refresh with extended timing enabled, so this turns
    /// it on (at the DDR3 defaults) when it is still off.
    #[must_use]
    pub fn with_refresh_policy(mut self, policy: RefreshPolicy) -> Self {
        self.refresh_policy = policy;
        if policy.per_bank() && self.extended.is_none() {
            self.extended = Some(ExtendedTiming::default());
        }
        self
    }

    /// Returns the bundle with the extended DDR3 timing set enabled.
    #[must_use]
    pub fn with_extended_timing(mut self, timing: ExtendedTiming) -> Self {
        self.extended = Some(timing);
        self
    }
}

/// Complete description of one simulated system. Defaults reproduce the
/// paper's baseline (Tables 3 and 4).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of cores.
    pub cores: usize,
    /// DRAM controller configuration (policy, buffer size, APD/urgency/
    /// ranking flags, thresholds).
    pub controller: ControllerConfig,
    /// Hardware prefetcher, or `None` for the no-prefetching baseline.
    pub prefetcher: Option<PrefetcherKind>,
    /// Dynamic Data Prefetch Filtering enabled (§6.12).
    pub ddpf: bool,
    /// Feedback-Directed Prefetching enabled (§6.12).
    pub fdp: bool,
    /// L1 data cache geometry (private, per core).
    pub l1: CacheConfig,
    /// L2 geometry: per-core private capacity, or the total when
    /// `shared_l2` is set.
    pub l2: CacheConfig,
    /// Use one shared last-level cache instead of private L2s (§6.10).
    pub shared_l2: bool,
    /// DRAM geometry/timing and row policy.
    pub dram: DramConfig,
    /// Physical address mapping (linear or permutation-based, §6.13).
    pub mapping: MappingScheme,
    /// Total L2 MSHR entries across the chip (Table 4: 64/64/128/256).
    pub mshr_entries: usize,
    /// Core microarchitecture (window size, width, runahead).
    pub core: CoreConfig,
    /// Instructions each core must retire before its stats freeze.
    pub max_instructions: u64,
    /// Hard wall-clock cap in cycles (safety net).
    pub max_cycles: Cycle,
    /// Workload generator seed.
    pub seed: u64,
}

impl SimConfig {
    /// The paper's baseline system for `cores` cores under `policy`:
    /// private 512KB L2s (1MB when single-core), one DDR3 channel, stream
    /// prefetcher, Table 4 buffer/MSHR sizing.
    pub fn new(cores: usize, policy: SchedulingPolicy) -> Self {
        assert!(cores > 0, "need at least one core");
        let l2 = if cores == 1 {
            CacheConfig::l2_single_core()
        } else {
            CacheConfig::l2_private()
        };
        SimConfig {
            cores,
            controller: ControllerConfig::from_policy(policy, cores),
            prefetcher: Some(PrefetcherKind::Stream),
            ddpf: false,
            fdp: false,
            l1: CacheConfig::l1d(),
            l2,
            shared_l2: false,
            dram: DramConfig::default(),
            mapping: MappingScheme::Linear,
            // Each core's MSHR file is sized to the chip-wide request
            // buffer so that the *memory request buffer* is the resource
            // that limits prefetching — the paper's §1/§6.1 coverage
            // mechanism ("a useful prefetch is not issued into the memory
            // system because the memory request buffer is full").
            mshr_entries: ControllerConfig::buffer_entries_for(cores) * cores,
            core: CoreConfig::default(),
            max_instructions: 200_000,
            max_cycles: 2_000_000_000,
            seed: 1,
        }
    }

    /// Single-core baseline under `policy`.
    pub fn single_core(policy: SchedulingPolicy) -> Self {
        Self::new(1, policy)
    }

    /// Disables prefetching (the `no-pref` bars).
    #[must_use]
    pub fn without_prefetching(mut self) -> Self {
        self.prefetcher = None;
        self
    }

    /// The memory-policy bundle currently stored on [`SimConfig::dram`].
    pub fn mem_policy(&self) -> MemPolicyConfig {
        MemPolicyConfig {
            row_policy: self.dram.row_policy,
            refresh_policy: self.dram.refresh_policy,
            extended: self.dram.extended,
        }
    }

    /// Returns the config with the whole memory-policy bundle applied.
    #[must_use]
    pub fn with_mem_policy(mut self, policy: MemPolicyConfig) -> Self {
        self.dram.row_policy = policy.row_policy;
        self.dram.refresh_policy = policy.refresh_policy;
        self.dram.extended = policy.extended;
        self
    }

    /// Returns the config with a different row-buffer policy.
    #[must_use]
    pub fn with_row_policy(self, policy: RowPolicy) -> Self {
        let p = self.mem_policy().with_row_policy(policy);
        self.with_mem_policy(p)
    }

    /// Returns the config with a different refresh policy (enabling
    /// extended timing when a per-bank policy needs it; see
    /// [`MemPolicyConfig::with_refresh_policy`]).
    #[must_use]
    pub fn with_refresh_policy(self, policy: RefreshPolicy) -> Self {
        let p = self.mem_policy().with_refresh_policy(policy);
        self.with_mem_policy(p)
    }

    /// Returns the config with the extended DDR3 timing set enabled.
    #[must_use]
    pub fn with_extended_timing(self, timing: ExtendedTiming) -> Self {
        let p = self.mem_policy().with_extended_timing(timing);
        self.with_mem_policy(p)
    }

    /// Pre-[`MemPolicyConfig`] knob: sets the row policy in place through
    /// the scattered field path.
    #[deprecated(note = "use SimConfig::with_row_policy / with_mem_policy")]
    pub fn set_row_policy(&mut self, policy: RowPolicy) {
        self.dram.row_policy = policy;
    }

    /// Pre-[`MemPolicyConfig`] knob: toggles the extended timing set in
    /// place through the scattered field path.
    #[deprecated(note = "use SimConfig::with_extended_timing / with_mem_policy")]
    pub fn set_extended_timing(&mut self, timing: Option<ExtendedTiming>) {
        self.dram.extended = timing;
    }

    /// MSHR entries available to each private L2 (total split evenly), or
    /// the whole pool for a shared L2.
    pub fn mshr_per_cache(&self) -> usize {
        if self.shared_l2 {
            self.mshr_entries
        } else {
            (self.mshr_entries / self.cores).max(1)
        }
    }

    /// Per-cache L2 geometry: the configured `l2` for private caches, or a
    /// shared cache scaled to the core count.
    pub fn l2_per_cache(&self) -> CacheConfig {
        if self.shared_l2 {
            CacheConfig::l2_shared(self.cores)
        } else {
            self.l2.clone()
        }
    }

    /// Validates cross-field consistency.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration.
    pub fn validate(&self) {
        assert!(self.cores > 0);
        assert_eq!(
            self.controller.cores, self.cores,
            "controller sized for wrong core count"
        );
        assert!(self.mshr_entries > 0);
        assert!(self.max_instructions > 0);
        let _ = self.l1.sets();
        let _ = self.l2_per_cache().sets();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper_tables() {
        let c = SimConfig::new(4, SchedulingPolicy::DemandFirst);
        assert_eq!(c.controller.buffer_entries, 128);
        assert_eq!(c.mshr_entries, 512);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.dram.banks, 8);
        c.validate();
    }

    #[test]
    fn single_core_gets_1mb_l2() {
        let c = SimConfig::single_core(SchedulingPolicy::Padc);
        assert_eq!(c.l2.size_bytes, 1024 * 1024);
        assert!(c.controller.apd);
    }

    #[test]
    fn shared_l2_scales_with_cores() {
        let mut c = SimConfig::new(8, SchedulingPolicy::DemandFirst);
        c.shared_l2 = true;
        assert_eq!(c.l2_per_cache().size_bytes, 4 * 1024 * 1024);
        assert_eq!(c.mshr_per_cache(), 2048);
        c.validate();
    }

    #[test]
    fn without_prefetching_clears_prefetcher() {
        let c = SimConfig::single_core(SchedulingPolicy::DemandFirst).without_prefetching();
        assert!(c.prefetcher.is_none());
    }

    #[test]
    fn mshr_split_across_private_caches() {
        let c = SimConfig::new(4, SchedulingPolicy::DemandFirst);
        assert_eq!(c.mshr_per_cache(), 128);
    }

    #[test]
    #[should_panic]
    fn mismatched_controller_core_count_rejected() {
        let mut c = SimConfig::new(4, SchedulingPolicy::DemandFirst);
        c.cores = 2;
        c.validate();
    }

    #[test]
    fn mem_policy_round_trips_through_the_dram_fields() {
        let bundle = MemPolicyConfig::default()
            .with_row_policy(RowPolicy::Happy)
            .with_refresh_policy(padc_dram::RefreshPolicy::Darp);
        assert!(bundle.extended.is_some(), "per-bank refresh needs timing");
        let c = SimConfig::new(4, SchedulingPolicy::Padc).with_mem_policy(bundle);
        assert_eq!(c.dram.row_policy, RowPolicy::Happy);
        assert_eq!(c.dram.refresh_policy, padc_dram::RefreshPolicy::Darp);
        assert_eq!(c.dram.extended, Some(ExtendedTiming::default()));
        assert_eq!(c.mem_policy(), bundle);
    }

    #[test]
    fn refresh_policy_builder_keeps_an_explicit_timing_set() {
        let custom = ExtendedTiming {
            t_refi: 1000,
            ..ExtendedTiming::default()
        };
        let c = SimConfig::new(2, SchedulingPolicy::DemandFirst)
            .with_extended_timing(custom)
            .with_refresh_policy(padc_dram::RefreshPolicy::PerBank);
        assert_eq!(c.dram.extended, Some(custom), "builder must not clobber");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_knob_shims_match_the_builders() {
        let mut old = SimConfig::new(4, SchedulingPolicy::Padc);
        old.set_row_policy(RowPolicy::Closed);
        old.set_extended_timing(Some(ExtendedTiming::default()));
        let new = SimConfig::new(4, SchedulingPolicy::Padc)
            .with_row_policy(RowPolicy::Closed)
            .with_extended_timing(ExtendedTiming::default());
        assert_eq!(old, new);
    }
}
