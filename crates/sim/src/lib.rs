//! Full-system simulator for the PADC reproduction: wires the trace-driven
//! cores, the L1/L2 caches with MSHRs, the hardware prefetchers (plus DDPF
//! filtering and FDP throttling), and the Prefetch-Aware DRAM Controller
//! over the cycle-level DDR3 model.
//!
//! * [`SimConfig`] describes a system (paper Tables 3 and 4 are the
//!   defaults); [`System`] runs it over a [`padc_workloads::Workload`] and
//!   produces a [`Report`].
//! * [`metrics`] computes the paper's §5.2 metrics: IPC, WS, HS, IS, UF,
//!   SPL, MPKI, ACC, COV, RBHU, and bus traffic split into demand /
//!   useful-prefetch / useless-prefetch lines.
//! * [`experiments`] contains one entry point per paper table and figure;
//!   the `padc-bench` crate's `repro` binary prints them.
//!
//! # Example
//!
//! ```
//! use padc_sim::{SimConfig, System};
//! use padc_core::SchedulingPolicy;
//! use padc_workloads::profiles;
//!
//! let mut cfg = SimConfig::single_core(SchedulingPolicy::Padc);
//! cfg.max_instructions = 20_000;
//! let mut sys = System::new(cfg, vec![profiles::libquantum()]);
//! let report = sys.run();
//! assert!(report.per_core[0].ipc() > 0.0);
//! ```

#![warn(missing_docs)]

mod config;
pub mod experiments;
pub mod metrics;
pub mod profile;
pub mod serve;
mod system;

pub use config::{MemPolicyConfig, SimConfig};
pub use metrics::{CoreReport, Report, Traffic};
pub use system::{
    fast_forward_default, fast_forward_mode_default, set_fast_forward_default,
    set_fast_forward_mode_default, FastForwardMode, System,
};
