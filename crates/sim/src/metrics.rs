//! The paper's evaluation metrics (§5.2).

use padc_core::ControllerStats;
use padc_dram::ChannelStats;
use padc_types::Cycle;
use serde::{Deserialize, Serialize};

/// Bus traffic in cache lines, split the way the paper's traffic figures
/// are (demand / useful prefetch / useless prefetch).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Traffic {
    /// Demand fetches plus writebacks.
    pub demand: u64,
    /// Prefetched lines that a demand eventually used (including in-buffer
    /// promotions).
    pub pref_useful: u64,
    /// Prefetched lines never used by a demand.
    pub pref_useless: u64,
}

impl Traffic {
    /// Total lines transferred.
    pub fn total(&self) -> u64 {
        self.demand + self.pref_useful + self.pref_useless
    }

    /// Element-wise sum.
    #[must_use]
    pub fn plus(&self, other: &Traffic) -> Traffic {
        Traffic {
            demand: self.demand + other.demand,
            pref_useful: self.pref_useful + other.pref_useful,
            pref_useless: self.pref_useless + other.pref_useless,
        }
    }
}

/// Per-core results of one simulation.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CoreReport {
    /// Benchmark name running on the core.
    pub benchmark: String,
    /// Instructions retired when stats froze.
    pub instructions: u64,
    /// Cycle at which the core crossed its instruction target (equals the
    /// run's final cycle if it never did).
    pub cycles: Cycle,
    /// Loads retired.
    pub loads: u64,
    /// Window stall cycles attributable to head loads (SPL numerator).
    pub window_stall_cycles: u64,
    /// Demand L2 accesses.
    pub l2_accesses: u64,
    /// Demand L2 misses.
    pub l2_misses: u64,
    /// Prefetches sent to the memory request buffer.
    pub prefetches_sent: u64,
    /// Useful prefetches (cache-hit consumption + in-buffer promotion).
    pub prefetches_used: u64,
    /// Prefetches dropped by APD.
    pub prefetches_dropped: u64,
    /// Prefetch candidates filtered by DDPF.
    pub prefetches_filtered: u64,
    /// Prefetch candidates that found no MSHR / buffer space at issue.
    pub prefetches_no_space: u64,
    /// Runahead episodes (0 unless runahead is enabled).
    pub runahead_episodes: u64,
    /// Cycles dispatch stalled on a full instruction window.
    pub dispatch_window_full_cycles: u64,
    /// Cycles dispatch stalled on MSHR/request-buffer structural retries.
    pub dispatch_retry_cycles: u64,
    /// Cycles dispatch stalled on dependent loads (MLP bound).
    pub dispatch_dep_cycles: u64,
    /// Bus traffic attributed to this core.
    pub traffic: Traffic,
    /// Row-hit demand fetches / total demand fetches (RBHU numerator and
    /// denominator pieces).
    pub rbhu_demand_hits: u64,
    /// Total demand fetches serviced by DRAM.
    pub rbhu_demand_total: u64,
    /// Useful prefetches whose DRAM service was a row hit.
    pub rbhu_useful_hits: u64,
    /// Total useful prefetches.
    pub rbhu_useful_total: u64,
}

impl CoreReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 / self.cycles as f64
    }

    /// Stall cycles per load (§5.2).
    pub fn spl(&self) -> f64 {
        if self.loads == 0 {
            return 0.0;
        }
        self.window_stall_cycles as f64 / self.loads as f64
    }

    /// L2 misses per 1000 instructions.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.l2_misses as f64 * 1000.0 / self.instructions as f64
    }

    /// Prefetch accuracy (`ACC`).
    pub fn acc(&self) -> f64 {
        if self.prefetches_sent == 0 {
            return 0.0;
        }
        self.prefetches_used as f64 / self.prefetches_sent as f64
    }

    /// Prefetch coverage (`COV`): useful / (demand fetches + useful).
    pub fn cov(&self) -> f64 {
        let demand = self.rbhu_demand_total;
        let useful = self.prefetches_used;
        if demand + useful == 0 {
            return 0.0;
        }
        useful as f64 / (demand + useful) as f64
    }

    /// Row-buffer hit rate for useful requests (§6.1.1).
    pub fn rbhu(&self) -> f64 {
        let total = self.rbhu_demand_total + self.rbhu_useful_total;
        if total == 0 {
            return 0.0;
        }
        (self.rbhu_demand_hits + self.rbhu_useful_hits) as f64 / total as f64
    }
}

/// Results of one full simulation.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Per-core results (index = core).
    pub per_core: Vec<CoreReport>,
    /// Cycles the whole run took.
    pub total_cycles: Cycle,
    /// DRAM controller counters.
    pub controller: ControllerStats,
    /// Per-channel DRAM counters.
    pub channels: Vec<ChannelStats>,
    /// Service-time histogram of eventually-useful prefetches (nine
    /// 200-cycle buckets, Fig. 4(a)).
    pub pf_service_hist_useful: [u64; 9],
    /// Service-time histogram of useless prefetches.
    pub pf_service_hist_useless: [u64; 9],
}

impl Report {
    /// Total bus traffic.
    pub fn traffic(&self) -> Traffic {
        self.per_core
            .iter()
            .fold(Traffic::default(), |acc, c| acc.plus(&c.traffic))
    }

    /// System-wide RBHU.
    pub fn rbhu(&self) -> f64 {
        let (mut hits, mut total) = (0u64, 0u64);
        for c in &self.per_core {
            hits += c.rbhu_demand_hits + c.rbhu_useful_hits;
            total += c.rbhu_demand_total + c.rbhu_useful_total;
        }
        if total == 0 {
            return 0.0;
        }
        hits as f64 / total as f64
    }
}

/// Individual speedups: `IPC_together / IPC_alone` per core.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn individual_speedups(together: &[f64], alone: &[f64]) -> Vec<f64> {
    assert_eq!(together.len(), alone.len());
    together
        .iter()
        .zip(alone)
        .map(|(t, a)| if *a == 0.0 { 0.0 } else { t / a })
        .collect()
}

/// Weighted speedup (`WS`, system throughput): sum of individual speedups.
pub fn weighted_speedup(together: &[f64], alone: &[f64]) -> f64 {
    individual_speedups(together, alone).iter().sum()
}

/// Harmonic mean of speedups (`HS`, inverse job-turnaround time):
/// `N / sum(alone_i / together_i)`.
pub fn harmonic_speedup(together: &[f64], alone: &[f64]) -> f64 {
    assert_eq!(together.len(), alone.len());
    let sum: f64 = together
        .iter()
        .zip(alone)
        .map(|(t, a)| if *t == 0.0 { f64::INFINITY } else { a / t })
        .sum();
    if sum.is_infinite() || sum == 0.0 {
        0.0
    } else {
        together.len() as f64 / sum
    }
}

/// Unfairness (`UF`, §6.3.4): max individual speedup / min individual
/// speedup.
pub fn unfairness(together: &[f64], alone: &[f64]) -> f64 {
    let is = individual_speedups(together, alone);
    let max = is.iter().cloned().fold(f64::MIN, f64::max);
    let min = is.iter().cloned().fold(f64::MAX, f64::min);
    if min <= 0.0 {
        f64::INFINITY
    } else {
        max / min
    }
}

/// Geometric mean of a slice (used for gmean-over-benchmarks summaries).
pub fn gmean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_totals_and_sums() {
        let a = Traffic {
            demand: 10,
            pref_useful: 5,
            pref_useless: 3,
        };
        let b = Traffic {
            demand: 1,
            pref_useful: 1,
            pref_useless: 1,
        };
        assert_eq!(a.total(), 18);
        assert_eq!(a.plus(&b).total(), 21);
    }

    #[test]
    fn speedup_metrics_on_identical_runs_are_neutral() {
        let t = [1.0, 2.0];
        assert_eq!(weighted_speedup(&t, &t), 2.0);
        assert!((harmonic_speedup(&t, &t) - 1.0).abs() < 1e-12);
        assert!((unfairness(&t, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_adds_ratios() {
        let together = [0.5, 1.0];
        let alone = [1.0, 1.0];
        assert!((weighted_speedup(&together, &alone) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn harmonic_speedup_punishes_slow_cores() {
        let together = [0.1, 1.0];
        let alone = [1.0, 1.0];
        let hs = harmonic_speedup(&together, &alone);
        assert!(hs < 0.2, "hs = {hs}");
    }

    #[test]
    fn unfairness_ratio() {
        let together = [0.2, 0.8];
        let alone = [1.0, 1.0];
        assert!((unfairness(&together, &alone) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn core_report_derived_metrics() {
        let c = CoreReport {
            instructions: 1000,
            cycles: 2000,
            loads: 100,
            window_stall_cycles: 500,
            l2_misses: 30,
            prefetches_sent: 50,
            prefetches_used: 40,
            rbhu_demand_total: 60,
            rbhu_demand_hits: 30,
            rbhu_useful_total: 40,
            rbhu_useful_hits: 30,
            ..CoreReport::default()
        };
        assert!((c.ipc() - 0.5).abs() < 1e-12);
        assert!((c.spl() - 5.0).abs() < 1e-12);
        assert!((c.mpki() - 30.0).abs() < 1e-12);
        assert!((c.acc() - 0.8).abs() < 1e-12);
        assert!((c.cov() - 0.4).abs() < 1e-12);
        assert!((c.rbhu() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let c = CoreReport::default();
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.spl(), 0.0);
        assert_eq!(c.mpki(), 0.0);
        assert_eq!(c.acc(), 0.0);
        assert_eq!(c.cov(), 0.0);
        assert_eq!(c.rbhu(), 0.0);
        assert_eq!(gmean(&[]), 0.0);
    }

    #[test]
    fn gmean_of_constant_is_constant() {
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
    }
}
