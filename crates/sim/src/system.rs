use std::collections::HashMap;

use padc_cache::{Cache, MshrFile, ProbeOutcome, Waiter};
use padc_core::{AccuracyTracker, Completion, MemoryController};
use padc_cpu::TraceSource;
use padc_cpu::{AccessResponse, Core, CoreStats, MemAccess, MemorySystem};
use padc_prefetch::{
    build as build_prefetcher, AccessEvent, Ddpf, DdpfConfig, Fdp, FdpConfig, FdpFeedback,
    PollutionFilter, Prefetcher,
};
use padc_types::{AccessKind, CoreId, Cycle, LineAddr, MemRequest, RequestKind};
use padc_workloads::{BenchProfile, TraceGen};

use crate::profile::{self, SimProfile};
use crate::{CoreReport, Report, SimConfig, Traffic};

/// How [`System::run`] may skip over provably unobservable cycles.
///
/// Every mode produces **bit-identical** reports; they differ only in how
/// aggressively stall cycles are elided (DESIGN.md §11).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FastForwardMode {
    /// Step every cycle (the reference behaviour).
    Off,
    /// Global jumps (PR 3): skip a range only when *every* core is
    /// simultaneously pure-stalled and the controller proves no
    /// observable work before the bound.
    Global,
    /// Per-core event horizon (default): each idle core lags behind the
    /// global clock independently until its own wake-up, resynchronizing
    /// only at observable-interaction points. Strictly supersedes
    /// `Global` (global jumps still fire when every core lags).
    #[default]
    Horizon,
    /// Event-driven controller stepping: horizon scheduling for the
    /// cores *plus* a cached
    /// [`MemoryController::next_event`](padc_core::MemoryController::next_event)
    /// proof that lets the whole controller phase (controller tick,
    /// accuracy-tracker tick, channel sync) be elided on cycles proven
    /// event-free — the controller advances by event deltas instead of
    /// unit cycles (see the `event` module in this file).
    Event,
}

impl FastForwardMode {
    /// Canonical flag spelling (`--fast-forward=<this>`).
    pub fn as_str(self) -> &'static str {
        match self {
            FastForwardMode::Off => "off",
            FastForwardMode::Global => "global",
            FastForwardMode::Horizon => "horizon",
            FastForwardMode::Event => "event",
        }
    }
}

impl std::str::FromStr for FastForwardMode {
    type Err = String;

    /// Parses `off|global|horizon|event` (plus `0`/`false` → off and
    /// `1`/`on`/`true` → horizon for `PADC_FAST_FORWARD` compatibility).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" | "0" | "false" => Ok(FastForwardMode::Off),
            "global" => Ok(FastForwardMode::Global),
            "horizon" | "on" | "1" | "true" => Ok(FastForwardMode::Horizon),
            "event" => Ok(FastForwardMode::Event),
            other => Err(format!(
                "unknown fast-forward mode '{other}' (expected off|global|horizon|event)"
            )),
        }
    }
}

/// Process-wide default fast-forward mode: 0 = unset (fall back to the
/// `PADC_FAST_FORWARD` environment variable), else 1 + the forced mode.
static FF_DEFAULT: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Overrides the process-wide fast-forward mode used by newly built
/// [`System`]s (the `--fast-forward` CLI flag). Existing systems keep
/// their setting; use [`System::set_fast_forward_mode`] to change one
/// directly.
pub fn set_fast_forward_mode_default(mode: FastForwardMode) {
    let v = match mode {
        FastForwardMode::Off => 1,
        FastForwardMode::Global => 2,
        FastForwardMode::Horizon => 3,
        FastForwardMode::Event => 4,
    };
    FF_DEFAULT.store(v, std::sync::atomic::Ordering::Relaxed);
}

/// Boolean shorthand for [`set_fast_forward_mode_default`] kept for the
/// `--no-fast-forward` flag: `true` selects the default `Horizon` mode,
/// `false` disables fast-forwarding.
pub fn set_fast_forward_default(enabled: bool) {
    set_fast_forward_mode_default(if enabled {
        FastForwardMode::Horizon
    } else {
        FastForwardMode::Off
    });
}

/// The fast-forward mode for new [`System`]s: an explicit
/// [`set_fast_forward_mode_default`] override wins; otherwise the
/// `PADC_FAST_FORWARD` environment variable (`off`/`0`, `global`,
/// `horizon`/`on`/`1`, `event`) is honoured; otherwise `Horizon`.
pub fn fast_forward_mode_default() -> FastForwardMode {
    match FF_DEFAULT.load(std::sync::atomic::Ordering::Relaxed) {
        1 => FastForwardMode::Off,
        2 => FastForwardMode::Global,
        3 => FastForwardMode::Horizon,
        4 => FastForwardMode::Event,
        _ => std::env::var("PADC_FAST_FORWARD")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(FastForwardMode::Horizon),
    }
}

/// True when the default mode fast-forwards at all (not `Off`).
pub fn fast_forward_default() -> bool {
    fast_forward_mode_default() != FastForwardMode::Off
}

/// Per-core accounting kept by the memory subsystem.
#[derive(Clone, Copy, Debug, Default)]
struct PerCore {
    l2_accesses: u64,
    l2_misses: u64,
    demand_traffic: u64,
    /// Prefetch fills (usefulness resolved lazily).
    pref_filled: u64,
    /// P-bit consumptions (useful prefetches discovered in the cache).
    useful_pbit: u64,
    /// In-buffer promotions (useful prefetches discovered in the MRB).
    promotions: u64,
    pf_sent: u64,
    pf_used: u64,
    pf_filtered: u64,
    pf_no_space: u64,
    pf_dropped: u64,
    rbhu_demand_hits: u64,
    rbhu_demand_total: u64,
    rbhu_useful_hits: u64,
    rbhu_useful_total: u64,
}

/// FDP interval counters per core.
#[derive(Clone, Copy, Debug, Default)]
struct FdpAccum {
    sent: u64,
    used: u64,
    late: u64,
    pollution: u64,
    demands: u64,
}

/// Caches, MSHRs, prefetchers, and the DRAM controller — everything below
/// the cores. Implements [`MemorySystem`].
struct MemSubsystem {
    shared_l2: bool,
    l1_latency: Cycle,
    l2_latency: Cycle,
    l1s: Vec<Cache>,
    l2s: Vec<Cache>,
    mshrs: Vec<MshrFile>,
    prefetchers: Vec<Box<dyn Prefetcher>>,
    ddpf: Option<Vec<Ddpf>>,
    fdp: Option<Vec<Fdp>>,
    pollution: Vec<PollutionFilter>,
    fdp_acc: Vec<FdpAccum>,
    controller: MemoryController,
    tracker: AccuracyTracker,
    pc: Vec<PerCore>,
    scratch: Vec<LineAddr>,
    now: Cycle,
    /// Prefetch memory-service-time histogram (Fig. 4(a)): 9 buckets of 200
    /// cycles, split by eventual usefulness. `hist_pending` holds the bucket
    /// of each prefetched line whose usefulness is not yet known.
    hist_useful: [u64; 9],
    hist_useless: [u64; 9],
    hist_pending: HashMap<LineAddr, u8>,
}

/// Bucket index for a prefetch service time (200-cycle buckets, Fig. 4(a)).
fn service_bucket(cycles: Cycle) -> u8 {
    ((cycles / 200) as u8).min(8)
}

impl MemSubsystem {
    fn l2_index(&self, core: usize) -> usize {
        if self.shared_l2 {
            0
        } else {
            core
        }
    }

    fn prefetching(&self) -> bool {
        !self.prefetchers.is_empty()
    }

    /// Useful prefetch discovered via its `P` bit in the cache.
    fn credit_pbit_use(&mut self, core: CoreId, line: LineAddr, fill_was_row_hit: bool) {
        let c = core.index();
        if let Some(bucket) = self.hist_pending.remove(&line) {
            self.hist_useful[bucket as usize] += 1;
        }
        self.tracker.on_prefetch_used(core);
        self.pc[c].useful_pbit += 1;
        self.pc[c].pf_used += 1;
        self.pc[c].rbhu_useful_total += 1;
        if fill_was_row_hit {
            self.pc[c].rbhu_useful_hits += 1;
        }
        self.fdp_acc[c].used += 1;
        if let Some(dd) = &mut self.ddpf {
            dd[c].train(line, true);
        }
    }

    /// Useful prefetch discovered by a demand matching it in the MRB/MSHR.
    fn credit_promotion(&mut self, core: CoreId, line: LineAddr) {
        let c = core.index();
        self.tracker.on_prefetch_used(core);
        self.pc[c].promotions += 1;
        self.pc[c].pf_used += 1;
        self.fdp_acc[c].used += 1;
        self.fdp_acc[c].late += 1; // demand arrived before the prefetch: late
        if let Some(dd) = &mut self.ddpf {
            dd[c].train(line, true);
        }
    }

    fn fill_l1(&mut self, core: usize, line: LineAddr, dirty: bool) {
        if let Some(ev) = self.l1s[core].fill(line, false, dirty, false) {
            if ev.dirty {
                let li = self.l2_index(core);
                if !self.l2s[li].mark_dirty(ev.line) {
                    // Line no longer in L2: write back to memory directly.
                    self.controller
                        .enqueue_writeback(CoreId::new(core), ev.line, self.now);
                }
            }
        }
    }

    fn notify_prefetcher(
        &mut self,
        core: CoreId,
        line: LineAddr,
        pc: u64,
        hit: bool,
        runahead: bool,
    ) {
        if !self.prefetching() {
            return;
        }
        let ev = AccessEvent {
            core,
            line,
            pc,
            hit,
            runahead,
        };
        let mut cands = std::mem::take(&mut self.scratch);
        cands.clear();
        self.prefetchers[core.index()].on_access(&ev, &mut cands);
        for cand in &cands {
            self.issue_prefetch(core, *cand);
        }
        self.scratch = cands;
    }

    fn issue_prefetch(&mut self, core: CoreId, line: LineAddr) {
        let c = core.index();
        let li = self.l2_index(c);
        if self.l2s[li].peek(line) || self.mshrs[li].get(line).is_some() {
            return;
        }
        if let Some(dd) = &mut self.ddpf {
            if !dd[c].should_issue(line) {
                self.pc[c].pf_filtered += 1;
                return;
            }
        }
        if self.mshrs[li].is_full() || !self.controller.has_space() {
            self.pc[c].pf_no_space += 1;
            return;
        }
        let id = self
            .controller
            .enqueue(
                core,
                line,
                AccessKind::Load,
                RequestKind::Prefetch,
                self.now,
            )
            .expect("space was checked");
        let ok = self.mshrs[li].allocate(line, true, id);
        debug_assert!(ok, "MSHR space was checked");
        self.tracker.on_prefetch_sent(core);
        self.pc[c].pf_sent += 1;
        self.fdp_acc[c].sent += 1;
    }

    /// APD dropped a prefetch: release its MSHR entry.
    fn on_dropped(&mut self, req: &MemRequest) {
        let c = req.core.index();
        let li = self.l2_index(c);
        self.mshrs[li].invalidate_prefetch(req.line);
        self.pc[c].pf_dropped += 1;
        if let Some(dd) = &mut self.ddpf {
            dd[c].train(req.line, false);
        }
    }

    /// A DRAM data burst finished: fill caches, classify traffic, return the
    /// waiters to wake.
    fn on_completion(&mut self, comp: &Completion, now: Cycle) -> Vec<Waiter> {
        let req = &comp.request;
        let c = req.core.index();
        // Writebacks carry no MSHR entry and fill nothing.
        if req.access == AccessKind::Store && !req.was_prefetch {
            self.pc[c].demand_traffic += 1;
            return Vec::new();
        }
        let li = self.l2_index(c);
        let entry = self.mshrs[li].remove(req.line);
        let still_prefetch = req.kind.is_prefetch();
        match (req.was_prefetch, still_prefetch) {
            (true, true) => self.pc[c].pref_filled += 1,
            (true, false) => {
                // Promoted in the buffer: useful prefetch traffic.
                self.pc[c].rbhu_useful_total += 1;
                if comp.row_hit {
                    self.pc[c].rbhu_useful_hits += 1;
                }
            }
            (false, _) => {
                self.pc[c].demand_traffic += 1;
                self.pc[c].rbhu_demand_total += 1;
                if comp.row_hit {
                    self.pc[c].rbhu_demand_hits += 1;
                }
            }
        }
        // Fig. 4(a) service-time histogram bookkeeping.
        if req.was_prefetch {
            let bucket = service_bucket(now.saturating_sub(req.arrival));
            if still_prefetch {
                // A re-prefetch of a line whose earlier copy was never
                // used resolves the earlier one as useless.
                if let Some(old) = self.hist_pending.insert(req.line, bucket) {
                    self.hist_useless[old as usize] += 1;
                }
            } else {
                // Promoted in flight: known useful.
                self.hist_useful[bucket as usize] += 1;
            }
        }
        let dirty = entry.as_ref().is_some_and(|e| e.write);
        if let Some(ev) = self.l2s[li].fill(req.line, still_prefetch, dirty, comp.row_hit) {
            if ev.dirty {
                self.controller.enqueue_writeback(req.core, ev.line, now);
            }
            if ev.unused_prefetch {
                if let Some(dd) = &mut self.ddpf {
                    dd[c].train(ev.line, false);
                }
            } else if still_prefetch {
                // A prefetch displaced a demand-owned line: pollution.
                self.pollution[c].record_eviction(ev.line);
            }
        }
        if !still_prefetch {
            self.fill_l1(c, req.line, dirty);
        }
        entry.map(|e| e.waiters).unwrap_or_default()
    }

    /// Accuracy-interval rollover: drive FDP throttling.
    fn on_interval_rollover(&mut self) {
        let Some(fdp) = &mut self.fdp else { return };
        for (c, slot) in self.fdp_acc.iter_mut().enumerate() {
            let acc = std::mem::take(slot);
            let fb = FdpFeedback {
                sent: acc.sent,
                used: acc.used,
                late: acc.late,
                pollution: acc.pollution,
                demands: acc.demands,
            };
            let level = fdp[c].end_interval(fb);
            self.prefetchers[c].set_aggressiveness(level.degree, level.distance);
        }
    }
}

impl MemorySystem for MemSubsystem {
    fn access(&mut self, core: CoreId, acc: &MemAccess, now: Cycle) -> AccessResponse {
        self.now = now;
        let c = core.index();
        let line = acc.addr.line();
        let is_store = acc.kind == AccessKind::Store;
        // Structural pre-check with no side effects: an access that will
        // need a new MSHR entry but cannot get one (or cannot enter the
        // request buffer) retries WITHOUT touching cache state or the
        // prefetcher — a retried access must be observed exactly once.
        if !self.l1s[c].peek(line) {
            let li = self.l2_index(c);
            if !self.l2s[li].peek(line)
                && self.mshrs[li].get(line).is_none()
                && (self.mshrs[li].is_full() || !self.controller.has_space())
            {
                return AccessResponse::Retry;
            }
        }
        if let ProbeOutcome::Hit(_) = self.l1s[c].probe(line, is_store) {
            return AccessResponse::Hit {
                latency: self.l1_latency,
            };
        }
        let li = self.l2_index(c);
        if !acc.runahead {
            self.pc[c].l2_accesses += 1;
            self.fdp_acc[c].demands += 1;
        }
        match self.l2s[li].probe(line, is_store) {
            ProbeOutcome::Hit(info) => {
                if info.first_demand_use_of_prefetch {
                    self.credit_pbit_use(core, line, info.fill_was_row_hit);
                }
                self.fill_l1(c, line, is_store);
                self.notify_prefetcher(core, line, acc.pc, true, acc.runahead);
                AccessResponse::Hit {
                    latency: self.l1_latency + self.l2_latency,
                }
            }
            ProbeOutcome::Miss => {
                if !acc.runahead && self.pollution[c].check_and_clear(line) {
                    self.fdp_acc[c].pollution += 1;
                }
                if let Some(e) = self.mshrs[li].get_mut(line) {
                    if e.prefetch {
                        e.prefetch = false;
                        self.controller.promote_prefetch(line);
                        self.credit_promotion(core, line);
                        // A demand matching an in-flight prefetch is a
                        // (late-covered) primary miss.
                        if !acc.runahead {
                            self.pc[c].l2_misses += 1;
                        }
                    }
                    if is_store {
                        self.mshrs[li].get_mut(line).expect("just found").write = true;
                    } else if !acc.runahead {
                        self.mshrs[li]
                            .get_mut(line)
                            .expect("just found")
                            .waiters
                            .push(Waiter {
                                core,
                                token: acc.token,
                            });
                    }
                    self.notify_prefetcher(core, line, acc.pc, false, acc.runahead);
                    return AccessResponse::Pending;
                }
                // New miss: the structural pre-check above guaranteed space.
                debug_assert!(!self.mshrs[li].is_full() && self.controller.has_space());
                let id = self
                    .controller
                    .enqueue(core, line, AccessKind::Load, RequestKind::Demand, now)
                    .expect("space was checked");
                let ok = self.mshrs[li].allocate(line, false, id);
                debug_assert!(ok);
                // Primary demand miss (merges into existing entries are
                // secondary and not MPKI-relevant).
                if !acc.runahead {
                    self.pc[c].l2_misses += 1;
                }
                let e = self.mshrs[li].get_mut(line).expect("just allocated");
                if is_store {
                    e.write = true;
                } else if !acc.runahead {
                    e.waiters.push(Waiter {
                        core,
                        token: acc.token,
                    });
                }
                // The prefetcher observes the miss after the demand has
                // claimed its MSHR entry (demands get structural priority).
                self.notify_prefetcher(core, line, acc.pc, false, acc.runahead);
                AccessResponse::Pending
            }
        }
    }
}

/// Per-core event-horizon scheduling: the bookkeeping for
/// [`FastForwardMode::Horizon`] and the invariants that make it
/// bit-identical to cycle-by-cycle stepping.
///
/// # The equivalence argument
///
/// The global clock `System::now` still advances monotonically, but an
/// *idle* core is allowed to lag behind it: its pure-stall ticks are not
/// executed when they are due, only replayed later as stall-counter
/// bumps ([`Core::skip_idle_cycles`]). A *busy* core is always ticked at
/// the global clock, in core-index order, exactly as in `Off` mode. Four
/// invariants make the skew unobservable:
///
/// - **I1 (no missed ticks).** `due[c]` is the next global cycle at which
///   core `c` must execute a real tick; the stepping loop never passes
///   `due[c]` without ticking `c` (checked by a `debug_assert` in
///   `HorizonState::is_due`).
/// - **I2 (lag windows are classified).** Whenever `behind[c] < due[c]`,
///   `idle[c]` holds the [`padc_cpu::IdleState`] taken at `behind[c]`,
///   and core `c` has been neither ticked nor completed since. Nothing
///   else mutates a [`Core`], and the only time-dependent input to
///   [`Core::idle_state`] is the head-retirement comparison
///   `done_at <= now`, which flips exactly at `wake_at` — the first
///   cycle *excluded* from the window — so the classification is
///   constant across the whole window and the deferred replay is equal
///   to having ticked every cycle in it.
/// - **I3 (isolation).** A pure-stall tick touches only the core's own
///   stall counters: it calls neither [`MemorySystem::access`] nor
///   anything on the shared state (caches, MSHRs, controller, accuracy
///   tracker) — and no core ever reads another core's private state.
///   Cores interact *only* through the memory subsystem, so a lagging
///   core is invisible to every other component until one of its resync
///   points:
///   - a **completion** for the core ([`Core::complete`] mutates it and
///     changes its classification, so the window is closed — replayed —
///     immediately before the completion is delivered, and the core is
///     marked due so its next tick re-classifies);
///   - its own **`wake_at`** (the first self-driven state change);
///   - the next **PAR-interval rollover**
///     ([`AccuracyTracker::next_rollover`]): rollovers re-derive the
///     drop thresholds, criticality and rank the controller acts on, so
///     `due[c]` is capped at the rollover to keep every skew window
///     inside one accuracy interval. (Pure-stall ticks never touch the
///     tracker, so this cap is defensive layering, not load-bearing —
///     it costs one replayed tick per core per interval.)
/// - **I4 (controller exactness).** The controller, tracker, and trace
///   sources are stepped at the global clock whenever *any* core is due
///   (cycle-exactly), and a global jump over a fully-lagging window is
///   taken only when bounded by `min(due)`,
///   [`MemoryController::next_event`], the PAR rollover, and
///   `max_cycles` — the same early-but-never-late bounds PR 3's global
///   jump uses (DESIGN.md §11).
///
/// Together: every observable interaction (memory access, completion
/// delivery, tracker update, retirement past the instruction target)
/// happens at exactly the same global cycle, with exactly the same
/// operand state, as in `Off` mode — so reports are byte-identical
/// (enforced by `crates/sim/tests/fastforward.rs` and the determinism
/// gate).
mod horizon {
    use padc_cpu::{Core, IdleState};
    use padc_types::Cycle;

    use crate::profile::SimProfile;

    /// Skew bookkeeping for every core (see the module docs).
    pub(super) struct HorizonState {
        /// `due[c]`: next global cycle at which core `c` must execute a
        /// real tick. `due[c] <= now` means "in lockstep"; `due[c] > now`
        /// means the core lags and `[behind[c], due[c])` is a proven
        /// pure-stall window.
        due: Vec<Cycle>,
        /// `behind[c]`: first cycle whose tick has been neither executed
        /// nor replayed for core `c`.
        behind: Vec<Cycle>,
        /// Replay classification covering `[behind[c], due[c])` (I2).
        idle: Vec<Option<IdleState>>,
    }

    impl HorizonState {
        pub(super) fn new(cores: usize, now: Cycle) -> Self {
            HorizonState {
                due: vec![now; cores],
                behind: vec![now; cores],
                idle: vec![None; cores],
            }
        }

        /// True when core `c` must be ticked at `now` (I1).
        pub(super) fn is_due(&self, c: usize, now: Cycle) -> bool {
            debug_assert!(
                self.due[c] >= now,
                "I1 violated: core {c} missed its due tick"
            );
            self.due[c] <= now
        }

        /// True when every core lags past `now` (a global jump may fire).
        pub(super) fn all_lagging(&self, now: Cycle) -> bool {
            self.due.iter().all(|&d| d > now)
        }

        /// Earliest due tick across all cores (a global-jump bound).
        pub(super) fn min_due(&self) -> Cycle {
            self.due.iter().copied().min().unwrap_or(Cycle::MAX)
        }

        /// Replays core `c`'s deferred pure-stall ticks up to (not
        /// including) `to` (I2: one `skip_idle_cycles` call equals the
        /// elided ticks).
        pub(super) fn catch_up(
            &mut self,
            c: usize,
            to: Cycle,
            core: &mut Core,
            profile: &mut SimProfile,
        ) {
            let from = self.behind[c];
            if from >= to {
                return;
            }
            let idle = self.idle[c]
                .as_ref()
                .expect("I2 violated: lagging core carries no idle classification");
            core.skip_idle_cycles(idle, to - from);
            profile.core_cycles_skipped += to - from;
            profile.horizon_resyncs += 1;
            self.behind[c] = to;
        }

        /// Forces core `c` back into lockstep at `now` (completion
        /// delivery): replay the lag window, then mark the core due so
        /// its tick at `now` runs for real and re-classifies.
        pub(super) fn wake(
            &mut self,
            c: usize,
            now: Cycle,
            core: &mut Core,
            profile: &mut SimProfile,
        ) {
            self.catch_up(c, now, core, profile);
            self.due[c] = now;
        }

        /// Re-classifies core `c` right after its real tick at `now`:
        /// either it stays in lockstep (busy) or a new lag window opens,
        /// bounded by its own wake-up and the next PAR rollover (I3).
        pub(super) fn reclassify(
            &mut self,
            c: usize,
            now: Cycle,
            core: &Core,
            par_rollover: Cycle,
        ) {
            self.behind[c] = now + 1;
            match core.idle_state(now + 1) {
                None => {
                    self.idle[c] = None;
                    self.due[c] = now + 1;
                }
                Some(idle) => {
                    let wake = idle.wake_at.unwrap_or(Cycle::MAX);
                    debug_assert!(wake > now + 1, "wake_at inside the classified window");
                    self.due[c] = wake.min(par_rollover);
                    self.idle[c] = Some(idle);
                }
            }
            debug_assert!(self.due[c] > now);
        }

        /// Replays every core's outstanding lag window up to `to` (run
        /// exit: live stats must match a cycle-exact run that stopped at
        /// the same cycle).
        pub(super) fn flush(&mut self, to: Cycle, cores: &mut [Core], profile: &mut SimProfile) {
            for (c, core) in cores.iter_mut().enumerate() {
                self.catch_up(c, to, core, profile);
            }
        }
    }
}

/// Event-driven controller stepping: the bookkeeping for
/// [`FastForwardMode::Event`] and the invariants that make it
/// bit-identical to the other three modes.
///
/// Horizon mode already elides most *core* ticks but still executes the
/// controller phase (controller tick, accuracy-tracker tick, per-channel
/// sync) on every stepped cycle. `Event` composes on top of `Horizon`
/// without touching the core machinery: a cached
/// [`MemoryController::next_event`](padc_core::MemoryController::next_event)
/// bound turns the controller phase into an event-delta advance — the
/// phase runs only at cycles the proof says can do observable work, so
/// controller stepping is O(events), not O(stepped cycles).
///
/// # The equivalence argument (invariants E1–E4, mirroring I1–I4)
///
/// - **E1 (a skipped phase is a proven no-op).** When the phase is
///   skipped at cycle `m`, the cached bound satisfies `m < ctrl_next` and
///   was proven under the controller's current mutation epoch. By the
///   `next_event` contract (DESIGN.md §11), `tick(m)` would collect no
///   completion, drop no prefetch, drain no writeback, issue no command,
///   flip no batch/write-drain state, and apply no refresh — and
///   [`AccuracyTracker::tick`] strictly before the rollover mutates
///   nothing, and [`padc_dram::Channel::sync`] before the next refresh
///   boundary mutates nothing. Every byte of controller, tracker, and
///   channel state is unchanged, so eliding the phase is unobservable
///   (this is exactly what the `next_event` soundness proptest in
///   `padc-core` checks cycle-by-cycle).
/// - **E2 (mutations invalidate).** Every externally visible controller
///   mutation — [`MemoryController::enqueue`](padc_core::MemoryController::enqueue),
///   [`MemoryController::enqueue_writeback`](padc_core::MemoryController::enqueue_writeback),
///   a successful [`MemoryController::promote_prefetch`](padc_core::MemoryController::promote_prefetch)
///   — bumps [`MemoryController::mutation_epoch`](padc_core::MemoryController::mutation_epoch).
///   A bound proven under an older epoch is discarded and re-proven from
///   the live state before the next skip decision, so core-side activity
///   (which runs *after* the controller phase within a cycle, exactly as
///   in `Off` mode) can never be overlooked.
/// - **E3 (rollovers and run boundaries execute).** The bound is capped
///   at [`AccuracyTracker::next_rollover`], so the PAR rollover tick (and
///   the FDP feedback it drives) executes at exactly the same cycle with
///   exactly the same counter state as in `Off` mode; the elided tracker
///   ticks in between return `false` and mutate nothing.
/// - **E4 (composition with horizon).** The horizon machinery is
///   untouched: completions are delivered — and lagging cores woken —
///   only from *executed* controller phases, which by E1 are the only
///   cycles where completions exist at all. A global jump in event mode
///   is bounded by the validated cached bound (same value `next_event`
///   would return), the earliest due core, the PAR rollover, and
///   `max_cycles` — the same early-but-never-late bounds as horizon
///   mode. The composition rule: **core skipping and controller skipping
///   are independent proofs over disjoint state**; cores interact with
///   the controller only through [`MemorySystem::access`] (epoch-guarded
///   by E2), and the controller reaches cores only through completions
///   (which force an executed phase by E1).
mod event {
    use padc_core::{AccuracyTracker, MemoryController};
    use padc_types::Cycle;

    /// Cached controller-event proof (see the module docs).
    pub(super) struct EventState {
        /// First cycle at or after which the controller phase may do
        /// observable work; every cycle before it is provably a no-op
        /// under `epoch`.
        ctrl_next: Cycle,
        /// [`MemoryController::mutation_epoch`] the bound was proven
        /// under (E2).
        epoch: u64,
    }

    impl EventState {
        pub(super) fn new(
            now: Cycle,
            ctrl: &mut MemoryController,
            tracker: &AccuracyTracker,
        ) -> Self {
            let mut s = EventState {
                ctrl_next: now,
                epoch: ctrl.mutation_epoch(),
            };
            s.reprove(now, ctrl, tracker);
            s
        }

        /// Re-proves the bound from the controller's live state. `from`
        /// is the first cycle whose tick has not yet executed, so the
        /// bound is clamped to at least `from`.
        fn reprove(&mut self, from: Cycle, ctrl: &mut MemoryController, tracker: &AccuracyTracker) {
            let mut bound = tracker.next_rollover();
            if let Some(ev) = ctrl.next_event(from, tracker) {
                bound = bound.min(ev);
            }
            self.ctrl_next = bound.max(from);
            self.epoch = ctrl.mutation_epoch();
        }

        /// Ensures the cached bound is valid at `now`: re-proves if any
        /// external mutation happened since it was computed (E2).
        pub(super) fn validate(
            &mut self,
            now: Cycle,
            ctrl: &mut MemoryController,
            tracker: &AccuracyTracker,
        ) {
            if ctrl.mutation_epoch() != self.epoch {
                self.reprove(now, ctrl, tracker);
            }
        }

        /// True when the controller phase at `now` must execute (E1).
        pub(super) fn controller_due(
            &mut self,
            now: Cycle,
            ctrl: &mut MemoryController,
            tracker: &AccuracyTracker,
        ) -> bool {
            self.validate(now, ctrl, tracker);
            debug_assert!(
                self.ctrl_next >= now,
                "E1 violated: controller missed its event tick"
            );
            now >= self.ctrl_next
        }

        /// Rearms after an executed controller phase at `now` (called
        /// after completion delivery and the tracker tick, so writebacks
        /// enqueued by fills and the post-rollover PAR are folded in).
        pub(super) fn rearm(
            &mut self,
            now: Cycle,
            ctrl: &mut MemoryController,
            tracker: &AccuracyTracker,
        ) {
            self.reprove(now + 1, ctrl, tracker);
        }

        /// The proven bound (valid only right after [`EventState::validate`]
        /// under an unchanged epoch); used as the global-jump bound in
        /// event mode (E4).
        pub(super) fn ctrl_next(&self) -> Cycle {
            self.ctrl_next
        }
    }
}

/// The full simulated system: cores + traces + memory subsystem.
///
/// Construct with a [`SimConfig`] and one [`BenchProfile`] per core, then
/// call [`System::run`].
pub struct System {
    cfg: SimConfig,
    cores: Vec<Core>,
    traces: Vec<Box<dyn TraceSource>>,
    mem: MemSubsystem,
    now: Cycle,
    finish_cycle: Vec<Option<Cycle>>,
    core_snapshots: Vec<Option<CoreStats>>,
    mem_snapshots: Vec<Option<PerCore>>,
    benchmark_names: Vec<String>,
    /// Fast-forward mode for [`System::run`] (every mode is bit-identical
    /// to cycle-by-cycle stepping; see DESIGN.md §11 and the `horizon`
    /// module in this file).
    ff_mode: FastForwardMode,
    profile: SimProfile,
}

impl System {
    /// Builds a system running `benchmarks` (one per core).
    ///
    /// # Panics
    ///
    /// Panics if the benchmark count does not match `cfg.cores` or the
    /// configuration is inconsistent.
    pub fn new(cfg: SimConfig, benchmarks: Vec<BenchProfile>) -> Self {
        cfg.validate();
        assert_eq!(
            benchmarks.len(),
            cfg.cores,
            "need one benchmark per core ({} cores, {} benchmarks)",
            cfg.cores,
            benchmarks.len()
        );
        let traces: Vec<Box<dyn TraceSource>> = benchmarks
            .iter()
            .enumerate()
            .map(|(i, b)| Box::new(TraceGen::new(b, i, cfg.seed)) as Box<dyn TraceSource>)
            .collect();
        let names = benchmarks.iter().map(|b| b.name.clone()).collect();
        Self::from_parts(cfg, traces, names)
    }

    /// Builds a system from arbitrary trace sources (e.g. recorded trace
    /// files loaded via [`padc_workloads::TraceFileSource`]) instead of the
    /// built-in synthetic profiles. `names` label the per-core reports.
    ///
    /// # Panics
    ///
    /// Panics if the trace/name counts do not match `cfg.cores` or the
    /// configuration is inconsistent.
    pub fn with_traces(
        cfg: SimConfig,
        traces: Vec<Box<dyn TraceSource>>,
        names: Vec<String>,
    ) -> Self {
        cfg.validate();
        assert_eq!(traces.len(), cfg.cores, "one trace per core");
        assert_eq!(names.len(), cfg.cores, "one name per core");
        Self::from_parts(cfg, traces, names)
    }

    fn from_parts(
        cfg: SimConfig,
        traces: Vec<Box<dyn TraceSource>>,
        benchmark_names: Vec<String>,
    ) -> Self {
        let cores: Vec<Core> = (0..cfg.cores)
            .map(|i| Core::new(CoreId::new(i), cfg.core))
            .collect();
        let n_l2 = if cfg.shared_l2 { 1 } else { cfg.cores };
        let l2_cfg = cfg.l2_per_cache();
        let mem = MemSubsystem {
            shared_l2: cfg.shared_l2,
            l1_latency: cfg.l1.hit_latency,
            l2_latency: l2_cfg.hit_latency,
            l1s: (0..cfg.cores).map(|_| Cache::new(cfg.l1.clone())).collect(),
            l2s: (0..n_l2).map(|_| Cache::new(l2_cfg.clone())).collect(),
            mshrs: (0..n_l2)
                .map(|_| MshrFile::new(cfg.mshr_per_cache()))
                .collect(),
            prefetchers: match cfg.prefetcher {
                Some(kind) => (0..cfg.cores).map(|_| build_prefetcher(kind)).collect(),
                None => Vec::new(),
            },
            ddpf: cfg.ddpf.then(|| {
                (0..cfg.cores)
                    .map(|_| Ddpf::new(DdpfConfig::default()))
                    .collect()
            }),
            fdp: cfg.fdp.then(|| {
                (0..cfg.cores)
                    .map(|_| Fdp::new(FdpConfig::default()))
                    .collect()
            }),
            pollution: (0..cfg.cores).map(|_| PollutionFilter::new(4096)).collect(),
            fdp_acc: vec![FdpAccum::default(); cfg.cores],
            controller: MemoryController::new(
                cfg.controller.clone(),
                cfg.dram.clone(),
                cfg.mapping,
            ),
            tracker: AccuracyTracker::new(cfg.cores, cfg.controller.accuracy_interval),
            pc: vec![PerCore::default(); cfg.cores],
            scratch: Vec::with_capacity(16),
            now: 0,
            hist_useful: [0; 9],
            hist_useless: [0; 9],
            hist_pending: HashMap::new(),
        };
        // FDP starts the stream prefetcher at its initial (milder) level.
        let mut sys = System {
            benchmark_names,
            cores,
            traces,
            mem,
            now: 0,
            finish_cycle: vec![None; cfg.cores],
            core_snapshots: vec![None; cfg.cores],
            mem_snapshots: vec![None; cfg.cores],
            cfg,
            ff_mode: fast_forward_mode_default(),
            profile: SimProfile::default(),
        };
        if sys.cfg.fdp {
            let level = Fdp::new(FdpConfig::default()).level();
            for pf in &mut sys.mem.prefetchers {
                pf.set_aggressiveness(level.degree, level.distance);
            }
        }
        sys
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The prefetch accuracy (`PAR`) the controller currently acts on for
    /// `core` — last interval's measurement (§4.1). Exposed for phase-
    /// behaviour experiments (Fig. 4(b)).
    pub fn accuracy(&self, core: usize) -> f64 {
        self.mem.tracker.accuracy(padc_types::CoreId::new(core))
    }

    /// Advances the whole system by one CPU cycle.
    pub fn step(&mut self) {
        self.step_inner(None, None);
    }

    /// One global-clock step. With `hz` set (horizon and event modes),
    /// only *due* cores execute a real tick; lagging cores are left
    /// untouched until a resync point replays their stall window (see the
    /// `horizon` module docs). With `hz == None` every core ticks
    /// (`Off`/`Global`). With `ev` set (event mode), the controller phase
    /// executes only at cycles the cached event proof cannot rule out
    /// (see the `event` module docs); with `ev == None` it executes every
    /// stepped cycle.
    fn step_inner(
        &mut self,
        mut hz: Option<&mut horizon::HorizonState>,
        mut ev: Option<&mut event::EventState>,
    ) {
        let now = self.now;
        self.profile.cycles_stepped += 1;
        let timing = profile::timing_enabled();
        let run_ctrl = match ev.as_deref_mut() {
            None => true,
            Some(ev) => ev.controller_due(now, &mut self.mem.controller, &self.mem.tracker),
        };
        if run_ctrl {
            let t0 = timing.then(std::time::Instant::now);
            self.profile.ctrl_cycles_stepped += 1;
            if ev.is_some() {
                self.profile.ctrl_events_fired += 1;
            }
            let out = self.mem.controller.tick(now, &self.mem.tracker);
            for req in &out.dropped {
                self.mem.on_dropped(req);
            }
            for comp in &out.completions {
                for w in self.mem.on_completion(comp, now) {
                    let c = w.core.index();
                    // A completion invalidates the core's idle classification
                    // (it sets `done_at` / releases a pending load), so the
                    // lag window is replayed before the core is mutated and
                    // the core re-enters lockstep at this exact cycle.
                    if let Some(hz) = hz.as_deref_mut() {
                        hz.wake(c, now, &mut self.cores[c], &mut self.profile);
                    }
                    self.cores[c].complete(w.token, now + 1);
                }
            }
            if self.mem.tracker.tick(now) {
                self.mem.on_interval_rollover();
            }
            if let Some(ev) = ev {
                ev.rearm(now, &mut self.mem.controller, &self.mem.tracker);
            }
            if let Some(t0) = t0 {
                self.profile.controller_ns += t0.elapsed().as_nanos() as u64;
            }
        } else {
            // E1: the cached proof covers this cycle — the controller
            // tick, the tracker tick, and the channel syncs are all
            // no-ops, so the whole phase is elided.
            self.profile.ctrl_cycles_skipped += 1;
        }
        let t1 = timing.then(std::time::Instant::now);
        for c in 0..self.cfg.cores {
            if let Some(hz) = hz.as_deref_mut() {
                if !hz.is_due(c, now) {
                    continue;
                }
                hz.catch_up(c, now, &mut self.cores[c], &mut self.profile);
            }
            self.cores[c].tick(now, &mut self.traces[c], &mut self.mem);
            self.profile.core_cycles_ticked += 1;
            if self.finish_cycle[c].is_none()
                && self.cores[c].stats().retired_instructions >= self.cfg.max_instructions
            {
                self.finish_cycle[c] = Some(now + 1);
                self.core_snapshots[c] = Some(*self.cores[c].stats());
                self.mem_snapshots[c] = Some(self.mem.pc[c]);
            }
            if let Some(hz) = hz.as_deref_mut() {
                hz.reclassify(c, now, &self.cores[c], self.mem.tracker.next_rollover());
            }
        }
        if let Some(t1) = t1 {
            self.profile.cores_ns += t1.elapsed().as_nanos() as u64;
        }
        self.now += 1;
    }

    /// Attempts one idle fast-forward jump; returns the number of cycles
    /// skipped (0 when any component could make progress).
    ///
    /// Valid immediately after [`System::step`]: every skipped cycle is
    /// proven to be a pure stall tick for every core
    /// ([`Core::idle_state`]) and observable-work-free for the controller
    /// ([`MemoryController::next_event`](padc_core::MemoryController::next_event)),
    /// with `PAR` interval rollovers kept as explicit stop events. The only
    /// state change a skip applies is the per-core stall-counter bumps the
    /// skipped ticks would have made — which is what keeps fast-forwarded
    /// runs bit-identical to cycle-by-cycle stepping (DESIGN.md §11).
    pub fn try_fast_forward(&mut self) -> u64 {
        let now = self.now;
        // Once the last core hits its instruction target the run is over at
        // exactly this cycle; jumping further would inflate `total_cycles`
        // relative to a cycle-by-cycle run, which stops here too.
        if now >= self.cfg.max_cycles || self.finished() {
            return 0;
        }
        // PAR rollovers re-derive drop thresholds, criticality, urgency and
        // rank; every bound below is only valid while PAR is stable.
        let mut target = self.mem.tracker.next_rollover();
        for core in &self.cores {
            match core.idle_state(now) {
                None => return 0,
                Some(idle) => {
                    if let Some(w) = idle.wake_at {
                        target = target.min(w);
                    }
                }
            }
        }
        if let Some(ev) = self.mem.controller.next_event(now, &self.mem.tracker) {
            target = target.min(ev);
        }
        target = target.min(self.cfg.max_cycles);
        if target <= now {
            return 0;
        }
        let skipped = target - now;
        for core in &mut self.cores {
            let idle = core.idle_state(now).expect("idle-checked above");
            core.skip_idle_cycles(&idle, skipped);
        }
        self.profile.ff_jumps += 1;
        self.profile.ff_cycles_skipped += skipped;
        self.profile.core_cycles_skipped += skipped * self.cfg.cores as u64;
        self.profile.ctrl_cycles_skipped += skipped;
        self.now = target;
        skipped
    }

    /// Attempts one global jump in horizon or event mode: fires only when
    /// *every* core lags past `now`, bounded by the earliest due tick, the
    /// controller's next event, the PAR rollover, and `max_cycles`. The
    /// cores' deferred replays are *not* applied here — their lag windows
    /// simply span the jump and are replayed at their next resync, which
    /// is what lets the skipped span be counted per-core exactly once.
    ///
    /// In event mode the cached (validated) bound replaces the fresh
    /// `next_event` call — same value, computed once (E4).
    fn try_horizon_jump(
        &mut self,
        hz: &horizon::HorizonState,
        ev: Option<&mut event::EventState>,
    ) -> u64 {
        let now = self.now;
        if now >= self.cfg.max_cycles || self.finished() || !hz.all_lagging(now) {
            return 0;
        }
        let mut target = self.mem.tracker.next_rollover().min(hz.min_due());
        match ev {
            Some(ev) => {
                ev.validate(now, &mut self.mem.controller, &self.mem.tracker);
                target = target.min(ev.ctrl_next());
            }
            None => {
                if let Some(e) = self.mem.controller.next_event(now, &self.mem.tracker) {
                    target = target.min(e);
                }
            }
        }
        target = target.min(self.cfg.max_cycles);
        if target <= now {
            return 0;
        }
        let skipped = target - now;
        self.profile.ff_jumps += 1;
        self.profile.ff_cycles_skipped += skipped;
        self.profile.ctrl_cycles_skipped += skipped;
        self.now = target;
        skipped
    }

    /// True once every core has reached its instruction target.
    pub fn finished(&self) -> bool {
        self.finish_cycle.iter().all(Option::is_some)
    }

    /// Sets this system's fast-forward mode (defaults to
    /// [`fast_forward_mode_default`] at construction).
    pub fn set_fast_forward_mode(&mut self, mode: FastForwardMode) {
        self.ff_mode = mode;
    }

    /// This system's fast-forward mode.
    pub fn fast_forward_mode(&self) -> FastForwardMode {
        self.ff_mode
    }

    /// Boolean shorthand for [`System::set_fast_forward_mode`]: `true`
    /// selects `Horizon`, `false` selects `Off`.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.ff_mode = if enabled {
            FastForwardMode::Horizon
        } else {
            FastForwardMode::Off
        };
    }

    /// True when [`System::run`] fast-forwards at all (mode is not `Off`).
    pub fn fast_forward_enabled(&self) -> bool {
        self.ff_mode != FastForwardMode::Off
    }

    /// The hot-path profile accumulated so far (see [`crate::profile`]).
    pub fn profile(&self) -> &SimProfile {
        &self.profile
    }

    /// The next `PAR` interval rollover cycle (an explicit fast-forward
    /// stop event; exposed for the equivalence tests).
    pub fn next_accuracy_rollover(&self) -> Cycle {
        self.mem.tracker.next_rollover()
    }

    /// Runs to completion (every core reaches `max_instructions`, or the
    /// `max_cycles` safety cap triggers) and reports.
    pub fn run(&mut self) -> Report {
        let start = std::time::Instant::now();
        match self.ff_mode {
            FastForwardMode::Off => {
                while !self.finished() && self.now < self.cfg.max_cycles {
                    self.step();
                }
            }
            FastForwardMode::Global => {
                while !self.finished() && self.now < self.cfg.max_cycles {
                    self.step();
                    self.try_fast_forward();
                }
            }
            FastForwardMode::Horizon => {
                let mut hz = horizon::HorizonState::new(self.cfg.cores, self.now);
                while !self.finished() && self.now < self.cfg.max_cycles {
                    self.step_inner(Some(&mut hz), None);
                    self.try_horizon_jump(&hz, None);
                }
                // Live (non-snapshotted) core stats must match a
                // cycle-exact run that stopped at the same cycle.
                hz.flush(self.now, &mut self.cores, &mut self.profile);
            }
            FastForwardMode::Event => {
                let mut hz = horizon::HorizonState::new(self.cfg.cores, self.now);
                let mut ev =
                    event::EventState::new(self.now, &mut self.mem.controller, &self.mem.tracker);
                while !self.finished() && self.now < self.cfg.max_cycles {
                    self.step_inner(Some(&mut hz), Some(&mut ev));
                    self.try_horizon_jump(&hz, Some(&mut ev));
                }
                hz.flush(self.now, &mut self.cores, &mut self.profile);
            }
        }
        self.profile.wall_ns += start.elapsed().as_nanos() as u64;
        let bs = self.mem.controller.buffer_stats();
        self.profile.owner_recomputes = bs.owner_recomputes;
        self.profile.owner_invalidations = bs.owner_invalidations;
        self.profile.owner_reuses = bs.owner_reuses;
        self.profile.owner_scan_entries = bs.owner_scan_entries;
        self.profile.dspatch_flips = self.mem.prefetchers.iter().map(|p| p.mode_flips()).sum();
        let rc = self.mem.controller.refresh_counters();
        self.profile.refresh_pulls = rc.pulls;
        self.profile.refresh_stall_cycles = rc.stall_cycles;
        profile::note_run(&self.profile);
        self.report()
    }

    /// Builds the report from current (or snapshotted) state.
    pub fn report(&self) -> Report {
        let per_core = (0..self.cfg.cores)
            .map(|c| {
                let stats = self.core_snapshots[c].unwrap_or(*self.cores[c].stats());
                let pcc = self.mem_snapshots[c].unwrap_or(self.mem.pc[c]);
                let cycles = self.finish_cycle[c].unwrap_or(self.now.max(1));
                CoreReport {
                    benchmark: self.benchmark_names[c].clone(),
                    instructions: stats.retired_instructions,
                    cycles,
                    loads: stats.retired_loads,
                    window_stall_cycles: stats.window_stall_cycles,
                    l2_accesses: pcc.l2_accesses,
                    l2_misses: pcc.l2_misses,
                    prefetches_sent: pcc.pf_sent,
                    prefetches_used: pcc.pf_used,
                    prefetches_dropped: pcc.pf_dropped,
                    prefetches_filtered: pcc.pf_filtered,
                    prefetches_no_space: pcc.pf_no_space,
                    runahead_episodes: stats.runahead_episodes,
                    dispatch_window_full_cycles: stats.dispatch_window_full_cycles,
                    dispatch_retry_cycles: stats.dispatch_retry_cycles,
                    dispatch_dep_cycles: stats.dispatch_dep_cycles,
                    traffic: Traffic {
                        demand: pcc.demand_traffic,
                        pref_useful: pcc.useful_pbit + pcc.promotions,
                        pref_useless: pcc.pref_filled.saturating_sub(pcc.useful_pbit),
                    },
                    rbhu_demand_hits: pcc.rbhu_demand_hits,
                    rbhu_demand_total: pcc.rbhu_demand_total,
                    rbhu_useful_hits: pcc.rbhu_useful_hits,
                    rbhu_useful_total: pcc.rbhu_useful_total,
                }
            })
            .collect();
        // Fold still-unused prefetched lines into the useless histogram.
        let mut hist_useless = self.mem.hist_useless;
        for bucket in self.mem.hist_pending.values() {
            hist_useless[*bucket as usize] += 1;
        }
        Report {
            per_core,
            total_cycles: self.now,
            controller: self.mem.controller.stats().clone(),
            channels: self
                .mem
                .controller
                .channel_stats()
                .into_iter()
                .cloned()
                .collect(),
            pf_service_hist_useful: self.mem.hist_useful,
            pf_service_hist_useless: hist_useless,
        }
    }
}

#[cfg(test)]
mod tests {
    use padc_core::SchedulingPolicy;
    use padc_workloads::profiles;

    use super::*;

    fn quick_cfg(policy: SchedulingPolicy) -> SimConfig {
        let mut cfg = SimConfig::single_core(policy);
        cfg.max_instructions = 30_000;
        cfg.max_cycles = 20_000_000;
        cfg
    }

    #[test]
    fn streaming_benchmark_completes_and_prefetches_are_accurate() {
        let mut cfg = quick_cfg(SchedulingPolicy::DemandFirst);
        cfg.max_instructions = 100_000; // long enough to amortize the
                                        // in-flight prefetch tail
        let mut sys = System::new(cfg, vec![profiles::libquantum()]);
        let r = sys.run();
        let c = &r.per_core[0];
        assert!(c.instructions >= 100_000);
        assert!(c.ipc() > 0.0);
        assert!(c.prefetches_sent > 100, "sent {}", c.prefetches_sent);
        assert!(
            c.acc() > 0.8,
            "streaming accuracy should be high: {}",
            c.acc()
        );
    }

    #[test]
    fn unfriendly_benchmark_has_low_accuracy() {
        let mut cfg = quick_cfg(SchedulingPolicy::DemandFirst);
        cfg.max_instructions = 100_000;
        let mut sys = System::new(cfg, vec![profiles::omnetpp()]);
        let r = sys.run();
        let c = &r.per_core[0];
        assert!(c.prefetches_sent > 50, "sent {}", c.prefetches_sent);
        assert!(
            c.acc() < 0.4,
            "short runs should be inaccurate: {}",
            c.acc()
        );
    }

    #[test]
    fn no_prefetch_run_sends_no_prefetches() {
        let cfg = quick_cfg(SchedulingPolicy::DemandFirst).without_prefetching();
        let mut sys = System::new(cfg, vec![profiles::libquantum()]);
        let r = sys.run();
        assert_eq!(r.per_core[0].prefetches_sent, 0);
        assert_eq!(r.traffic().pref_useful + r.traffic().pref_useless, 0);
        assert!(r.traffic().demand > 0);
    }

    #[test]
    fn padc_drops_useless_prefetches() {
        // Long enough for the measured accuracy to converge to omnetpp's
        // genuinely low value, which arms the aggressive drop thresholds.
        let mut cfg = quick_cfg(SchedulingPolicy::Padc);
        cfg.max_instructions = 150_000;
        let mut sys = System::new(cfg, vec![profiles::omnetpp()]);
        let r = sys.run();
        assert!(
            r.per_core[0].prefetches_dropped > 0,
            "APD should fire on omnetpp"
        );
    }

    #[test]
    fn multicore_run_reports_all_cores() {
        let mut cfg = SimConfig::new(2, SchedulingPolicy::Padc);
        cfg.max_instructions = 15_000;
        let mut sys = System::new(cfg, vec![profiles::libquantum(), profiles::milc()]);
        let r = sys.run();
        assert_eq!(r.per_core.len(), 2);
        assert!(r.per_core.iter().all(|c| c.instructions >= 15_000));
        assert!(r.rbhu() > 0.0);
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let mut sys = System::new(quick_cfg(SchedulingPolicy::Padc), vec![profiles::milc()]);
            sys.run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.per_core, b.per_core);
    }
}
