//! Self-profiling for the simulation hot path.
//!
//! Every [`System`](crate::System) keeps a [`SimProfile`] of cheap
//! always-on counters: cycles stepped one by one, fast-forward jumps
//! taken, and cycles skipped by them. Wall-time phase breakdowns
//! (controller tick vs core tick) cost two `Instant` reads per cycle, so
//! they are gated behind a process-wide flag set by `--profile` on the
//! `padcsim` and `repro` binaries.
//!
//! For suite runs, an experiment installs a shared [`ProfileAccum`] as the
//! harness task context ([`padc_harness::with_task_context`]); every
//! `System::run` that executes on behalf of that experiment — including
//! runs fanned out to other worker threads via `subjob_map` — folds its
//! profile into the accumulator, which the suite then renders as a
//! `profile` object in the experiment's JSONL row.
//!
//! Note that wall-times are inherently nondeterministic and fast-forward
//! counters differ between fast-forward-on and -off runs, which is why the
//! `profile` JSONL object is strictly opt-in: the determinism gates compare
//! artifacts produced *without* `--profile`.

use serde::{Number, Serialize, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide switch for the wall-time phase timers.
static TIMING: AtomicBool = AtomicBool::new(false);

/// Enables or disables the per-phase wall-time timers in
/// [`System::step`](crate::System::step). Counters (steps, fast-forward
/// jumps) are always on; only the `Instant`-based phase timing is gated.
pub fn set_timing_enabled(enabled: bool) {
    TIMING.store(enabled, Ordering::Relaxed);
}

/// True when the per-phase wall-time timers are enabled.
pub fn timing_enabled() -> bool {
    TIMING.load(Ordering::Relaxed)
}

/// Hot-path counters for one [`System`](crate::System).
///
/// `controller_ns` / `cores_ns` stay zero unless [`set_timing_enabled`]
/// was turned on; `wall_ns` is always measured (one `Instant` per run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimProfile {
    /// Cycles advanced by executing a full [`System::step`](crate::System::step).
    pub cycles_stepped: u64,
    /// Fast-forward jumps taken (global jumps in `global` and `horizon`
    /// modes).
    pub ff_jumps: u64,
    /// Cycles skipped by fast-forward jumps (not stepped).
    pub ff_cycles_skipped: u64,
    /// Core ticks actually executed (every core, every stepped cycle in
    /// `off`/`global` modes; only *due* cores under `horizon`).
    pub core_cycles_ticked: u64,
    /// Per-core cycles elided as replayed stall-counter bumps instead of
    /// real ticks. In every mode `core_cycles_ticked + core_cycles_skipped
    /// == cores × total_cycles`; the skip ratio
    /// ([`SimProfile::core_skip_ratio`]) is the CI perf gate's metric.
    pub core_cycles_skipped: u64,
    /// Horizon resyncs: deferred lag-window replays applied when a core
    /// was woken, became due, or was flushed at run exit.
    pub horizon_resyncs: u64,
    /// Controller ticks actually executed (every stepped cycle in
    /// `off`/`global`/`horizon` modes; only *proven-event* cycles under
    /// `event`).
    pub ctrl_cycles_stepped: u64,
    /// Controller ticks elided: cycles inside fast-forward jumps plus
    /// cycles whose tick the event proof showed to be a no-op. In every
    /// mode `ctrl_cycles_stepped + ctrl_cycles_skipped == total_cycles`;
    /// the skip ratio ([`SimProfile::ctrl_skip_ratio`]) is the CI perf
    /// gate's event-mode metric.
    pub ctrl_cycles_skipped: u64,
    /// Controller ticks executed because a proven event was due (`event`
    /// mode only; zero elsewhere).
    pub ctrl_events_fired: u64,
    /// Bank-owner cache rebuilds in the controller's request buffer
    /// (copied from [`padc_core::BufferStats`] when the run finishes).
    pub owner_recomputes: u64,
    /// Bank-owner cache invalidations (clean-to-dirty transitions). The
    /// buffer maintains `owner_recomputes <= owner_invalidations`; the
    /// perf gate asserts it end-to-end.
    pub owner_invalidations: u64,
    /// Scheduling queries served from a still-valid cached bank owner.
    pub owner_reuses: u64,
    /// Entries examined across all owner rebuilds (bitset-scan volume).
    pub owner_scan_entries: u64,
    /// DSPatch modulator mode flips (Coverage <-> Accuracy) summed over
    /// every core's prefetcher when the run finishes; zero for all other
    /// prefetchers. `scripts/mech_gate.sh` asserts this is nonzero for the
    /// `ext-dspatch` family, proving the dual-pattern modulator actually
    /// exercises both modes at smoke scale.
    pub dspatch_flips: u64,
    /// DARP refresh pulls: per-bank refreshes the controller issued early
    /// into idle banks (or during write drains) instead of paying the
    /// deadline-forced refresh at the t_REFI window boundary (copied from
    /// [`padc_dram::RefreshCounters`] when the run finishes; zero unless
    /// `RefreshPolicy::Darp`). `scripts/mech_gate.sh` asserts this is
    /// nonzero for the `ext-refresh` family.
    pub refresh_pulls: u64,
    /// Cycles of bank (or, for all-bank refresh, whole-channel) occupancy
    /// charged to refresh over the run — the bandwidth the refresh policy
    /// is competing to reclaim.
    pub refresh_stall_cycles: u64,
    /// Wall time spent in the controller phase of `step` (timers on only).
    pub controller_ns: u64,
    /// Wall time spent ticking cores (timers on only).
    pub cores_ns: u64,
    /// Wall time of the whole [`System::run`](crate::System::run) call.
    pub wall_ns: u64,
}

/// Rounds a 0..=1 ratio to a percentage with one decimal, matching the
/// `{:.1}` precision the old hand-formatted profile lines used.
fn pct(ratio: f64) -> f64 {
    (ratio * 1000.0).round() / 10.0
}

/// The `profile` JSON object (one key per [`SimProfile`] counter in
/// declaration order, plus the derived `core_skip_pct` / `ctrl_skip_pct`
/// percentages). This single serde surface is shared by the `padcsim`
/// `--profile` stderr line, the suite JSONL rows `repro` / `padcsim
/// --suite` / `padcsim serve` emit (via [`ProfileAccum::to_json`]), and
/// the gate scripts that parse them.
impl Serialize for SimProfile {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = Vec::new();
        let mut push = |k: &str, v: u64| fields.push((k.to_string(), Value::Num(Number::U(v))));
        push("cycles_stepped", self.cycles_stepped);
        push("ff_jumps", self.ff_jumps);
        push("ff_cycles_skipped", self.ff_cycles_skipped);
        push("core_cycles_ticked", self.core_cycles_ticked);
        push("core_cycles_skipped", self.core_cycles_skipped);
        push("horizon_resyncs", self.horizon_resyncs);
        push("ctrl_cycles_stepped", self.ctrl_cycles_stepped);
        push("ctrl_cycles_skipped", self.ctrl_cycles_skipped);
        push("ctrl_events_fired", self.ctrl_events_fired);
        push("owner_recomputes", self.owner_recomputes);
        push("owner_invalidations", self.owner_invalidations);
        push("owner_reuses", self.owner_reuses);
        push("owner_scan_entries", self.owner_scan_entries);
        push("dspatch_flips", self.dspatch_flips);
        push("refresh_pulls", self.refresh_pulls);
        push("refresh_stall_cycles", self.refresh_stall_cycles);
        push("controller_ns", self.controller_ns);
        push("cores_ns", self.cores_ns);
        push("wall_ns", self.wall_ns);
        fields.push((
            "core_skip_pct".to_string(),
            Value::Num(Number::F(pct(self.core_skip_ratio()))),
        ));
        fields.push((
            "ctrl_skip_pct".to_string(),
            Value::Num(Number::F(pct(self.ctrl_skip_ratio()))),
        ));
        Value::Object(fields)
    }
}

impl SimProfile {
    /// Fraction of core-cycles skipped rather than ticked (0 when nothing
    /// ran yet). This is the metric `scripts/perf_gate.sh` guards.
    pub fn core_skip_ratio(&self) -> f64 {
        let total = self.core_cycles_ticked + self.core_cycles_skipped;
        if total == 0 {
            0.0
        } else {
            self.core_cycles_skipped as f64 / total as f64
        }
    }

    /// Fraction of controller ticks elided rather than executed (0 when
    /// nothing ran yet). `scripts/perf_gate.sh` guards this for event
    /// mode against the floor in `BENCH_event.json`.
    pub fn ctrl_skip_ratio(&self) -> f64 {
        let total = self.ctrl_cycles_stepped + self.ctrl_cycles_skipped;
        if total == 0 {
            0.0
        } else {
            self.ctrl_cycles_skipped as f64 / total as f64
        }
    }
}

/// Thread-safe accumulator folding the [`SimProfile`]s of every simulation
/// run an experiment performs. Installed as the harness task context so
/// fanned-out sub-jobs on other worker threads report into the same
/// object.
#[derive(Debug, Default)]
pub struct ProfileAccum {
    runs: AtomicU64,
    cycles_stepped: AtomicU64,
    ff_jumps: AtomicU64,
    ff_cycles_skipped: AtomicU64,
    core_cycles_ticked: AtomicU64,
    core_cycles_skipped: AtomicU64,
    horizon_resyncs: AtomicU64,
    ctrl_cycles_stepped: AtomicU64,
    ctrl_cycles_skipped: AtomicU64,
    ctrl_events_fired: AtomicU64,
    owner_recomputes: AtomicU64,
    owner_invalidations: AtomicU64,
    owner_reuses: AtomicU64,
    owner_scan_entries: AtomicU64,
    dspatch_flips: AtomicU64,
    refresh_pulls: AtomicU64,
    refresh_stall_cycles: AtomicU64,
    controller_ns: AtomicU64,
    cores_ns: AtomicU64,
    wall_ns: AtomicU64,
}

impl ProfileAccum {
    /// Folds one run's profile into the accumulator.
    pub fn add(&self, p: &SimProfile) {
        self.runs.fetch_add(1, Ordering::Relaxed);
        self.cycles_stepped
            .fetch_add(p.cycles_stepped, Ordering::Relaxed);
        self.ff_jumps.fetch_add(p.ff_jumps, Ordering::Relaxed);
        self.ff_cycles_skipped
            .fetch_add(p.ff_cycles_skipped, Ordering::Relaxed);
        self.core_cycles_ticked
            .fetch_add(p.core_cycles_ticked, Ordering::Relaxed);
        self.core_cycles_skipped
            .fetch_add(p.core_cycles_skipped, Ordering::Relaxed);
        self.horizon_resyncs
            .fetch_add(p.horizon_resyncs, Ordering::Relaxed);
        self.ctrl_cycles_stepped
            .fetch_add(p.ctrl_cycles_stepped, Ordering::Relaxed);
        self.ctrl_cycles_skipped
            .fetch_add(p.ctrl_cycles_skipped, Ordering::Relaxed);
        self.ctrl_events_fired
            .fetch_add(p.ctrl_events_fired, Ordering::Relaxed);
        self.owner_recomputes
            .fetch_add(p.owner_recomputes, Ordering::Relaxed);
        self.owner_invalidations
            .fetch_add(p.owner_invalidations, Ordering::Relaxed);
        self.owner_reuses
            .fetch_add(p.owner_reuses, Ordering::Relaxed);
        self.owner_scan_entries
            .fetch_add(p.owner_scan_entries, Ordering::Relaxed);
        self.dspatch_flips
            .fetch_add(p.dspatch_flips, Ordering::Relaxed);
        self.refresh_pulls
            .fetch_add(p.refresh_pulls, Ordering::Relaxed);
        self.refresh_stall_cycles
            .fetch_add(p.refresh_stall_cycles, Ordering::Relaxed);
        self.controller_ns
            .fetch_add(p.controller_ns, Ordering::Relaxed);
        self.cores_ns.fetch_add(p.cores_ns, Ordering::Relaxed);
        self.wall_ns.fetch_add(p.wall_ns, Ordering::Relaxed);
    }

    /// Number of simulation runs folded in so far.
    pub fn runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    /// Snapshot of the folded counters as one [`SimProfile`].
    pub fn snapshot(&self) -> SimProfile {
        SimProfile {
            cycles_stepped: self.cycles_stepped.load(Ordering::Relaxed),
            ff_jumps: self.ff_jumps.load(Ordering::Relaxed),
            ff_cycles_skipped: self.ff_cycles_skipped.load(Ordering::Relaxed),
            core_cycles_ticked: self.core_cycles_ticked.load(Ordering::Relaxed),
            core_cycles_skipped: self.core_cycles_skipped.load(Ordering::Relaxed),
            horizon_resyncs: self.horizon_resyncs.load(Ordering::Relaxed),
            ctrl_cycles_stepped: self.ctrl_cycles_stepped.load(Ordering::Relaxed),
            ctrl_cycles_skipped: self.ctrl_cycles_skipped.load(Ordering::Relaxed),
            ctrl_events_fired: self.ctrl_events_fired.load(Ordering::Relaxed),
            owner_recomputes: self.owner_recomputes.load(Ordering::Relaxed),
            owner_invalidations: self.owner_invalidations.load(Ordering::Relaxed),
            owner_reuses: self.owner_reuses.load(Ordering::Relaxed),
            owner_scan_entries: self.owner_scan_entries.load(Ordering::Relaxed),
            dspatch_flips: self.dspatch_flips.load(Ordering::Relaxed),
            refresh_pulls: self.refresh_pulls.load(Ordering::Relaxed),
            refresh_stall_cycles: self.refresh_stall_cycles.load(Ordering::Relaxed),
            controller_ns: self.controller_ns.load(Ordering::Relaxed),
            cores_ns: self.cores_ns.load(Ordering::Relaxed),
            wall_ns: self.wall_ns.load(Ordering::Relaxed),
        }
    }

    /// Renders the accumulated profile as a JSON object (embedded in the
    /// suite's JSONL rows under `"profile"`): a leading `runs` count
    /// followed by the serde-serialized [`SimProfile`] fields, so every
    /// consumer reads the same object shape `padcsim --profile` prints.
    pub fn to_json(&self) -> String {
        let mut fields = vec![(
            "runs".to_string(),
            Value::Num(Number::U(self.runs.load(Ordering::Relaxed))),
        )];
        if let Value::Object(rest) = self.snapshot().to_value() {
            fields.extend(rest);
        }
        let mut out = String::new();
        serde_json::write_value(&mut out, &Value::Object(fields), None, 0);
        out
    }
}

/// Folds a finished run's profile into the ambient harness task context,
/// when that context is a [`ProfileAccum`]. No-op outside profiled suite
/// runs.
pub fn note_run(p: &SimProfile) {
    if let Some(ctx) = padc_harness::task_context() {
        if let Ok(acc) = ctx.downcast::<ProfileAccum>() {
            acc.add(p);
        }
    }
}

/// Builds a fresh accumulator, type-erased for installation as the harness
/// task context.
pub fn new_accum() -> Arc<ProfileAccum> {
    Arc::new(ProfileAccum::default())
}

/// Requests admitted by `padcsim serve` over the process lifetime
/// (counting malformed ones — every received line is a request).
static SERVE_REQUESTS: AtomicU64 = AtomicU64::new(0);

/// Counts one admitted `padcsim serve` request.
pub fn note_serve_request() {
    SERVE_REQUESTS.fetch_add(1, Ordering::Relaxed);
}

/// Process-wide service-layer counters: the unit-store cache telemetry
/// plus the serve request count, surfaced together so the CLIs and gates
/// read one consistent snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Units resolved from a validated disk-store entry.
    pub store_hits: u64,
    /// Units that probed the store and had to be computed.
    pub store_misses: u64,
    /// Units resolved from (or parked on) an in-memory claim another
    /// request already owned.
    pub units_coalesced: u64,
    /// Requests admitted by `padcsim serve`.
    pub serve_requests: u64,
}

/// Snapshot of the service-layer counters (monotonic; diff two snapshots
/// for a per-run view).
pub fn service_counters() -> ServiceCounters {
    let cache = crate::experiments::unit_cache_stats();
    ServiceCounters {
        store_hits: cache.store_hits,
        store_misses: cache.store_misses,
        units_coalesced: cache.units_coalesced,
        serve_requests: SERVE_REQUESTS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accum_folds_and_renders() {
        let acc = ProfileAccum::default();
        acc.add(&SimProfile {
            cycles_stepped: 10,
            ff_jumps: 2,
            ff_cycles_skipped: 90,
            core_cycles_ticked: 10,
            core_cycles_skipped: 90,
            horizon_resyncs: 0,
            ctrl_cycles_stepped: 10,
            ctrl_cycles_skipped: 90,
            ctrl_events_fired: 0,
            owner_recomputes: 4,
            owner_invalidations: 6,
            owner_reuses: 20,
            owner_scan_entries: 12,
            dspatch_flips: 3,
            refresh_pulls: 4,
            refresh_stall_cycles: 40,
            controller_ns: 0,
            cores_ns: 0,
            wall_ns: 5,
        });
        acc.add(&SimProfile {
            cycles_stepped: 5,
            ff_jumps: 1,
            ff_cycles_skipped: 10,
            core_cycles_ticked: 8,
            core_cycles_skipped: 22,
            horizon_resyncs: 7,
            ctrl_cycles_stepped: 2,
            ctrl_cycles_skipped: 13,
            ctrl_events_fired: 2,
            owner_recomputes: 1,
            owner_invalidations: 2,
            owner_reuses: 5,
            owner_scan_entries: 3,
            dspatch_flips: 2,
            refresh_pulls: 2,
            refresh_stall_cycles: 17,
            controller_ns: 3,
            cores_ns: 4,
            wall_ns: 5,
        });
        assert_eq!(acc.runs(), 2);
        assert_eq!(
            acc.to_json(),
            "{\"runs\":2,\"cycles_stepped\":15,\"ff_jumps\":3,\
             \"ff_cycles_skipped\":100,\"core_cycles_ticked\":18,\
             \"core_cycles_skipped\":112,\"horizon_resyncs\":7,\
             \"ctrl_cycles_stepped\":12,\"ctrl_cycles_skipped\":103,\
             \"ctrl_events_fired\":2,\
             \"owner_recomputes\":5,\"owner_invalidations\":8,\
             \"owner_reuses\":25,\"owner_scan_entries\":15,\
             \"dspatch_flips\":5,\
             \"refresh_pulls\":6,\"refresh_stall_cycles\":57,\
             \"controller_ns\":3,\"cores_ns\":4,\"wall_ns\":10,\
             \"core_skip_pct\":86.2,\"ctrl_skip_pct\":89.6}"
        );
    }

    #[test]
    fn single_run_profile_serializes_to_the_same_shape() {
        // `padcsim --profile` prints exactly this object (minus `runs`);
        // the perf gate greps its `"core_skip_pct":` / `"owner_*":` keys.
        let p = SimProfile {
            core_cycles_ticked: 25,
            core_cycles_skipped: 75,
            refresh_pulls: 9,
            ..SimProfile::default()
        };
        let json = serde_json::to_string(&p).unwrap();
        assert!(json.starts_with("{\"cycles_stepped\":0,"), "{json}");
        assert!(json.contains("\"refresh_pulls\":9"), "{json}");
        assert!(json.contains("\"refresh_stall_cycles\":0"), "{json}");
        assert!(
            json.ends_with("\"core_skip_pct\":75,\"ctrl_skip_pct\":0}"),
            "{json}"
        );
    }

    #[test]
    fn core_skip_ratio_handles_empty_and_mixed() {
        assert_eq!(SimProfile::default().core_skip_ratio(), 0.0);
        let p = SimProfile {
            core_cycles_ticked: 25,
            core_cycles_skipped: 75,
            ..SimProfile::default()
        };
        assert!((p.core_skip_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ctrl_skip_ratio_handles_empty_and_mixed() {
        assert_eq!(SimProfile::default().ctrl_skip_ratio(), 0.0);
        let p = SimProfile {
            ctrl_cycles_stepped: 10,
            ctrl_cycles_skipped: 90,
            ..SimProfile::default()
        };
        assert!((p.ctrl_skip_ratio() - 0.90).abs() < 1e-12);
    }

    #[test]
    fn note_run_without_context_is_a_no_op() {
        note_run(&SimProfile::default());
    }
}
