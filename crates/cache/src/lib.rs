//! Set-associative cache and MSHR models for the PADC simulation suite.
//!
//! The caches carry the paper's *prefetch bit* (`P`) per line (§4.1): a line
//! filled by a prefetch keeps `P` set until the first demand hit, at which
//! point the hit is reported so the prefetch-accuracy machinery can credit
//! the prefetcher (`PUC`), and the bit is reset. Lines evicted with `P` still
//! set were useless prefetches.
//!
//! [`MshrFile`] models the miss-status holding registers that track
//! outstanding fills; the Adaptive Prefetch Dropping unit invalidates an
//! MSHR entry before removing a prefetch from the memory request buffer.
//!
//! # Example
//!
//! ```
//! use padc_cache::{Cache, CacheConfig, ProbeOutcome};
//! use padc_types::LineAddr;
//!
//! let mut l2 = Cache::new(CacheConfig::l2_private());
//! let line = LineAddr::new(0x99);
//! assert_eq!(l2.probe(line, false), ProbeOutcome::Miss);
//! l2.fill(line, true, false, true); // prefetched fill, row-hit service
//! match l2.probe(line, false) {
//!     ProbeOutcome::Hit(info) => assert!(info.first_demand_use_of_prefetch),
//!     ProbeOutcome::Miss => unreachable!(),
//! }
//! ```

#![warn(missing_docs)]

mod cache;
mod config;
mod mshr;
mod stats;

pub use cache::{Cache, Eviction, HitInfo, ProbeOutcome};
pub use config::CacheConfig;
pub use mshr::{MshrEntry, MshrFile, Waiter};
pub use stats::CacheStats;
