use padc_types::LineAddr;

use crate::{CacheConfig, CacheStats};

/// Per-line metadata. `prefetched` is the paper's `P` bit; `filled_row_hit`
/// remembers whether the fill was serviced as a DRAM row hit so the RBHU
/// metric (§6.1.1) can attribute row-buffer locality to *useful* prefetches
/// when the line is eventually used.
#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    prefetched: bool,
    filled_row_hit: bool,
    lru: u64,
}

const INVALID: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    prefetched: false,
    filled_row_hit: false,
    lru: 0,
};

/// Details of a cache hit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HitInfo {
    /// True when this is the first demand touch of a prefetched line: the
    /// `P` bit was set and has just been reset. The caller must credit the
    /// prefetcher (increment `PUC`).
    pub first_demand_use_of_prefetch: bool,
    /// Whether the fill that brought this line in was a DRAM row hit. Only
    /// meaningful when `first_demand_use_of_prefetch` is true.
    pub fill_was_row_hit: bool,
}

/// Result of a demand probe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProbeOutcome {
    /// The line is present; LRU updated, `P` bit (if set) consumed.
    Hit(HitInfo),
    /// The line is absent.
    Miss,
}

/// A line evicted by a fill.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Eviction {
    /// The evicted line address.
    pub line: LineAddr,
    /// True if the line was dirty and must be written back.
    pub dirty: bool,
    /// True if the line was prefetched and never used by a demand — a
    /// useless prefetch that polluted the cache.
    pub unused_prefetch: bool,
}

/// A set-associative, true-LRU, write-back cache with per-line prefetch
/// bits.
///
/// The model is a tag store only — data values are not simulated, since all
/// results in the paper depend only on hit/miss behaviour and traffic.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    set_mask: u64,
    set_shift: u32,
    stamp: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration geometry is invalid (see
    /// [`CacheConfig::sets`]).
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            sets: vec![vec![INVALID; cfg.ways]; sets],
            set_mask: sets as u64 - 1,
            set_shift: sets.trailing_zeros(),
            cfg,
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn index(&self, line: LineAddr) -> (usize, u64) {
        let set = (line.raw() & self.set_mask) as usize;
        let tag = line.raw() >> self.set_shift;
        (set, tag)
    }

    fn line_addr(&self, set: usize, tag: u64) -> LineAddr {
        LineAddr::new((tag << self.set_shift) | set as u64)
    }

    /// Demand access (load or store). Hits update LRU, consume the `P` bit,
    /// and set the dirty bit on writes. Misses change nothing.
    pub fn probe(&mut self, line: LineAddr, write: bool) -> ProbeOutcome {
        self.stamp += 1;
        let (set, tag) = self.index(line);
        let stamp = self.stamp;
        for l in &mut self.sets[set] {
            if l.valid && l.tag == tag {
                l.lru = stamp;
                let first_use = l.prefetched;
                let fill_row_hit = l.filled_row_hit;
                l.prefetched = false;
                if write {
                    l.dirty = true;
                }
                self.stats.hits += 1;
                return ProbeOutcome::Hit(HitInfo {
                    first_demand_use_of_prefetch: first_use,
                    fill_was_row_hit: fill_row_hit,
                });
            }
        }
        self.stats.misses += 1;
        ProbeOutcome::Miss
    }

    /// Checks for presence without updating any state (no LRU movement, no
    /// `P`-bit consumption, no statistics).
    pub fn peek(&self, line: LineAddr) -> bool {
        let (set, tag) = self.index(line);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Inserts `line`, evicting the LRU victim if the set is full.
    ///
    /// `prefetched` sets the `P` bit; `dirty` marks the line modified on
    /// arrival (write-allocate fills); `row_hit` records how DRAM serviced
    /// the fill. Filling a line that is already present refreshes its
    /// metadata instead of duplicating it.
    pub fn fill(
        &mut self,
        line: LineAddr,
        prefetched: bool,
        dirty: bool,
        row_hit: bool,
    ) -> Option<Eviction> {
        self.stamp += 1;
        let (set, tag) = self.index(line);
        let stamp = self.stamp;
        // Refresh in place if already present (e.g. a prefetch landing after
        // a demand fill of the same line).
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == tag) {
            l.lru = stamp;
            l.dirty |= dirty;
            // A prefetch fill of a line that demand already owns must not
            // re-mark it prefetched; a demand fill of a prefetched line
            // consumes the P bit.
            l.prefetched &= prefetched;
            return None;
        }
        let victim = self.sets[set]
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("sets are non-empty");
        let evicted = if victim.valid {
            Some(Eviction {
                line: LineAddr::new(0), // patched below; tag needed first
                dirty: victim.dirty,
                unused_prefetch: victim.prefetched,
            })
        } else {
            None
        };
        let victim_tag = victim.tag;
        *victim = Line {
            tag,
            valid: true,
            dirty,
            prefetched,
            filled_row_hit: row_hit,
            lru: stamp,
        };
        if evicted.is_some() {
            self.stats.evictions += 1;
        }
        evicted.map(|e| Eviction {
            line: self.line_addr(set, victim_tag),
            ..e
        })
    }

    /// Removes `line` if present, returning whether it was there.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let (set, tag) = self.index(line);
        for l in &mut self.sets[set] {
            if l.valid && l.tag == tag {
                *l = INVALID;
                return true;
            }
        }
        false
    }

    /// Marks `line` dirty if present (L1 writeback landing in L2). Returns
    /// true on success.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let (set, tag) = self.index(line);
        for l in &mut self.sets[set] {
            if l.valid && l.tag == tag {
                l.dirty = true;
                return true;
            }
        }
        false
    }

    /// Number of resident lines whose `P` bit is still set — prefetches that
    /// were fetched but never used (counted as useless at end of run).
    pub fn unused_prefetched_lines(&self) -> u64 {
        self.sets
            .iter()
            .flatten()
            .filter(|l| l.valid && l.prefetched)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways.
        Cache::new(CacheConfig {
            size_bytes: 4 * 2 * 64,
            ways: 2,
            hit_latency: 1,
        })
    }

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.probe(l(1), false), ProbeOutcome::Miss);
        assert_eq!(c.fill(l(1), false, false, false), None);
        assert!(matches!(c.probe(l(1), false), ProbeOutcome::Hit(_)));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds lines 0, 4, 8, ... (4 sets).
        c.fill(l(0), false, false, false);
        c.fill(l(4), false, false, false);
        c.probe(l(0), false); // 0 is now MRU
        let ev = c.fill(l(8), false, false, false).expect("eviction");
        assert_eq!(ev.line, l(4));
        assert!(c.peek(l(0)));
        assert!(!c.peek(l(4)));
        assert!(c.peek(l(8)));
    }

    #[test]
    fn prefetch_bit_consumed_on_first_demand_hit() {
        let mut c = tiny();
        c.fill(l(3), true, false, true);
        match c.probe(l(3), false) {
            ProbeOutcome::Hit(info) => {
                assert!(info.first_demand_use_of_prefetch);
                assert!(info.fill_was_row_hit);
            }
            ProbeOutcome::Miss => panic!("expected hit"),
        }
        // Second hit no longer reports first use.
        match c.probe(l(3), false) {
            ProbeOutcome::Hit(info) => assert!(!info.first_demand_use_of_prefetch),
            ProbeOutcome::Miss => panic!("expected hit"),
        }
    }

    #[test]
    fn eviction_reports_unused_prefetch() {
        let mut c = tiny();
        c.fill(l(0), true, false, false);
        c.fill(l(4), false, false, false);
        let ev = c.fill(l(8), false, false, false).expect("eviction");
        assert_eq!(ev.line, l(0));
        assert!(ev.unused_prefetch);
        assert!(!ev.dirty);
    }

    #[test]
    fn used_prefetch_not_reported_unused_on_eviction() {
        let mut c = tiny();
        c.fill(l(0), true, false, false);
        c.probe(l(0), false); // use it
        c.fill(l(4), false, false, false);
        c.probe(l(4), false); // make 0 the LRU victim
        let ev = c.fill(l(8), false, false, false).expect("eviction");
        assert_eq!(ev.line, l(0));
        assert!(!ev.unused_prefetch);
    }

    #[test]
    fn write_sets_dirty_and_eviction_reports_it() {
        let mut c = tiny();
        c.fill(l(0), false, false, false);
        c.probe(l(0), true);
        c.fill(l(4), false, false, false);
        c.probe(l(4), false);
        let ev = c.fill(l(8), false, false, false).expect("eviction");
        assert_eq!(ev.line, l(0));
        assert!(ev.dirty);
    }

    #[test]
    fn refill_of_resident_line_does_not_evict() {
        let mut c = tiny();
        c.fill(l(0), false, false, false);
        c.fill(l(4), false, false, false);
        assert_eq!(c.fill(l(0), false, false, false), None);
        assert!(c.peek(l(0)));
        assert!(c.peek(l(4)));
    }

    #[test]
    fn demand_refill_clears_p_bit_but_prefetch_refill_preserves_demand_status() {
        let mut c = tiny();
        c.fill(l(0), true, false, false); // prefetched
        c.fill(l(0), false, false, false); // demand refill clears P
        assert_eq!(c.unused_prefetched_lines(), 0);

        c.fill(l(4), false, false, false); // demand line
        c.fill(l(4), true, false, false); // late prefetch fill must not set P
        assert_eq!(c.unused_prefetched_lines(), 0);
    }

    #[test]
    fn invalidate_and_mark_dirty() {
        let mut c = tiny();
        c.fill(l(9), false, false, false);
        assert!(c.mark_dirty(l(9)));
        assert!(c.invalidate(l(9)));
        assert!(!c.invalidate(l(9)));
        assert!(!c.mark_dirty(l(9)));
    }

    #[test]
    fn unused_prefetched_lines_counts_resident_p_bits() {
        let mut c = tiny();
        c.fill(l(0), true, false, false);
        c.fill(l(1), true, false, false);
        c.fill(l(2), false, false, false);
        assert_eq!(c.unused_prefetched_lines(), 2);
        c.probe(l(0), false);
        assert_eq!(c.unused_prefetched_lines(), 1);
    }
}
