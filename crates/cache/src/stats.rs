use serde::{Deserialize, Serialize};

/// Hit/miss/eviction counters for one cache.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand probes that hit.
    pub hits: u64,
    /// Demand probes that missed.
    pub misses: u64,
    /// Valid lines displaced by fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Total demand probes.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of probes that missed (0 when there were no probes).
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            return 0.0;
        }
        self.misses as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_handles_zero_accesses() {
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn miss_rate_is_fraction_of_probes() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        assert_eq!(s.accesses(), 4);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
    }
}
