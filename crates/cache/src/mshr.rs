use std::collections::HashMap;

use padc_types::{CoreId, LineAddr, RequestId};

/// A core-side consumer blocked on an outstanding fill. The `token` is
/// opaque to the memory system; the CPU model uses it to wake the right
/// instruction-window slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Waiter {
    /// Core that owns the blocked load.
    pub core: CoreId,
    /// Opaque wake-up token.
    pub token: u64,
}

/// One outstanding miss.
#[derive(Clone, Debug)]
pub struct MshrEntry {
    /// Line being fetched.
    pub line: LineAddr,
    /// The `P` bit of the entry: true while the fetch is prefetch-only.
    pub prefetch: bool,
    /// The memory request servicing this miss.
    pub request: RequestId,
    /// Loads blocked on the fill.
    pub waiters: Vec<Waiter>,
    /// True if some merged access was a store (fill arrives dirty).
    pub write: bool,
}

/// The miss-status holding register file of one L2 cache.
///
/// Capacity matches the paper's Table 4 (64/64/128/256 entries for 1/2/4/8
/// cores). Prefetches that cannot get an entry are dropped at issue;
/// demands retry.
///
/// ```
/// use padc_cache::MshrFile;
/// use padc_types::{LineAddr, RequestId};
///
/// let mut mshrs = MshrFile::new(2);
/// let line = LineAddr::new(5);
/// assert!(mshrs.allocate(line, true, RequestId::new(1)));
/// assert!(mshrs.get(line).is_some());
/// let entry = mshrs.remove(line).expect("present");
/// assert!(entry.prefetch);
/// ```
#[derive(Clone, Debug, Default)]
pub struct MshrFile {
    entries: HashMap<LineAddr, MshrEntry>,
    capacity: usize,
}

impl MshrFile {
    /// Creates a file with space for `capacity` outstanding misses.
    pub fn new(capacity: usize) -> Self {
        MshrFile {
            entries: HashMap::with_capacity(capacity),
            capacity,
        }
    }

    /// Number of outstanding misses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if no more entries can be allocated.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Looks up the entry for `line`.
    pub fn get(&self, line: LineAddr) -> Option<&MshrEntry> {
        self.entries.get(&line)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut MshrEntry> {
        self.entries.get_mut(&line)
    }

    /// Allocates an entry for `line`. Returns false (and changes nothing) if
    /// the file is full or the line already has an entry.
    pub fn allocate(&mut self, line: LineAddr, prefetch: bool, request: RequestId) -> bool {
        if self.is_full() || self.entries.contains_key(&line) {
            return false;
        }
        self.entries.insert(
            line,
            MshrEntry {
                line,
                prefetch,
                request,
                waiters: Vec::new(),
                write: false,
            },
        );
        true
    }

    /// Completes the miss for `line`, releasing the entry.
    pub fn remove(&mut self, line: LineAddr) -> Option<MshrEntry> {
        self.entries.remove(&line)
    }

    /// Invalidates the entry for a dropped prefetch (APD, §4.4). The drop is
    /// only legal while the entry is still prefetch-only, which guarantees it
    /// has no waiters.
    ///
    /// # Panics
    ///
    /// Panics if the entry has waiters or has been promoted to a demand —
    /// the controller must never drop such a request.
    pub fn invalidate_prefetch(&mut self, line: LineAddr) -> bool {
        if let Some(e) = self.entries.get(&line) {
            assert!(
                e.prefetch && e.waiters.is_empty(),
                "dropping a prefetch that demands depend on"
            );
            self.entries.remove(&line);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    fn r(n: u64) -> RequestId {
        RequestId::new(n)
    }

    #[test]
    fn allocate_until_full() {
        let mut m = MshrFile::new(2);
        assert!(m.allocate(l(1), false, r(1)));
        assert!(m.allocate(l(2), false, r(2)));
        assert!(m.is_full());
        assert!(!m.allocate(l(3), false, r(3)));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn duplicate_allocation_rejected() {
        let mut m = MshrFile::new(4);
        assert!(m.allocate(l(1), false, r(1)));
        assert!(!m.allocate(l(1), true, r(2)));
    }

    #[test]
    fn remove_frees_space() {
        let mut m = MshrFile::new(1);
        assert!(m.allocate(l(1), true, r(1)));
        assert!(m.remove(l(1)).is_some());
        assert!(m.is_empty());
        assert!(m.allocate(l(2), false, r(2)));
    }

    #[test]
    fn waiters_merge_on_entry() {
        let mut m = MshrFile::new(4);
        m.allocate(l(1), false, r(1));
        m.get_mut(l(1)).unwrap().waiters.push(Waiter {
            core: CoreId::new(0),
            token: 42,
        });
        m.get_mut(l(1)).unwrap().waiters.push(Waiter {
            core: CoreId::new(0),
            token: 43,
        });
        assert_eq!(m.get(l(1)).unwrap().waiters.len(), 2);
    }

    #[test]
    fn invalidate_prefetch_only_works_on_prefetches() {
        let mut m = MshrFile::new(4);
        m.allocate(l(1), true, r(1));
        assert!(m.invalidate_prefetch(l(1)));
        assert!(!m.invalidate_prefetch(l(1)));
    }

    #[test]
    #[should_panic(expected = "dropping a prefetch that demands depend on")]
    fn invalidate_with_waiters_panics() {
        let mut m = MshrFile::new(4);
        m.allocate(l(1), true, r(1));
        let e = m.get_mut(l(1)).unwrap();
        e.prefetch = false;
        m.invalidate_prefetch(l(1));
    }
}
