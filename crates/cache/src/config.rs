use padc_types::{Cycle, LINE_BYTES};
use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache.
///
/// Defaults mirror the paper's Table 3: a 32KB 4-way L1D with 2-cycle
/// latency and a 512KB 8-way private L2 with 15-cycle latency (1MB for the
/// single-core system; §6.9 sweeps 512KB–8MB; §6.10 uses shared L2s).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Hit latency in CPU cycles.
    pub hit_latency: Cycle,
}

impl CacheConfig {
    /// The paper's L1 data cache: 32KB, 4-way, 2-cycle.
    pub fn l1d() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 4,
            hit_latency: 2,
        }
    }

    /// The paper's private per-core L2: 512KB, 8-way, 15-cycle.
    pub fn l2_private() -> Self {
        CacheConfig {
            size_bytes: 512 * 1024,
            ways: 8,
            hit_latency: 15,
        }
    }

    /// The paper's single-core L2: 1MB, 8-way, 15-cycle.
    pub fn l2_single_core() -> Self {
        CacheConfig {
            size_bytes: 1024 * 1024,
            ways: 8,
            hit_latency: 15,
        }
    }

    /// A shared last-level cache for `cores` cores (§6.10): capacity equals
    /// the sum of the private L2s and associativity scales with core count
    /// (2MB/16-way at 4 cores, 4MB/32-way at 8 cores).
    pub fn l2_shared(cores: usize) -> Self {
        CacheConfig {
            size_bytes: 512 * 1024 * cores as u64,
            ways: 4 * cores,
            hit_latency: 15,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into a whole power-of-two
    /// number of sets.
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / LINE_BYTES;
        let sets = lines / self.ways as u64;
        assert!(sets > 0, "cache smaller than one set");
        assert_eq!(
            sets * self.ways as u64 * LINE_BYTES,
            self.size_bytes,
            "size must be sets*ways*line"
        );
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        sets as usize
    }

    /// Total number of lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries_are_valid() {
        assert_eq!(CacheConfig::l1d().sets(), 128);
        assert_eq!(CacheConfig::l2_private().sets(), 1024);
        assert_eq!(CacheConfig::l2_single_core().sets(), 2048);
        assert_eq!(CacheConfig::l2_shared(4).sets(), 2048);
        assert_eq!(CacheConfig::l2_shared(8).sets(), 2048);
    }

    #[test]
    fn line_counts() {
        assert_eq!(CacheConfig::l1d().lines(), 512);
        assert_eq!(CacheConfig::l2_private().lines(), 8192);
    }

    #[test]
    #[should_panic(expected = "sets must be a power of two")]
    fn rejects_non_power_of_two_sets() {
        let cfg = CacheConfig {
            size_bytes: 3 * 64 * 4,
            ways: 4,
            hit_latency: 1,
        };
        let _ = cfg.sets();
    }
}
