//! Model-based property test: the cache must behave exactly like a
//! reference per-set true-LRU model over arbitrary access/fill sequences.

use padc_cache::{Cache, CacheConfig, MshrFile, ProbeOutcome};
use padc_types::{LineAddr, RequestId};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference model: per-set LRU lists of (tag, prefetched, dirty).
struct RefCache {
    sets: Vec<VecDeque<(u64, bool, bool)>>,
    ways: usize,
    set_mask: u64,
    set_shift: u32,
}

impl RefCache {
    fn new(sets: usize, ways: usize) -> Self {
        RefCache {
            sets: vec![VecDeque::new(); sets],
            ways,
            set_mask: sets as u64 - 1,
            set_shift: sets.trailing_zeros(),
        }
    }

    fn index(&self, line: LineAddr) -> (usize, u64) {
        (
            (line.raw() & self.set_mask) as usize,
            line.raw() >> self.set_shift,
        )
    }

    fn probe(&mut self, line: LineAddr, write: bool) -> Option<bool> {
        let (s, tag) = self.index(line);
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|e| e.0 == tag) {
            let mut e = set.remove(pos).expect("present");
            let was_prefetched = e.1;
            e.1 = false;
            e.2 |= write;
            set.push_back(e); // MRU at back
            Some(was_prefetched)
        } else {
            None
        }
    }

    fn fill(&mut self, line: LineAddr, prefetched: bool, dirty: bool) -> Option<(u64, bool, bool)> {
        let (s, tag) = self.index(line);
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|e| e.0 == tag) {
            let mut e = set.remove(pos).expect("present");
            e.1 &= prefetched;
            e.2 |= dirty;
            set.push_back(e);
            return None;
        }
        let victim = if set.len() >= self.ways {
            set.pop_front()
        } else {
            None
        };
        set.push_back((tag, prefetched, dirty));
        victim
    }
}

#[derive(Clone, Debug)]
enum Op {
    Probe {
        line: u64,
        write: bool,
    },
    Fill {
        line: u64,
        prefetched: bool,
        dirty: bool,
    },
}

fn arb_op(lines: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..lines, any::<bool>()).prop_map(|(line, write)| Op::Probe { line, write }),
        (0..lines, any::<bool>(), any::<bool>()).prop_map(|(line, prefetched, dirty)| Op::Fill {
            line,
            prefetched,
            dirty
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_reference_lru(ops in prop::collection::vec(arb_op(64), 1..400)) {
        // 4 sets x 2 ways over a 64-line footprint: heavy conflict traffic.
        let cfg = CacheConfig { size_bytes: 4 * 2 * 64, ways: 2, hit_latency: 1 };
        let mut cache = Cache::new(cfg);
        let mut reference = RefCache::new(4, 2);
        for op in ops {
            match op {
                Op::Probe { line, write } => {
                    let l = LineAddr::new(line);
                    let got = cache.probe(l, write);
                    let want = reference.probe(l, write);
                    match (got, want) {
                        (ProbeOutcome::Miss, None) => {}
                        (ProbeOutcome::Hit(info), Some(was_prefetched)) => {
                            prop_assert_eq!(info.first_demand_use_of_prefetch, was_prefetched);
                        }
                        (got, want) => prop_assert!(false, "probe mismatch: {:?} vs {:?}", got, want),
                    }
                }
                Op::Fill { line, prefetched, dirty } => {
                    let l = LineAddr::new(line);
                    let got = cache.fill(l, prefetched, dirty, false);
                    let want = reference.fill(l, prefetched, dirty);
                    match (got, want) {
                        (None, None) => {}
                        (Some(ev), Some((tag, ref_pref, ref_dirty))) => {
                            let (s, _) = reference.index(l);
                            let want_line = (tag << reference.set_shift) | s as u64;
                            prop_assert_eq!(ev.line, LineAddr::new(want_line));
                            prop_assert_eq!(ev.unused_prefetch, ref_pref);
                            prop_assert_eq!(ev.dirty, ref_dirty);
                        }
                        (got, want) => prop_assert!(false, "fill mismatch: {:?} vs {:?}", got, want),
                    }
                }
            }
        }
    }

    /// The MSHR file never exceeds capacity and allocate/remove pair up.
    #[test]
    fn mshr_capacity_is_invariant(ops in prop::collection::vec((0u64..32, any::<bool>()), 1..200),
                                  cap in 1usize..16) {
        let mut m = MshrFile::new(cap);
        let mut live = std::collections::BTreeSet::new();
        for (i, (line, alloc)) in ops.into_iter().enumerate() {
            let l = LineAddr::new(line);
            if alloc {
                let ok = m.allocate(l, false, RequestId::new(i as u64));
                prop_assert_eq!(ok, !live.contains(&line) && live.len() < cap);
                if ok {
                    live.insert(line);
                }
            } else {
                let removed = m.remove(l).is_some();
                prop_assert_eq!(removed, live.remove(&line));
            }
            prop_assert_eq!(m.len(), live.len());
            prop_assert!(m.len() <= cap);
        }
    }
}
