//! Property tests for the DRAM address mapper and bank state machine.

use padc_dram::{AddressMapper, Bank, DramConfig, MappingScheme, RowBufferOutcome};
use padc_types::LineAddr;
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = DramConfig> {
    (0u32..2, 1u32..4, 6u32..12).prop_map(|(ch, banks, row_log)| DramConfig {
        channels: 1 << ch,
        banks: 1 << banks,
        row_bytes: 1u64 << row_log,
        ..DramConfig::default()
    })
}

proptest! {
    /// The mapping is injective over dense line ranges for arbitrary
    /// power-of-two geometries and both schemes.
    #[test]
    fn mapping_is_injective(cfg in arb_geometry(), base in 0u64..1_000_000,
                            perm in any::<bool>()) {
        let scheme = if perm { MappingScheme::Permutation } else { MappingScheme::Linear };
        let m = AddressMapper::new(&cfg, scheme);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..512u64 {
            let t = m.map(LineAddr::new(base + i));
            prop_assert!(t.channel < cfg.channels);
            prop_assert!(t.bank < cfg.banks);
            prop_assert!(t.column < cfg.lines_per_row());
            prop_assert!(seen.insert((t.channel, t.bank, t.row, t.column)));
        }
    }

    /// Consecutive lines within one row share channel/bank/row.
    #[test]
    fn rows_are_contiguous(cfg in arb_geometry(), row_index in 0u64..10_000) {
        let m = AddressMapper::new(&cfg, MappingScheme::Linear);
        let lpr = cfg.lines_per_row();
        let first = m.map(LineAddr::new(row_index * lpr));
        for i in 1..lpr {
            let t = m.map(LineAddr::new(row_index * lpr + i));
            prop_assert_eq!((t.channel, t.bank, t.row), (first.channel, first.bank, first.row));
            prop_assert_eq!(t.column, i);
        }
    }

    /// The bank FSM, driven by its own classification, services any request
    /// sequence without panicking and always reaches CAS within three
    /// commands.
    #[test]
    fn bank_services_any_row_sequence(rows in prop::collection::vec(0u64..64, 1..40)) {
        let mut bank = Bank::new();
        let mut now = 0u64;
        for row in rows {
            let mut commands = 0;
            loop {
                match bank.classify(row, now) {
                    RowBufferOutcome::Hit => {
                        prop_assert!(bank.can_cas(row, now));
                        break;
                    }
                    RowBufferOutcome::Closed => {
                        prop_assert!(bank.can_activate(now));
                        bank.activate(row, now, 50);
                        now += 50;
                    }
                    RowBufferOutcome::Conflict => {
                        // May need to wait for an in-flight activation.
                        if bank.can_precharge(now) {
                            bank.precharge(now, 50);
                            now += 50;
                        } else {
                            now += 1;
                            continue;
                        }
                    }
                }
                commands += 1;
                prop_assert!(commands <= 3, "must converge to a row hit");
            }
            now += 60; // CAS + burst
        }
    }
}
