//! Behavioural tests for the optional extended DDR3 constraints
//! (tRAS / tWR / tRTP / tFAW / refresh). The default (paper) model must be
//! completely unaffected.

use padc_dram::{Channel, DramConfig, ExtendedTiming, RowBufferOutcome, StepOutcome};
use padc_types::CPU_CYCLES_PER_DRAM_CYCLE;

fn ext_cfg() -> DramConfig {
    DramConfig {
        extended: Some(ExtendedTiming::default()),
        ..DramConfig::default()
    }
}

const K: u64 = CPU_CYCLES_PER_DRAM_CYCLE;

/// Drives `(bank,row)` until the CAS issues, returning (cas_time,
/// completes_at).
fn service(ch: &mut Channel, bank: usize, row: u64, write: bool, mut now: u64) -> (u64, u64) {
    loop {
        match ch.advance(bank, row, write, now) {
            StepOutcome::CasIssued { completes_at } => return (now, completes_at),
            _ => now += K,
        }
        assert!(now < 1_000_000, "wedged");
    }
}

#[test]
fn default_model_has_no_refreshes() {
    let cfg = DramConfig::default();
    let mut ch = Channel::new(&cfg);
    for t in 0..2000u64 {
        ch.sync(t * K);
    }
    assert_eq!(ch.stats().refreshes, 0);
}

#[test]
fn t_ras_delays_early_precharge() {
    let cfg = ext_cfg();
    let mut ch = Channel::new(&cfg);
    // Open row 1 (ACT at t=0); immediately try to conflict with row 2.
    assert_eq!(ch.advance(0, 1, false, 0), StepOutcome::Activated);
    let ready = cfg.t_rcd_cpu();
    // The row is open, so row 2 is a conflict, but tRAS (24 bus cycles =
    // 240 CPU cycles) has not elapsed: the precharge must wait.
    assert_eq!(ch.classify(0, 2, ready), RowBufferOutcome::Conflict);
    assert!(
        !ch.can_advance(0, 2, ready),
        "precharge before tRAS must be illegal"
    );
    let t_ras = ExtendedTiming::default().t_ras * K;
    assert!(ch.can_advance(0, 2, t_ras), "precharge legal after tRAS");
}

#[test]
fn write_recovery_outlasts_read_to_precharge() {
    // After a write CAS, precharging the bank must wait ~tWR; after a read
    // only ~tRTP. Measure the earliest conflict PRE after each.
    let earliest_pre_after = |write: bool| -> u64 {
        let cfg = ext_cfg();
        let mut ch = Channel::new(&cfg);
        ch.advance(0, 1, write, 0);
        let (_, completes) = service(&mut ch, 0, 1, write, cfg.t_rcd_cpu());
        let mut now = completes;
        loop {
            if ch.can_advance(0, 2, now) {
                return now;
            }
            now += K;
            assert!(now < 1_000_000);
        }
    };
    let after_read = earliest_pre_after(false);
    let after_write = earliest_pre_after(true);
    assert!(
        after_write > after_read,
        "write recovery ({after_write}) must exceed read-to-precharge ({after_read})"
    );
}

#[test]
fn t_faw_limits_activation_bursts() {
    let cfg = ext_cfg();
    let mut ch = Channel::new(&cfg);
    // Issue ACTs to four different banks back-to-back (one per DRAM cycle).
    let mut now = 0;
    for bank in 0..4 {
        assert_eq!(
            ch.advance(bank, 1, false, now),
            StepOutcome::Activated,
            "bank {bank}"
        );
        now += K;
    }
    // A fifth ACT within the tFAW window must be blocked...
    assert!(
        !ch.can_advance(4, 1, now),
        "fifth ACT inside tFAW must wait"
    );
    // ...but becomes legal once the window slides past the first ACT.
    let t_faw = ExtendedTiming::default().t_faw * K;
    assert!(ch.can_advance(4, 1, t_faw + K));
}

#[test]
fn refresh_blocks_commands_and_closes_rows() {
    let cfg = ext_cfg();
    let e = ExtendedTiming::default();
    let mut ch = Channel::new(&cfg);
    // Open a row well before the first refresh boundary.
    ch.advance(0, 1, false, 0);
    let refi = e.t_refi * K;
    let rfc = e.t_rfc * K;
    // During the refresh window no command can issue.
    assert!(!ch.can_advance(0, 1, refi + K));
    ch.sync(refi + K);
    assert_eq!(ch.stats().refreshes, 1);
    // After the window the bank is closed: the old row is gone.
    let after = refi + rfc + K;
    assert_eq!(ch.classify(0, 1, after), RowBufferOutcome::Closed);
    assert!(ch.can_advance(0, 1, after));
}

#[test]
fn extended_timing_is_off_by_default_and_identical() {
    // A row-conflict sequence under the default config must behave exactly
    // as the paper's three-latency model: PRE legal immediately.
    let cfg = DramConfig::default();
    let mut ch = Channel::new(&cfg);
    ch.advance(0, 1, false, 0);
    let t = cfg.t_rcd_cpu();
    let (_, _) = service(&mut ch, 0, 1, false, t);
    // Immediately precharge for a conflicting row: legal right away.
    let now = t + 2 * K;
    assert_eq!(ch.classify(0, 2, now), RowBufferOutcome::Conflict);
    assert!(ch.can_advance(0, 2, now));
}
