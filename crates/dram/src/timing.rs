//! Optional extended DDR3 timing constraints.
//!
//! The paper's DRAM model (Table 4) uses exactly three latencies — tRP,
//! tRCD, CL — which [`crate::DramConfig`] reproduces by default. Real DDR3
//! devices add several more constraints that matter under heavy bank
//! pressure; enabling [`ExtendedTiming`] layers them onto the bank/channel
//! state machines:
//!
//! * `t_ras` — minimum time a row stays open (ACT → PRE).
//! * `t_wr` — write recovery (last WRITE data → PRE).
//! * `t_rtp` — read-to-precharge.
//! * `t_faw` — at most four ACTs per rolling window (power limit).
//! * `t_refi` / `t_rfc` — periodic refresh: every `t_refi` the channel
//!   stalls for `t_rfc` and all rows close.
//!
//! All values are in DRAM bus cycles, like the base config.

use padc_types::Cycle;
use serde::{Deserialize, Serialize};

/// Extended timing constraint set (disabled by default; see module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ExtendedTiming {
    /// Minimum ACT→PRE spacing (row must stay open this long).
    pub t_ras: Cycle,
    /// Write recovery: last write CAS → PRE.
    pub t_wr: Cycle,
    /// Read to precharge: last read CAS → PRE.
    pub t_rtp: Cycle,
    /// Four-activate window: at most 4 ACTs per channel within `t_faw`.
    pub t_faw: Cycle,
    /// Average refresh interval (0 disables refresh).
    pub t_refi: Cycle,
    /// Refresh cycle time: the channel is unusable this long per refresh.
    pub t_rfc: Cycle,
}

impl Default for ExtendedTiming {
    /// DDR3-1333 values (in 667MHz bus cycles): tRAS 36ns≈24, tWR 15ns=10,
    /// tRTP 7.5ns=5, tFAW 30ns=20, tREFI 7.8µs≈5200, tRFC 160ns≈107.
    fn default() -> Self {
        ExtendedTiming {
            t_ras: 24,
            t_wr: 10,
            t_rtp: 5,
            t_faw: 20,
            t_refi: 5200,
            t_rfc: 107,
        }
    }
}

impl ExtendedTiming {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if refresh is enabled with a zero `t_rfc` or if `t_faw` is
    /// zero.
    pub fn validate(&self) {
        assert!(self.t_faw > 0, "t_faw must be positive");
        if self.t_refi > 0 {
            assert!(self.t_rfc > 0, "refresh enabled but t_rfc is zero");
            assert!(self.t_refi > self.t_rfc, "t_refi must exceed t_rfc");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_ddr3() {
        let t = ExtendedTiming::default();
        t.validate();
        assert!(t.t_ras > t.t_rtp);
        assert!(t.t_refi > t.t_rfc);
    }

    #[test]
    #[should_panic(expected = "t_refi must exceed t_rfc")]
    fn refresh_shorter_than_rfc_rejected() {
        let t = ExtendedTiming {
            t_refi: 10,
            t_rfc: 20,
            ..ExtendedTiming::default()
        };
        t.validate();
    }
}
