use padc_types::{Cycle, CPU_CYCLES_PER_DRAM_CYCLE, LINE_BYTES};
use serde::{Deserialize, Serialize};

use crate::ExtendedTiming;

/// What the controller does with a row buffer after servicing an access
/// (§2.1 and §6.8 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum RowPolicy {
    /// Keep the row open after an access (the paper's default).
    #[default]
    Open,
    /// Precharge as soon as no outstanding request targets the open row.
    Closed,
    /// HAPPY-style hybrid address-based policy (Ghasempour et al.; see
    /// PAPERS.md): a per-row predictor votes, from each row's history of
    /// CAS-per-activation, whether to keep it open (like
    /// [`RowPolicy::Open`]) or precharge it once idle (like
    /// [`RowPolicy::Closed`]).
    Happy,
}

/// How periodic refresh is organized across a channel's banks (only
/// meaningful with [`crate::ExtendedTiming`] enabled and `t_refi > 0`;
/// without extended timing no refresh happens under any policy).
///
/// The default [`RefreshPolicy::AllBank`] reproduces the legacy model
/// bit-exactly: every `t_refi` the whole channel stalls for `t_rfc` and
/// all rows close. The per-bank policies replace the channel-wide window
/// with staggered per-bank windows (DESIGN.md §15), after Chang et al.'s
/// refresh-access parallelism work (DARP/SARP; see PAPERS.md).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum RefreshPolicy {
    /// All banks refresh together; the channel is unusable for `t_rfc`
    /// every `t_refi` (the legacy model, and the default).
    #[default]
    AllBank,
    /// Each bank refreshes on its own staggered `t_refi` window, occupying
    /// only that bank for `t_rfcpb` while the rest of the channel keeps
    /// serving requests.
    PerBank,
    /// [`RefreshPolicy::PerBank`] plus DARP-style out-of-order refresh:
    /// the controller may *pull* a bank's pending refresh early while the
    /// bank is idle (or during write drains), instead of always paying the
    /// deadline-forced refresh at the window boundary.
    Darp,
}

impl RefreshPolicy {
    /// True for the default policy (serde skip helper: configs carrying the
    /// default omit the field, keeping pre-existing serializations — and
    /// therefore store digests — byte-identical).
    pub fn is_all_bank(&self) -> bool {
        *self == RefreshPolicy::AllBank
    }

    /// True for the policies with per-bank refresh windows.
    pub fn per_bank(&self) -> bool {
        !self.is_all_bank()
    }
}

/// DRAM geometry and timing, defaulting to the paper's Table 4 system:
/// DDR3-1333, 8 banks, 4KB rows, 15ns per command, BL=4 over a 16B bus.
///
/// Timing fields are expressed in DRAM bus cycles; the `_cpu()` accessors
/// convert to CPU cycles using [`CPU_CYCLES_PER_DRAM_CYCLE`].
///
/// ```
/// use padc_dram::DramConfig;
/// let cfg = DramConfig::default();
/// assert_eq!(cfg.banks, 8);
/// assert_eq!(cfg.lines_per_row(), 64);
/// assert_eq!(cfg.t_rp_cpu(), 100);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DramConfig {
    /// Independent channels, each with its own controller (§6.6 evaluates 2).
    pub channels: usize,
    /// Banks per channel.
    pub banks: usize,
    /// Row buffer size in bytes per bank (§6.7 sweeps 2KB–128KB).
    pub row_bytes: u64,
    /// Precharge latency in DRAM bus cycles (15ns at 667MHz = 10).
    pub t_rp: Cycle,
    /// Activate (row open) latency in DRAM bus cycles.
    pub t_rcd: Cycle,
    /// CAS (read/write) latency in DRAM bus cycles.
    pub cl: Cycle,
    /// Data-bus occupancy of one burst in DRAM bus cycles. The paper's
    /// BL=4 on a 16B bus nominally moves a 64B line in 2 bus clocks; we use
    /// 4 to account for bus turnaround/rank overheads and to reproduce the
    /// paper's degree of bandwidth-boundedness (its 8-core system saturates
    /// the channel).
    pub burst: Cycle,
    /// Row-buffer management policy.
    pub row_policy: RowPolicy,
    /// Optional extended DDR3 constraints (tRAS/tWR/tRTP/tFAW/refresh).
    /// `None` reproduces the paper's three-latency model exactly.
    #[serde(default)]
    pub extended: Option<ExtendedTiming>,
    /// Refresh organization (ignored without [`DramConfig::extended`]).
    /// Skipped when default so legacy serializations stay byte-identical.
    #[serde(default, skip_serializing_if = "RefreshPolicy::is_all_bank")]
    pub refresh_policy: RefreshPolicy,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 1,
            banks: 8,
            row_bytes: 4096,
            t_rp: 10,
            t_rcd: 10,
            cl: 10,
            burst: 4,
            row_policy: RowPolicy::Open,
            extended: None,
            refresh_policy: RefreshPolicy::AllBank,
        }
    }
}

impl DramConfig {
    /// Cache lines per row buffer.
    pub fn lines_per_row(&self) -> u64 {
        self.row_bytes / LINE_BYTES
    }

    /// Precharge latency in CPU cycles.
    pub fn t_rp_cpu(&self) -> Cycle {
        self.t_rp * CPU_CYCLES_PER_DRAM_CYCLE
    }

    /// Activate latency in CPU cycles.
    pub fn t_rcd_cpu(&self) -> Cycle {
        self.t_rcd * CPU_CYCLES_PER_DRAM_CYCLE
    }

    /// CAS latency in CPU cycles.
    pub fn cl_cpu(&self) -> Cycle {
        self.cl * CPU_CYCLES_PER_DRAM_CYCLE
    }

    /// Burst data-bus occupancy in CPU cycles.
    pub fn burst_cpu(&self) -> Cycle {
        self.burst * CPU_CYCLES_PER_DRAM_CYCLE
    }

    /// Unloaded service latency of a row-hit access (CAS + burst), CPU cycles.
    pub fn row_hit_latency(&self) -> Cycle {
        self.cl_cpu() + self.burst_cpu()
    }

    /// Unloaded service latency of a row-closed access, CPU cycles.
    pub fn row_closed_latency(&self) -> Cycle {
        self.t_rcd_cpu() + self.row_hit_latency()
    }

    /// Unloaded service latency of a row-conflict access, CPU cycles.
    pub fn row_conflict_latency(&self) -> Cycle {
        self.t_rp_cpu() + self.row_closed_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table4() {
        let c = DramConfig::default();
        assert_eq!(c.channels, 1);
        assert_eq!(c.banks, 8);
        assert_eq!(c.row_bytes, 4096);
        assert_eq!(c.row_policy, RowPolicy::Open);
        // 15ns per command at a 667MHz bus clock.
        assert_eq!(c.t_rp, c.t_rcd);
        assert_eq!(c.t_rcd, c.cl);
    }

    #[test]
    fn latency_ratio_is_one_to_three() {
        // The paper quotes row-hit 12.5ns vs row-conflict 37.5ns (1:3).
        let c = DramConfig::default();
        let hit = c.cl_cpu();
        let conflict = c.t_rp_cpu() + c.t_rcd_cpu() + c.cl_cpu();
        assert_eq!(conflict, 3 * hit);
    }

    #[test]
    fn loaded_latencies_are_ordered() {
        let c = DramConfig::default();
        assert!(c.row_hit_latency() < c.row_closed_latency());
        assert!(c.row_closed_latency() < c.row_conflict_latency());
    }

    #[test]
    fn default_refresh_policy_is_skipped_in_serialization() {
        // Store digests hash the serialized config: the new field must be
        // invisible for pre-existing (AllBank) configs, and round-trip for
        // the per-bank ones.
        let json = serde_json::to_string(&DramConfig::default()).unwrap();
        assert!(!json.contains("refresh_policy"), "default leaked: {json}");
        let back: DramConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.refresh_policy, RefreshPolicy::AllBank);

        let darp = DramConfig {
            refresh_policy: RefreshPolicy::Darp,
            ..DramConfig::default()
        };
        let json = serde_json::to_string(&darp).unwrap();
        assert!(
            json.contains("\"refresh_policy\":\"Darp\""),
            "missing: {json}"
        );
        let back: DramConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, darp);
    }

    #[test]
    fn lines_per_row_scales_with_row_bytes() {
        let mut c = DramConfig::default();
        assert_eq!(c.lines_per_row(), 64);
        c.row_bytes = 128 * 1024;
        assert_eq!(c.lines_per_row(), 2048);
    }
}
