use std::collections::VecDeque;

use padc_types::{Cycle, CPU_CYCLES_PER_DRAM_CYCLE};

use crate::{
    Bank, BankState, ChannelStats, DramConfig, HappyPredictor, RowBufferOutcome, RowPolicy,
};

/// Extended timing converted to CPU cycles (see [`crate::ExtendedTiming`]).
#[derive(Clone, Copy, Debug)]
struct ExtCpu {
    t_ras: Cycle,
    t_wr: Cycle,
    t_rtp: Cycle,
    t_faw: Cycle,
    t_refi: Cycle,
    t_rfc: Cycle,
}

/// Result of issuing one command toward a request via [`Channel::advance`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// A precharge was issued (row-conflict path).
    Precharged,
    /// An activate was issued; the row is opening.
    Activated,
    /// The final CAS was issued; data (and the request) completes at
    /// `completes_at` CPU cycles.
    CasIssued {
        /// CPU cycle at which the data burst (and the request) finishes.
        completes_at: Cycle,
    },
    /// No command could issue this cycle (bank or data bus busy).
    Blocked,
}

/// One DRAM channel: a set of banks behind shared command and data buses.
///
/// The command bus accepts at most one command per DRAM bus cycle; the data
/// bus carries one burst at a time. Both constraints are enforced here so
/// that schedulers built on top automatically experience realistic
/// contention.
#[derive(Clone, Debug)]
pub struct Channel {
    banks: Vec<Bank>,
    /// CPU cycle at which the data bus becomes free.
    data_bus_free_at: Cycle,
    /// CPU cycle at which the command bus accepts another command.
    cmd_bus_free_at: Cycle,
    t_rp: Cycle,
    t_rcd: Cycle,
    cl: Cycle,
    burst: Cycle,
    stats: ChannelStats,
    /// Extended constraints (None = the paper's three-latency model).
    ext: Option<ExtCpu>,
    /// Per-bank earliest legal precharge time (tRAS / tWR / tRTP).
    min_precharge_at: Vec<Cycle>,
    /// Times of the most recent ACTs (tFAW window).
    act_history: VecDeque<Cycle>,
    /// Refreshes applied so far (each closes every bank).
    refreshes_applied: u64,
    /// HAPPY per-row open/closed predictor; present only under
    /// [`RowPolicy::Happy`], so the other policies' channel state (and
    /// therefore their result bytes) is untouched by this mechanism.
    happy: Option<HappyPredictor>,
}

impl Channel {
    /// Creates a channel with all banks closed.
    pub fn new(cfg: &DramConfig) -> Self {
        let ext = cfg.extended.map(|e| {
            e.validate();
            let k = CPU_CYCLES_PER_DRAM_CYCLE;
            ExtCpu {
                t_ras: e.t_ras * k,
                t_wr: e.t_wr * k,
                t_rtp: e.t_rtp * k,
                t_faw: e.t_faw * k,
                t_refi: e.t_refi * k,
                t_rfc: e.t_rfc * k,
            }
        });
        Channel {
            banks: (0..cfg.banks).map(|_| Bank::new()).collect(),
            data_bus_free_at: 0,
            cmd_bus_free_at: 0,
            t_rp: cfg.t_rp_cpu(),
            t_rcd: cfg.t_rcd_cpu(),
            cl: cfg.cl_cpu(),
            burst: cfg.burst_cpu(),
            stats: ChannelStats::default(),
            ext,
            min_precharge_at: vec![0; cfg.banks],
            act_history: VecDeque::with_capacity(4),
            refreshes_applied: 0,
            happy: (cfg.row_policy == RowPolicy::Happy).then(HappyPredictor::new),
        }
    }

    /// True while a periodic refresh occupies the channel at `now`.
    fn in_refresh(&self, now: Cycle) -> bool {
        match self.ext {
            Some(e) if e.t_refi > 0 => now % e.t_refi < e.t_rfc && now >= e.t_refi,
            _ => false,
        }
    }

    /// Applies any refresh boundaries passed since the last call: each
    /// refresh closes every bank. Call once per DRAM scheduling cycle
    /// (no-op without extended timing).
    pub fn sync(&mut self, now: Cycle) {
        let Some(e) = self.ext else { return };
        if e.t_refi == 0 {
            return;
        }
        let due = now / e.t_refi;
        if due > self.refreshes_applied {
            self.refreshes_applied = due;
            self.stats.refreshes += 1;
            for b in &mut self.banks {
                *b = Bank::new();
            }
        }
    }

    /// tFAW check: may a new ACT issue at `now`?
    fn faw_allows(&self, now: Cycle) -> bool {
        match self.ext {
            Some(e) => {
                let recent = self
                    .act_history
                    .iter()
                    .filter(|&&t| now.saturating_sub(t) < e.t_faw)
                    .count();
                recent < 4
            }
            None => true,
        }
    }

    /// Number of banks on this channel.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Accumulated channel statistics.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Row currently open (or opening) in `bank`, for row-hit prioritization.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn effective_row(&self, bank: usize, now: Cycle) -> Option<u64> {
        self.banks[bank].effective_row(now)
    }

    /// Classifies an access to `(bank, row)` at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn classify(&self, bank: usize, row: u64, now: Cycle) -> RowBufferOutcome {
        self.banks[bank].classify(row, now)
    }

    /// True if the access would be a row hit (used by FR-FCFS priority).
    pub fn is_row_hit(&self, bank: usize, row: u64, now: Cycle) -> bool {
        self.classify(bank, row, now) == RowBufferOutcome::Hit
    }

    /// True if the command bus is free at `now`.
    pub fn command_bus_free(&self, now: Cycle) -> bool {
        now >= self.cmd_bus_free_at
    }

    /// True if [`Channel::advance`] would issue a command for `(bank, row)`
    /// at `now` — i.e. the command bus is free and the bank (plus, for a CAS,
    /// the data bus) can accept the next command the request needs.
    pub fn can_advance(&self, bank: usize, row: u64, now: Cycle) -> bool {
        if !self.command_bus_free(now) {
            return false;
        }
        if self.in_refresh(now) {
            return false;
        }
        let b = &self.banks[bank];
        match b.classify(row, now) {
            RowBufferOutcome::Hit => b.can_cas(row, now) && now + self.cl >= self.data_bus_free_at,
            RowBufferOutcome::Closed => b.can_activate(now) && self.faw_allows(now),
            RowBufferOutcome::Conflict => {
                b.can_precharge(now) && now >= self.min_precharge_at[bank]
            }
        }
    }

    /// Issues the next command needed to service `(bank, row)` at `now`.
    ///
    /// Returns [`StepOutcome::Blocked`] when nothing can issue. For the
    /// paper's command latencies, a request is serviced by at most three
    /// successive `advance` calls (PRE, ACT, CAS).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn advance(&mut self, bank: usize, row: u64, is_write: bool, now: Cycle) -> StepOutcome {
        if !self.can_advance(bank, row, now) {
            return StepOutcome::Blocked;
        }
        self.cmd_bus_free_at = now + CPU_CYCLES_PER_DRAM_CYCLE;
        let b = &mut self.banks[bank];
        match b.classify(row, now) {
            RowBufferOutcome::Conflict => {
                if let (Some(h), Some(victim)) = (self.happy.as_mut(), b.open_row(now)) {
                    h.train_from_precharge(bank, victim, b.cas_served());
                }
                b.precharge(now, self.t_rp);
                self.stats.precharges += 1;
                StepOutcome::Precharged
            }
            RowBufferOutcome::Closed => {
                b.activate(row, now, self.t_rcd);
                self.stats.activations += 1;
                if let Some(e) = self.ext {
                    self.min_precharge_at[bank] = now + e.t_ras;
                    if self.act_history.len() == 4 {
                        self.act_history.pop_front();
                    }
                    self.act_history.push_back(now);
                }
                StepOutcome::Activated
            }
            RowBufferOutcome::Hit => {
                let data_start = now + self.cl;
                let completes_at = data_start + self.burst;
                self.data_bus_free_at = completes_at;
                if is_write {
                    self.stats.writes += 1;
                } else {
                    self.stats.reads += 1;
                }
                if let Some(e) = self.ext {
                    let recovery = if is_write { e.t_wr } else { e.t_rtp };
                    let earliest = completes_at + recovery;
                    let slot = &mut self.min_precharge_at[bank];
                    *slot = (*slot).max(earliest);
                }
                self.stats.data_bus_busy_cycles += self.burst;
                b.note_cas();
                StepOutcome::CasIssued { completes_at }
            }
        }
    }

    /// End of the refresh window occupying the channel at `now`, or `now`
    /// itself when no refresh is in progress.
    fn refresh_release(&self, now: Cycle) -> Cycle {
        match self.ext {
            Some(e) if self.in_refresh(now) => now - now % e.t_refi + e.t_rfc,
            _ => now,
        }
    }

    /// Earliest cycle at which a new ACT clears the tFAW window (exact with
    /// respect to the recorded four-ACT history).
    fn faw_free_at(&self, now: Cycle) -> Cycle {
        match self.ext {
            Some(e) if self.act_history.len() == 4 => now.max(self.act_history[0] + e.t_faw),
            _ => now,
        }
    }

    /// Next refresh boundary not yet applied by [`Channel::sync`] (`None`
    /// without extended timing). May equal `now` when the boundary's
    /// scheduling tick has not run yet. Fast-forwarding must never skip
    /// across one: `sync` counts one refresh per application regardless of
    /// how many boundaries have passed, so stat parity with cycle-by-cycle
    /// stepping requires resuming at every boundary.
    pub fn next_refresh_boundary(&self, now: Cycle) -> Option<Cycle> {
        match self.ext {
            Some(e) if e.t_refi > 0 => Some(((self.refreshes_applied + 1) * e.t_refi).max(now)),
            _ => None,
        }
    }

    /// Lower bound on the first cycle `m >= now` at which
    /// [`Channel::can_advance`]`(bank, row, m)` can become true, assuming no
    /// command issues on the channel in between. The bound is never *later*
    /// than the true first cycle (the direction fast-forwarding relies on);
    /// it may be earlier when a constraint outside the bound — a refresh
    /// window opening mid-skip, which [`Channel::next_refresh_boundary`]
    /// covers separately — still blocks the command.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn earliest_advance_at(&self, bank: usize, row: u64, now: Cycle) -> Cycle {
        let b = &self.banks[bank];
        let bank_ready = b.next_event(now).unwrap_or(now);
        let class_bound = match b.classify(row, now) {
            RowBufferOutcome::Hit => bank_ready.max(self.data_bus_free_at.saturating_sub(self.cl)),
            RowBufferOutcome::Closed => bank_ready.max(self.faw_free_at(now)),
            RowBufferOutcome::Conflict => bank_ready.max(self.min_precharge_at[bank]),
        };
        class_bound
            .max(self.cmd_bus_free_at)
            .max(self.refresh_release(now))
            .max(now)
    }

    /// Lower bound on the first cycle at which [`Channel::precharge_bank`]
    /// could issue for `bank` (closed-row policy); `None` when the bank has
    /// no open or opening row, so no explicit precharge is ever due.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn earliest_precharge_at(&self, bank: usize, now: Cycle) -> Option<Cycle> {
        let open_at = match self.banks[bank].state_at(now) {
            BankState::Open { .. } => now,
            BankState::Activating { ready_at, .. } => ready_at,
            BankState::Closed | BankState::Precharging { .. } => return None,
        };
        Some(
            open_at
                .max(self.min_precharge_at[bank])
                .max(self.cmd_bus_free_at)
                .max(self.refresh_release(now))
                .max(now),
        )
    }

    /// Lower bound on the next cycle strictly after `now` at which the
    /// channel's state can change without a new command being issued: bank
    /// ACT/PRE completions, bus releases, and the next refresh boundary.
    /// `None` when the channel is fully quiescent.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut ev: Option<Cycle> = None;
        let mut fold = |c: Cycle| {
            if c > now {
                ev = Some(ev.map_or(c, |e: Cycle| e.min(c)));
            }
        };
        for b in &self.banks {
            if let Some(t) = b.next_event(now) {
                fold(t);
            }
        }
        fold(self.cmd_bus_free_at);
        fold(self.data_bus_free_at);
        if let Some(r) = self.next_refresh_boundary(now) {
            fold(r);
        }
        ev
    }

    /// Issues an explicit precharge of `bank` (closed-row policy support).
    ///
    /// Returns true if the precharge was issued; false if the bank had no
    /// open row or the command bus was busy.
    pub fn precharge_bank(&mut self, bank: usize, now: Cycle) -> bool {
        if !self.command_bus_free(now)
            || !self.banks[bank].can_precharge(now)
            || self.in_refresh(now)
            || now < self.min_precharge_at[bank]
        {
            return false;
        }
        self.cmd_bus_free_at = now + CPU_CYCLES_PER_DRAM_CYCLE;
        let b = &mut self.banks[bank];
        if let (Some(h), Some(victim)) = (self.happy.as_mut(), b.open_row(now)) {
            h.train_from_precharge(bank, victim, b.cas_served());
        }
        b.precharge(now, self.t_rp);
        self.stats.precharges += 1;
        true
    }

    /// True if the HAPPY predictor recommends precharging `bank`'s open (or
    /// opening) row once it is idle. Always false for the other row
    /// policies (no predictor) and for banks with no effective row.
    ///
    /// This is a pure read: consulting it never mutates predictor state, so
    /// the controller's `next_event` proof may evaluate it freely
    /// (DESIGN.md §11). Training happens only inside [`Channel::advance`]
    /// and [`Channel::precharge_bank`], i.e. only when a command issues.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn happy_votes_close(&self, bank: usize, now: Cycle) -> bool {
        match (&self.happy, self.banks[bank].effective_row(now)) {
            (Some(h), Some(row)) => h.votes_close(bank, row),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> (DramConfig, Channel) {
        let cfg = DramConfig::default();
        let c = Channel::new(&cfg);
        (cfg, c)
    }

    #[test]
    fn closed_bank_takes_act_then_cas() {
        let (cfg, mut c) = ch();
        assert_eq!(c.advance(0, 1, false, 0), StepOutcome::Activated);
        // Bank busy during tRCD.
        assert_eq!(c.advance(0, 1, false, 10), StepOutcome::Blocked);
        let t = cfg.t_rcd_cpu();
        match c.advance(0, 1, false, t) {
            StepOutcome::CasIssued { completes_at } => {
                assert_eq!(completes_at, t + cfg.cl_cpu() + cfg.burst_cpu());
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn conflict_takes_pre_act_cas() {
        let (cfg, mut c) = ch();
        c.advance(0, 1, false, 0);
        let t1 = cfg.t_rcd_cpu();
        c.advance(0, 1, false, t1); // CAS row 1; row stays open
        let t2 = t1 + cfg.burst_cpu() + cfg.cl_cpu();
        assert_eq!(c.advance(0, 2, false, t2), StepOutcome::Precharged);
        let t3 = t2 + cfg.t_rp_cpu();
        assert_eq!(c.advance(0, 2, false, t3), StepOutcome::Activated);
        let t4 = t3 + cfg.t_rcd_cpu();
        assert!(matches!(
            c.advance(0, 2, false, t4),
            StepOutcome::CasIssued { .. }
        ));
        assert_eq!(c.stats().precharges, 1);
        assert_eq!(c.stats().activations, 2);
        assert_eq!(c.stats().reads, 2);
    }

    #[test]
    fn command_bus_allows_one_command_per_dram_cycle() {
        let (_, mut c) = ch();
        assert_eq!(c.advance(0, 1, false, 0), StepOutcome::Activated);
        // Same CPU cycle, different bank: command bus busy.
        assert_eq!(c.advance(1, 9, false, 0), StepOutcome::Blocked);
        // Next CPU cycle is still within the same DRAM bus cycle.
        assert_eq!(c.advance(1, 9, false, 1), StepOutcome::Blocked);
        // One DRAM cycle later it goes through.
        assert_eq!(
            c.advance(1, 9, false, CPU_CYCLES_PER_DRAM_CYCLE),
            StepOutcome::Activated
        );
    }

    #[test]
    fn data_bus_serializes_bursts() {
        let (cfg, mut c) = ch();
        // Open two banks.
        c.advance(0, 1, false, 0);
        c.advance(1, 2, false, CPU_CYCLES_PER_DRAM_CYCLE);
        let t = cfg.t_rcd_cpu() + CPU_CYCLES_PER_DRAM_CYCLE;
        let first = match c.advance(0, 1, false, t) {
            StepOutcome::CasIssued { completes_at } => completes_at,
            o => panic!("unexpected {o:?}"),
        };
        // A CAS whose data would start before the first burst ends is blocked.
        let too_early = first - cfg.burst_cpu() - cfg.cl_cpu() + 1;
        // (may also be blocked by the command bus; step past it)
        let too_early = too_early.max(t + CPU_CYCLES_PER_DRAM_CYCLE);
        if too_early + cfg.cl_cpu() < first {
            assert_eq!(c.advance(1, 2, false, too_early), StepOutcome::Blocked);
        }
        // Once the data bus frees, the second CAS issues.
        let ok = first - cfg.cl_cpu();
        assert!(matches!(
            c.advance(1, 2, false, ok.max(t + CPU_CYCLES_PER_DRAM_CYCLE)),
            StepOutcome::CasIssued { .. }
        ));
    }

    #[test]
    fn explicit_precharge_for_closed_row_policy() {
        let (cfg, mut c) = ch();
        c.advance(0, 1, false, 0);
        let t = cfg.t_rcd_cpu();
        c.advance(0, 1, false, t);
        let t2 = t + CPU_CYCLES_PER_DRAM_CYCLE;
        assert!(c.precharge_bank(0, t2));
        // Now the bank is precharging; a new row is row-closed, not conflict.
        assert_eq!(
            c.classify(0, 5, t2 + cfg.t_rp_cpu()),
            RowBufferOutcome::Closed
        );
    }

    #[test]
    fn precharge_bank_refuses_when_closed() {
        let (_, mut c) = ch();
        assert!(!c.precharge_bank(0, 0));
    }

    #[test]
    fn happy_predictor_is_absent_under_other_policies() {
        let (cfg, mut c) = ch();
        c.advance(0, 1, false, 0);
        assert!(
            !c.happy_votes_close(0, cfg.t_rcd_cpu()),
            "open/closed-policy channels must never vote to close"
        );
    }

    #[test]
    fn happy_trains_close_on_single_use_and_open_on_reuse() {
        let cfg = DramConfig {
            row_policy: RowPolicy::Happy,
            ..DramConfig::default()
        };
        let mut c = Channel::new(&cfg);
        // Open row 1, serve a single CAS, then policy-precharge it.
        c.advance(0, 1, false, 0);
        let t = cfg.t_rcd_cpu();
        assert!(!c.happy_votes_close(0, t), "untrained rows default to open");
        c.advance(0, 1, false, t);
        let t = t + cfg.cl_cpu() + cfg.burst_cpu();
        // The policy precharge trains toward closed (1 CAS served).
        assert!(c.precharge_bank(0, t));
        // Reopened, the single-use row now votes close...
        let t = t + cfg.t_rp_cpu();
        c.advance(0, 1, false, t);
        assert!(c.happy_votes_close(0, t));
        // ...but two CAS bursts in the next residency train it back open
        // when the conflict precharge for row 2 retires it.
        let t = t + cfg.t_rcd_cpu();
        c.advance(0, 1, false, t);
        let t = t + cfg.cl_cpu() + cfg.burst_cpu();
        c.advance(0, 1, false, t);
        let t = t + cfg.cl_cpu() + cfg.burst_cpu();
        assert_eq!(c.advance(0, 2, false, t), StepOutcome::Precharged);
        let t = t + cfg.t_rp_cpu();
        c.advance(0, 1, false, t);
        assert!(!c.happy_votes_close(0, t));
    }
}
