use std::collections::VecDeque;

use padc_types::{Cycle, CPU_CYCLES_PER_DRAM_CYCLE};

use crate::{
    Bank, BankState, ChannelStats, DramConfig, HappyPredictor, RefreshPolicy, RowBufferOutcome,
    RowPolicy,
};

/// Extended timing converted to CPU cycles (see [`crate::ExtendedTiming`]).
#[derive(Clone, Copy, Debug)]
struct ExtCpu {
    t_ras: Cycle,
    t_wr: Cycle,
    t_rtp: Cycle,
    t_faw: Cycle,
    t_refi: Cycle,
    t_rfc: Cycle,
}

/// Side counters for the refresh model (DESIGN.md §15). Kept out of
/// [`ChannelStats`] — which is serialized into per-run reports — so that
/// result bytes stay identical across refresh-policy-free configs; runs
/// surface these through the profile instead.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RefreshCounters {
    /// Refreshes pulled early into idle/drain slots ([`RefreshPolicy::Darp`]).
    pub pulls: u64,
    /// Bank-unavailable CPU cycles charged to refresh: `t_rfc` per bank per
    /// all-bank refresh, `t_rfcpb` per per-bank refresh (forced or pulled).
    pub stall_cycles: u64,
}

/// Per-bank refresh bookkeeping, present only under the per-bank policies
/// ([`RefreshPolicy::PerBank`] / [`RefreshPolicy::Darp`]) with extended
/// timing enabled — the legacy all-bank path's state is untouched, keeping
/// its behavior (and Debug oracle strings) bit-exact.
///
/// Bank `b`'s k-th refresh window covers
/// `[(k-1)*t_refi + b*stride, k*t_refi + b*stride)`: windows are staggered
/// across banks by `stride = t_refi / nbanks` so deadline-forced refreshes
/// never pile up on one cycle, mirroring how real controllers spread
/// per-bank REF commands across the retention interval.
#[derive(Clone, Debug)]
struct PerBankRefresh {
    /// DARP out-of-order pulls enabled ([`RefreshPolicy::Darp`]).
    darp: bool,
    /// Refresh windows applied so far, per bank.
    applied: Vec<u64>,
    /// Stagger between consecutive banks' windows (`t_refi / nbanks`).
    stride: Cycle,
    /// Bank-busy duration of one per-bank refresh, CPU cycles. Derived as
    /// `t_rfc / 2`: per-bank REF on DDR4 LPDDR parts costs roughly half the
    /// all-bank window since only one bank's worth of rows restores.
    t_rfcpb: Cycle,
}

impl PerBankRefresh {
    /// Start of bank `b`'s staggered window grid.
    fn offset(&self, bank: usize) -> Cycle {
        self.stride * bank as Cycle
    }
}

/// Result of issuing one command toward a request via [`Channel::advance`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// A precharge was issued (row-conflict path).
    Precharged,
    /// An activate was issued; the row is opening.
    Activated,
    /// The final CAS was issued; data (and the request) completes at
    /// `completes_at` CPU cycles.
    CasIssued {
        /// CPU cycle at which the data burst (and the request) finishes.
        completes_at: Cycle,
    },
    /// No command could issue this cycle (bank or data bus busy).
    Blocked,
}

/// One DRAM channel: a set of banks behind shared command and data buses.
///
/// The command bus accepts at most one command per DRAM bus cycle; the data
/// bus carries one burst at a time. Both constraints are enforced here so
/// that schedulers built on top automatically experience realistic
/// contention.
#[derive(Clone, Debug)]
pub struct Channel {
    banks: Vec<Bank>,
    /// CPU cycle at which the data bus becomes free.
    data_bus_free_at: Cycle,
    /// CPU cycle at which the command bus accepts another command.
    cmd_bus_free_at: Cycle,
    t_rp: Cycle,
    t_rcd: Cycle,
    cl: Cycle,
    burst: Cycle,
    stats: ChannelStats,
    /// Extended constraints (None = the paper's three-latency model).
    ext: Option<ExtCpu>,
    /// Per-bank earliest legal precharge time (tRAS / tWR / tRTP).
    min_precharge_at: Vec<Cycle>,
    /// Times of the most recent ACTs (tFAW window).
    act_history: VecDeque<Cycle>,
    /// All-bank refreshes applied so far (each closes every bank). Unused
    /// under the per-bank policies, which track windows in `refresh`.
    refreshes_applied: u64,
    /// Per-bank refresh state (None = legacy all-bank refresh).
    refresh: Option<PerBankRefresh>,
    /// Refresh side counters (see [`RefreshCounters`]).
    refresh_counters: RefreshCounters,
    /// HAPPY per-row open/closed predictor; present only under
    /// [`RowPolicy::Happy`], so the other policies' channel state (and
    /// therefore their result bytes) is untouched by this mechanism.
    happy: Option<HappyPredictor>,
}

impl Channel {
    /// Creates a channel with all banks closed.
    pub fn new(cfg: &DramConfig) -> Self {
        let ext = cfg.extended.map(|e| {
            e.validate();
            let k = CPU_CYCLES_PER_DRAM_CYCLE;
            ExtCpu {
                t_ras: e.t_ras * k,
                t_wr: e.t_wr * k,
                t_rtp: e.t_rtp * k,
                t_faw: e.t_faw * k,
                t_refi: e.t_refi * k,
                t_rfc: e.t_rfc * k,
            }
        });
        let refresh = match (&ext, cfg.refresh_policy) {
            (Some(e), p) if p.per_bank() && e.t_refi > 0 => Some(PerBankRefresh {
                darp: p == RefreshPolicy::Darp,
                applied: vec![0; cfg.banks],
                stride: e.t_refi / cfg.banks as Cycle,
                t_rfcpb: (e.t_rfc / 2).max(1),
            }),
            _ => None,
        };
        Channel {
            banks: (0..cfg.banks).map(|_| Bank::new()).collect(),
            data_bus_free_at: 0,
            cmd_bus_free_at: 0,
            t_rp: cfg.t_rp_cpu(),
            t_rcd: cfg.t_rcd_cpu(),
            cl: cfg.cl_cpu(),
            burst: cfg.burst_cpu(),
            stats: ChannelStats::default(),
            ext,
            min_precharge_at: vec![0; cfg.banks],
            act_history: VecDeque::with_capacity(4),
            refreshes_applied: 0,
            refresh,
            refresh_counters: RefreshCounters::default(),
            happy: (cfg.row_policy == RowPolicy::Happy).then(HappyPredictor::new),
        }
    }

    /// True while a periodic refresh occupies the channel at `now`. Always
    /// false under the per-bank policies: their refresh occupancy lives in
    /// the individual banks' state, not a channel-wide window.
    fn in_refresh(&self, now: Cycle) -> bool {
        if self.refresh.is_some() {
            return false;
        }
        match self.ext {
            Some(e) if e.t_refi > 0 => now % e.t_refi < e.t_rfc && now >= e.t_refi,
            _ => false,
        }
    }

    /// Applies any refresh boundaries passed since the last call. Under the
    /// all-bank policy each refresh closes every bank; under the per-bank
    /// policies each bank whose own (staggered) window boundary passed gets
    /// a deadline-forced per-bank refresh, occupying just that bank for
    /// `t_rfcpb`. Call once per DRAM scheduling cycle (no-op without
    /// extended timing).
    pub fn sync(&mut self, now: Cycle) {
        let Some(e) = self.ext else { return };
        if e.t_refi == 0 {
            return;
        }
        match &mut self.refresh {
            None => {
                let due = now / e.t_refi;
                if due > self.refreshes_applied {
                    self.refreshes_applied = due;
                    self.stats.refreshes += 1;
                    self.refresh_counters.stall_cycles += e.t_rfc * self.banks.len() as Cycle;
                    for b in &mut self.banks {
                        *b = Bank::new();
                    }
                }
            }
            Some(r) => {
                for (bank, applied) in r.applied.iter_mut().enumerate() {
                    let offset = r.stride * bank as Cycle;
                    let due = if now >= offset {
                        (now - offset) / e.t_refi
                    } else {
                        0
                    };
                    // Same one-application-per-sync quirk as the all-bank
                    // path: however many boundaries passed, one refresh is
                    // charged — fast-forwarding resumes at every boundary
                    // (`next_refresh_boundary`), so in practice `due`
                    // advances one window at a time.
                    if due > *applied {
                        *applied = due;
                        self.stats.refreshes += 1;
                        self.refresh_counters.stall_cycles += r.t_rfcpb;
                        self.banks[bank].refresh(now + r.t_rfcpb);
                    }
                }
            }
        }
    }

    /// tFAW check: may a new ACT issue at `now`?
    fn faw_allows(&self, now: Cycle) -> bool {
        match self.ext {
            Some(e) => {
                let recent = self
                    .act_history
                    .iter()
                    .filter(|&&t| now.saturating_sub(t) < e.t_faw)
                    .count();
                recent < 4
            }
            None => true,
        }
    }

    /// Number of banks on this channel.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Accumulated channel statistics.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Row currently open (or opening) in `bank`, for row-hit prioritization.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn effective_row(&self, bank: usize, now: Cycle) -> Option<u64> {
        self.banks[bank].effective_row(now)
    }

    /// Classifies an access to `(bank, row)` at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn classify(&self, bank: usize, row: u64, now: Cycle) -> RowBufferOutcome {
        self.banks[bank].classify(row, now)
    }

    /// True if the access would be a row hit (used by FR-FCFS priority).
    pub fn is_row_hit(&self, bank: usize, row: u64, now: Cycle) -> bool {
        self.classify(bank, row, now) == RowBufferOutcome::Hit
    }

    /// True if the command bus is free at `now`.
    pub fn command_bus_free(&self, now: Cycle) -> bool {
        now >= self.cmd_bus_free_at
    }

    /// True if [`Channel::advance`] would issue a command for `(bank, row)`
    /// at `now` — i.e. the command bus is free and the bank (plus, for a CAS,
    /// the data bus) can accept the next command the request needs.
    pub fn can_advance(&self, bank: usize, row: u64, now: Cycle) -> bool {
        if !self.command_bus_free(now) {
            return false;
        }
        if self.in_refresh(now) {
            return false;
        }
        let b = &self.banks[bank];
        match b.classify(row, now) {
            RowBufferOutcome::Hit => b.can_cas(row, now) && now + self.cl >= self.data_bus_free_at,
            RowBufferOutcome::Closed => b.can_activate(now) && self.faw_allows(now),
            RowBufferOutcome::Conflict => {
                b.can_precharge(now) && now >= self.min_precharge_at[bank]
            }
        }
    }

    /// Issues the next command needed to service `(bank, row)` at `now`.
    ///
    /// Returns [`StepOutcome::Blocked`] when nothing can issue. For the
    /// paper's command latencies, a request is serviced by at most three
    /// successive `advance` calls (PRE, ACT, CAS).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn advance(&mut self, bank: usize, row: u64, is_write: bool, now: Cycle) -> StepOutcome {
        if !self.can_advance(bank, row, now) {
            return StepOutcome::Blocked;
        }
        self.cmd_bus_free_at = now + CPU_CYCLES_PER_DRAM_CYCLE;
        let b = &mut self.banks[bank];
        match b.classify(row, now) {
            RowBufferOutcome::Conflict => {
                if let (Some(h), Some(victim)) = (self.happy.as_mut(), b.open_row(now)) {
                    h.train_from_precharge(bank, victim, b.cas_served());
                }
                b.precharge(now, self.t_rp);
                self.stats.precharges += 1;
                StepOutcome::Precharged
            }
            RowBufferOutcome::Closed => {
                b.activate(row, now, self.t_rcd);
                self.stats.activations += 1;
                if let Some(e) = self.ext {
                    self.min_precharge_at[bank] = now + e.t_ras;
                    if self.act_history.len() == 4 {
                        self.act_history.pop_front();
                    }
                    self.act_history.push_back(now);
                }
                StepOutcome::Activated
            }
            RowBufferOutcome::Hit => {
                let data_start = now + self.cl;
                let completes_at = data_start + self.burst;
                self.data_bus_free_at = completes_at;
                if is_write {
                    self.stats.writes += 1;
                } else {
                    self.stats.reads += 1;
                }
                if let Some(e) = self.ext {
                    let recovery = if is_write { e.t_wr } else { e.t_rtp };
                    let earliest = completes_at + recovery;
                    let slot = &mut self.min_precharge_at[bank];
                    *slot = (*slot).max(earliest);
                }
                self.stats.data_bus_busy_cycles += self.burst;
                b.note_cas();
                StepOutcome::CasIssued { completes_at }
            }
        }
    }

    /// End of the refresh window occupying the channel at `now`, or `now`
    /// itself when no refresh is in progress.
    fn refresh_release(&self, now: Cycle) -> Cycle {
        match self.ext {
            Some(e) if self.in_refresh(now) => now - now % e.t_refi + e.t_rfc,
            _ => now,
        }
    }

    /// Earliest cycle at which a new ACT clears the tFAW window (exact with
    /// respect to the recorded four-ACT history).
    fn faw_free_at(&self, now: Cycle) -> Cycle {
        match self.ext {
            Some(e) if self.act_history.len() == 4 => now.max(self.act_history[0] + e.t_faw),
            _ => now,
        }
    }

    /// Next refresh boundary not yet applied by [`Channel::sync`] (`None`
    /// without extended timing). Under the per-bank policies this is the
    /// earliest unapplied *per-bank* window boundary across all banks. May
    /// equal `now` when the boundary's scheduling tick has not run yet.
    /// Fast-forwarding must never skip across one: `sync` counts one
    /// refresh per application regardless of how many boundaries have
    /// passed, so stat parity with cycle-by-cycle stepping requires
    /// resuming at every boundary.
    pub fn next_refresh_boundary(&self, now: Cycle) -> Option<Cycle> {
        match (&self.refresh, self.ext) {
            (Some(r), Some(e)) => {
                let next = r
                    .applied
                    .iter()
                    .enumerate()
                    .map(|(b, &k)| (k + 1) * e.t_refi + r.offset(b))
                    .min()
                    .expect("channel has at least one bank");
                Some(next.max(now))
            }
            (None, Some(e)) if e.t_refi > 0 => {
                Some(((self.refreshes_applied + 1) * e.t_refi).max(now))
            }
            _ => None,
        }
    }

    /// True when `bank`'s current refresh window is open but not yet
    /// refreshed (per-bank policies only): unless pulled earlier, the
    /// deadline-forced refresh for it fires at the window's end boundary.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range for a per-bank-policy channel.
    pub fn refresh_pending(&self, bank: usize, now: Cycle) -> bool {
        match (&self.refresh, self.ext) {
            (Some(r), Some(e)) => now >= r.applied[bank] * e.t_refi + r.offset(bank),
            _ => false,
        }
    }

    /// Lower bound on the first cycle `m >= now` at which
    /// [`Channel::pull_refresh`]`(bank, m)` can succeed, assuming no command
    /// issues on the channel in between; `None` when pulls can never happen
    /// (not [`RefreshPolicy::Darp`]). Early-never-late, like
    /// [`Channel::earliest_advance_at`]: this is the DARP contribution to
    /// the controller's `next_event` fold (DESIGN.md §15).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn earliest_refresh_pull_at(&self, bank: usize, now: Cycle) -> Option<Cycle> {
        let (r, e) = match (&self.refresh, self.ext) {
            (Some(r), Some(e)) if r.darp => (r, e),
            _ => return None,
        };
        let window_open = r.applied[bank] * e.t_refi + r.offset(bank);
        // A pull needs the bank command-ready: closed, or open with its row
        // legally precharge-able (the REF implicitly closes it).
        let bank_ready = match self.banks[bank].state_at(now) {
            BankState::Closed => now,
            BankState::Open { .. } => now.max(self.min_precharge_at[bank]),
            BankState::Activating { ready_at, .. } => ready_at.max(self.min_precharge_at[bank]),
            BankState::Precharging { ready_at } => ready_at,
        };
        Some(
            window_open
                .max(bank_ready)
                .max(self.cmd_bus_free_at)
                .max(now),
        )
    }

    /// DARP out-of-order refresh: issues `bank`'s pending refresh *now*,
    /// ahead of its deadline, occupying the bank for `t_rfcpb` and the
    /// command bus for one DRAM cycle. At most one refresh is pulled per
    /// window (the window's deadline-forced refresh is then already paid).
    /// An open row is implicitly precharged by the REF — without HAPPY
    /// training, since a refresh eviction says nothing about locality.
    ///
    /// Returns false when ineligible: not [`RefreshPolicy::Darp`], window
    /// not yet open (or already refreshed), bank mid-ACT/PRE or its open
    /// row not yet precharge-able, or command bus busy.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn pull_refresh(&mut self, bank: usize, now: Cycle) -> bool {
        match self.earliest_refresh_pull_at(bank, now) {
            Some(t) if t <= now => {}
            _ => return false,
        }
        let r = self.refresh.as_mut().expect("pull bound implies per-bank");
        r.applied[bank] += 1;
        let t_rfcpb = r.t_rfcpb;
        self.cmd_bus_free_at = now + CPU_CYCLES_PER_DRAM_CYCLE;
        self.stats.refreshes += 1;
        self.refresh_counters.pulls += 1;
        self.refresh_counters.stall_cycles += t_rfcpb;
        self.banks[bank].refresh(now + t_rfcpb);
        true
    }

    /// Refresh side counters (profile surface, not part of the serialized
    /// [`ChannelStats`]).
    pub fn refresh_counters(&self) -> RefreshCounters {
        self.refresh_counters
    }

    /// Lower bound on the first cycle `m >= now` at which
    /// [`Channel::can_advance`]`(bank, row, m)` can become true, assuming no
    /// command issues on the channel in between. The bound is never *later*
    /// than the true first cycle (the direction fast-forwarding relies on);
    /// it may be earlier when a constraint outside the bound — a refresh
    /// window opening mid-skip, which [`Channel::next_refresh_boundary`]
    /// covers separately — still blocks the command.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn earliest_advance_at(&self, bank: usize, row: u64, now: Cycle) -> Cycle {
        let b = &self.banks[bank];
        let bank_ready = b.next_event(now).unwrap_or(now);
        let class_bound = match b.classify(row, now) {
            RowBufferOutcome::Hit => bank_ready.max(self.data_bus_free_at.saturating_sub(self.cl)),
            RowBufferOutcome::Closed => bank_ready.max(self.faw_free_at(now)),
            RowBufferOutcome::Conflict => bank_ready.max(self.min_precharge_at[bank]),
        };
        class_bound
            .max(self.cmd_bus_free_at)
            .max(self.refresh_release(now))
            .max(now)
    }

    /// Lower bound on the first cycle at which [`Channel::precharge_bank`]
    /// could issue for `bank` (closed-row policy); `None` when the bank has
    /// no open or opening row, so no explicit precharge is ever due.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn earliest_precharge_at(&self, bank: usize, now: Cycle) -> Option<Cycle> {
        let open_at = match self.banks[bank].state_at(now) {
            BankState::Open { .. } => now,
            BankState::Activating { ready_at, .. } => ready_at,
            BankState::Closed | BankState::Precharging { .. } => return None,
        };
        Some(
            open_at
                .max(self.min_precharge_at[bank])
                .max(self.cmd_bus_free_at)
                .max(self.refresh_release(now))
                .max(now),
        )
    }

    /// Lower bound on the next cycle strictly after `now` at which the
    /// channel's state can change without a new command being issued: bank
    /// ACT/PRE completions, bus releases, and the next refresh boundary.
    /// `None` when the channel is fully quiescent.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut ev: Option<Cycle> = None;
        let mut fold = |c: Cycle| {
            if c > now {
                ev = Some(ev.map_or(c, |e: Cycle| e.min(c)));
            }
        };
        for b in &self.banks {
            if let Some(t) = b.next_event(now) {
                fold(t);
            }
        }
        fold(self.cmd_bus_free_at);
        fold(self.data_bus_free_at);
        if let Some(r) = self.next_refresh_boundary(now) {
            fold(r);
        }
        ev
    }

    /// Issues an explicit precharge of `bank` (closed-row policy support).
    ///
    /// Returns true if the precharge was issued; false if the bank had no
    /// open row or the command bus was busy.
    pub fn precharge_bank(&mut self, bank: usize, now: Cycle) -> bool {
        if !self.command_bus_free(now)
            || !self.banks[bank].can_precharge(now)
            || self.in_refresh(now)
            || now < self.min_precharge_at[bank]
        {
            return false;
        }
        self.cmd_bus_free_at = now + CPU_CYCLES_PER_DRAM_CYCLE;
        let b = &mut self.banks[bank];
        if let (Some(h), Some(victim)) = (self.happy.as_mut(), b.open_row(now)) {
            h.train_from_precharge(bank, victim, b.cas_served());
        }
        b.precharge(now, self.t_rp);
        self.stats.precharges += 1;
        true
    }

    /// True if the HAPPY predictor recommends precharging `bank`'s open (or
    /// opening) row once it is idle. Always false for the other row
    /// policies (no predictor) and for banks with no effective row.
    ///
    /// This is a pure read: consulting it never mutates predictor state, so
    /// the controller's `next_event` proof may evaluate it freely
    /// (DESIGN.md §11). Training happens only inside [`Channel::advance`]
    /// and [`Channel::precharge_bank`], i.e. only when a command issues.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn happy_votes_close(&self, bank: usize, now: Cycle) -> bool {
        match (&self.happy, self.banks[bank].effective_row(now)) {
            (Some(h), Some(row)) => h.votes_close(bank, row),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;
    use crate::ExtendedTiming;

    fn ch() -> (DramConfig, Channel) {
        let cfg = DramConfig::default();
        let c = Channel::new(&cfg);
        (cfg, c)
    }

    fn ext_ch(policy: RefreshPolicy) -> (DramConfig, Channel) {
        let cfg = DramConfig {
            extended: Some(ExtendedTiming::default()),
            refresh_policy: policy,
            ..DramConfig::default()
        };
        let c = Channel::new(&cfg);
        (cfg, c)
    }

    #[test]
    fn closed_bank_takes_act_then_cas() {
        let (cfg, mut c) = ch();
        assert_eq!(c.advance(0, 1, false, 0), StepOutcome::Activated);
        // Bank busy during tRCD.
        assert_eq!(c.advance(0, 1, false, 10), StepOutcome::Blocked);
        let t = cfg.t_rcd_cpu();
        match c.advance(0, 1, false, t) {
            StepOutcome::CasIssued { completes_at } => {
                assert_eq!(completes_at, t + cfg.cl_cpu() + cfg.burst_cpu());
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn conflict_takes_pre_act_cas() {
        let (cfg, mut c) = ch();
        c.advance(0, 1, false, 0);
        let t1 = cfg.t_rcd_cpu();
        c.advance(0, 1, false, t1); // CAS row 1; row stays open
        let t2 = t1 + cfg.burst_cpu() + cfg.cl_cpu();
        assert_eq!(c.advance(0, 2, false, t2), StepOutcome::Precharged);
        let t3 = t2 + cfg.t_rp_cpu();
        assert_eq!(c.advance(0, 2, false, t3), StepOutcome::Activated);
        let t4 = t3 + cfg.t_rcd_cpu();
        assert!(matches!(
            c.advance(0, 2, false, t4),
            StepOutcome::CasIssued { .. }
        ));
        assert_eq!(c.stats().precharges, 1);
        assert_eq!(c.stats().activations, 2);
        assert_eq!(c.stats().reads, 2);
    }

    #[test]
    fn command_bus_allows_one_command_per_dram_cycle() {
        let (_, mut c) = ch();
        assert_eq!(c.advance(0, 1, false, 0), StepOutcome::Activated);
        // Same CPU cycle, different bank: command bus busy.
        assert_eq!(c.advance(1, 9, false, 0), StepOutcome::Blocked);
        // Next CPU cycle is still within the same DRAM bus cycle.
        assert_eq!(c.advance(1, 9, false, 1), StepOutcome::Blocked);
        // One DRAM cycle later it goes through.
        assert_eq!(
            c.advance(1, 9, false, CPU_CYCLES_PER_DRAM_CYCLE),
            StepOutcome::Activated
        );
    }

    #[test]
    fn data_bus_serializes_bursts() {
        let (cfg, mut c) = ch();
        // Open two banks.
        c.advance(0, 1, false, 0);
        c.advance(1, 2, false, CPU_CYCLES_PER_DRAM_CYCLE);
        let t = cfg.t_rcd_cpu() + CPU_CYCLES_PER_DRAM_CYCLE;
        let first = match c.advance(0, 1, false, t) {
            StepOutcome::CasIssued { completes_at } => completes_at,
            o => panic!("unexpected {o:?}"),
        };
        // A CAS whose data would start before the first burst ends is blocked.
        let too_early = first - cfg.burst_cpu() - cfg.cl_cpu() + 1;
        // (may also be blocked by the command bus; step past it)
        let too_early = too_early.max(t + CPU_CYCLES_PER_DRAM_CYCLE);
        if too_early + cfg.cl_cpu() < first {
            assert_eq!(c.advance(1, 2, false, too_early), StepOutcome::Blocked);
        }
        // Once the data bus frees, the second CAS issues.
        let ok = first - cfg.cl_cpu();
        assert!(matches!(
            c.advance(1, 2, false, ok.max(t + CPU_CYCLES_PER_DRAM_CYCLE)),
            StepOutcome::CasIssued { .. }
        ));
    }

    #[test]
    fn explicit_precharge_for_closed_row_policy() {
        let (cfg, mut c) = ch();
        c.advance(0, 1, false, 0);
        let t = cfg.t_rcd_cpu();
        c.advance(0, 1, false, t);
        let t2 = t + CPU_CYCLES_PER_DRAM_CYCLE;
        assert!(c.precharge_bank(0, t2));
        // Now the bank is precharging; a new row is row-closed, not conflict.
        assert_eq!(
            c.classify(0, 5, t2 + cfg.t_rp_cpu()),
            RowBufferOutcome::Closed
        );
    }

    #[test]
    fn precharge_bank_refuses_when_closed() {
        let (_, mut c) = ch();
        assert!(!c.precharge_bank(0, 0));
    }

    #[test]
    fn happy_predictor_is_absent_under_other_policies() {
        let (cfg, mut c) = ch();
        c.advance(0, 1, false, 0);
        assert!(
            !c.happy_votes_close(0, cfg.t_rcd_cpu()),
            "open/closed-policy channels must never vote to close"
        );
    }

    #[test]
    fn all_bank_refresh_charges_whole_channel_stall() {
        let (cfg, mut c) = ext_ch(RefreshPolicy::AllBank);
        let e = cfg.extended.unwrap();
        let t_refi = e.t_refi * CPU_CYCLES_PER_DRAM_CYCLE;
        let t_rfc = e.t_rfc * CPU_CYCLES_PER_DRAM_CYCLE;
        c.sync(t_refi);
        assert_eq!(c.stats().refreshes, 1);
        assert_eq!(
            c.refresh_counters(),
            RefreshCounters {
                pulls: 0,
                stall_cycles: t_rfc * cfg.banks as Cycle,
            }
        );
        // All-bank channels never expose the per-bank surface.
        assert!(!c.refresh_pending(0, t_refi));
        assert_eq!(c.earliest_refresh_pull_at(0, t_refi), None);
        assert!(!c.pull_refresh(0, t_refi));
    }

    #[test]
    fn per_bank_refresh_staggers_and_isolates_banks() {
        let (cfg, mut c) = ext_ch(RefreshPolicy::PerBank);
        let e = cfg.extended.unwrap();
        let t_refi = e.t_refi * CPU_CYCLES_PER_DRAM_CYCLE;
        let t_rfcpb = (e.t_rfc * CPU_CYCLES_PER_DRAM_CYCLE / 2).max(1);
        // The first boundary is bank 0's own deadline, not a channel window.
        assert_eq!(c.next_refresh_boundary(0), Some(t_refi));
        c.sync(t_refi);
        assert_eq!(c.stats().refreshes, 1);
        assert_eq!(c.refresh_counters().stall_cycles, t_rfcpb);
        // Bank 0 is busy refreshing, but bank 1 keeps serving accesses —
        // the refresh-access parallelism the all-bank window forbids.
        assert!(!c.can_advance(0, 1, t_refi));
        assert_eq!(c.advance(1, 1, false, t_refi), StepOutcome::Activated);
        // Bank 0 re-accepts commands once its t_rfcpb elapses.
        assert!(c.can_advance(0, 1, t_refi + t_rfcpb));
        // Bank 1's own deadline sits one stagger stride later.
        let stride = t_refi / cfg.banks as Cycle;
        c.sync(t_refi + stride);
        assert_eq!(c.stats().refreshes, 2);
    }

    #[test]
    fn darp_pull_pays_the_window_early_and_skips_the_forced_refresh() {
        let (cfg, mut c) = ext_ch(RefreshPolicy::Darp);
        let e = cfg.extended.unwrap();
        let t_refi = e.t_refi * CPU_CYCLES_PER_DRAM_CYCLE;
        // Bank 0's first window is open from cycle 0; pull it immediately.
        assert!(c.refresh_pending(0, 0));
        assert_eq!(c.earliest_refresh_pull_at(0, 0), Some(0));
        assert!(c.pull_refresh(0, 0));
        assert_eq!(c.stats().refreshes, 1);
        assert_eq!(c.refresh_counters().pulls, 1);
        // One pull per window: the next opportunity is the next window.
        assert!(!c.refresh_pending(0, CPU_CYCLES_PER_DRAM_CYCLE));
        assert!(!c.pull_refresh(0, t_refi / 2));
        // The deadline-forced refresh at bank 0's boundary is already paid;
        // the earliest unapplied boundary now belongs to bank 1.
        c.sync(t_refi);
        assert_eq!(c.stats().refreshes, 1);
        let stride = t_refi / cfg.banks as Cycle;
        assert_eq!(c.next_refresh_boundary(0), Some(t_refi + stride));
    }

    #[test]
    fn darp_pull_implicitly_closes_an_idle_open_row() {
        let (cfg, mut c) = ext_ch(RefreshPolicy::Darp);
        c.advance(0, 7, false, 0);
        let t = cfg.t_rcd_cpu();
        assert!(matches!(
            c.advance(0, 7, false, t),
            StepOutcome::CasIssued { .. }
        ));
        // tRAS/tRTP gate the implicit precharge exactly like an explicit one.
        let ready = c.earliest_refresh_pull_at(0, t).unwrap();
        assert!(ready > t);
        assert!(!c.pull_refresh(0, ready - 1));
        assert!(c.pull_refresh(0, ready));
        assert_eq!(c.effective_row(0, ready), None);
        assert_eq!(c.classify(0, 7, ready), RowBufferOutcome::Closed);
        // The REF is not a PRE: no precharge is counted (or HAPPY-trained).
        assert_eq!(c.stats().precharges, 0);
    }

    #[test]
    fn pull_refresh_requires_darp() {
        let (_, mut c) = ext_ch(RefreshPolicy::PerBank);
        assert!(c.refresh_pending(0, 0));
        assert_eq!(c.earliest_refresh_pull_at(0, 0), None);
        assert!(!c.pull_refresh(0, 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The deadline-soundness property of DESIGN.md §15: under the
        /// per-bank policies — with or without adversarial DARP pulls —
        /// no bank's refresh ever slips past its window's end boundary,
        /// provided `sync` runs each DRAM scheduling cycle (as the
        /// controller guarantees).
        #[test]
        fn per_bank_refresh_never_misses_its_deadline(
            darp in any::<bool>(),
            pulls in prop::collection::vec(0usize..8, 0..96),
        ) {
            let policy = if darp { RefreshPolicy::Darp } else { RefreshPolicy::PerBank };
            let (cfg, mut c) = ext_ch(policy);
            let t_refi = cfg.extended.unwrap().t_refi * CPU_CYCLES_PER_DRAM_CYCLE;
            let mut pulls = pulls.into_iter();
            let mut now = 0;
            while now < 3 * t_refi {
                c.sync(now);
                let r = c.refresh.as_ref().expect("per-bank policy");
                for (b, &applied) in r.applied.iter().enumerate() {
                    let off = r.offset(b);
                    let due = if now >= off { (now - off) / t_refi } else { 0 };
                    prop_assert!(
                        applied >= due,
                        "bank {b} missed its deadline at {now}: \
                         applied {applied} < due window {due}"
                    );
                }
                if let Some(bank) = pulls.next() {
                    c.pull_refresh(bank, now);
                }
                now += CPU_CYCLES_PER_DRAM_CYCLE;
            }
            // Bookkeeping sanity: every pull is one of the refreshes.
            prop_assert!(c.refresh_counters().pulls <= c.stats().refreshes);
            prop_assert!(darp || c.refresh_counters().pulls == 0);
        }
    }

    #[test]
    fn happy_trains_close_on_single_use_and_open_on_reuse() {
        let cfg = DramConfig {
            row_policy: RowPolicy::Happy,
            ..DramConfig::default()
        };
        let mut c = Channel::new(&cfg);
        // Open row 1, serve a single CAS, then policy-precharge it.
        c.advance(0, 1, false, 0);
        let t = cfg.t_rcd_cpu();
        assert!(!c.happy_votes_close(0, t), "untrained rows default to open");
        c.advance(0, 1, false, t);
        let t = t + cfg.cl_cpu() + cfg.burst_cpu();
        // The policy precharge trains toward closed (1 CAS served).
        assert!(c.precharge_bank(0, t));
        // Reopened, the single-use row now votes close...
        let t = t + cfg.t_rp_cpu();
        c.advance(0, 1, false, t);
        assert!(c.happy_votes_close(0, t));
        // ...but two CAS bursts in the next residency train it back open
        // when the conflict precharge for row 2 retires it.
        let t = t + cfg.t_rcd_cpu();
        c.advance(0, 1, false, t);
        let t = t + cfg.cl_cpu() + cfg.burst_cpu();
        c.advance(0, 1, false, t);
        let t = t + cfg.cl_cpu() + cfg.burst_cpu();
        assert_eq!(c.advance(0, 2, false, t), StepOutcome::Precharged);
        let t = t + cfg.t_rp_cpu();
        c.advance(0, 1, false, t);
        assert!(!c.happy_votes_close(0, t));
    }
}
