use padc_types::Cycle;

use crate::RowBufferOutcome;

/// State of one DRAM bank's row buffer.
///
/// Transitions are time-driven: an [`BankState::Activating`] bank becomes
/// [`BankState::Open`] once `ready_at` passes, and a
/// [`BankState::Precharging`] bank becomes [`BankState::Closed`]. Callers
/// observe the *resolved* state through [`Bank`]'s methods, which lazily
/// apply these transitions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BankState {
    /// Precharged, no row in the sense amplifiers.
    Closed,
    /// An ACT is in flight; `row` becomes readable at `ready_at`.
    Activating {
        /// Row being brought into the sense amplifiers.
        row: u64,
        /// Cycle at which the row becomes readable (ACT issue + tRCD).
        ready_at: Cycle,
    },
    /// `row` is open in the row buffer.
    Open {
        /// Row currently held in the sense amplifiers.
        row: u64,
    },
    /// A PRE is in flight; the bank is closed (ACT-ready) at `ready_at`.
    Precharging {
        /// Cycle at which the bank accepts the next ACT (PRE issue + tRP).
        ready_at: Cycle,
    },
}

/// One DRAM bank: a row-buffer state machine with timing.
///
/// ```
/// use padc_dram::{Bank, RowBufferOutcome};
///
/// let mut bank = Bank::new();
/// assert_eq!(bank.classify(3, 0), RowBufferOutcome::Closed);
/// bank.activate(3, 0, 50);
/// // Row not yet open during tRCD:
/// assert!(!bank.can_cas(3, 20));
/// assert!(bank.can_cas(3, 50));
/// assert_eq!(bank.classify(3, 50), RowBufferOutcome::Hit);
/// assert_eq!(bank.classify(4, 50), RowBufferOutcome::Conflict);
/// ```
#[derive(Clone, Debug)]
pub struct Bank {
    state: BankState,
    /// CAS commands served by the currently/last open row (reset on ACT).
    /// The HAPPY page-policy predictor reads this at precharge time: a row
    /// that served several CAS bursts while open earned its open-row
    /// residency, one that served only its opening access did not.
    cas_served: u32,
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl Bank {
    /// Creates a closed (precharged) bank.
    pub fn new() -> Self {
        Bank {
            state: BankState::Closed,
            cas_served: 0,
        }
    }

    /// The bank state with time-driven transitions applied at `now`.
    pub fn state_at(&self, now: Cycle) -> BankState {
        match self.state {
            BankState::Activating { row, ready_at } if now >= ready_at => BankState::Open { row },
            BankState::Precharging { ready_at } if now >= ready_at => BankState::Closed,
            s => s,
        }
    }

    /// The row currently readable in the row buffer, if any.
    pub fn open_row(&self, now: Cycle) -> Option<u64> {
        match self.state_at(now) {
            BankState::Open { row } => Some(row),
            _ => None,
        }
    }

    /// The row that is open *or opening* — used by row-hit prioritization,
    /// which should treat a request to an in-flight row as a future hit.
    pub fn effective_row(&self, now: Cycle) -> Option<u64> {
        match self.state_at(now) {
            BankState::Open { row } | BankState::Activating { row, .. } => Some(row),
            _ => None,
        }
    }

    /// Classifies an access to `row` (§2.1): hit, closed, or conflict.
    pub fn classify(&self, row: u64, now: Cycle) -> RowBufferOutcome {
        match self.state_at(now) {
            BankState::Open { row: open } | BankState::Activating { row: open, .. } => {
                if open == row {
                    RowBufferOutcome::Hit
                } else {
                    RowBufferOutcome::Conflict
                }
            }
            BankState::Closed | BankState::Precharging { .. } => RowBufferOutcome::Closed,
        }
    }

    /// True if a PRE command may issue at `now` (the bank is quiescent with a
    /// row open or already closed — re-precharging a closed bank is a no-op
    /// the model forbids).
    pub fn can_precharge(&self, now: Cycle) -> bool {
        matches!(self.state_at(now), BankState::Open { .. })
    }

    /// Issues a PRE; the bank accepts an ACT at `now + t_rp`.
    ///
    /// # Panics
    ///
    /// Panics if the bank cannot accept a precharge (see
    /// [`Bank::can_precharge`]).
    pub fn precharge(&mut self, now: Cycle, t_rp: Cycle) {
        assert!(self.can_precharge(now), "precharge on non-open bank");
        self.state = BankState::Precharging {
            ready_at: now + t_rp,
        };
    }

    /// True if an ACT command may issue at `now` (the bank is closed).
    pub fn can_activate(&self, now: Cycle) -> bool {
        matches!(self.state_at(now), BankState::Closed)
    }

    /// Issues an ACT for `row`; CAS commands for it are accepted from
    /// `now + t_rcd`.
    ///
    /// # Panics
    ///
    /// Panics if the bank is not closed (see [`Bank::can_activate`]).
    pub fn activate(&mut self, row: u64, now: Cycle, t_rcd: Cycle) {
        assert!(self.can_activate(now), "activate on non-closed bank");
        self.state = BankState::Activating {
            row,
            ready_at: now + t_rcd,
        };
        self.cas_served = 0;
    }

    /// Applies a per-bank refresh (REF_pb): whatever row was open (or
    /// opening) is lost without a PRE, and the bank re-accepts commands —
    /// closed — at `ready_at`. Modeled as a precharge-like occupancy so
    /// [`Bank::next_event`] and `classify` cover the busy window for free.
    pub fn refresh(&mut self, ready_at: Cycle) {
        self.state = BankState::Precharging { ready_at };
        self.cas_served = 0;
    }

    /// True if a CAS (read/write) to `row` may issue at `now`.
    pub fn can_cas(&self, row: u64, now: Cycle) -> bool {
        self.open_row(now) == Some(row)
    }

    /// Records a CAS issued to the open row (called by the channel).
    pub fn note_cas(&mut self) {
        self.cas_served = self.cas_served.saturating_add(1);
    }

    /// CAS commands served since the row currently open (or last open) was
    /// activated. See the field docs: this is the HAPPY training signal.
    pub fn cas_served(&self) -> u32 {
        self.cas_served
    }

    /// The next cycle at which the bank's *resolved* state changes on its
    /// own — the `ready_at` of an in-flight ACT or PRE. `None` when the
    /// bank is stable ([`BankState::Open`] / [`BankState::Closed`]) and
    /// only a new command can change it.
    ///
    /// This is the bank's contribution to the fast-forward event contract
    /// (DESIGN.md §11): between `now` and the returned cycle, every
    /// `can_*` / `classify` answer at a fixed row is constant.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        match self.state_at(now) {
            BankState::Activating { ready_at, .. } | BankState::Precharging { ready_at } => {
                Some(ready_at)
            }
            BankState::Open { .. } | BankState::Closed => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_bank_is_closed() {
        let b = Bank::new();
        assert_eq!(b.state_at(0), BankState::Closed);
        assert!(b.can_activate(0));
        assert!(!b.can_precharge(0));
        assert!(!b.can_cas(0, 0));
    }

    #[test]
    fn activation_opens_row_after_trcd() {
        let mut b = Bank::new();
        b.activate(5, 100, 50);
        assert_eq!(b.open_row(149), None);
        assert_eq!(b.open_row(150), Some(5));
        // The in-flight row is already the effective row for prioritization.
        assert_eq!(b.effective_row(120), Some(5));
    }

    #[test]
    fn precharge_closes_after_trp() {
        let mut b = Bank::new();
        b.activate(5, 0, 50);
        b.precharge(60, 50);
        assert!(!b.can_activate(109));
        assert!(b.can_activate(110));
        assert_eq!(b.classify(5, 110), RowBufferOutcome::Closed);
    }

    #[test]
    fn classify_distinguishes_hit_and_conflict() {
        let mut b = Bank::new();
        b.activate(5, 0, 50);
        assert_eq!(b.classify(5, 50), RowBufferOutcome::Hit);
        assert_eq!(b.classify(6, 50), RowBufferOutcome::Conflict);
    }

    #[test]
    fn cas_count_resets_on_activate() {
        let mut b = Bank::new();
        assert_eq!(b.cas_served(), 0);
        b.activate(5, 0, 50);
        b.note_cas();
        b.note_cas();
        assert_eq!(b.cas_served(), 2);
        // The count survives the precharge (it is read at precharge time)...
        b.precharge(60, 50);
        assert_eq!(b.cas_served(), 2);
        // ...and resets when the next row opens.
        b.activate(6, 200, 50);
        assert_eq!(b.cas_served(), 0);
    }

    #[test]
    fn refresh_closes_any_state_and_occupies_until_ready() {
        let mut b = Bank::new();
        b.activate(5, 0, 50);
        b.note_cas();
        b.refresh(200);
        // Busy (neither ACT nor PRE accepted) until ready_at...
        assert!(!b.can_activate(199));
        assert_eq!(b.next_event(100), Some(200));
        // ...then closed, with the row and its CAS history gone.
        assert!(b.can_activate(200));
        assert_eq!(b.open_row(200), None);
        assert_eq!(b.cas_served(), 0);
        assert_eq!(b.classify(5, 200), RowBufferOutcome::Closed);
    }

    #[test]
    #[should_panic(expected = "activate on non-closed bank")]
    fn double_activate_panics() {
        let mut b = Bank::new();
        b.activate(1, 0, 50);
        b.activate(2, 10, 50);
    }

    #[test]
    #[should_panic(expected = "precharge on non-open bank")]
    fn precharge_during_activation_panics() {
        let mut b = Bank::new();
        b.activate(1, 0, 50);
        b.precharge(10, 50); // still activating at t=10
    }
}
