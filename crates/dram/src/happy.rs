//! HAPPY-style per-row open/closed predictor (Ghasempour, Jaleel, Garside
//! & Luján, "HAPPY: Hybrid Address-based Page Policy in DRAMs"; see
//! PAPERS.md).
//!
//! HAPPY observes that neither a blanket open-row nor a blanket closed-row
//! policy wins everywhere: rows with spatial locality amortize their ACT
//! over many CAS bursts and should stay open, while rows touched once pay a
//! conflict penalty for every cycle they linger. The predictor keeps a
//! small table of 2-bit saturating counters hashed by `(bank, row)` and is
//! trained at precharge time from the bank's CAS-per-activation count: a
//! row that served at least [`REUSE_THRESHOLD`] CAS commands while open
//! trains toward *open*, a row that served only its opening access trains
//! toward *closed*. The controller consults [`HappyPredictor::votes_close`]
//! before issuing a policy precharge, so each row individually behaves like
//! the better of the two static policies once its history accumulates.

/// Entries in the predictor's counter table (power of two).
const TABLE_ENTRIES: usize = 1024;

/// CAS commands per activation at or above which a row trains toward
/// staying open.
pub const REUSE_THRESHOLD: u32 = 2;

/// Counter value a fresh (untrained) row starts at: weakly *open*, so an
/// untrained HAPPY system behaves like the paper's default open-row policy
/// until evidence accumulates.
const RESET_VALUE: u8 = 2;

/// A table of 2-bit saturating per-row counters voting open (>= 2) or
/// closed (< 2).
///
/// ```
/// use padc_dram::HappyPredictor;
/// let mut p = HappyPredictor::new();
/// assert!(!p.votes_close(0, 7)); // untrained rows default to open-row
/// p.train_close(0, 7);
/// assert!(p.votes_close(0, 7));
/// p.train_open(0, 7);
/// assert!(!p.votes_close(0, 7));
/// ```
#[derive(Clone, Debug)]
pub struct HappyPredictor {
    counters: Vec<u8>,
}

impl Default for HappyPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl HappyPredictor {
    /// Creates a predictor with every row weakly voting open.
    pub fn new() -> Self {
        HappyPredictor {
            counters: vec![RESET_VALUE; TABLE_ENTRIES],
        }
    }

    fn index(bank: usize, row: u64) -> usize {
        let key = (row << 4) ^ bank as u64;
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize % TABLE_ENTRIES
    }

    /// True if the predictor recommends precharging `(bank, row)` as soon
    /// as it is idle (closed-row behavior for this row).
    pub fn votes_close(&self, bank: usize, row: u64) -> bool {
        self.counters[Self::index(bank, row)] < RESET_VALUE
    }

    /// Trains `(bank, row)` toward open-row behavior (saturating).
    pub fn train_open(&mut self, bank: usize, row: u64) {
        let c = &mut self.counters[Self::index(bank, row)];
        *c = (*c + 1).min(3);
    }

    /// Trains `(bank, row)` toward closed-row behavior (saturating).
    pub fn train_close(&mut self, bank: usize, row: u64) {
        let c = &mut self.counters[Self::index(bank, row)];
        *c = c.saturating_sub(1);
    }

    /// Trains from a precharge observation: the row served `cas_served` CAS
    /// commands during the residency that just ended.
    pub fn train_from_precharge(&mut self, bank: usize, row: u64, cas_served: u32) {
        if cas_served >= REUSE_THRESHOLD {
            self.train_open(bank, row);
        } else {
            self.train_close(bank, row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_saturate_in_both_directions() {
        let mut p = HappyPredictor::new();
        for _ in 0..10 {
            p.train_open(3, 42);
        }
        assert!(!p.votes_close(3, 42));
        for _ in 0..10 {
            p.train_close(3, 42);
        }
        assert!(p.votes_close(3, 42));
        // Two opens climb back out of the saturated closed state.
        p.train_open(3, 42);
        p.train_open(3, 42);
        assert!(!p.votes_close(3, 42));
    }

    #[test]
    fn precharge_training_uses_the_reuse_threshold() {
        let mut p = HappyPredictor::new();
        // Single-access residencies (only the opening CAS): train closed.
        p.train_from_precharge(0, 9, 1);
        assert!(p.votes_close(0, 9));
        // Reused residencies train back toward open.
        p.train_from_precharge(0, 9, REUSE_THRESHOLD);
        assert!(!p.votes_close(0, 9));
    }

    #[test]
    fn rows_are_tracked_independently() {
        let mut p = HappyPredictor::new();
        p.train_close(0, 1);
        p.train_close(0, 1);
        assert!(p.votes_close(0, 1));
        assert!(!p.votes_close(0, 2), "untrained row keeps the open default");
        assert!(!p.votes_close(1, 1), "other banks keep the open default");
    }
}
