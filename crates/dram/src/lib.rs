//! Cycle-level DDR3 DRAM model for the PADC simulation suite.
//!
//! Models the memory device exactly as the paper's Table 4 describes it:
//! per-channel command/data buses, 8 independent banks per channel, a 4KB row
//! buffer per bank, and uniform 15ns command latencies (precharge `tRP`,
//! activate `tRCD`, read/write `CL`) with a BL=4 data burst over a 16B bus —
//! one 64B cache line per CAS.
//!
//! The controller (in `padc-core`) drives this model through a small command
//! interface: it asks a [`Channel`] whether the *next* command for a given
//! `(bank, row)` target can issue this DRAM cycle ([`Channel::can_advance`]),
//! and then issues it ([`Channel::advance`]). A request reaches completion
//! when its CAS data burst finishes.
//!
//! # Example
//!
//! ```
//! use padc_dram::{Channel, DramConfig, StepOutcome};
//!
//! let cfg = DramConfig::default();
//! let mut ch = Channel::new(&cfg);
//! // Row 7 of bank 0 is initially closed: first an ACT...
//! assert!(ch.can_advance(0, 7, 0));
//! assert_eq!(ch.advance(0, 7, false, 0), StepOutcome::Activated);
//! // ...then, once tRCD has elapsed, the CAS.
//! let t = cfg.t_rcd_cpu();
//! assert!(ch.can_advance(0, 7, t));
//! match ch.advance(0, 7, false, t) {
//!     StepOutcome::CasIssued { completes_at } => {
//!         assert_eq!(completes_at, t + cfg.cl_cpu() + cfg.burst_cpu());
//!     }
//!     other => panic!("expected CAS, got {other:?}"),
//! }
//! ```

#![warn(missing_docs)]

mod bank;
mod channel;
mod config;
mod happy;
mod mapping;
mod stats;
mod timing;

pub use bank::{Bank, BankState};
pub use channel::{Channel, RefreshCounters, StepOutcome};
pub use config::{DramConfig, RefreshPolicy, RowPolicy};
pub use happy::{HappyPredictor, REUSE_THRESHOLD};
pub use mapping::{AddressMapper, MappingScheme, Target};
pub use stats::ChannelStats;
pub use timing::ExtendedTiming;

/// Classification of a DRAM access by row-buffer state, §2.1 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RowBufferOutcome {
    /// The target row is already open: CAS only.
    Hit,
    /// The bank is precharged with no row open: ACT + CAS.
    Closed,
    /// A different row is open: PRE + ACT + CAS.
    Conflict,
}
