use padc_types::Cycle;
use serde::{Deserialize, Serialize};

/// Command and bus utilization counters for one channel.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// PRE commands issued.
    pub precharges: u64,
    /// ACT commands issued.
    pub activations: u64,
    /// Read CAS commands issued (one per line transferred to the CPU).
    pub reads: u64,
    /// Write CAS commands issued (one per line transferred to DRAM).
    pub writes: u64,
    /// Total CPU cycles the data bus carried a burst.
    pub data_bus_busy_cycles: Cycle,
    /// Periodic refreshes performed (0 without extended timing).
    pub refreshes: u64,
}

impl ChannelStats {
    /// Total CAS commands (lines moved over the data bus).
    pub fn cas_total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Row-buffer hit rate over all CAS accesses: a CAS that needed no ACT is
    /// a row hit, so hits = CAS − ACT (every non-hit access performs exactly
    /// one ACT before its CAS).
    pub fn row_hit_rate(&self) -> f64 {
        let cas = self.cas_total();
        if cas == 0 {
            return 0.0;
        }
        (cas.saturating_sub(self.activations)) as f64 / cas as f64
    }

    /// Fraction of `elapsed` cycles the data bus was busy.
    pub fn bus_utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        self.data_bus_busy_cycles as f64 / elapsed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hit_rate_counts_cas_without_act() {
        let s = ChannelStats {
            precharges: 2,
            activations: 3,
            reads: 9,
            writes: 1,
            data_bus_busy_cycles: 100,
            refreshes: 0,
        };
        assert_eq!(s.cas_total(), 10);
        assert!((s.row_hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = ChannelStats::default();
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.bus_utilization(0), 0.0);
        assert_eq!(s.bus_utilization(100), 0.0);
    }

    #[test]
    fn bus_utilization_is_fractional() {
        let s = ChannelStats {
            data_bus_busy_cycles: 25,
            ..ChannelStats::default()
        };
        assert!((s.bus_utilization(100) - 0.25).abs() < 1e-12);
    }
}
