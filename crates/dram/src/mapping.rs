use padc_types::{LineAddr, LINE_BYTES};
use serde::{Deserialize, Serialize};

use crate::DramConfig;

/// How physical line addresses are scattered across channels, banks, and
/// rows.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum MappingScheme {
    /// Row-interleaved: consecutive lines fill a row, consecutive rows rotate
    /// across banks, then channels (the paper's baseline).
    #[default]
    Linear,
    /// Permutation-based page interleaving (Zhang et al., ISCA-27; paper
    /// §6.13): the bank index is XORed with low row bits so that rows that
    /// would collide in a bank under `Linear` spread across banks.
    Permutation,
}

/// Physical location of one cache line in the DRAM system.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Target {
    /// Channel (memory controller) index.
    pub channel: usize,
    /// Bank index within the channel.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Line index within the row (column group).
    pub column: u64,
}

/// Translates line addresses into DRAM [`Target`]s.
///
/// ```
/// use padc_dram::{AddressMapper, DramConfig, MappingScheme};
/// use padc_types::LineAddr;
///
/// let cfg = DramConfig::default();
/// let m = AddressMapper::new(&cfg, MappingScheme::Linear);
/// let a = m.map(LineAddr::new(0));
/// let b = m.map(LineAddr::new(1));
/// // Consecutive lines land in the same row (row-interleaved layout).
/// assert_eq!((a.channel, a.bank, a.row), (b.channel, b.bank, b.row));
/// assert_eq!(b.column, a.column + 1);
/// ```
#[derive(Clone, Debug)]
pub struct AddressMapper {
    scheme: MappingScheme,
    channels: usize,
    banks: usize,
    lines_per_row: u64,
}

impl AddressMapper {
    /// Creates a mapper for the given DRAM geometry.
    ///
    /// # Panics
    ///
    /// Panics if the configured channel/bank counts are not powers of two or
    /// the row holds fewer than one line.
    pub fn new(cfg: &DramConfig, scheme: MappingScheme) -> Self {
        assert!(cfg.channels.is_power_of_two(), "channels must be 2^k");
        assert!(cfg.banks.is_power_of_two(), "banks must be 2^k");
        assert!(cfg.row_bytes >= LINE_BYTES, "row smaller than a line");
        AddressMapper {
            scheme,
            channels: cfg.channels,
            banks: cfg.banks,
            lines_per_row: cfg.lines_per_row(),
        }
    }

    /// The mapping scheme in use.
    pub fn scheme(&self) -> MappingScheme {
        self.scheme
    }

    /// Maps a line address to its channel/bank/row/column.
    pub fn map(&self, line: LineAddr) -> Target {
        let raw = line.raw();
        let column = raw % self.lines_per_row;
        let rest = raw / self.lines_per_row;
        let channel = (rest as usize) & (self.channels - 1);
        let rest = rest / self.channels as u64;
        let bank_linear = (rest as usize) & (self.banks - 1);
        let row = rest / self.banks as u64;
        let bank = match self.scheme {
            MappingScheme::Linear => bank_linear,
            MappingScheme::Permutation => {
                // XOR the bank index with the low bits of the row index.
                bank_linear ^ ((row as usize) & (self.banks - 1))
            }
        };
        Target {
            channel,
            bank,
            row,
            column,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapper(scheme: MappingScheme) -> AddressMapper {
        AddressMapper::new(&DramConfig::default(), scheme)
    }

    #[test]
    fn sequential_lines_share_a_row() {
        let m = mapper(MappingScheme::Linear);
        let lines_per_row = DramConfig::default().lines_per_row();
        let first = m.map(LineAddr::new(0));
        for i in 1..lines_per_row {
            let t = m.map(LineAddr::new(i));
            assert_eq!(t.row, first.row);
            assert_eq!(t.bank, first.bank);
            assert_eq!(t.column, i);
        }
        // The next line starts a new bank (row-interleaved).
        let next = m.map(LineAddr::new(lines_per_row));
        assert_ne!(
            (next.bank, next.row),
            (first.bank, first.row),
            "new row must not collide"
        );
    }

    #[test]
    fn consecutive_rows_rotate_across_banks() {
        let m = mapper(MappingScheme::Linear);
        let lpr = DramConfig::default().lines_per_row();
        let banks: Vec<usize> = (0..8).map(|i| m.map(LineAddr::new(i * lpr)).bank).collect();
        assert_eq!(banks, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn permutation_spreads_bank_conflicts() {
        let m = mapper(MappingScheme::Permutation);
        let lpr = DramConfig::default().lines_per_row();
        // Addresses that map to the same bank under linear but different rows
        // should spread across banks under permutation.
        let stride = lpr * 8; // same linear bank, successive rows
        let banks: Vec<usize> = (0..8)
            .map(|i| m.map(LineAddr::new(i * stride)).bank)
            .collect();
        let distinct: std::collections::BTreeSet<_> = banks.iter().collect();
        assert_eq!(distinct.len(), 8, "permutation should use all banks");
    }

    #[test]
    fn mapping_is_injective_over_a_region() {
        use std::collections::BTreeSet;
        for scheme in [MappingScheme::Linear, MappingScheme::Permutation] {
            let m = mapper(scheme);
            let mut seen = BTreeSet::new();
            for i in 0..4096u64 {
                let t = m.map(LineAddr::new(i));
                assert!(
                    seen.insert((t.channel, t.bank, t.row, t.column)),
                    "collision at line {i} under {scheme:?}"
                );
            }
        }
    }

    #[test]
    fn two_channel_mapping_alternates_channels() {
        let cfg = DramConfig {
            channels: 2,
            ..DramConfig::default()
        };
        let m = AddressMapper::new(&cfg, MappingScheme::Linear);
        let lpr = cfg.lines_per_row();
        assert_eq!(m.map(LineAddr::new(0)).channel, 0);
        assert_eq!(m.map(LineAddr::new(lpr)).channel, 1);
        assert_eq!(m.map(LineAddr::new(2 * lpr)).channel, 0);
    }

    #[test]
    #[should_panic(expected = "banks must be 2^k")]
    fn rejects_non_power_of_two_banks() {
        let cfg = DramConfig {
            banks: 6,
            ..DramConfig::default()
        };
        let _ = AddressMapper::new(&cfg, MappingScheme::Linear);
    }
}
