//! Integration tests for the unified scheduler and `--resume`:
//! `--jobs N` as a *total* thread bound (jobs plus their per-workload
//! sub-job fan-out share one pool), and resume-artifact trust semantics
//! (settled rows skipped verbatim, everything else re-run).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use padc_harness::{run_suite, subjob_map, HarnessConfig, JobSpec, JobStatus, ResumeArtifact};

fn quiet(workers: usize) -> HarnessConfig {
    HarnessConfig {
        workers,
        budget: None,
        progress: false,
    }
}

fn run_to_string(jobs: &[JobSpec], workers: usize) -> String {
    let mut jsonl = Vec::new();
    let mut progress = Vec::new();
    run_suite(jobs, &quiet(workers), Some(&mut jsonl), &mut progress).expect("suite I/O");
    String::from_utf8(jsonl).expect("utf8")
}

/// Tracks how many instrumented sections run concurrently and the high
/// water mark ever observed.
#[derive(Default)]
struct Gauge {
    current: AtomicUsize,
    max: AtomicUsize,
}

impl Gauge {
    fn enter(&self) {
        let now = self.current.fetch_add(1, Ordering::SeqCst) + 1;
        self.max.fetch_max(now, Ordering::SeqCst);
    }
    fn exit(&self) {
        self.current.fetch_sub(1, Ordering::SeqCst);
    }
    fn high_water(&self) -> usize {
        self.max.load(Ordering::SeqCst)
    }
}

/// The acceptance criterion for the unified scheduler: with `--jobs N`,
/// the number of simultaneously executing simulation units — counting the
/// per-workload fan-out *inside* jobs, not just top-level jobs — never
/// exceeds N. Units sleep so that overlap (the bug this guards against:
/// nested pools multiplying threads) would be observed even on a single
/// CPU; on a 1-CPU host the bound holds trivially, on multi-core CI this
/// is the regression contract.
#[test]
fn jobs_flag_bounds_total_simulation_threads_including_fanout() {
    for workers in [1usize, 2, 4] {
        let gauge = Arc::new(Gauge::default());
        let jobs: Vec<JobSpec> = (0..3)
            .map(|j| {
                let gauge = Arc::clone(&gauge);
                JobSpec::new(format!("fanout{j}"), "t", move || {
                    let units = subjob_map(6, |i| {
                        gauge.enter();
                        std::thread::sleep(Duration::from_millis(10));
                        gauge.exit();
                        i
                    });
                    assert_eq!(units, (0..6).collect::<Vec<_>>());
                    "{}".to_string()
                })
            })
            .collect();
        let mut progress = Vec::new();
        let summary = run_suite(&jobs, &quiet(workers), None, &mut progress).expect("suite I/O");
        assert_eq!(summary.ok(), 3);
        assert!(
            gauge.high_water() <= workers,
            "{} units ran concurrently under --jobs {workers}",
            gauge.high_water()
        );
        assert!(gauge.high_water() >= 1);
    }
}

/// Fan-out work is actually overlapped: one job fanning out 8 sleep units
/// on 4 workers must beat the sequential wall-clock by at least 2x.
#[test]
fn fanout_units_overlap_across_suite_workers() {
    let time = |workers: usize| {
        let jobs = vec![JobSpec::new("fanout", "t", || {
            subjob_map(8, |_| std::thread::sleep(Duration::from_millis(40)));
            "{}".to_string()
        })];
        let start = std::time::Instant::now();
        let mut progress = Vec::new();
        run_suite(&jobs, &quiet(workers), None, &mut progress).expect("suite I/O");
        start.elapsed()
    };
    let seq = time(1);
    let par = time(4);
    assert!(
        seq.as_secs_f64() >= 2.0 * par.as_secs_f64(),
        "expected >=2x speedup fanning out on 4 workers: sequential {seq:?}, parallel {par:?}"
    );
}

/// Builds a 3-job suite whose executions are counted, with rows of
/// `artifact` attached as cached rows exactly as the CLIs do.
fn counted_jobs(artifact: &ResumeArtifact, runs: &Arc<AtomicUsize>) -> Vec<JobSpec> {
    (0..3)
        .map(|j| {
            let runs = Arc::clone(runs);
            let mut job = JobSpec::new(format!("job{j}"), "t", move || {
                runs.fetch_add(1, Ordering::SeqCst);
                format!("{{\"value\":{j}}}")
            });
            if let Some(row) = artifact.row(&format!("job{j}")) {
                job.cached_row = Some(row.to_string());
            }
            job
        })
        .collect()
}

/// A fully settled artifact resumes with zero executions and byte-identical
/// output — the `--resume` acceptance criterion.
#[test]
fn complete_artifact_resumes_with_zero_executions_and_identical_bytes() {
    let runs = Arc::new(AtomicUsize::new(0));
    let first = run_to_string(&counted_jobs(&ResumeArtifact::default(), &runs), 2);
    assert_eq!(runs.load(Ordering::SeqCst), 3);

    let artifact = ResumeArtifact::parse(&first);
    assert_eq!(artifact.len(), 3);
    let resumed = run_to_string(&counted_jobs(&artifact, &runs), 2);
    assert_eq!(
        runs.load(Ordering::SeqCst),
        3,
        "resume must execute nothing"
    );
    assert_eq!(resumed, first, "resumed artifact must be byte-identical");
}

/// A truncated final row (torn write from a crashed run) is distrusted and
/// re-run; the repaired artifact matches the pristine one byte for byte.
#[test]
fn truncated_rows_are_rerun_and_repaired() {
    let runs = Arc::new(AtomicUsize::new(0));
    let first = run_to_string(&counted_jobs(&ResumeArtifact::default(), &runs), 2);
    let torn = &first[..first.len() - 5];

    let artifact = ResumeArtifact::parse(torn);
    assert_eq!(artifact.len(), 2);
    assert_eq!(artifact.lines_rejected, 1);
    runs.store(0, Ordering::SeqCst);
    let repaired = run_to_string(&counted_jobs(&artifact, &runs), 2);
    assert_eq!(runs.load(Ordering::SeqCst), 1, "only the torn row re-runs");
    assert_eq!(repaired, first);
}

/// Failure rows (panicked / over-budget) are never trusted: resuming an
/// artifact with a failure row retries that experiment.
#[test]
fn failure_rows_are_retried_on_resume() {
    let with_failure = concat!(
        "{\"id\":\"job0\",\"status\":\"ok\",\"result\":{\"value\":0}}\n",
        "{\"id\":\"job1\",\"status\":\"panicked\",\"error\":\"boom\"}\n",
        "{\"id\":\"job2\",\"status\":\"over_budget\",\"error\":\"90s\"}\n",
    );
    let artifact = ResumeArtifact::parse(with_failure);
    assert_eq!(artifact.len(), 1, "only the ok row is settled");

    let runs = Arc::new(AtomicUsize::new(0));
    let text = run_to_string(&counted_jobs(&artifact, &runs), 2);
    assert_eq!(runs.load(Ordering::SeqCst), 2, "both failure rows retry");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines[0],
        "{\"id\":\"job0\",\"status\":\"ok\",\"result\":{\"value\":0}}"
    );
    assert_eq!(
        lines[1],
        "{\"id\":\"job1\",\"status\":\"ok\",\"result\":{\"value\":1}}"
    );
    assert_eq!(
        lines[2],
        "{\"id\":\"job2\",\"status\":\"ok\",\"result\":{\"value\":2}}"
    );
}

/// Skipped jobs surface in the summary as `Skipped`, keep their original
/// row bytes, and don't count as ok or failed.
#[test]
fn skipped_outcomes_are_reported_distinctly() {
    let artifact =
        ResumeArtifact::parse("{\"id\":\"job1\",\"status\":\"ok\",\"result\":{\"value\":1}}\n");
    let runs = Arc::new(AtomicUsize::new(0));
    let jobs = counted_jobs(&artifact, &runs);
    let mut jsonl = Vec::new();
    let mut progress = Vec::new();
    let summary = run_suite(&jobs, &quiet(1), Some(&mut jsonl), &mut progress).expect("suite I/O");
    assert_eq!(summary.ok(), 2);
    assert_eq!(summary.skipped(), 1);
    assert_eq!(summary.failed(), 0);
    assert_eq!(summary.outcomes[1].status, JobStatus::Skipped);
    assert_eq!(summary.outcomes[1].seconds, 0.0);
}
