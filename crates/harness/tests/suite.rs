//! Integration tests: the harness engine driving the real experiment
//! registry from `padc-sim` (a dev-dependency — at build time the sim
//! depends on the harness, not vice versa).

use std::collections::HashSet;

use padc_harness::{run_suite, HarnessConfig, JobSpec, JobStatus};
use padc_sim::experiments::{experiment_registry, suite_jobs, ExpConfig, Scale};

fn quiet(workers: usize) -> HarnessConfig {
    HarnessConfig {
        workers,
        budget: None,
        progress: false,
    }
}

fn run_to_string(jobs: &[JobSpec], workers: usize) -> String {
    let mut jsonl = Vec::new();
    let mut progress = Vec::new();
    run_suite(jobs, &quiet(workers), Some(&mut jsonl), &mut progress).expect("suite I/O");
    String::from_utf8(jsonl).expect("utf8")
}

/// Registry → jobs is a bijection: every experiment entry point appears as
/// exactly one job, in registry order.
#[test]
fn registry_enumerates_every_entry_point_exactly_once() {
    let registry = experiment_registry();
    let expected: Vec<&str> = registry.iter().map(|e| e.id).collect();
    assert_eq!(
        expected.iter().collect::<HashSet<_>>().len(),
        expected.len(),
        "registry ids must be unique"
    );

    let jobs = suite_jobs(experiment_registry(), ExpConfig::at(Scale::Smoke), None);
    let job_ids: Vec<&str> = jobs.iter().map(|j| j.id.as_str()).collect();
    assert_eq!(
        job_ids, expected,
        "jobs must mirror the registry 1:1 in order"
    );
    for job in &jobs {
        assert!(
            !job.description.is_empty(),
            "{} lacks a description",
            job.id
        );
    }
}

/// The acceptance criterion: `--jobs 1` and `--jobs 4` produce
/// byte-identical JSONL (a smoke-scale subset keeps the test fast).
#[test]
fn jsonl_is_byte_identical_across_worker_counts() {
    let subset = |_: ()| {
        suite_jobs(
            experiment_registry()
                .into_iter()
                .filter(|e| matches!(e.id, "fig1" | "fig2" | "tab5" | "tab6" | "cost"))
                .collect(),
            ExpConfig::at(Scale::Smoke),
            None,
        )
    };
    let seq = run_to_string(&subset(()), 1);
    let par = run_to_string(&subset(()), 4);
    assert_eq!(seq, par, "JSONL must not depend on worker count");
    assert_eq!(seq.lines().count(), 5);
    for line in seq.lines() {
        let v = serde_json::parse(line).expect("row is valid JSON");
        assert_eq!(
            v.get("status").and_then(|s| s.as_str()),
            Some("ok"),
            "unexpected failure row: {line}"
        );
        assert!(
            v.get("result").and_then(|r| r.get("tables")).is_some(),
            "row lacks result.tables: {line}"
        );
    }
}

/// Fault isolation: an injected panicking job becomes a structured failure
/// row while the real experiments around it still complete.
#[test]
fn injected_panicking_job_does_not_abort_the_suite() {
    let mut jobs = suite_jobs(
        experiment_registry()
            .into_iter()
            .filter(|e| matches!(e.id, "fig2" | "cost"))
            .collect(),
        ExpConfig::at(Scale::Smoke),
        None,
    );
    jobs.insert(
        1,
        JobSpec::new("injected-panic", "deliberate failure", || {
            panic!("boom from injected job")
        }),
    );

    let mut jsonl = Vec::new();
    let mut progress = Vec::new();
    let summary = run_suite(&jobs, &quiet(2), Some(&mut jsonl), &mut progress).expect("suite I/O");

    assert_eq!(summary.outcomes.len(), 3, "suite must run to completion");
    assert_eq!(summary.ok(), 2);
    assert_eq!(summary.failed(), 1);
    assert_eq!(summary.outcomes[1].id, "injected-panic");
    assert_eq!(summary.outcomes[1].status, JobStatus::Panicked);

    let text = String::from_utf8(jsonl).expect("utf8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    let failure = serde_json::parse(lines[1]).expect("failure row is valid JSON");
    assert_eq!(
        failure.get("id").and_then(|v| v.as_str()),
        Some("injected-panic")
    );
    assert_eq!(
        failure.get("status").and_then(|v| v.as_str()),
        Some("panicked")
    );
    assert_eq!(
        failure.get("error").and_then(|v| v.as_str()),
        Some("boom from injected job")
    );
    assert!(lines[0].starts_with("{\"id\":\"fig2\",\"status\":\"ok\""));
    assert!(lines[2].starts_with("{\"id\":\"cost\",\"status\":\"ok\""));
}

/// Parallel speedup sanity: with sleep-backed jobs (so the 1-CPU container
/// can still overlap them), 4 workers must finish the suite at least 2x
/// faster than 1 worker. Real experiments are CPU-bound, so wall-clock
/// speedup on multi-core machines tracks `available_parallelism`; this
/// checks the engine actually overlaps job execution.
#[test]
fn four_workers_overlap_jobs_for_at_least_2x_speedup() {
    let sleepy = || {
        (0..8)
            .map(|i| {
                JobSpec::new(format!("sleep{i}"), "t", || {
                    std::thread::sleep(std::time::Duration::from_millis(40));
                    "{}".to_string()
                })
            })
            .collect::<Vec<_>>()
    };
    let time = |jobs: Vec<JobSpec>, workers| {
        let start = std::time::Instant::now();
        let mut progress = Vec::new();
        run_suite(&jobs, &quiet(workers), None, &mut progress).expect("suite I/O");
        start.elapsed()
    };
    let seq = time(sleepy(), 1);
    let par = time(sleepy(), 4);
    assert!(
        seq.as_secs_f64() >= 2.0 * par.as_secs_f64(),
        "expected >=2x speedup with 4 workers: sequential {seq:?}, parallel {par:?}"
    );
}
