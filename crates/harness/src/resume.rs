//! Incremental suite runs: parse a prior JSONL artifact and decide which
//! rows can be trusted.
//!
//! `repro --resume <file>` feeds an existing artifact through
//! [`ResumeArtifact::parse`]; rows that are syntactically complete JSON
//! objects with `"status":"ok"` and a `"result"` value are treated as
//! settled — the matching jobs are skipped and their **original line bytes
//! are re-emitted verbatim**, which is what keeps a resumed run
//! byte-identical to a from-scratch one. Everything else is distrusted and
//! re-run:
//!
//! - truncated or otherwise malformed lines (a crashed run's torn tail),
//! - failure rows (`panicked`, `over_budget`) — resume retries them,
//! - rows whose `id` is not in the current job list (stale artifacts).
//!
//! The validator is hand-rolled (like the crate's JSONL writer) so the
//! engine stays dependency-free. It checks full JSON *syntax*, not just a
//! prefix — `{"id":"x","status":"ok","result":{` does not pass.

use std::collections::HashMap;

/// Well-formed `ok` rows of a prior artifact, keyed by job id, holding the
/// verbatim line (without the trailing newline).
#[derive(Debug, Default)]
pub struct ResumeArtifact {
    rows: HashMap<String, String>,
    /// Lines inspected, including ones rejected as unusable.
    pub lines_seen: usize,
    /// Lines rejected (malformed, non-`ok`, or missing `result`).
    pub lines_rejected: usize,
}

impl ResumeArtifact {
    /// Parses a prior JSONL artifact, keeping only trustworthy rows. When
    /// an id recurs (an append-style artifact from an interrupted retry),
    /// the last well-formed occurrence wins.
    pub fn parse(text: &str) -> Self {
        let mut artifact = ResumeArtifact::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            artifact.lines_seen += 1;
            match validate_row(line) {
                Some(id) => {
                    artifact.rows.insert(id, line.to_string());
                }
                None => artifact.lines_rejected += 1,
            }
        }
        artifact
    }

    /// The settled row for `id`, verbatim (no trailing newline).
    pub fn row(&self, id: &str) -> Option<&str> {
        self.rows.get(id).map(String::as_str)
    }

    /// Number of settled rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no row was trusted.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Returns the row's id iff `line` is a complete JSON object with a string
/// `"id"`, `"status":"ok"`, and a `"result"` member.
fn validate_row(line: &str) -> Option<String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
        id: None,
        status: None,
        has_result: false,
    };
    p.skip_ws();
    p.parse_row_object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return None; // trailing garbage after the object
    }
    if p.status.as_deref() != Some("ok") || !p.has_result {
        return None;
    }
    p.id
}

/// Minimal strict JSON syntax checker that records the three top-level
/// members resume cares about. Values are validated, not materialized.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    id: Option<String>,
    status: Option<String>,
    has_result: bool,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Option<()> {
        (self.bump()? == b).then_some(())
    }

    /// Parses the top-level row object, recording id/status/result.
    fn parse_row_object(&mut self) -> Option<()> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(());
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            match key.as_str() {
                "id" => self.id = Some(self.parse_string()?),
                "status" => self.status = Some(self.parse_string()?),
                "result" => {
                    self.parse_value()?;
                    self.has_result = true;
                }
                _ => self.parse_value()?,
            }
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Some(()),
                _ => return None,
            }
        }
    }

    /// Validates any JSON value, returning `None` on a syntax error.
    fn parse_value(&mut self) -> Option<()> {
        self.skip_ws();
        match self.peek()? {
            b'"' => self.parse_string().map(|_| ()),
            b'{' => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Some(());
                }
                loop {
                    self.skip_ws();
                    self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.parse_value()?;
                    self.skip_ws();
                    match self.bump()? {
                        b',' => continue,
                        b'}' => return Some(()),
                        _ => return None,
                    }
                }
            }
            b'[' => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Some(());
                }
                loop {
                    self.parse_value()?;
                    self.skip_ws();
                    match self.bump()? {
                        b',' => continue,
                        b']' => return Some(()),
                        _ => return None,
                    }
                }
            }
            b't' => self.parse_literal(b"true"),
            b'f' => self.parse_literal(b"false"),
            b'n' => self.parse_literal(b"null"),
            b'-' | b'0'..=b'9' => self.parse_number(),
            _ => None,
        }
    }

    fn parse_literal(&mut self, lit: &[u8]) -> Option<()> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Some(())
        } else {
            None
        }
    }

    fn parse_number(&mut self) -> Option<()> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            (p.pos > s).then_some(())
        };
        digits(self)?;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            digits(self)?;
        }
        (self.pos > start).then_some(())
    }

    /// Parses a JSON string, returning its unescaped content.
    fn parse_string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Some(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = (self.bump()? as char).to_digit(16)?;
                            code = code * 16 + d;
                        }
                        // Surrogates are accepted but replaced; resume only
                        // compares ids, which are ASCII in practice.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return None,
                },
                // Control characters are invalid inside JSON strings.
                b if b < 0x20 => return None,
                b if b < 0x80 => out.push(b as char),
                b => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return None,
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    let chunk = self.bytes.get(start..end)?;
                    out.push_str(std::str::from_utf8(chunk).ok()?);
                    self.pos = end;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_ok_rows_are_trusted() {
        let text = "{\"id\":\"fig6\",\"status\":\"ok\",\"result\":{\"tables\":[1,2.5,-3e2]}}\n\
                    {\"id\":\"tab5\",\"status\":\"ok\",\"result\":[true,false,null,\"s\"]}\n";
        let a = ResumeArtifact::parse(text);
        assert_eq!(a.len(), 2);
        assert!(a.row("fig6").unwrap().starts_with("{\"id\":\"fig6\""));
        assert_eq!(a.lines_rejected, 0);
    }

    #[test]
    fn failure_rows_are_distrusted() {
        let text = "{\"id\":\"boom\",\"status\":\"panicked\",\"error\":\"x\"}\n\
                    {\"id\":\"slow\",\"status\":\"over_budget\",\"budget_seconds\":1,\"result\":{}}\n";
        let a = ResumeArtifact::parse(text);
        assert!(a.is_empty());
        assert_eq!(a.lines_rejected, 2);
    }

    #[test]
    fn truncated_and_malformed_rows_are_distrusted() {
        for bad in [
            "{\"id\":\"fig6\",\"status\":\"ok\",\"result\":{\"tab", // torn tail
            "{\"id\":\"fig6\",\"status\":\"ok\"}",                  // no result
            "{\"status\":\"ok\",\"result\":{}}",                    // no id
            "{\"id\":\"fig6\",\"status\":\"ok\",\"result\":{}}}",   // trailing brace
            "{\"id\":\"fig6\",\"status\":\"ok\",\"result\":{,}}",   // bad object
            "{\"id\":\"fig6\",\"status\":\"ok\",\"result\":1e}",    // bad number
            "not json at all",
        ] {
            let a = ResumeArtifact::parse(bad);
            assert!(a.is_empty(), "should distrust: {bad}");
        }
    }

    #[test]
    fn last_occurrence_wins_for_duplicate_ids() {
        let text = "{\"id\":\"a\",\"status\":\"ok\",\"result\":1}\n\
                    {\"id\":\"a\",\"status\":\"ok\",\"result\":2}\n";
        let a = ResumeArtifact::parse(text);
        assert_eq!(
            a.row("a"),
            Some("{\"id\":\"a\",\"status\":\"ok\",\"result\":2}")
        );
    }

    #[test]
    fn escapes_and_unicode_in_ids_round_trip() {
        let text = "{\"id\":\"we\\u0131rd\\n\",\"status\":\"ok\",\"result\":\"caf\u{e9}\"}";
        let a = ResumeArtifact::parse(text);
        assert_eq!(a.len(), 1);
        assert!(a.row("we\u{131}rd\n").is_some());
    }

    #[test]
    fn empty_and_blank_input_is_empty() {
        assert!(ResumeArtifact::parse("").is_empty());
        assert!(ResumeArtifact::parse("\n  \n").is_empty());
    }
}
