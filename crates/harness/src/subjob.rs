//! Shared sub-job work queue: the second level of the unified scheduler.
//!
//! [`run_suite`](crate::run_suite) parallelizes *across* jobs; experiments
//! additionally want to fan out *within* a job (per-workload simulation
//! units). Spawning nested thread pools for that would break the `--jobs N`
//! contract — total threads would scale as experiments × workloads. Instead
//! the suite's worker pool owns a single shared `SubJobPool`, and a job
//! running on a worker thread can call [`subjob_map`] to enqueue indexed
//! units onto it:
//!
//! - Every unit executes **on one of the N suite worker threads** — the
//!   pool never spawns; `--jobs N` therefore bounds *total* simulation
//!   threads, not just concurrent experiments.
//! - The submitting worker does not idle while its units are in flight: it
//!   **helps**, popping and executing queued sub-jobs (its own or another
//!   experiment's) until its batch completes. This is what makes the
//!   scheme deadlock-free with a fixed-size pool — a blocked parent is
//!   itself a worker.
//! - Free workers drain sub-jobs *before* claiming new top-level jobs, so
//!   in-flight experiments finish ahead of newly started ones.
//! - A panic inside a unit is caught, recorded on the batch, and re-thrown
//!   from `subjob_map` on the submitting thread — so it surfaces through
//!   the parent job's `catch_unwind` as one structured failure row.
//! - Results land in index order regardless of execution interleaving, so
//!   fan-out does not perturb the suite's deterministic JSONL output.
//!
//! Called outside a suite (unit tests, library consumers), [`subjob_map`]
//! simply runs the units inline on the calling thread.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Pool-level sub-job accounting: how many units executed, and the peak
/// number in flight at once. The peak can never exceed the suite's worker
/// count (units only run on suite workers) — the concurrency-bound CI
/// gate asserts exactly that from the suite [`Summary`](crate::Summary).
#[derive(Default)]
pub struct SubJobStats {
    executed: AtomicU64,
    active: AtomicU64,
    peak: AtomicU64,
}

impl SubJobStats {
    /// Marks one unit entering execution.
    fn begin(&self) {
        let active = self.active.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(active, Ordering::Relaxed);
    }

    /// Marks one unit finished.
    fn end(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
        self.executed.fetch_add(1, Ordering::Relaxed);
    }

    /// Total units executed through the pool.
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Peak number of units in flight simultaneously.
    pub fn peak_concurrent(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Lifetime-erased view of one batch's unit runner (`|index| ...`).
type BatchRunner = dyn Fn(usize) + Sync;

/// Shared state of one `subjob_map` call: the runner plus completion
/// accounting for its `n` units.
struct Batch {
    /// Pointer to the runner closure on the submitting thread's stack,
    /// with its lifetime erased so units can sit in the `'static` queue.
    ///
    /// SAFETY invariant: [`subjob_map`] does not return (or unwind) until
    /// `remaining == 0`, i.e. until every unit holding this pointer has
    /// finished executing; the closure therefore outlives all dereferences.
    runner: *const BatchRunner,
    state: Mutex<BatchState>,
    /// Signalled when `remaining` reaches zero.
    done: Condvar,
    /// The owning pool's counters; units report begin/end through these.
    stats: Arc<SubJobStats>,
}

struct BatchState {
    remaining: usize,
    /// First panic payload from any unit; re-thrown by the submitter.
    panic: Option<Box<dyn Any + Send>>,
}

// SAFETY: `runner` points at a `Sync` closure that the submitting thread
// keeps alive until the batch completes (see the invariant on `runner`);
// all mutable state is behind the `Mutex`.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

/// One queued unit: batch handle plus the index to run.
pub(crate) struct SubJob {
    batch: Arc<Batch>,
    index: usize,
}

impl SubJob {
    /// Executes the unit, recording completion (and any panic) on its
    /// batch. Never unwinds.
    pub(crate) fn run(self) {
        // SAFETY: the submitter is blocked in `subjob_map` until this
        // batch's `remaining` hits zero, so the runner is still alive.
        let runner = unsafe { &*self.batch.runner };
        let index = self.index;
        self.batch.stats.begin();
        let result = panic::catch_unwind(AssertUnwindSafe(|| runner(index)));
        self.batch.stats.end();
        let mut st = self.batch.state.lock().expect("batch state poisoned");
        if let Err(payload) = result {
            st.panic.get_or_insert(payload);
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            self.batch.done.notify_all();
        }
    }
}

/// The suite-wide sub-job queue. One instance lives for the duration of a
/// [`run_suite`](crate::run_suite) call, shared by all its workers.
pub(crate) struct SubJobPool {
    queue: Mutex<PoolQueue>,
    /// Signalled on enqueue and on close.
    available: Condvar,
    /// Executed/peak-concurrency accounting, surfaced in the suite
    /// [`Summary`](crate::Summary).
    pub(crate) stats: Arc<SubJobStats>,
    /// Called after each batch lands in the queue (queue lock released).
    /// The suite service parks its idle workers on its *own* condvar (so
    /// they can also watch the request queue); this hook lets an enqueue
    /// wake them there.
    enqueue_hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

struct PoolQueue {
    jobs: VecDeque<SubJob>,
    /// Set once every top-level job has completed; blocked workers exit.
    closed: bool,
}

impl SubJobPool {
    pub(crate) fn new() -> Self {
        SubJobPool {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            stats: Arc::new(SubJobStats::default()),
            enqueue_hook: Mutex::new(None),
        }
    }

    /// Installs the post-enqueue wake hook (see the field docs).
    pub(crate) fn set_enqueue_hook(&self, hook: Box<dyn Fn() + Send + Sync>) {
        *self.enqueue_hook.lock().expect("hook poisoned") = Some(hook);
    }

    fn enqueue_batch(&self, batch: &Arc<Batch>, n: usize) {
        let mut q = self.queue.lock().expect("pool queue poisoned");
        for index in 0..n {
            q.jobs.push_back(SubJob {
                batch: Arc::clone(batch),
                index,
            });
        }
        drop(q);
        self.available.notify_all();
        if let Some(hook) = &*self.enqueue_hook.lock().expect("hook poisoned") {
            hook();
        }
    }

    /// Non-blocking pop, for drain loops and helping parents.
    pub(crate) fn try_pop(&self) -> Option<SubJob> {
        self.queue
            .lock()
            .expect("pool queue poisoned")
            .jobs
            .pop_front()
    }

    /// True when no sub-jobs are queued (in-flight units don't count).
    pub(crate) fn is_empty(&self) -> bool {
        self.queue
            .lock()
            .expect("pool queue poisoned")
            .jobs
            .is_empty()
    }

    /// Blocking pop; returns `None` once the pool is closed and empty.
    pub(crate) fn pop_blocking(&self) -> Option<SubJob> {
        let mut q = self.queue.lock().expect("pool queue poisoned");
        loop {
            if let Some(job) = q.jobs.pop_front() {
                return Some(job);
            }
            if q.closed {
                return None;
            }
            q = self.available.wait(q).expect("pool queue poisoned");
        }
    }

    /// Marks the suite finished; wakes every blocked worker so it can exit.
    pub(crate) fn close(&self) {
        self.queue.lock().expect("pool queue poisoned").closed = true;
        self.available.notify_all();
    }

    /// Runs queued sub-jobs (any batch's) until `batch` completes, then
    /// sleeps on the batch's condvar while other workers finish its
    /// in-flight units.
    fn help_until_done(&self, batch: &Batch) {
        loop {
            {
                let st = batch.state.lock().expect("batch state poisoned");
                if st.remaining == 0 {
                    return;
                }
            }
            if let Some(job) = self.try_pop() {
                job.run();
                continue;
            }
            // Queue empty but units of this batch are still in flight on
            // other workers: wait for their completion signal.
            let mut st = batch.state.lock().expect("batch state poisoned");
            while st.remaining != 0 {
                st = batch.done.wait(st).expect("batch state poisoned");
            }
            return;
        }
    }
}

thread_local! {
    /// The pool of the suite currently running on this thread, if any.
    /// Installed by `run_suite` on its worker threads.
    static CURRENT_POOL: RefCell<Option<Arc<SubJobPool>>> = const { RefCell::new(None) };

    /// Ambient per-task context (e.g. a profile accumulator). Propagated
    /// from the submitting thread to every unit of a [`subjob_map`] batch.
    static TASK_CONTEXT: RefCell<Option<Arc<dyn Any + Send + Sync>>> =
        const { RefCell::new(None) };
}

/// Installs (or clears) the calling thread's ambient task context.
///
/// The context is an opaque `Arc<dyn Any>` shared between a job and
/// whatever library code it calls; consumers downcast it to the concrete
/// type they expect (the simulator uses it to accumulate per-experiment
/// hot-path profiles). [`subjob_map`] forwards the submitter's context to
/// every unit of the batch, so fan-out across worker threads keeps
/// reporting into the same object.
pub fn set_task_context(ctx: Option<Arc<dyn Any + Send + Sync>>) {
    TASK_CONTEXT.with(|c| *c.borrow_mut() = ctx);
}

/// The calling thread's ambient task context, if any.
pub fn task_context() -> Option<Arc<dyn Any + Send + Sync>> {
    TASK_CONTEXT.with(|c| c.borrow().clone())
}

/// Restores the saved context on drop, so a panicking unit cannot leak its
/// context onto a pooled worker thread.
struct ContextGuard(Option<Arc<dyn Any + Send + Sync>>);

impl Drop for ContextGuard {
    fn drop(&mut self) {
        set_task_context(self.0.take());
    }
}

/// Runs `f` with `ctx` installed as the ambient task context, restoring
/// the previous context afterwards (panic-safe).
pub fn with_task_context<T>(ctx: Arc<dyn Any + Send + Sync>, f: impl FnOnce() -> T) -> T {
    let _guard = ContextGuard(task_context());
    set_task_context(Some(ctx));
    f()
}

/// Installs (or clears) the ambient pool for the calling thread.
pub(crate) fn install_pool(pool: Option<Arc<SubJobPool>>) {
    CURRENT_POOL.with(|p| *p.borrow_mut() = pool);
}

fn current_pool() -> Option<Arc<SubJobPool>> {
    CURRENT_POOL.with(|p| p.borrow().clone())
}

/// `true` when the calling thread is a suite worker, i.e. [`subjob_map`]
/// will schedule onto the shared pool rather than run inline.
pub fn under_harness() -> bool {
    current_pool().is_some()
}

/// Runs `f(0..n)` and returns the results in index order.
///
/// On a suite worker thread the units are enqueued onto the shared
/// `SubJobPool` — bounded by the suite's `--jobs N` workers — and the
/// caller helps execute queued units until its batch completes. Anywhere
/// else the units run inline on the calling thread.
///
/// # Panics
///
/// If any unit panics, the first panic is re-thrown on the calling thread
/// after every unit of the batch has finished (so borrowed data is never
/// left aliased by in-flight units).
pub fn subjob_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let pool = match current_pool() {
        // Scheduling a 0/1-unit batch through the queue is pure overhead.
        Some(pool) if n > 1 => pool,
        _ => return (0..n).map(f).collect(),
    };

    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let ctx = task_context();
    let runner = |i: usize| {
        // Forward the submitter's task context to whichever worker thread
        // picked this unit up, restoring that worker's own context after
        // the unit finishes (or panics).
        let _guard = ContextGuard(task_context());
        set_task_context(ctx.clone());
        let value = f(i);
        *slots[i].lock().expect("slot poisoned") = Some(value);
    };
    // SAFETY: lifetime erasure, upheld by the invariant on `Batch::runner`
    // — `help_until_done` below does not return until every unit has
    // finished, so `runner` (and the `slots`/`f` it borrows) strictly
    // outlives every dereference of this pointer.
    let runner_static: &'static BatchRunner = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(&runner)
    };
    let batch = Arc::new(Batch {
        runner: runner_static as *const BatchRunner,
        state: Mutex::new(BatchState {
            remaining: n,
            panic: None,
        }),
        done: Condvar::new(),
        stats: Arc::clone(&pool.stats),
    });
    pool.enqueue_batch(&batch, n);
    pool.help_until_done(&batch);

    let panic_payload = batch
        .state
        .lock()
        .expect("batch state poisoned")
        .panic
        .take();
    if let Some(payload) = panic_payload {
        panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot poisoned")
                .expect("sub-job filled its slot")
        })
        .collect()
}
