//! Long-running suite service: the scheduler behind `padcsim serve`.
//!
//! [`run_suite`](crate::run_suite) is batch-shaped — it owns its scoped
//! workers for exactly one job list, then tears them down. A request
//! server needs the inverse: **persistent** workers that outlive any one
//! request, a shared sub-job pool so concurrent requests' per-unit
//! fan-outs load-balance against each other under one global `--jobs N`
//! thread bound, and per-client result routing so each request streams its
//! own rows.
//!
//! [`SuiteService`] provides that. Each [`SuiteService::submit`] enqueues
//! a batch of [`JobSpec`]s tagged with a private channel; any worker may
//! pick any client's job, and completions route back to the submitting
//! client's [`BatchHandle`]. Workers prefer draining sub-jobs over
//! claiming new top-level jobs (same policy as `run_suite`), and a worker
//! blocked on its own fan-out helps execute queued units — the service
//! inherits the deadlock-freedom argument of [`crate::subjob`].
//!
//! Determinism: job rows are rendered by the same code path as
//! `run_suite` ([`CompletedJob::row`] carries the exact JSONL bytes), and
//! [`BatchHandle::collect_ordered`] re-orders completions into submission
//! order, so a batch submitted to the service yields byte-identical rows
//! to the same jobs run under `run_suite`.

use std::collections::VecDeque;
use std::io;
use std::panic;
use std::sync::{mpsc, Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::subjob::{self, SubJobPool};
use crate::{execute_job, JobSpec, JobStatus};

/// Worker-pool knobs for a [`SuiteService`].
#[derive(Clone, Debug, Default)]
pub struct ServiceConfig {
    /// Worker threads; `0` means `available_parallelism()`.
    pub workers: usize,
    /// Optional per-job wall-clock budget (as in
    /// [`HarnessConfig`](crate::HarnessConfig)).
    pub budget: Option<Duration>,
}

/// One finished job, with the exact JSONL row bytes `run_suite` would have
/// emitted for it.
#[derive(Clone, Debug)]
pub struct CompletedJob {
    /// Job id.
    pub id: String,
    /// Terminal status ([`JobStatus::Skipped`] for cached rows).
    pub status: JobStatus,
    /// The JSONL row, trailing newline included.
    pub row: String,
    /// Panic / over-budget message, when failed.
    pub error: Option<String>,
    /// Wall-clock seconds the job ran.
    pub seconds: f64,
}

/// One queued top-level job plus its result route.
struct ServiceJob {
    spec: JobSpec,
    index: usize,
    budget: Option<Duration>,
    tx: mpsc::Sender<(usize, CompletedJob)>,
}

struct ServiceState {
    queue: VecDeque<ServiceJob>,
    shutdown: bool,
}

/// State shared by the workers and the submitting threads.
struct ServiceCore {
    state: Mutex<ServiceState>,
    /// Signalled on job submission, sub-job enqueue (via the pool hook),
    /// and shutdown.
    work_ready: Condvar,
    pool: Arc<SubJobPool>,
}

/// A persistent worker pool executing submitted job batches; see the
/// module docs.
pub struct SuiteService {
    core: Arc<ServiceCore>,
    workers: Vec<JoinHandle<()>>,
    budget: Option<Duration>,
}

impl SuiteService {
    /// Starts the worker threads.
    pub fn new(cfg: &ServiceConfig) -> Self {
        let workers_n = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            cfg.workers
        }
        .max(1);

        let core = Arc::new(ServiceCore {
            state: Mutex::new(ServiceState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            pool: Arc::new(SubJobPool::new()),
        });
        // Wake idle service workers when a running job fans out sub-jobs.
        // Taking the state lock before notifying pairs the hook with the
        // workers' wait loop (which re-checks the pool under that lock), so
        // a wakeup between "pool looked empty" and "wait" cannot be lost.
        let weak: Weak<ServiceCore> = Arc::downgrade(&core);
        core.pool.set_enqueue_hook(Box::new(move || {
            if let Some(core) = weak.upgrade() {
                let _guard = core.state.lock().expect("service state poisoned");
                core.work_ready.notify_all();
            }
        }));

        // As in `run_suite`: job panics are caught and reported as rows,
        // so suppress the default hook's backtrace spam on worker threads.
        let prev_hook = panic::take_hook();
        panic::set_hook({
            let prev = prev_hook;
            Box::new(move |info| {
                let on_worker = std::thread::current()
                    .name()
                    .is_some_and(|n| n.starts_with("padc-job-worker"));
                if !on_worker {
                    prev(info);
                }
            })
        });

        let workers = (0..workers_n)
            .map(|w| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("padc-job-worker-svc-{w}"))
                    .spawn(move || worker_loop(&core))
                    .expect("spawn service worker")
            })
            .collect();

        SuiteService {
            core,
            workers,
            budget: cfg.budget,
        }
    }

    /// Enqueues a batch of jobs; any idle worker may run any of them.
    /// Jobs carrying a [`JobSpec::cached_row`] are not executed — the row
    /// is re-emitted verbatim as [`JobStatus::Skipped`], exactly like
    /// `run_suite`'s resume path.
    pub fn submit(&self, jobs: Vec<JobSpec>) -> BatchHandle {
        let total = jobs.len();
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.core.state.lock().expect("service state poisoned");
            for (index, spec) in jobs.into_iter().enumerate() {
                st.queue.push_back(ServiceJob {
                    spec,
                    index,
                    budget: self.budget,
                    tx: tx.clone(),
                });
            }
        }
        self.core.work_ready.notify_all();
        BatchHandle { total, rx }
    }

    /// Total sub-job units executed through the shared pool so far.
    pub fn subjobs_executed(&self) -> u64 {
        self.core.pool.stats.executed()
    }

    /// Peak sub-job units in flight simultaneously (bounded by the worker
    /// count).
    pub fn subjobs_peak_concurrent(&self) -> u64 {
        self.core.pool.stats.peak_concurrent()
    }

    /// Drains the queue, stops the workers, and joins them. Called by
    /// `Drop` as well; explicit shutdown just makes the join visible.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        {
            let mut st = self.core.state.lock().expect("service state poisoned");
            st.shutdown = true;
        }
        self.core.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for SuiteService {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// What a worker decided to do after inspecting the queues.
enum Next {
    Job(ServiceJob),
    Subjobs,
    Exit,
}

fn worker_loop(core: &Arc<ServiceCore>) {
    subjob::install_pool(Some(Arc::clone(&core.pool)));
    loop {
        // Serve running jobs' fan-outs before claiming new jobs.
        while let Some(sub) = core.pool.try_pop() {
            sub.run();
        }
        let next = {
            let mut st = core.state.lock().expect("service state poisoned");
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break Next::Job(job);
                }
                if !core.pool.is_empty() {
                    break Next::Subjobs;
                }
                if st.shutdown {
                    break Next::Exit;
                }
                st = core.work_ready.wait(st).expect("service state poisoned");
            }
        };
        match next {
            Next::Job(job) => {
                let completed = match &job.spec.cached_row {
                    Some(row) => CompletedJob {
                        id: job.spec.id.clone(),
                        status: JobStatus::Skipped,
                        row: format!("{row}\n"),
                        error: None,
                        seconds: 0.0,
                    },
                    None => {
                        let c = execute_job(&job.spec, job.budget);
                        CompletedJob {
                            id: job.spec.id.clone(),
                            status: c.status,
                            row: c.row,
                            error: c.error,
                            seconds: c.seconds,
                        }
                    }
                };
                // A dropped receiver just means the client went away; the
                // remaining jobs of its batch still drain normally.
                let _ = job.tx.send((job.index, completed));
            }
            Next::Subjobs => continue,
            Next::Exit => break,
        }
    }
    subjob::install_pool(None);
}

/// Receiving end of one submitted batch.
pub struct BatchHandle {
    total: usize,
    rx: mpsc::Receiver<(usize, CompletedJob)>,
}

impl BatchHandle {
    /// Number of jobs in the batch.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Waits for every job, invoking `on_row` **in submission order** as
    /// soon as each prefix settles (the same streaming rule as
    /// `run_suite`'s collector), and returns all completions in
    /// submission order.
    ///
    /// # Errors
    ///
    /// Propagates the first error from `on_row`; fails if the service
    /// shuts down before the batch completes.
    pub fn collect_ordered(
        self,
        mut on_row: impl FnMut(usize, &CompletedJob) -> io::Result<()>,
    ) -> io::Result<Vec<CompletedJob>> {
        let mut slots: Vec<Option<CompletedJob>> = (0..self.total).map(|_| None).collect();
        let mut cursor = 0usize;
        let mut done = 0usize;
        while done < self.total {
            let Ok((index, completed)) = self.rx.recv() else {
                return Err(io::Error::other("suite service shut down mid-batch"));
            };
            slots[index] = Some(completed);
            done += 1;
            while cursor < self.total {
                let Some(c) = &slots[cursor] else { break };
                on_row(cursor, c)?;
                cursor += 1;
            }
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all jobs reported"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subjob_map;

    fn svc(workers: usize) -> SuiteService {
        SuiteService::new(&ServiceConfig {
            workers,
            budget: None,
        })
    }

    #[test]
    fn batches_complete_in_submission_order_with_run_suite_rows() {
        let service = svc(2);
        let jobs: Vec<JobSpec> = (0..4)
            .map(|i| {
                JobSpec::new(format!("job{i}"), "t", move || {
                    std::thread::sleep(Duration::from_millis(3 * (4 - i) as u64));
                    format!("{{\"v\":{i}}}")
                })
            })
            .collect();
        let mut streamed = Vec::new();
        let completions = service
            .submit(jobs)
            .collect_ordered(|i, c| {
                streamed.push((i, c.row.clone()));
                Ok(())
            })
            .expect("batch completes");
        for (i, c) in completions.iter().enumerate() {
            assert_eq!(c.status, JobStatus::Ok);
            assert_eq!(
                c.row,
                format!("{{\"id\":\"job{i}\",\"status\":\"ok\",\"result\":{{\"v\":{i}}}}}\n")
            );
        }
        assert_eq!(
            streamed.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0, 1, 2, 3],
            "rows must stream in submission order"
        );
        service.shutdown();
    }

    #[test]
    fn concurrent_clients_share_the_pool_and_get_their_own_rows() {
        let service = Arc::new(svc(2));
        let results: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|client| {
                    let service = Arc::clone(&service);
                    scope.spawn(move || {
                        let jobs: Vec<JobSpec> = (0..3)
                            .map(|j| {
                                JobSpec::new(format!("c{client}-j{j}"), "t", move || {
                                    let parts = subjob_map(6, |u| u + j);
                                    format!("{}", parts.iter().sum::<usize>())
                                })
                            })
                            .collect();
                        service
                            .submit(jobs)
                            .collect_ordered(|_, _| Ok(()))
                            .expect("batch completes")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (client, completions) in results.iter().enumerate() {
            for (j, c) in completions.iter().enumerate() {
                let expected: usize = (0..6).map(|u| u + j).sum();
                assert_eq!(
                    c.row,
                    format!(
                        "{{\"id\":\"c{client}-j{j}\",\"status\":\"ok\",\"result\":{expected}}}\n"
                    )
                );
            }
        }
        assert_eq!(service.subjobs_executed(), 2 * 3 * 6);
        assert!(service.subjobs_peak_concurrent() <= 2);
    }

    #[test]
    fn cached_rows_skip_execution() {
        let service = svc(1);
        let jobs = vec![JobSpec::new("a", "t", || panic!("must not run"))
            .with_cached_row("{\"id\":\"a\",\"status\":\"ok\",\"result\":7}")];
        let completions = service
            .submit(jobs)
            .collect_ordered(|_, _| Ok(()))
            .expect("batch completes");
        assert_eq!(completions[0].status, JobStatus::Skipped);
        assert_eq!(
            completions[0].row,
            "{\"id\":\"a\",\"status\":\"ok\",\"result\":7}\n"
        );
    }

    #[test]
    fn panics_become_structured_failures_and_do_not_kill_workers() {
        let service = svc(1);
        let first = service
            .submit(vec![JobSpec::new("boom", "t", || panic!("injected"))])
            .collect_ordered(|_, _| Ok(()))
            .expect("batch completes");
        assert_eq!(first[0].status, JobStatus::Panicked);
        assert!(first[0].error.as_deref().unwrap().contains("injected"));
        // The worker survives for the next request.
        let second = service
            .submit(vec![JobSpec::new("ok", "t", || "1".to_string())])
            .collect_ordered(|_, _| Ok(()))
            .expect("batch completes");
        assert_eq!(second[0].status, JobStatus::Ok);
        service.shutdown();
    }

    #[test]
    fn shutdown_mid_batch_reports_an_error_to_the_client() {
        let service = svc(1);
        let handle = service.submit(vec![
            JobSpec::new("slow", "t", || {
                std::thread::sleep(Duration::from_millis(30));
                "1".to_string()
            }),
            JobSpec::new("never", "t", || "2".to_string()),
        ]);
        // Shut down while the batch may still be queued/running: the
        // client must get either a complete batch or a clean error, never
        // a hang.
        service.shutdown();
        match handle.collect_ordered(|_, _| Ok(())) {
            Ok(completions) => assert_eq!(completions.len(), 2),
            Err(e) => assert!(e.to_string().contains("shut down"), "{e}"),
        }
    }
}
