//! `padc-harness` — the unified experiment scheduler: parallel,
//! fault-isolated execution with one global thread bound.
//!
//! The experiment grid (30+ tables and figures, each internally a batch of
//! simulations) used to run strictly sequentially in one thread, and a
//! single panicking experiment killed the whole reproduction run. This
//! crate is the execution subsystem underneath the `repro` binary and
//! `padcsim --suite`:
//!
//! - **Jobs**: each experiment becomes a self-describing [`JobSpec`] whose
//!   closure returns its result as a compact JSON payload string.
//! - **Worker pool**: [`run_suite`] drives a shared job queue from
//!   `std::thread::scope`-scoped workers (default
//!   `available_parallelism()`, overridable — the `--jobs N` flag).
//! - **Sub-jobs**: a running job fans out per-workload units via
//!   [`subjob_map`] onto the *same* pool (the submitting worker helps
//!   execute while it waits), so `--jobs N` bounds **total** simulation
//!   threads — not experiments × workloads. See [`subjob`].
//! - **Fault isolation**: every job runs under `catch_unwind`; a panicking
//!   job (or any of its sub-jobs) becomes a structured failure row and the
//!   suite keeps going.
//! - **Determinism**: results are emitted **in job order, keyed by id**,
//!   and rows contain no timing data, so `--jobs 1` and `--jobs 8` produce
//!   byte-identical JSONL. Timings go to the stderr progress line and the
//!   summary instead.
//! - **Resume**: a job carrying a settled row from a prior artifact
//!   ([`JobSpec::cached_row`], parsed by [`ResumeArtifact`]) is skipped —
//!   its original bytes are re-emitted verbatim in place, which keeps a
//!   resumed run byte-identical to a from-scratch one.
//! - **Accounting**: per-job wall-clock is measured; jobs exceeding an
//!   optional budget are recorded as structured failures (they are not
//!   killed — Rust threads cannot be — but the suite reports them).
//!
//! The JSONL writer *and* the resume validator are hand-rolled (string
//! escaping and all) so the engine has zero dependencies.
//!
//! # JSONL schema
//!
//! One object per line, in job order:
//!
//! ```json
//! {"id":"fig6","status":"ok","result":<payload>}
//! {"id":"boom","status":"panicked","error":"<panic message>"}
//! {"id":"slow","status":"over_budget","budget_seconds":60,"result":<payload>}
//! ```
//!
//! `result` is the job's payload verbatim (already-serialized JSON). A
//! resumed row keeps whatever status its original run recorded (always
//! `ok` — only `ok` rows are trusted); the skip is visible in the summary,
//! never in the artifact.

#![warn(missing_docs)]

mod resume;
pub mod service;
pub mod subjob;

use std::io::{self, Write};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

pub use resume::ResumeArtifact;
pub use service::{BatchHandle, CompletedJob, ServiceConfig, SuiteService};
pub use subjob::{set_task_context, subjob_map, task_context, under_harness, with_task_context};

use subjob::SubJobPool;

/// One schedulable unit of work.
pub struct JobSpec {
    /// Stable identifier; keys the output row (e.g. `"fig6"`).
    pub id: String,
    /// Human-readable description for progress lines (e.g. the paper ref).
    pub description: String,
    /// Executes the job, returning its result as compact JSON. Must be
    /// deterministic for the suite's output to be deterministic.
    pub run: Box<dyn Fn() -> String + Send + Sync>,
    /// Settled JSONL row (no trailing newline) from a prior artifact. When
    /// set, the scheduler skips `run` entirely and emits these bytes
    /// verbatim — the `--resume` path.
    pub cached_row: Option<String>,
}

impl JobSpec {
    /// Builds a job from any JSON-producing closure.
    pub fn new(
        id: impl Into<String>,
        description: impl Into<String>,
        run: impl Fn() -> String + Send + Sync + 'static,
    ) -> Self {
        JobSpec {
            id: id.into(),
            description: description.into(),
            run: Box::new(run),
            cached_row: None,
        }
    }

    /// Attaches a settled row from a prior artifact; the scheduler will
    /// skip execution and re-emit it verbatim.
    pub fn with_cached_row(mut self, row: impl Into<String>) -> Self {
        self.cached_row = Some(row.into());
        self
    }
}

/// Pool and accounting knobs.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Worker threads; clamped to the job count. `0` means
    /// `available_parallelism()`.
    pub workers: usize,
    /// Optional per-job wall-clock budget; jobs that finish over it are
    /// recorded as failures.
    pub budget: Option<Duration>,
    /// Emit done/total + ETA progress lines.
    pub progress: bool,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            workers: 0,
            budget: None,
            progress: true,
        }
    }
}

impl HarnessConfig {
    /// Resolves `workers == 0` to the machine's parallelism.
    ///
    /// The count is deliberately *not* clamped to the number of top-level
    /// jobs: under the unified scheduler, jobs fan per-workload sub-jobs
    /// back onto the suite pool, so even a single job can keep every
    /// worker busy.
    pub fn effective_workers(&self, _jobs: usize) -> usize {
        let base = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.workers
        };
        base.max(1)
    }
}

/// How one job ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Completed normally.
    Ok,
    /// Panicked; the panic message is in [`JobOutcome::error`].
    Panicked,
    /// Completed but exceeded the configured wall-clock budget.
    OverBudget,
    /// Not executed: a settled row from a prior artifact was re-emitted
    /// verbatim (`--resume`). Never appears in JSONL rows — the cached
    /// bytes keep their original status.
    Skipped,
}

impl JobStatus {
    /// The status string used in JSONL rows (and summaries).
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Panicked => "panicked",
            JobStatus::OverBudget => "over_budget",
            JobStatus::Skipped => "skipped",
        }
    }
}

/// Per-job accounting, in job order.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Job id.
    pub id: String,
    /// Terminal status.
    pub status: JobStatus,
    /// Panic message for [`JobStatus::Panicked`].
    pub error: Option<String>,
    /// Wall-clock seconds the job ran.
    pub seconds: f64,
}

/// Suite-level accounting returned by [`run_suite`].
#[derive(Clone, Debug)]
pub struct Summary {
    /// Per-job outcomes, in job order.
    pub outcomes: Vec<JobOutcome>,
    /// Worker threads actually used.
    pub workers: usize,
    /// End-to-end wall-clock seconds.
    pub wall_seconds: f64,
    /// Sub-job units executed through the shared pool (planned experiment
    /// units and per-workload fan-out; inline executions don't count).
    pub subjobs_executed: u64,
    /// Peak number of sub-job units in flight simultaneously. Cannot
    /// exceed `workers` — units only run on suite worker threads — which
    /// the concurrency CI gate asserts.
    pub subjobs_peak_concurrent: u64,
    /// Extra counters appended by the caller before rendering (e.g. the
    /// simulator's store hit/miss telemetry). Each `(name, value)` pair is
    /// emitted as a top-level integer field of [`Summary::to_json`], in
    /// order. Empty by default.
    pub extras: Vec<(String, u64)>,
}

impl Summary {
    /// Jobs that completed normally (executed this run).
    pub fn ok(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status == JobStatus::Ok)
            .count()
    }

    /// Jobs skipped because a settled row was resumed from a prior
    /// artifact.
    pub fn skipped(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status == JobStatus::Skipped)
            .count()
    }

    /// Jobs recorded as failures (panicked or over budget).
    pub fn failed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, JobStatus::Panicked | JobStatus::OverBudget))
            .count()
    }

    /// Renders the summary as pretty-ish JSON (one job per line).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"total\": {},\n", self.outcomes.len()));
        out.push_str(&format!("  \"ok\": {},\n", self.ok()));
        out.push_str(&format!("  \"skipped\": {},\n", self.skipped()));
        out.push_str(&format!("  \"failed\": {},\n", self.failed()));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"wall_seconds\": {:.3},\n", self.wall_seconds));
        out.push_str(&format!(
            "  \"subjobs_executed\": {},\n",
            self.subjobs_executed
        ));
        out.push_str(&format!(
            "  \"subjobs_peak_concurrent\": {},\n",
            self.subjobs_peak_concurrent
        ));
        for (name, value) in &self.extras {
            out.push_str("  ");
            write_json_string(&mut out, name);
            out.push_str(&format!(": {value},\n"));
        }
        out.push_str("  \"jobs\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            out.push_str("    {\"id\":");
            write_json_string(&mut out, &o.id);
            out.push_str(&format!(
                ",\"status\":\"{}\",\"seconds\":{:.3}",
                o.status.as_str(),
                o.seconds
            ));
            if let Some(e) = &o.error {
                out.push_str(",\"error\":");
                write_json_string(&mut out, e);
            }
            out.push('}');
            if i + 1 < self.outcomes.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}");
        out
    }
}

/// Appends `s` as a quoted JSON string (the crate's hand-rolled writer).
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders one JSONL row. Public so tests can assert the exact bytes.
pub fn render_row(id: &str, status: JobStatus, detail: &RowDetail) -> String {
    let mut row = String::new();
    row.push_str("{\"id\":");
    write_json_string(&mut row, id);
    row.push_str(",\"status\":\"");
    row.push_str(status.as_str());
    row.push('"');
    match detail {
        RowDetail::Result(payload) => {
            row.push_str(",\"result\":");
            row.push_str(payload);
        }
        RowDetail::OverBudget {
            payload,
            budget_seconds,
        } => {
            row.push_str(&format!(",\"budget_seconds\":{budget_seconds}"));
            row.push_str(",\"result\":");
            row.push_str(payload);
        }
        RowDetail::Error(msg) => {
            row.push_str(",\"error\":");
            write_json_string(&mut row, msg);
        }
    }
    row.push_str("}\n");
    row
}

/// Status-specific part of a row.
pub enum RowDetail {
    /// Normal completion: the job's JSON payload.
    Result(String),
    /// Over-budget completion: payload plus the configured budget.
    OverBudget {
        /// The job's JSON payload (it did complete).
        payload: String,
        /// The configured budget, seconds.
        budget_seconds: u64,
    },
    /// Panic message.
    Error(String),
}

struct Completed {
    status: JobStatus,
    row: String,
    error: Option<String>,
    seconds: f64,
}

/// Runs `jobs` on a worker pool, streaming JSONL rows (in job order) to
/// `jsonl` and progress lines to `progress`.
///
/// The pool is the *only* source of simulation threads: jobs run on the N
/// workers, and their [`subjob_map`] fan-outs are scheduled back onto the
/// same N workers (free workers drain sub-jobs before claiming new jobs;
/// a job waiting on its fan-out helps execute). The worker count is
/// therefore a true global thread bound.
///
/// Jobs carrying a [`JobSpec::cached_row`] are not executed at all: the
/// settled row is re-emitted verbatim at its in-order position and the
/// outcome is reported as [`JobStatus::Skipped`].
///
/// The JSONL bytes depend only on the jobs' ids and payloads (or cached
/// rows) — not on the worker count or completion order — so runs with
/// different `--jobs` values are byte-identical.
///
/// # Errors
///
/// Returns the first I/O error from either sink; job panics never abort
/// the suite.
pub fn run_suite(
    jobs: &[JobSpec],
    cfg: &HarnessConfig,
    mut jsonl: Option<&mut dyn Write>,
    progress: &mut dyn Write,
) -> io::Result<Summary> {
    let total = jobs.len();
    let workers = cfg.effective_workers(total);
    let started = Instant::now();

    // Suppress the default panic-hook backtrace spam for worker threads:
    // job panics are expected, caught, and reported as structured rows.
    let prev_hook = panic::take_hook();
    panic::set_hook({
        let prev = prev_hook;
        Box::new(move |info| {
            let on_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("padc-job-worker"));
            if !on_worker {
                prev(info);
            }
        })
    });

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Completed)>();
    let budget = cfg.budget;

    // The shared sub-job queue: jobs fan out onto it via `subjob_map`, and
    // these same N workers execute the units. Closing it (once every
    // top-level job has completed, or on early teardown) releases workers
    // blocked waiting for sub-jobs.
    let pool = Arc::new(SubJobPool::new());
    let jobs_done = AtomicUsize::new(0);
    if total == 0 {
        pool.close();
    }

    let result: io::Result<Vec<Completed>> = std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let jobs_done = &jobs_done;
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name(format!("padc-job-worker-{w}"))
                .spawn_scoped(scope, move || {
                    subjob::install_pool(Some(Arc::clone(&pool)));
                    loop {
                        // Serve running experiments' fan-outs before
                        // starting new experiments.
                        while let Some(sub) = pool.try_pop() {
                            sub.run();
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            // No more top-level jobs; keep serving
                            // sub-jobs until the whole suite completes.
                            while let Some(sub) = pool.pop_blocking() {
                                sub.run();
                            }
                            break;
                        }
                        let job = &jobs[i];
                        let completed = match &job.cached_row {
                            Some(row) => Completed {
                                status: JobStatus::Skipped,
                                row: format!("{row}\n"),
                                error: None,
                                seconds: 0.0,
                            },
                            None => execute_job(job, budget),
                        };
                        if jobs_done.fetch_add(1, Ordering::Relaxed) + 1 == total {
                            pool.close();
                        }
                        if tx.send((i, completed)).is_err() {
                            // Collector died (I/O error): release any
                            // workers blocked on the sub-job queue.
                            pool.close();
                            break;
                        }
                    }
                    subjob::install_pool(None);
                })
                .expect("spawn worker");
        }
        drop(tx);

        // Collector: flush rows in job order as soon as the prefix is
        // complete, so output streams without depending on completion
        // order.
        let mut slots: Vec<Option<Completed>> = (0..total).map(|_| None).collect();
        let mut cursor = 0usize;
        let mut done = 0usize;
        while done < total {
            let Ok((i, completed)) = rx.recv() else {
                break;
            };
            done += 1;
            if cfg.progress {
                let elapsed = started.elapsed().as_secs_f64();
                let eta = elapsed / done as f64 * (total - done) as f64;
                writeln!(
                    progress,
                    "[{done:>3}/{total}] {id:<10} {status:<11} {secs:>7.1}s | elapsed {elapsed:>7.1}s eta {eta:>7.1}s",
                    id = jobs[i].id,
                    status = completed.status.as_str(),
                    secs = completed.seconds,
                )?;
            }
            slots[i] = Some(completed);
            while cursor < total {
                let Some(c) = &slots[cursor] else { break };
                if let Some(sink) = jsonl.as_deref_mut() {
                    sink.write_all(c.row.as_bytes())?;
                }
                cursor += 1;
            }
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all jobs reported"))
            .collect())
    });

    // Restore the default hook before propagating any I/O error.
    let _ = panic::take_hook();
    let completed = result?;
    if let Some(sink) = jsonl {
        sink.flush()?;
    }

    Ok(Summary {
        outcomes: jobs
            .iter()
            .zip(&completed)
            .map(|(job, c)| JobOutcome {
                id: job.id.clone(),
                status: c.status,
                error: c.error.clone(),
                seconds: c.seconds,
            })
            .collect(),
        workers,
        wall_seconds: started.elapsed().as_secs_f64(),
        subjobs_executed: pool.stats.executed(),
        subjobs_peak_concurrent: pool.stats.peak_concurrent(),
        extras: Vec::new(),
    })
}

/// Runs one job under `catch_unwind`, rendering its row and outcome.
fn execute_job(job: &JobSpec, budget: Option<Duration>) -> Completed {
    let start = Instant::now();
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| (job.run)()));
    let seconds = start.elapsed().as_secs_f64();
    match outcome {
        Ok(payload) => match budget {
            Some(b) if start.elapsed() > b => Completed {
                status: JobStatus::OverBudget,
                row: render_row(
                    &job.id,
                    JobStatus::OverBudget,
                    &RowDetail::OverBudget {
                        payload,
                        budget_seconds: b.as_secs(),
                    },
                ),
                error: Some(format!("exceeded {}s budget ({seconds:.1}s)", b.as_secs())),
                seconds,
            },
            _ => Completed {
                status: JobStatus::Ok,
                row: render_row(&job.id, JobStatus::Ok, &RowDetail::Result(payload)),
                error: None,
                seconds,
            },
        },
        Err(panic_payload) => {
            let msg = panic_message(panic_payload.as_ref());
            let row = render_row(&job.id, JobStatus::Panicked, &RowDetail::Error(msg.clone()));
            Completed {
                status: JobStatus::Panicked,
                row,
                error: Some(msg),
                seconds,
            }
        }
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_jsonl(jobs: &[JobSpec], cfg: &HarnessConfig) -> (String, Summary) {
        let mut jsonl = Vec::new();
        let mut progress = Vec::new();
        let summary = run_suite(jobs, cfg, Some(&mut jsonl), &mut progress).expect("io ok");
        (String::from_utf8(jsonl).expect("utf8"), summary)
    }

    fn quiet(workers: usize) -> HarnessConfig {
        HarnessConfig {
            workers,
            budget: None,
            progress: false,
        }
    }

    fn sleepy_jobs() -> Vec<JobSpec> {
        // Later jobs finish first under parallelism, exercising the
        // in-order flush.
        (0..6)
            .map(|i| {
                JobSpec::new(format!("job{i}"), "test", move || {
                    std::thread::sleep(Duration::from_millis(5 * (6 - i)));
                    format!("{{\"v\":{i}}}")
                })
            })
            .collect()
    }

    #[test]
    fn output_is_in_job_order_and_worker_count_independent() {
        let (seq, _) = collect_jsonl(&sleepy_jobs(), &quiet(1));
        let (par, summary) = collect_jsonl(&sleepy_jobs(), &quiet(4));
        assert_eq!(seq, par, "JSONL must be byte-identical across -j");
        assert_eq!(summary.workers, 4);
        let expect: String = (0..6)
            .map(|i| format!("{{\"id\":\"job{i}\",\"status\":\"ok\",\"result\":{{\"v\":{i}}}}}\n"))
            .collect();
        assert_eq!(seq, expect);
    }

    #[test]
    fn panicking_job_is_isolated_and_structured() {
        let jobs = vec![
            JobSpec::new("good1", "t", || "1".to_string()),
            JobSpec::new("boom", "t", || panic!("injected failure {}", 42)),
            JobSpec::new("good2", "t", || "2".to_string()),
        ];
        let (jsonl, summary) = collect_jsonl(&jobs, &quiet(2));
        assert_eq!(summary.ok(), 2);
        assert_eq!(summary.failed(), 1);
        assert_eq!(summary.outcomes[1].status, JobStatus::Panicked);
        assert!(summary.outcomes[1]
            .error
            .as_deref()
            .expect("error recorded")
            .contains("injected failure 42"));
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[1],
            "{\"id\":\"boom\",\"status\":\"panicked\",\"error\":\"injected failure 42\"}"
        );
        assert!(lines[2].starts_with("{\"id\":\"good2\""));
    }

    #[test]
    fn over_budget_jobs_are_recorded_but_not_dropped() {
        let jobs = vec![JobSpec::new("slow", "t", || {
            std::thread::sleep(Duration::from_millis(20));
            "{}".to_string()
        })];
        let cfg = HarnessConfig {
            workers: 1,
            budget: Some(Duration::from_millis(1)),
            progress: false,
        };
        let (jsonl, summary) = collect_jsonl(&jobs, &cfg);
        assert_eq!(summary.failed(), 1);
        assert_eq!(summary.outcomes[0].status, JobStatus::OverBudget);
        assert_eq!(
            jsonl,
            "{\"id\":\"slow\",\"status\":\"over_budget\",\"budget_seconds\":0,\"result\":{}}\n"
        );
    }

    #[test]
    fn json_string_escaping_is_sound() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn summary_json_shape() {
        let jobs = vec![
            JobSpec::new("a", "t", || "1".to_string()),
            JobSpec::new("b", "t", || panic!("x")),
        ];
        let (_, summary) = collect_jsonl(&jobs, &quiet(2));
        let json = summary.to_json();
        assert!(json.contains("\"total\": 2"));
        assert!(json.contains("\"ok\": 1"));
        assert!(json.contains("\"failed\": 1"));
        assert!(json.contains("\"id\":\"a\""));
        assert!(json.contains("\"error\":\"x\""));
    }

    #[test]
    fn worker_resolution_clamps() {
        // Not clamped to the job count: sub-job fan-out can use every
        // worker even when there are fewer top-level jobs than workers.
        let cfg = quiet(8);
        assert_eq!(cfg.effective_workers(3), 8);
        assert_eq!(cfg.effective_workers(0), 8);
        assert!(quiet(0).effective_workers(64) >= 1);
    }

    #[test]
    fn cached_rows_skip_execution_and_are_emitted_verbatim() {
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let jobs: Vec<JobSpec> = vec![
            JobSpec::new("a", "t", {
                let c = counter.clone();
                move || {
                    c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    "1".to_string()
                }
            })
            .with_cached_row("{\"id\":\"a\",\"status\":\"ok\",\"result\":99}"),
            JobSpec::new("b", "t", {
                let c = counter.clone();
                move || {
                    c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    "2".to_string()
                }
            }),
        ];
        let (jsonl, summary) = collect_jsonl(&jobs, &quiet(2));
        assert_eq!(
            jsonl,
            "{\"id\":\"a\",\"status\":\"ok\",\"result\":99}\n\
             {\"id\":\"b\",\"status\":\"ok\",\"result\":2}\n"
        );
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(summary.skipped(), 1);
        assert_eq!(summary.ok(), 1);
        assert_eq!(summary.failed(), 0);
        assert_eq!(summary.outcomes[0].status, JobStatus::Skipped);
        assert_eq!(summary.outcomes[0].seconds, 0.0);
    }

    #[test]
    fn empty_job_list_completes() {
        let (jsonl, summary) = collect_jsonl(&[], &quiet(2));
        assert!(jsonl.is_empty());
        assert!(summary.outcomes.is_empty());
    }

    #[test]
    fn subjobs_run_on_the_suite_pool_and_preserve_order() {
        let jobs: Vec<JobSpec> = (0..3)
            .map(|j| {
                JobSpec::new(format!("job{j}"), "t", move || {
                    let parts = subjob_map(8, |i| {
                        assert!(under_harness(), "sub-jobs must see the pool");
                        i * 10 + j
                    });
                    format!("{:?}", parts.iter().sum::<usize>())
                })
            })
            .collect();
        let (seq, _) = collect_jsonl(&jobs, &quiet(1));
        let (par, _) = collect_jsonl(&jobs, &quiet(4));
        assert_eq!(seq, par, "fan-out must not perturb JSONL bytes");
        for (j, line) in seq.lines().enumerate() {
            let expected: usize = (0..8).map(|i| i * 10 + j).sum();
            assert_eq!(
                line,
                format!("{{\"id\":\"job{j}\",\"status\":\"ok\",\"result\":{expected}}}")
            );
        }
    }

    #[test]
    fn subjob_panic_surfaces_as_the_parent_jobs_failure_row() {
        let jobs = vec![
            JobSpec::new("fanout", "t", || {
                let _ = subjob_map(4, |i| {
                    if i == 2 {
                        panic!("sub-unit {i} exploded");
                    }
                    i
                });
                "unreachable".to_string()
            }),
            JobSpec::new("after", "t", || "1".to_string()),
        ];
        let (jsonl, summary) = collect_jsonl(&jobs, &quiet(2));
        assert_eq!(summary.failed(), 1);
        assert_eq!(summary.outcomes[0].status, JobStatus::Panicked);
        assert!(summary.outcomes[0]
            .error
            .as_deref()
            .unwrap()
            .contains("sub-unit 2 exploded"));
        assert!(jsonl
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("{\"id\":\"after\",\"status\":\"ok\""));
    }

    #[test]
    fn subjob_concurrency_never_exceeds_the_worker_count() {
        // Three jobs each fanning 8 units through a 2-worker pool: every
        // unit runs on a suite worker, so at most 2 are ever in flight,
        // and all 24 are accounted as executed.
        let jobs: Vec<JobSpec> = (0..3)
            .map(|j| {
                JobSpec::new(format!("job{j}"), "t", move || {
                    let parts = subjob_map(8, |i| {
                        std::thread::sleep(Duration::from_millis(1));
                        i + j
                    });
                    format!("{}", parts.len())
                })
            })
            .collect();
        let (_, summary) = collect_jsonl(&jobs, &quiet(2));
        assert_eq!(summary.subjobs_executed, 3 * 8);
        assert!(
            summary.subjobs_peak_concurrent <= 2,
            "peak {} exceeds the 2-worker bound",
            summary.subjobs_peak_concurrent
        );
        assert!(summary.subjobs_peak_concurrent >= 1);
        let json = summary.to_json();
        assert!(json.contains("\"subjobs_executed\": 24"), "{json}");
        assert!(json.contains("\"subjobs_peak_concurrent\":"), "{json}");
    }

    #[test]
    fn subjob_map_runs_inline_without_a_pool() {
        assert!(!under_harness());
        let out = subjob_map(5, |i| i * i);
        assert_eq!(out, vec![0, 1, 4, 9, 16]);
        assert!(subjob_map(0, |i| i).is_empty());
    }

    #[test]
    fn progress_lines_report_done_total_and_eta() {
        let jobs = vec![
            JobSpec::new("a", "t", || "1".to_string()),
            JobSpec::new("b", "t", || "2".to_string()),
        ];
        let mut progress = Vec::new();
        let cfg = HarnessConfig {
            workers: 1,
            budget: None,
            progress: true,
        };
        run_suite(&jobs, &cfg, None, &mut progress).expect("io ok");
        let text = String::from_utf8(progress).expect("utf8");
        assert!(text.contains("[  1/2]"), "got: {text}");
        assert!(text.contains("[  2/2]"), "got: {text}");
        assert!(text.contains("eta"), "got: {text}");
    }
}
