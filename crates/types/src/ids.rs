use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a processing core in the simulated CMP.
///
/// ```
/// use padc_types::CoreId;
/// let c = CoreId::new(3);
/// assert_eq!(c.index(), 3);
/// assert_eq!(format!("{c}"), "core3");
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize, Debug,
)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core id from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u16` (the suite supports up to
    /// 65 536 cores, far beyond the paper's 8-core maximum).
    pub fn new(index: usize) -> Self {
        CoreId(u16::try_from(index).expect("core index exceeds u16"))
    }

    /// The core's index, usable for `Vec` indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<CoreId> for usize {
    fn from(id: CoreId) -> usize {
        id.index()
    }
}

/// Identifies a DRAM channel (one memory controller per channel).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize, Debug,
)]
pub struct ChannelId(u8);

impl ChannelId {
    /// Creates a channel id from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u8`.
    pub fn new(index: usize) -> Self {
        ChannelId(u8::try_from(index).expect("channel index exceeds u8"))
    }

    /// The channel's index, usable for `Vec` indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Unique, monotonically increasing identifier for a memory request.
///
/// Allocation order doubles as arrival order, which the FCFS scheduling rules
/// rely on.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize, Debug,
)]
pub struct RequestId(u64);

impl RequestId {
    /// Creates a request id from a raw sequence number.
    pub const fn new(raw: u64) -> Self {
        RequestId(raw)
    }

    /// The raw sequence number.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_round_trips() {
        for i in [0usize, 1, 7, 255] {
            assert_eq!(CoreId::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "core index exceeds u16")]
    fn core_id_rejects_huge_index() {
        let _ = CoreId::new(70_000);
    }

    #[test]
    fn request_ids_order_by_allocation() {
        assert!(RequestId::new(1) < RequestId::new(2));
    }

    #[test]
    fn displays() {
        assert_eq!(CoreId::new(0).to_string(), "core0");
        assert_eq!(ChannelId::new(1).to_string(), "ch1");
        assert_eq!(RequestId::new(9).to_string(), "req9");
    }
}
