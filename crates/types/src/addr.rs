use std::fmt;

use serde::{Deserialize, Serialize};

/// Cache line size in bytes (fixed at 64B, matching the paper's Table 3).
pub const LINE_BYTES: u64 = 64;

/// log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = 6;

/// A physical byte address.
///
/// ```
/// use padc_types::Addr;
/// let a = Addr::new(0x1234);
/// assert_eq!(a.raw(), 0x1234);
/// assert_eq!(a.line().base_addr(), Addr::new(0x1200));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache line containing this byte.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Byte offset within the containing cache line.
    pub const fn line_offset(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }

    /// Returns the address advanced by `bytes` (wrapping on overflow).
    #[must_use]
    pub const fn offset(self, bytes: i64) -> Self {
        Addr(self.0.wrapping_add(bytes as u64))
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-line-granular address (byte address shifted right by
/// [`LINE_SHIFT`]).
///
/// All memory-system traffic in the suite is line granular; `LineAddr` makes
/// it impossible to accidentally mix byte and line numbering.
///
/// ```
/// use padc_types::{Addr, LineAddr};
/// let l = LineAddr::new(3);
/// assert_eq!(l.base_addr(), Addr::new(192));
/// assert_eq!(l.next(), LineAddr::new(4));
/// assert_eq!(LineAddr::from(Addr::new(200)), l); // 200 / 64 == 3
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number.
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw line number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// First byte address of the line.
    pub const fn base_addr(self) -> Addr {
        Addr::new(self.0 << LINE_SHIFT)
    }

    /// The immediately following line.
    #[must_use]
    pub const fn next(self) -> Self {
        LineAddr(self.0.wrapping_add(1))
    }

    /// The line `n` lines away in the given direction (`n` may be negative).
    #[must_use]
    pub const fn offset(self, n: i64) -> Self {
        LineAddr(self.0.wrapping_add(n as u64))
    }

    /// Signed distance in lines from `other` to `self`.
    pub const fn distance_from(self, other: LineAddr) -> i64 {
        self.0.wrapping_sub(other.0) as i64
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl From<Addr> for LineAddr {
    fn from(addr: Addr) -> Self {
        addr.line()
    }
}

impl From<u64> for LineAddr {
    fn from(raw: u64) -> Self {
        LineAddr(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_addr_truncates_offset() {
        assert_eq!(Addr::new(0).line(), LineAddr::new(0));
        assert_eq!(Addr::new(63).line(), LineAddr::new(0));
        assert_eq!(Addr::new(64).line(), LineAddr::new(1));
        assert_eq!(Addr::new(65).line(), LineAddr::new(1));
    }

    #[test]
    fn line_offset_is_within_line() {
        assert_eq!(Addr::new(0x1234).line_offset(), 0x34);
        assert_eq!(Addr::new(0x1240).line_offset(), 0);
    }

    #[test]
    fn line_base_addr_round_trips() {
        let l = LineAddr::new(1234);
        assert_eq!(l.base_addr().line(), l);
    }

    #[test]
    fn line_distance_is_signed() {
        let a = LineAddr::new(10);
        let b = LineAddr::new(14);
        assert_eq!(b.distance_from(a), 4);
        assert_eq!(a.distance_from(b), -4);
    }

    #[test]
    fn offset_moves_in_both_directions() {
        let l = LineAddr::new(100);
        assert_eq!(l.offset(5), LineAddr::new(105));
        assert_eq!(l.offset(-5), LineAddr::new(95));
        let a = Addr::new(1000);
        assert_eq!(a.offset(-1000), Addr::new(0));
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(format!("{}", Addr::new(0x40)), "0x40");
        assert_eq!(format!("{}", LineAddr::new(1)), "L0x1");
        assert!(!format!("{:?}", Addr::default()).is_empty());
        assert!(!format!("{:?}", LineAddr::default()).is_empty());
    }
}
