//! Shared primitive types for the PADC simulation suite.
//!
//! Every crate in the workspace speaks in terms of the vocabulary defined
//! here: byte/line [`Addr`]esses, [`CoreId`]s, simulation [`Cycle`]s, and the
//! [`MemRequest`] record that travels from a core's cache-miss path through
//! the memory request buffer to DRAM.
//!
//! # Example
//!
//! ```
//! use padc_types::{Addr, LineAddr, CoreId, RequestKind};
//!
//! let a = Addr::new(0x1_0040);
//! let line = a.line();
//! assert_eq!(line.base_addr(), Addr::new(0x1_0040));
//! assert_eq!(LineAddr::from(Addr::new(0x1_007f)), line);
//! assert!(RequestKind::Demand.is_demand());
//! let core = CoreId::new(2);
//! assert_eq!(core.index(), 2);
//! ```

#![warn(missing_docs)]

mod addr;
mod ids;
mod request;

pub use addr::{Addr, LineAddr, LINE_BYTES, LINE_SHIFT};
pub use ids::{ChannelId, CoreId, RequestId};
pub use request::{AccessKind, MemRequest, RequestKind};

/// A point in simulated time, measured in CPU clock cycles.
pub type Cycle = u64;

/// Number of CPU cycles per DRAM bus cycle.
///
/// The paper's system runs a DDR3-1333 bus (667 MHz bus clock) under an
/// aggressive multi-GHz 4-wide core; a ratio of 10 reproduces both the
/// paper's ~1:3 row-hit:row-conflict latency relationship and its degree of
/// memory-boundedness (memory-intensive SPEC workloads run at IPC well
/// below 1) at CPU-cycle granularity.
pub const CPU_CYCLES_PER_DRAM_CYCLE: Cycle = 10;
