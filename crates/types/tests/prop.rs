//! Property tests for the address vocabulary.

use padc_types::{Addr, LineAddr, LINE_BYTES};
use proptest::prelude::*;

proptest! {
    /// Any byte address maps into its line, and the line's base address is
    /// at or below it by less than a line.
    #[test]
    fn addr_line_roundtrip(raw in any::<u64>()) {
        let a = Addr::new(raw);
        let line = a.line();
        let base = line.base_addr();
        prop_assert!(base.raw() <= raw || line.raw() > raw >> 6, "wrap case");
        if let Some(delta) = raw.checked_sub(base.raw()) {
            prop_assert!(delta < LINE_BYTES);
        }
        prop_assert_eq!(base.line(), line);
        prop_assert_eq!(a.line_offset(), raw % LINE_BYTES);
    }

    /// Line offsets are inverse operations.
    #[test]
    fn line_offset_inverse(raw in any::<u64>(), n in -1_000_000i64..1_000_000) {
        let l = LineAddr::new(raw);
        prop_assert_eq!(l.offset(n).offset(-n), l);
        prop_assert_eq!(l.offset(n).distance_from(l), n);
    }

    /// `next` advances exactly one line.
    #[test]
    fn next_is_offset_one(raw in any::<u64>()) {
        let l = LineAddr::new(raw);
        prop_assert_eq!(l.next(), l.offset(1));
    }
}
