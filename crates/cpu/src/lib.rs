//! Trace-driven processor-core model for the PADC simulation suite.
//!
//! Each [`Core`] retires up to `width` instructions per cycle from a
//! fixed-size instruction window (the paper's 256-entry reorder buffer,
//! Table 3). A load that misses the caches blocks retirement when it
//! reaches the head of the window; younger loads still issue, so
//! memory-level parallelism within the window is exposed to the memory
//! system. Cycles in which the window head is a load waiting on memory are
//! charged to the SPL metric (stall cycles per load, §5.2).
//!
//! The core optionally models runahead execution (§6.14): when the window
//! is full behind a pending head load, the core pre-executes its future
//! instruction stream (a forked trace), issuing *runahead* memory requests
//! that the paper treats as demands with the "only-train" prefetcher policy.
//!
//! The memory hierarchy is abstracted behind [`MemorySystem`]; the `padc-sim`
//! crate implements it over the caches and the DRAM controller.
//!
//! # Example
//!
//! ```
//! use padc_cpu::{Core, CoreConfig, MemorySystem, MemAccess, AccessResponse, TraceOp, TraceSource};
//! use padc_types::{Addr, CoreId, Cycle};
//!
//! /// A memory system where everything hits in 2 cycles.
//! struct FlatMemory;
//! impl MemorySystem for FlatMemory {
//!     fn access(&mut self, _core: CoreId, _acc: &MemAccess, _now: Cycle) -> AccessResponse {
//!         AccessResponse::Hit { latency: 2 }
//!     }
//! }
//!
//! #[derive(Clone)]
//! struct ComputeOnly;
//! impl TraceSource for ComputeOnly {
//!     fn next_op(&mut self) -> TraceOp { TraceOp::Compute }
//!     fn fork(&self) -> Box<dyn TraceSource> { Box::new(ComputeOnly) }
//! }
//!
//! let mut core = Core::new(CoreId::new(0), CoreConfig::default());
//! let mut trace = ComputeOnly;
//! let mut mem = FlatMemory;
//! for now in 0..1_000 {
//!     core.tick(now, &mut trace, &mut mem);
//! }
//! // A pure-compute core retires at full width.
//! assert!(core.stats().retired_instructions > 3_000);
//! ```

#![warn(missing_docs)]

mod core_model;
mod trace;

pub use core_model::{
    AccessResponse, Core, CoreConfig, CoreStats, IdleState, MemAccess, MemorySystem,
};
pub use trace::{TraceOp, TraceSource};
