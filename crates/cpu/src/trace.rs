use padc_types::Addr;

/// One instruction of a core's trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceOp {
    /// A non-memory instruction (1-cycle execute).
    Compute,
    /// A load from `addr` by the static instruction at `pc`.
    Load {
        /// Byte address read.
        addr: Addr,
        /// Program counter (used by PC-indexed prefetchers).
        pc: u64,
        /// True if the load's address depends on earlier in-flight loads
        /// (e.g. pointer chasing): it cannot issue while older loads are
        /// still waiting on memory. This is what bounds a workload's
        /// memory-level parallelism.
        dep: bool,
    },
    /// A store to `addr` by the static instruction at `pc`.
    Store {
        /// Byte address written.
        addr: Addr,
        /// Program counter.
        pc: u64,
    },
}

impl TraceOp {
    /// True for [`TraceOp::Load`].
    pub const fn is_load(&self) -> bool {
        matches!(self, TraceOp::Load { .. })
    }

    /// True for loads and stores.
    pub const fn is_memory(&self) -> bool {
        matches!(self, TraceOp::Load { .. } | TraceOp::Store { .. })
    }
}

/// An infinite instruction stream driving one core.
///
/// `fork` produces an independent continuation of the stream from the
/// current position — runahead execution pre-executes the fork while the
/// architectural stream stays put, so the same instructions are re-executed
/// after runahead exit (as in real runahead processors).
pub trait TraceSource {
    /// Produces the next instruction.
    fn next_op(&mut self) -> TraceOp;

    /// An independent copy continuing from the current position.
    fn fork(&self) -> Box<dyn TraceSource>;
}

impl TraceSource for Box<dyn TraceSource> {
    fn next_op(&mut self) -> TraceOp {
        (**self).next_op()
    }

    fn fork(&self) -> Box<dyn TraceSource> {
        (**self).fork()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_predicates() {
        let l = TraceOp::Load {
            addr: Addr::new(0),
            pc: 0,
            dep: false,
        };
        let s = TraceOp::Store {
            addr: Addr::new(0),
            pc: 0,
        };
        assert!(l.is_load() && l.is_memory());
        assert!(!s.is_load() && s.is_memory());
        assert!(!TraceOp::Compute.is_memory());
    }
}
