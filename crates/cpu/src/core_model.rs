use std::collections::VecDeque;

use padc_types::{AccessKind, Addr, CoreId, Cycle};
use serde::{Deserialize, Serialize};

use crate::{TraceOp, TraceSource};

/// A memory access presented to the memory hierarchy.
#[derive(Clone, Copy, Debug)]
pub struct MemAccess {
    /// Byte address.
    pub addr: Addr,
    /// Program counter of the instruction.
    pub pc: u64,
    /// Load or store.
    pub kind: AccessKind,
    /// Token the memory system echoes back through [`Core::complete`] when a
    /// pending load's data arrives. Unused for stores and runahead accesses.
    pub token: u64,
    /// True if issued by runahead pre-execution (no one waits on it).
    pub runahead: bool,
}

/// The memory hierarchy's answer to an access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessResponse {
    /// Data available after `latency` cycles (cache hit).
    Hit {
        /// Cycles until the data is usable.
        latency: Cycle,
    },
    /// A miss is outstanding; [`Core::complete`] will be called with the
    /// access token when the fill arrives.
    Pending,
    /// Structural hazard (MSHR or request buffer full): the access did not
    /// enter the memory system and must be retried.
    Retry,
}

/// The memory hierarchy as seen by a core.
pub trait MemorySystem {
    /// Performs one access on behalf of `core`.
    fn access(&mut self, core: CoreId, acc: &MemAccess, now: Cycle) -> AccessResponse;
}

/// Core parameters (paper Table 3 defaults: 256-entry window, 4-wide).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Instruction-window (reorder buffer) entries.
    pub window_entries: usize,
    /// Dispatch/retire width per cycle.
    pub width: usize,
    /// Runahead execution enabled (§6.14).
    pub runahead: bool,
    /// Maximum instructions pre-executed per runahead episode.
    pub runahead_max_ops: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            window_entries: 256,
            width: 4,
            runahead: false,
            runahead_max_ops: 512,
        }
    }
}

/// Retirement/stall counters for one core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Instructions retired.
    pub retired_instructions: u64,
    /// Loads retired.
    pub retired_loads: u64,
    /// Cycles in which retirement was blocked by a load waiting on memory
    /// at the window head (numerator of SPL).
    pub window_stall_cycles: u64,
    /// Cycles in which dispatch made no progress because the window was
    /// full.
    pub dispatch_window_full_cycles: u64,
    /// Cycles in which dispatch was blocked by a structural Retry (MSHR or
    /// request buffer full).
    pub dispatch_retry_cycles: u64,
    /// Cycles in which dispatch was blocked by a dependent load waiting for
    /// in-flight loads.
    pub dispatch_dep_cycles: u64,
    /// Runahead episodes entered.
    pub runahead_episodes: u64,
    /// Memory requests issued from runahead mode.
    pub runahead_requests: u64,
}

impl CoreStats {
    /// Stall cycles per load (§5.2). Zero when no loads retired.
    pub fn spl(&self) -> f64 {
        if self.retired_loads == 0 {
            return 0.0;
        }
        self.window_stall_cycles as f64 / self.retired_loads as f64
    }

    /// Instructions per cycle over `cycles`.
    pub fn ipc(&self, cycles: Cycle) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        self.retired_instructions as f64 / cycles as f64
    }
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    is_load: bool,
    done_at: Option<Cycle>,
    token: u64,
}

struct RunaheadState {
    trace: Box<dyn TraceSource>,
    issued_ops: usize,
}

/// Proof that a [`Core::tick`] would be a pure stall cycle, plus the
/// per-cycle stall-counter bumps that tick would have made.
///
/// Returned by [`Core::idle_state`]; consumed by [`Core::skip_idle_cycles`]
/// when the simulator fast-forwards across a run of such cycles.
#[derive(Clone, Copy, Debug)]
pub struct IdleState {
    /// Cycle at which the window head becomes retirable on its own (`None`
    /// when the head is waiting on memory and only [`Core::complete`] can
    /// unblock it).
    pub wake_at: Option<Cycle>,
    /// The tick would count a head-of-window memory stall.
    window_stall: bool,
    /// The tick would count a dispatch cycle lost to a full window.
    dispatch_window_full: bool,
    /// The tick would count a dispatch cycle lost to a dependent load.
    dispatch_dep: bool,
}

/// One simulated processing core.
///
/// Drive it with [`Core::tick`] once per CPU cycle, providing its trace and
/// the memory system; deliver fill wake-ups with [`Core::complete`].
pub struct Core {
    id: CoreId,
    cfg: CoreConfig,
    window: VecDeque<Slot>,
    next_token: u64,
    /// An op that got [`AccessResponse::Retry`] (or is a dependent load
    /// waiting for MLP to drain) and must re-issue.
    stalled_op: Option<TraceOp>,
    /// Loads in the window still waiting on memory.
    pending_loads: usize,
    runahead: Option<RunaheadState>,
    stats: CoreStats,
}

impl Core {
    /// Creates an idle core.
    pub fn new(id: CoreId, cfg: CoreConfig) -> Self {
        Core {
            id,
            cfg,
            window: VecDeque::with_capacity(cfg.window_entries),
            next_token: 0,
            stalled_op: None,
            pending_loads: 0,
            runahead: None,
            stats: CoreStats::default(),
        }
    }

    /// The core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Retirement/stall statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// True while the core is pre-executing in runahead mode.
    pub fn in_runahead(&self) -> bool {
        self.runahead.is_some()
    }

    /// Wakes the pending load identified by `token`: its data is usable
    /// from cycle `now`.
    pub fn complete(&mut self, token: u64, now: Cycle) {
        for slot in &mut self.window {
            if slot.token == token && slot.done_at.is_none() {
                slot.done_at = Some(now);
                self.pending_loads = self.pending_loads.saturating_sub(1);
                return;
            }
        }
        // Token not found: the load may already have been satisfied (e.g. a
        // duplicate wake-up); ignore.
    }

    /// Classifies what [`Core::tick`]`(now, ..)` would do *without running
    /// it*: `Some(idle)` when the tick would be a pure stall cycle — no
    /// retirement, no trace consumption, no memory access, only stall
    /// counters — and `None` when it would make progress of any kind.
    ///
    /// This is the core's side of the fast-forward event contract
    /// (DESIGN.md §11): while every core reports `Some`, ticks can be
    /// replaced by [`Core::skip_idle_cycles`] up to the earliest `wake_at`
    /// (or an external wake-up via [`Core::complete`]) with bit-identical
    /// results.
    pub fn idle_state(&self, now: Cycle) -> Option<IdleState> {
        // An empty window means dispatch would fetch from the trace.
        let head = self.window.front()?;
        let (window_stall, head_blocked, wake_at) = match head.done_at {
            // Head retires this tick.
            Some(d) if d <= now => return None,
            Some(d) => (false, false, Some(d)),
            None if head.is_load => (true, true, None),
            // A non-load slot always carries a completion time; treat the
            // impossible case as busy rather than risk a wrong skip.
            None => return None,
        };
        // A lingering runahead state is cleared by the next tick once the
        // head is no longer blocked: a state change, not an idle cycle.
        if !head_blocked && self.runahead.is_some() {
            return None;
        }
        let dep_stalled = self.pending_loads > 0
            && matches!(self.stalled_op, Some(TraceOp::Load { dep: true, .. }));
        let window_full = self.window_full();
        if self.cfg.runahead && head_blocked && (window_full || dep_stalled) {
            // runahead_step would enter an episode or issue pre-execution
            // requests unless the current episode exhausted its op budget.
            let exhausted = self
                .runahead
                .as_ref()
                .is_some_and(|ra| ra.issued_ops >= self.cfg.runahead_max_ops);
            if !exhausted {
                return None;
            }
        }
        let (dispatch_window_full, dispatch_dep) = if window_full {
            (true, false)
        } else if dep_stalled {
            (false, true)
        } else {
            // Dispatch would fetch a new op or re-issue a retried access.
            return None;
        };
        Some(IdleState {
            wake_at,
            window_stall,
            dispatch_window_full,
            dispatch_dep,
        })
    }

    /// Lower bound on the next cycle at which an idle core's state changes
    /// on its own: the head-retirement time from [`Core::idle_state`].
    /// `None` when the core is busy (every cycle is an event) or can only
    /// be woken externally by [`Core::complete`].
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.idle_state(now).and_then(|s| s.wake_at)
    }

    /// Applies `cycles` worth of the stall-counter bumps that `cycles`
    /// consecutive pure-stall ticks (as classified by `idle`) would have
    /// made. The caller guarantees `idle` came from [`Core::idle_state`] at
    /// the first skipped cycle and that no wake-up lands inside the
    /// skipped run.
    ///
    /// The replay may be **deferred**: a classification taken at cycle `t`
    /// stays valid for every cycle in `[t, wake)` as long as the core is
    /// neither ticked nor completed in between, because nothing else
    /// mutates a `Core` and the only time-dependence in
    /// [`Core::idle_state`] is the `done_at <= now` retirement comparison,
    /// which flips exactly at `wake_at` — the first cycle excluded from
    /// the window. The per-core event-horizon engine relies on this: it
    /// classifies once when a core goes idle and replays the whole lag
    /// window in one call when the core is resynced (a wake-up completion,
    /// its own `wake_at`, or a PAR-rollover resync).
    pub fn skip_idle_cycles(&mut self, idle: &IdleState, cycles: u64) {
        if idle.window_stall {
            self.stats.window_stall_cycles += cycles;
        }
        if idle.dispatch_window_full {
            self.stats.dispatch_window_full_cycles += cycles;
        }
        if idle.dispatch_dep {
            self.stats.dispatch_dep_cycles += cycles;
        }
    }

    /// Advances the core by one cycle: retire, (maybe) runahead, dispatch.
    pub fn tick(&mut self, now: Cycle, trace: &mut dyn TraceSource, mem: &mut dyn MemorySystem) {
        self.retire(now);
        if self.cfg.runahead {
            self.runahead_step(now, trace, mem);
        }
        self.dispatch(now, trace, mem);
    }

    fn retire(&mut self, now: Cycle) {
        let mut retired = 0;
        while retired < self.cfg.width {
            match self.window.front() {
                Some(slot) if slot.done_at.is_some_and(|t| t <= now) => {
                    let slot = self.window.pop_front().expect("front exists");
                    self.stats.retired_instructions += 1;
                    if slot.is_load {
                        self.stats.retired_loads += 1;
                    }
                    retired += 1;
                }
                Some(slot) if slot.is_load && slot.done_at.is_none() => {
                    // Head blocked on memory.
                    self.stats.window_stall_cycles += 1;
                    // Head load completed: leave runahead mode.
                    break;
                }
                _ => break,
            }
        }
        // Exiting runahead: the head is no longer a pending load.
        if self.runahead.is_some() {
            let head_blocked = self
                .window
                .front()
                .is_some_and(|s| s.is_load && s.done_at.is_none());
            if !head_blocked {
                self.runahead = None;
            }
        }
    }

    fn window_full(&self) -> bool {
        self.window.len() >= self.cfg.window_entries
    }

    /// Runahead execution: when stalled with a full window behind a pending
    /// head load, pre-execute the future trace, issuing memory requests
    /// without occupying window entries.
    fn runahead_step(
        &mut self,
        now: Cycle,
        trace: &mut dyn TraceSource,
        mem: &mut dyn MemorySystem,
    ) {
        let head_blocked = self
            .window
            .front()
            .is_some_and(|s| s.is_load && s.done_at.is_none());
        // The core is fully stalled when the window is full behind the
        // pending head, or when dispatch is blocked by a dependent load
        // waiting on that same outstanding miss traffic.
        let dep_stalled = self.pending_loads > 0
            && matches!(self.stalled_op, Some(TraceOp::Load { dep: true, .. }));
        if !(head_blocked && (self.window_full() || dep_stalled)) {
            return;
        }
        if self.runahead.is_none() {
            self.runahead = Some(RunaheadState {
                trace: trace.fork(),
                issued_ops: 0,
            });
            self.stats.runahead_episodes += 1;
        }
        let ra = self.runahead.as_mut().expect("just ensured");
        for _ in 0..self.cfg.width {
            if ra.issued_ops >= self.cfg.runahead_max_ops {
                return;
            }
            ra.issued_ops += 1;
            let op = ra.trace.next_op();
            let (addr, pc, kind) = match op {
                TraceOp::Compute => continue,
                TraceOp::Load { addr, pc, .. } => (addr, pc, AccessKind::Load),
                TraceOp::Store { addr, pc } => (addr, pc, AccessKind::Store),
            };
            let acc = MemAccess {
                addr,
                pc,
                kind,
                token: u64::MAX,
                runahead: true,
            };
            // Runahead requests that hit a structural hazard are dropped.
            if mem.access(self.id, &acc, now) != AccessResponse::Retry {
                self.stats.runahead_requests += 1;
            }
        }
    }

    fn dispatch(&mut self, now: Cycle, trace: &mut dyn TraceSource, mem: &mut dyn MemorySystem) {
        let mut dispatched = 0usize;
        for _ in 0..self.cfg.width {
            if self.window_full() {
                if dispatched == 0 {
                    self.stats.dispatch_window_full_cycles += 1;
                }
                return;
            }
            let op = match self.stalled_op.take() {
                Some(op) => op,
                None => trace.next_op(),
            };
            dispatched += 1;
            match op {
                TraceOp::Compute => {
                    self.window.push_back(Slot {
                        is_load: false,
                        done_at: Some(now + 1),
                        token: u64::MAX,
                    });
                }
                TraceOp::Load { addr, pc, dep } => {
                    // A dependent load cannot issue while older loads are
                    // still waiting on memory (bounded MLP).
                    if dep && self.pending_loads > 0 {
                        self.stalled_op = Some(op);
                        if dispatched == 1 {
                            self.stats.dispatch_dep_cycles += 1;
                        }
                        return;
                    }
                    let token = self.next_token;
                    let acc = MemAccess {
                        addr,
                        pc,
                        kind: AccessKind::Load,
                        token,
                        runahead: false,
                    };
                    match mem.access(self.id, &acc, now) {
                        AccessResponse::Hit { latency } => {
                            self.window.push_back(Slot {
                                is_load: true,
                                done_at: Some(now + latency),
                                token: u64::MAX,
                            });
                        }
                        AccessResponse::Pending => {
                            self.next_token += 1;
                            self.pending_loads += 1;
                            self.window.push_back(Slot {
                                is_load: true,
                                done_at: None,
                                token,
                            });
                        }
                        AccessResponse::Retry => {
                            self.stalled_op = Some(op);
                            if dispatched == 1 {
                                self.stats.dispatch_retry_cycles += 1;
                            }
                            return;
                        }
                    }
                }
                TraceOp::Store { addr, pc } => {
                    let acc = MemAccess {
                        addr,
                        pc,
                        kind: AccessKind::Store,
                        token: u64::MAX,
                        runahead: false,
                    };
                    match mem.access(self.id, &acc, now) {
                        AccessResponse::Retry => {
                            self.stalled_op = Some(op);
                            if dispatched == 1 {
                                self.stats.dispatch_retry_cycles += 1;
                            }
                            return;
                        }
                        // Stores retire without waiting for memory.
                        AccessResponse::Hit { .. } | AccessResponse::Pending => {
                            self.window.push_back(Slot {
                                is_load: false,
                                done_at: Some(now + 1),
                                token: u64::MAX,
                            });
                        }
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("window_len", &self.window.len())
            .field("in_runahead", &self.in_runahead())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scripted memory system for tests: responds per access in FIFO order.
    struct Script {
        responses: VecDeque<AccessResponse>,
        accesses: Vec<MemAccess>,
    }

    impl Script {
        fn always(resp: AccessResponse) -> Self {
            Script {
                responses: VecDeque::new(),
                accesses: Vec::new(),
            }
            .with_default(resp)
        }

        fn with_default(mut self, resp: AccessResponse) -> Self {
            self.responses.push_back(resp); // sentinel reused forever
            self
        }
    }

    impl MemorySystem for Script {
        fn access(&mut self, _core: CoreId, acc: &MemAccess, _now: Cycle) -> AccessResponse {
            self.accesses.push(*acc);
            if self.responses.len() > 1 {
                self.responses.pop_front().expect("non-empty")
            } else {
                *self.responses.front().expect("sentinel")
            }
        }
    }

    #[derive(Clone)]
    struct Repeat(Vec<TraceOp>, usize);

    impl TraceSource for Repeat {
        fn next_op(&mut self) -> TraceOp {
            let op = self.0[self.1 % self.0.len()];
            self.1 += 1;
            op
        }
        fn fork(&self) -> Box<dyn TraceSource> {
            Box::new(self.clone())
        }
    }

    fn load(addr: u64) -> TraceOp {
        TraceOp::Load {
            addr: Addr::new(addr),
            pc: 0x400,
            dep: false,
        }
    }

    fn dep_load(addr: u64) -> TraceOp {
        TraceOp::Load {
            addr: Addr::new(addr),
            pc: 0x400,
            dep: true,
        }
    }

    fn cfg() -> CoreConfig {
        CoreConfig {
            window_entries: 8,
            width: 2,
            runahead: false,
            runahead_max_ops: 16,
        }
    }

    #[test]
    fn compute_only_retires_at_full_width() {
        let mut core = Core::new(CoreId::new(0), cfg());
        let mut trace = Repeat(vec![TraceOp::Compute], 0);
        let mut mem = Script::always(AccessResponse::Hit { latency: 1 });
        for now in 0..100 {
            core.tick(now, &mut trace, &mut mem);
        }
        // Steady state: 2 per cycle (minus pipeline fill).
        assert!(core.stats().retired_instructions >= 190);
        assert_eq!(core.stats().window_stall_cycles, 0);
    }

    #[test]
    fn pending_load_blocks_retirement_and_counts_spl() {
        let mut core = Core::new(CoreId::new(0), cfg());
        let mut trace = Repeat(vec![load(64), TraceOp::Compute], 0);
        let mut mem = Script::always(AccessResponse::Pending);
        for now in 0..50 {
            core.tick(now, &mut trace, &mut mem);
        }
        assert_eq!(core.stats().retired_instructions, 0);
        assert!(core.stats().window_stall_cycles > 40);
    }

    #[test]
    fn complete_unblocks_the_head_load() {
        let mut core = Core::new(CoreId::new(0), cfg());
        let mut trace = Repeat(vec![load(64), TraceOp::Compute], 0);
        let mut mem = Script::always(AccessResponse::Pending);
        core.tick(0, &mut trace, &mut mem); // dispatch load (token 0) + compute
        core.tick(1, &mut trace, &mut mem);
        assert_eq!(core.stats().retired_instructions, 0);
        core.complete(0, 2);
        core.tick(3, &mut trace, &mut mem);
        assert!(core.stats().retired_instructions >= 1);
        assert!(core.stats().retired_loads >= 1);
    }

    #[test]
    fn hit_loads_retire_after_latency() {
        let mut core = Core::new(CoreId::new(0), cfg());
        let mut trace = Repeat(vec![load(64)], 0);
        let mut mem = Script::always(AccessResponse::Hit { latency: 3 });
        for now in 0..20 {
            core.tick(now, &mut trace, &mut mem);
        }
        assert!(core.stats().retired_loads > 5);
    }

    #[test]
    fn retry_stalls_dispatch_without_losing_the_op() {
        let mut core = Core::new(CoreId::new(0), cfg());
        let mut trace = Repeat(vec![load(64)], 0);
        // First 3 responses Retry, then always hit.
        let mut mem = Script {
            responses: VecDeque::from(vec![
                AccessResponse::Retry,
                AccessResponse::Retry,
                AccessResponse::Retry,
                AccessResponse::Hit { latency: 1 },
            ]),
            accesses: Vec::new(),
        };
        for now in 0..10 {
            core.tick(now, &mut trace, &mut mem);
        }
        // All accesses target the same address: the op was retried, not
        // skipped.
        assert!(mem.accesses.len() >= 4);
        assert!(mem
            .accesses
            .iter()
            .all(|a| a.addr == Addr::new(64) || a.addr == Addr::new(64)));
        assert!(core.stats().retired_loads > 0);
    }

    #[test]
    fn stores_do_not_block_retirement() {
        let mut core = Core::new(CoreId::new(0), cfg());
        let mut trace = Repeat(
            vec![TraceOp::Store {
                addr: Addr::new(64),
                pc: 0,
            }],
            0,
        );
        let mut mem = Script::always(AccessResponse::Pending);
        for now in 0..50 {
            core.tick(now, &mut trace, &mut mem);
        }
        assert!(core.stats().retired_instructions > 80);
        assert_eq!(core.stats().window_stall_cycles, 0);
    }

    #[test]
    fn runahead_issues_future_requests_while_stalled() {
        let mut c = cfg();
        c.runahead = true;
        let mut core = Core::new(CoreId::new(0), c);
        // Head load pends forever; the rest of the trace is loads to
        // distinct addresses.
        let ops: Vec<TraceOp> = (0..64).map(|i| load(64 * (i + 1))).collect();
        let mut trace = Repeat(ops, 0);
        let mut mem = Script::always(AccessResponse::Pending);
        for now in 0..100 {
            core.tick(now, &mut trace, &mut mem);
        }
        assert!(core.in_runahead());
        assert_eq!(core.stats().runahead_episodes, 1);
        assert!(core.stats().runahead_requests > 0);
        let ra_accesses = mem.accesses.iter().filter(|a| a.runahead).count();
        assert!(ra_accesses > 0);
    }

    #[test]
    fn runahead_exits_when_head_completes() {
        let mut c = cfg();
        c.runahead = true;
        let mut core = Core::new(CoreId::new(0), c);
        let ops: Vec<TraceOp> = (0..64).map(|i| load(64 * (i + 1))).collect();
        let mut trace = Repeat(ops, 0);
        let mut mem = Script::always(AccessResponse::Pending);
        for now in 0..50 {
            core.tick(now, &mut trace, &mut mem);
        }
        assert!(core.in_runahead());
        // Wake every outstanding load.
        for token in 0..100 {
            core.complete(token, 50);
        }
        core.tick(51, &mut trace, &mut mem);
        assert!(!core.in_runahead());
    }

    #[test]
    fn runahead_respects_op_budget() {
        let mut c = cfg();
        c.runahead = true;
        c.runahead_max_ops = 4;
        let mut core = Core::new(CoreId::new(0), c);
        let ops: Vec<TraceOp> = (0..64).map(|i| load(64 * (i + 1))).collect();
        let mut trace = Repeat(ops, 0);
        let mut mem = Script::always(AccessResponse::Pending);
        for now in 0..100 {
            core.tick(now, &mut trace, &mut mem);
        }
        assert!(core.stats().runahead_requests <= 4);
    }

    #[test]
    fn dependent_loads_serialize_misses() {
        // All loads dependent and all pending: only one memory access can
        // be outstanding at a time (MLP = 1).
        let mut core = Core::new(CoreId::new(0), cfg());
        let ops: Vec<TraceOp> = (0..32).map(|i| dep_load(64 * (i + 1))).collect();
        let mut trace = Repeat(ops, 0);
        let mut mem = Script::always(AccessResponse::Pending);
        for now in 0..20 {
            core.tick(now, &mut trace, &mut mem);
        }
        assert_eq!(mem.accesses.len(), 1, "second dep load must wait");
        core.complete(0, 20);
        for now in 21..25 {
            core.tick(now, &mut trace, &mut mem);
        }
        assert_eq!(mem.accesses.len(), 2, "drain allows the next load");
    }

    #[test]
    fn independent_loads_overlap_misses() {
        let mut core = Core::new(CoreId::new(0), cfg());
        let ops: Vec<TraceOp> = (0..32).map(|i| load(64 * (i + 1))).collect();
        let mut trace = Repeat(ops, 0);
        let mut mem = Script::always(AccessResponse::Pending);
        for now in 0..20 {
            core.tick(now, &mut trace, &mut mem);
        }
        assert!(mem.accesses.len() >= 8, "window full of parallel misses");
    }

    #[test]
    fn spl_metric_divides_by_loads() {
        let s = CoreStats {
            retired_loads: 4,
            window_stall_cycles: 100,
            ..CoreStats::default()
        };
        assert!((s.spl() - 25.0).abs() < 1e-12);
        assert_eq!(CoreStats::default().spl(), 0.0);
    }

    #[test]
    fn ipc_metric() {
        let s = CoreStats {
            retired_instructions: 500,
            ..CoreStats::default()
        };
        assert!((s.ipc(1000) - 0.5).abs() < 1e-12);
        assert_eq!(s.ipc(0), 0.0);
    }

    /// The deferred-replay contract the per-core event horizon depends
    /// on: classifying a stall once and replaying the whole window later
    /// with [`Core::skip_idle_cycles`] is indistinguishable from ticking
    /// through it cycle by cycle — both before and after the wake-up.
    #[test]
    fn deferred_skip_replay_matches_ticked_stalls() {
        let drive =
            |core: &mut Core, trace: &mut Repeat, mem: &mut Script, range: std::ops::Range<u64>| {
                for now in range {
                    core.tick(now, trace, mem);
                }
            };
        let mk = || {
            (
                Core::new(CoreId::new(0), cfg()),
                Repeat(vec![load(64), load(128)], 0),
                Script::always(AccessResponse::Pending),
            )
        };
        let (mut ticked, mut trace_a, mut mem_a) = mk();
        let (mut skipped, mut trace_b, mut mem_b) = mk();
        // Identical warm-up until the window is full of pending loads.
        drive(&mut ticked, &mut trace_a, &mut mem_a, 0..6);
        drive(&mut skipped, &mut trace_b, &mut mem_b, 0..6);
        let idle = skipped.idle_state(6).expect("full window of pending loads");
        assert!(idle.wake_at.is_none(), "externally woken only");

        // One core ticks through the stall; the other replays it later in
        // a single deferred call.
        drive(&mut ticked, &mut trace_a, &mut mem_a, 6..60);
        skipped.skip_idle_cycles(&idle, 54);
        assert_eq!(ticked.stats(), skipped.stats());
        assert_eq!(
            mem_a.accesses.len(),
            mem_b.accesses.len(),
            "a pure stall must not touch memory"
        );

        // Both wake identically and keep matching afterwards.
        ticked.complete(0, 60);
        skipped.complete(0, 60);
        drive(&mut ticked, &mut trace_a, &mut mem_a, 61..70);
        drive(&mut skipped, &mut trace_b, &mut mem_b, 61..70);
        assert_eq!(ticked.stats(), skipped.stats());
        assert!(ticked.stats().retired_instructions > 0);
    }
}
