//! Integration tests for the core's stall accounting: the dispatch-stall
//! breakdown must attribute every lost cycle to the right cause.

use padc_cpu::{AccessResponse, Core, CoreConfig, MemAccess, MemorySystem, TraceOp, TraceSource};
use padc_types::{Addr, CoreId, Cycle};

#[derive(Clone)]
struct Loop(Vec<TraceOp>, usize);

impl TraceSource for Loop {
    fn next_op(&mut self) -> TraceOp {
        let op = self.0[self.1 % self.0.len()];
        self.1 += 1;
        op
    }
    fn fork(&self) -> Box<dyn TraceSource> {
        Box::new(self.clone())
    }
}

struct Always(AccessResponse);

impl MemorySystem for Always {
    fn access(&mut self, _c: CoreId, _a: &MemAccess, _n: Cycle) -> AccessResponse {
        self.0
    }
}

fn load(dep: bool) -> TraceOp {
    TraceOp::Load {
        addr: Addr::new(0x40),
        pc: 0x400,
        dep,
    }
}

fn small_core() -> Core {
    Core::new(
        CoreId::new(0),
        CoreConfig {
            window_entries: 8,
            width: 2,
            runahead: false,
            runahead_max_ops: 8,
        },
    )
}

#[test]
fn retry_stalls_are_attributed() {
    let mut core = small_core();
    let mut trace = Loop(vec![load(false)], 0);
    let mut mem = Always(AccessResponse::Retry);
    for now in 0..50 {
        core.tick(now, &mut trace, &mut mem);
    }
    let s = core.stats();
    assert!(s.dispatch_retry_cycles > 40, "retry cycles: {s:?}");
    assert_eq!(s.dispatch_dep_cycles, 0);
    assert_eq!(s.retired_instructions, 0);
}

#[test]
fn dep_stalls_are_attributed() {
    let mut core = small_core();
    // One independent pending load, then dependent loads forever.
    let mut trace = Loop(vec![load(false), load(true)], 0);
    let mut mem = Always(AccessResponse::Pending);
    for now in 0..50 {
        core.tick(now, &mut trace, &mut mem);
    }
    let s = core.stats();
    assert!(s.dispatch_dep_cycles > 40, "dep cycles: {s:?}");
    assert_eq!(s.dispatch_retry_cycles, 0);
}

#[test]
fn window_full_stalls_are_attributed() {
    let mut core = small_core();
    let mut trace = Loop(vec![load(false)], 0);
    let mut mem = Always(AccessResponse::Pending);
    for now in 0..50 {
        core.tick(now, &mut trace, &mut mem);
    }
    let s = core.stats();
    assert!(
        s.dispatch_window_full_cycles > 35,
        "window-full cycles: {s:?}"
    );
    // The head load also accrues SPL.
    assert!(s.window_stall_cycles > 35);
}

#[test]
fn healthy_pipeline_has_no_stall_attribution() {
    let mut core = small_core();
    let mut trace = Loop(vec![TraceOp::Compute, load(false)], 0);
    let mut mem = Always(AccessResponse::Hit { latency: 2 });
    for now in 0..100 {
        core.tick(now, &mut trace, &mut mem);
    }
    let s = core.stats();
    assert_eq!(s.dispatch_retry_cycles, 0);
    assert_eq!(s.dispatch_dep_cycles, 0);
    assert!(s.retired_instructions > 150);
}
