//! Property tests for the synthetic trace generators.

use padc_cpu::{TraceOp, TraceSource};
use padc_types::LINE_BYTES;
use padc_workloads::{BenchProfile, Pattern, PhaseSpec, PrefetchClass, TraceGen};
use proptest::prelude::*;

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        (1usize..8).prop_map(|streams| Pattern::Stream { streams }),
        (1u32..128).prop_map(|run_len| Pattern::ShortRuns { run_len }),
        Just(Pattern::Random),
        ((1i64..32), (1usize..4))
            .prop_map(|(stride, streams)| Pattern::Strided { stride, streams }),
    ]
}

fn arb_profile() -> impl Strategy<Value = BenchProfile> {
    (
        arb_pattern(),
        0.05f64..0.9,
        0.0f64..0.5,
        0.0f64..0.9,
        1u32..16,
        0.0f64..1.0,
        12u32..22,
    )
        .prop_map(
            |(pattern, mem_ratio, store_fraction, hot_fraction, apl, dep, ws_log)| BenchProfile {
                name: "prop".into(),
                class: PrefetchClass::Friendly,
                mem_ratio,
                store_fraction,
                hot_fraction,
                hot_lines: 64,
                working_set_lines: 1 << ws_log,
                accesses_per_line: apl,
                dependent_fraction: dep,
                irregular_fraction: 0.0,
                phases: vec![PhaseSpec {
                    pattern,
                    instructions: 10_000,
                }],
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generators are deterministic and fork-consistent for arbitrary
    /// profiles.
    #[test]
    fn generator_is_deterministic(profile in arb_profile(), seed in any::<u64>()) {
        let mut a = TraceGen::new(&profile, 0, seed);
        let mut b = TraceGen::new(&profile, 0, seed);
        for _ in 0..200 {
            prop_assert_eq!(a.next_op(), b.next_op());
        }
        let mut f = a.fork();
        for _ in 0..100 {
            prop_assert_eq!(a.next_op(), f.next_op());
        }
    }

    /// All generated addresses stay within the core's address span and the
    /// profile's working set + hot set.
    #[test]
    fn addresses_stay_in_bounds(profile in arb_profile(), core in 0usize..8) {
        let span = padc_workloads::TraceGen::new(&profile, core, 1);
        let mut g = span;
        let base = core as u64 * (1 << 32);
        let limit = profile.working_set_lines + profile.hot_lines;
        for _ in 0..500 {
            if let TraceOp::Load { addr, .. } | TraceOp::Store { addr, .. } = g.next_op() {
                let line = addr.raw() / LINE_BYTES;
                prop_assert!(line >= base, "line below core base");
                prop_assert!(line < base + limit, "line beyond working+hot set");
            }
        }
    }

    /// The memory-op density approximately matches `mem_ratio`.
    #[test]
    fn mem_ratio_is_respected(profile in arb_profile()) {
        let mut g = TraceGen::new(&profile, 0, 7);
        let n = 4000;
        let mem = (0..n).filter(|_| g.next_op().is_memory()).count();
        let observed = mem as f64 / n as f64;
        prop_assert!((observed - profile.mem_ratio).abs() < 0.12,
            "mem ratio {observed:.2} vs configured {:.2}", profile.mem_ratio);
    }
}
