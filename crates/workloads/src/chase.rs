//! A dependent pointer-chase trace source: the truest MLP=1 workload,
//! where every load's address is data-dependent on the previous load.
//!
//! The phase-based [`crate::TraceGen`] approximates pointer chasing with a
//! high `dependent_fraction`; this source is the exact version, useful for
//! latency-bound microbenchmarks (e.g. measuring effective DRAM load-to-use
//! latency under different scheduling policies).

use padc_cpu::{TraceOp, TraceSource};
use padc_types::{Addr, LINE_BYTES};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of a pointer chase.
#[derive(Clone, Copy, Debug)]
pub struct ChaseConfig {
    /// Nodes in the chased list (one cache line each).
    pub nodes: u64,
    /// Compute instructions between consecutive chase loads.
    pub work_per_hop: u32,
    /// Seed for the (fixed, cyclic) permutation.
    pub seed: u64,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            nodes: 1 << 16, // 4MB of nodes: larger than any private L2
            work_per_hop: 4,
            seed: 1,
        }
    }
}

/// Walks a random cyclic permutation of `nodes` lines, emitting one
/// dependent load per hop — memory-level parallelism is exactly 1.
///
/// ```
/// use padc_workloads::{ChaseConfig, PointerChase};
/// use padc_cpu::{TraceOp, TraceSource};
///
/// let mut chase = PointerChase::new(ChaseConfig { nodes: 64, work_per_hop: 0, seed: 7 });
/// // Every op is a dependent load.
/// for _ in 0..128 {
///     match chase.next_op() {
///         TraceOp::Load { dep, .. } => assert!(dep),
///         other => panic!("unexpected {other:?}"),
///     }
/// }
/// ```
#[derive(Clone, Debug)]
pub struct PointerChase {
    /// next[i] = successor node of node i (a single cycle over all nodes).
    next: std::sync::Arc<[u32]>,
    current: u32,
    work_left: u32,
    cfg: ChaseConfig,
}

impl PointerChase {
    /// Builds the chase. The permutation is a single cycle (Sattolo's
    /// algorithm), so every node is visited before any repeats.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is 0 or exceeds `u32::MAX`.
    pub fn new(cfg: ChaseConfig) -> Self {
        assert!(cfg.nodes > 0, "need at least one node");
        assert!(cfg.nodes <= u32::MAX as u64, "too many nodes");
        let n = cfg.nodes as usize;
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        // Sattolo: uniform random single-cycle permutation.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..i);
            perm.swap(i, j);
        }
        // perm is an ordering; build successor links along it.
        let mut next = vec![0u32; n];
        for w in perm.windows(2) {
            next[w[0] as usize] = w[1];
        }
        next[perm[n - 1] as usize] = perm[0];
        PointerChase {
            next: next.into(),
            current: 0,
            work_left: 0,
            cfg,
        }
    }

    /// The list length in nodes.
    pub fn nodes(&self) -> u64 {
        self.cfg.nodes
    }
}

impl TraceSource for PointerChase {
    fn next_op(&mut self) -> TraceOp {
        if self.work_left > 0 {
            self.work_left -= 1;
            return TraceOp::Compute;
        }
        self.work_left = self.cfg.work_per_hop;
        self.current = self.next[self.current as usize];
        TraceOp::Load {
            addr: Addr::new(self.current as u64 * LINE_BYTES),
            pc: 0x500,
            dep: true,
        }
    }

    fn fork(&self) -> Box<dyn TraceSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_single_cycle() {
        let chase = PointerChase::new(ChaseConfig {
            nodes: 257,
            work_per_hop: 0,
            seed: 3,
        });
        let mut seen = vec![false; 257];
        let mut cur = 0u32;
        for _ in 0..257 {
            cur = chase.next[cur as usize];
            assert!(!seen[cur as usize], "node {cur} revisited early");
            seen[cur as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "every node visited exactly once");
    }

    #[test]
    fn work_per_hop_inserts_compute() {
        let mut chase = PointerChase::new(ChaseConfig {
            nodes: 16,
            work_per_hop: 3,
            seed: 1,
        });
        let ops: Vec<TraceOp> = (0..8).map(|_| chase.next_op()).collect();
        assert!(matches!(ops[0], TraceOp::Load { .. }));
        assert!(ops[1..4].iter().all(|o| *o == TraceOp::Compute));
        assert!(matches!(ops[4], TraceOp::Load { .. }));
    }

    #[test]
    fn fork_replays_identically() {
        let mut chase = PointerChase::new(ChaseConfig::default());
        for _ in 0..100 {
            chase.next_op();
        }
        let mut f = chase.fork();
        for _ in 0..50 {
            assert_eq!(chase.next_op(), f.next_op());
        }
    }

    #[test]
    #[should_panic(expected = "need at least one node")]
    fn zero_nodes_rejected() {
        let _ = PointerChase::new(ChaseConfig {
            nodes: 0,
            work_per_hop: 0,
            seed: 1,
        });
    }
}
