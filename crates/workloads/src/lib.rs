//! Synthetic SPEC-like workloads for the PADC simulation suite.
//!
//! The paper evaluates on SPEC CPU 2000/2006 traces, which are not
//! redistributable. This crate substitutes seeded synthetic trace
//! generators, one named [`BenchProfile`] per paper benchmark, each tuned to
//! reproduce the three characteristics PADC's behaviour actually depends on
//! (paper Table 5):
//!
//! 1. **Memory intensity** (MPKI class) — via the memory-op ratio, the
//!    spatial reuse per line, and the working-set size;
//! 2. **Row-buffer locality** — via streaming/strided vs. random access
//!    patterns;
//! 3. **Prefetch-friendliness** (stream-prefetcher accuracy/coverage and
//!    its phase behaviour) — via the run length of sequential bursts:
//!    long runs are prefetch-friendly, short runs train the stream
//!    prefetcher and then abandon it (useless prefetches), and phase lists
//!    alternate the two (e.g. `milc`'s accuracy phases, Fig. 4(b)).
//!
//! [`TraceGen`] implements `padc_cpu::TraceSource` and is deterministic for
//! a given (profile, seed) pair.
//!
//! # Example
//!
//! ```
//! use padc_workloads::{profiles, TraceGen};
//! use padc_cpu::TraceSource;
//!
//! let mut gen = TraceGen::new(&profiles::libquantum(), 0, 7);
//! let ops: Vec<_> = (0..100).map(|_| gen.next_op()).collect();
//! assert!(ops.iter().any(|op| op.is_memory()));
//! ```

#![warn(missing_docs)]

mod chase;
mod generator;
mod multiprog;
mod profile;
pub mod profiles;
mod tracefile;

pub use chase::{ChaseConfig, PointerChase};
pub use generator::TraceGen;
pub use multiprog::{random_workloads, Workload};
pub use profile::{BenchProfile, Pattern, PhaseSpec, PrefetchClass};
pub use tracefile::{format_trace, parse_trace, ParseTraceError, TraceFileSource};
