//! A plain-text trace format, so the simulator can run recorded traces
//! (e.g. converted from Pin/DynamoRIO tools) instead of synthetic
//! profiles.
//!
//! Format: one operation per line, `#` comments and blank lines ignored.
//!
//! ```text
//! # ops:
//! C 3                 # three non-memory instructions
//! L 0x1a2b40 0x400    # load  <byte-addr> <pc>
//! D 0x1a2b80 0x404    # dependent load (waits for outstanding loads)
//! S 0x1a2bc0 0x408    # store <byte-addr> <pc>
//! ```
//!
//! A [`TraceFileSource`] replays the parsed trace cyclically (traces are
//! finite; cores are driven until an instruction budget, so the trace loops
//! like the paper's Pinpoint slices effectively do across intervals).

use std::fmt::Write as _;
use std::path::Path;

use padc_cpu::{TraceOp, TraceSource};
use padc_types::Addr;

/// Error produced when a trace file cannot be parsed.
#[derive(Debug)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

fn parse_u64(tok: &str) -> Option<u64> {
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        tok.parse().ok()
    }
}

/// Parses the text trace format into operations.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on an unknown opcode, missing operand, or
/// malformed number.
pub fn parse_trace(text: &str) -> Result<Vec<TraceOp>, ParseTraceError> {
    let mut ops = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut toks = content.split_whitespace();
        let op = toks.next().expect("non-empty after trim");
        let err = |message: &str| ParseTraceError {
            line,
            message: message.to_string(),
        };
        match op {
            "C" => {
                let n = toks
                    .next()
                    .and_then(parse_u64)
                    .ok_or_else(|| err("C needs a count"))?;
                for _ in 0..n {
                    ops.push(TraceOp::Compute);
                }
            }
            "L" | "D" | "S" => {
                let addr = toks
                    .next()
                    .and_then(parse_u64)
                    .ok_or_else(|| err("missing/invalid address"))?;
                let pc = toks
                    .next()
                    .and_then(parse_u64)
                    .ok_or_else(|| err("missing/invalid pc"))?;
                ops.push(match op {
                    "L" => TraceOp::Load {
                        addr: Addr::new(addr),
                        pc,
                        dep: false,
                    },
                    "D" => TraceOp::Load {
                        addr: Addr::new(addr),
                        pc,
                        dep: true,
                    },
                    _ => TraceOp::Store {
                        addr: Addr::new(addr),
                        pc,
                    },
                });
            }
            other => return Err(err(&format!("unknown opcode {other:?}"))),
        }
        if toks.next().is_some() {
            return Err(err("trailing tokens"));
        }
    }
    if ops.is_empty() {
        return Err(ParseTraceError {
            line: 0,
            message: "trace contains no operations".to_string(),
        });
    }
    Ok(ops)
}

/// Renders operations back into the text format (inverse of
/// [`parse_trace`]).
pub fn format_trace(ops: &[TraceOp]) -> String {
    let mut out = String::new();
    let mut compute_run = 0u64;
    let flush = |out: &mut String, run: &mut u64| {
        if *run > 0 {
            writeln!(out, "C {run}").expect("string write");
            *run = 0;
        }
    };
    for op in ops {
        match op {
            TraceOp::Compute => compute_run += 1,
            TraceOp::Load { addr, pc, dep } => {
                flush(&mut out, &mut compute_run);
                let k = if *dep { 'D' } else { 'L' };
                writeln!(out, "{k} {:#x} {pc:#x}", addr.raw()).expect("string write");
            }
            TraceOp::Store { addr, pc } => {
                flush(&mut out, &mut compute_run);
                writeln!(out, "S {:#x} {pc:#x}", addr.raw()).expect("string write");
            }
        }
    }
    flush(&mut out, &mut compute_run);
    out
}

/// Replays a parsed trace cyclically as a [`TraceSource`].
///
/// ```
/// use padc_workloads::{parse_trace, TraceFileSource};
/// use padc_cpu::TraceSource;
///
/// let ops = parse_trace("C 2\nL 0x40 0x400\n").expect("valid trace");
/// let mut src = TraceFileSource::new(ops);
/// let first_cycle: Vec<_> = (0..3).map(|_| src.next_op()).collect();
/// let second_cycle: Vec<_> = (0..3).map(|_| src.next_op()).collect();
/// assert_eq!(first_cycle, second_cycle); // cyclic replay
/// ```
#[derive(Clone, Debug)]
pub struct TraceFileSource {
    ops: std::sync::Arc<[TraceOp]>,
    pos: usize,
}

impl TraceFileSource {
    /// Wraps parsed operations.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn new(ops: Vec<TraceOp>) -> Self {
        assert!(!ops.is_empty(), "trace must be non-empty");
        TraceFileSource {
            ops: ops.into(),
            pos: 0,
        }
    }

    /// Loads a trace from a file.
    ///
    /// # Errors
    ///
    /// I/O errors and parse errors, boxed.
    pub fn from_path(path: &Path) -> Result<Self, Box<dyn std::error::Error>> {
        let text = std::fs::read_to_string(path)?;
        Ok(Self::new(parse_trace(&text)?))
    }

    /// Length of one replay cycle in operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Never true (construction rejects empty traces); provided for the
    /// conventional `len`/`is_empty` pair.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl TraceSource for TraceFileSource {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }

    fn fork(&self) -> Box<dyn TraceSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let text = "C 3\nL 0x100 0x400\nD 0x140 0x404\nS 0x180 0x408\n";
        let ops = parse_trace(text).expect("valid");
        assert_eq!(ops.len(), 6);
        assert_eq!(format_trace(&ops), text);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let ops = parse_trace("# header\n\nL 64 1024 # trailing comment\n").expect("valid");
        assert_eq!(
            ops,
            vec![TraceOp::Load {
                addr: Addr::new(64),
                pc: 1024,
                dep: false
            }]
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_trace("C 1\nX 2 3\n").expect_err("bad opcode");
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("unknown opcode"));

        let err = parse_trace("L 0x40\n").expect_err("missing pc");
        assert_eq!(err.line, 1);

        let err = parse_trace("L zz 0\n").expect_err("bad number");
        assert_eq!(err.line, 1);

        let err = parse_trace("# nothing\n").expect_err("empty");
        assert!(err.to_string().contains("no operations"));

        let err = parse_trace("L 0x40 0x400 extra\n").expect_err("trailing");
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn source_replays_cyclically_and_forks() {
        let ops = parse_trace("L 0x40 0x1\nS 0x80 0x2\n").expect("valid");
        let mut src = TraceFileSource::new(ops);
        assert_eq!(src.len(), 2);
        assert!(!src.is_empty());
        let a = src.next_op();
        let mut fork = src.fork();
        assert_eq!(fork.next_op(), src.next_op());
        // After a full cycle we are back at the first op.
        assert_eq!(src.next_op(), a);
    }
}
