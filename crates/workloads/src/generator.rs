use padc_cpu::{TraceOp, TraceSource};
use padc_types::{Addr, LineAddr, LINE_BYTES};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{BenchProfile, Pattern};

/// Address-space span reserved per core so that multiprogrammed workloads
/// never share lines (private working sets, as in the paper's
/// multiprogrammed SPEC mixes).
pub const CORE_ADDRESS_SPAN_LINES: u64 = 1 << 32;

#[derive(Clone, Debug)]
struct Cursor {
    line: u64,
    pc: u64,
}

/// Deterministic trace generator for one core running one benchmark
/// profile. Implements [`TraceSource`]; `fork` clones the full generator
/// state, which is what runahead pre-execution needs.
#[derive(Clone, Debug)]
pub struct TraceGen {
    profile: BenchProfile,
    rng: SmallRng,
    base_line: u64,
    instr_index: u64,
    phase_cycle: u64,
    /// Stream/stride cursors for the current phase (reset on phase change).
    cursors: Vec<Cursor>,
    current_phase: usize,
    /// Remaining accesses to the current line (spatial reuse).
    line_reuse_left: u32,
    current_line: u64,
    current_pc: u64,
    /// Remaining lines in the current short run.
    run_left: u32,
}

impl TraceGen {
    /// Creates a generator for `profile` on core `core_index`, seeded
    /// deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`BenchProfile::validate`].
    pub fn new(profile: &BenchProfile, core_index: usize, seed: u64) -> Self {
        profile.validate();
        let mut hash = seed ^ 0x5851_F42D_4C95_7F2D;
        for b in profile.name.bytes() {
            hash = hash.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        hash = hash.wrapping_add((core_index as u64) << 40);
        let mut gen = TraceGen {
            profile: profile.clone(),
            rng: SmallRng::seed_from_u64(hash),
            base_line: core_index as u64 * CORE_ADDRESS_SPAN_LINES,
            instr_index: 0,
            phase_cycle: profile.phase_cycle_len(),
            cursors: Vec::new(),
            current_phase: usize::MAX,
            line_reuse_left: 0,
            current_line: 0,
            current_pc: 0x1000,
            run_left: 0,
        };
        gen.enter_phase(0);
        gen
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &BenchProfile {
        &self.profile
    }

    fn phase_at(&self, instr: u64) -> usize {
        let mut pos = instr % self.phase_cycle;
        for (i, p) in self.profile.phases.iter().enumerate() {
            if pos < p.instructions {
                return i;
            }
            pos -= p.instructions;
        }
        unreachable!("phase_cycle covers the whole cycle")
    }

    fn enter_phase(&mut self, phase: usize) {
        self.current_phase = phase;
        let ws = self.profile.working_set_lines;
        let n_cursors = match self.profile.phases[phase].pattern {
            Pattern::Stream { streams } | Pattern::Strided { streams, .. } => streams.max(1),
            Pattern::ShortRuns { .. } | Pattern::Random => 1,
        };
        self.cursors = (0..n_cursors)
            .map(|i| Cursor {
                line: self.rng.gen_range(0..ws),
                pc: 0x1000 + (i as u64) * 8,
            })
            .collect();
        self.run_left = 0;
        self.line_reuse_left = 0;
    }

    /// Picks the next (line, pc) according to the phase pattern.
    fn next_pattern_line(&mut self) -> (u64, u64) {
        let ws = self.profile.working_set_lines;
        // Residual irregular accesses: a random line that the stream
        // prefetcher will not have covered (and whose row usually conflicts
        // with the streamed rows).
        if self.profile.irregular_fraction > 0.0
            && self.rng.gen_bool(self.profile.irregular_fraction)
        {
            let line = self.rng.gen_range(0..ws);
            let pc = 0x4000 + self.rng.gen_range(0..8u64) * 8;
            return (line, pc);
        }
        let phase = self.current_phase;
        match self.profile.phases[phase].pattern {
            Pattern::Stream { .. } => {
                let i = self.rng.gen_range(0..self.cursors.len());
                let c = &mut self.cursors[i];
                c.line = (c.line + 1) % ws;
                (c.line, c.pc)
            }
            Pattern::Strided { stride, .. } => {
                let i = self.rng.gen_range(0..self.cursors.len());
                let c = &mut self.cursors[i];
                c.line = c.line.wrapping_add_signed(stride) % ws;
                (c.line, c.pc)
            }
            Pattern::ShortRuns { run_len } => {
                let c = &mut self.cursors[0];
                if self.run_left == 0 {
                    c.line = self.rng.gen_range(0..ws);
                    self.run_left = run_len.max(1);
                } else {
                    c.line = (c.line + 1) % ws;
                }
                self.run_left -= 1;
                (c.line, c.pc)
            }
            Pattern::Random => {
                let line = self.rng.gen_range(0..ws);
                let pc = 0x2000 + (self.rng.gen_range(0..16u64)) * 8;
                (line, pc)
            }
        }
    }

    fn next_mem_line(&mut self) -> (u64, u64) {
        // Spatial reuse: repeat the current line `accesses_per_line` times.
        if self.line_reuse_left == 0 {
            if self.rng.gen_bool(self.profile.hot_fraction) {
                // Hot-set access: hits in the caches, one touch.
                let line = self.rng.gen_range(0..self.profile.hot_lines);
                let pc = 0x3000 + (line % 8) * 8;
                // Hot lines live just above the working set.
                return (self.profile.working_set_lines + line, pc);
            }
            let (line, pc) = self.next_pattern_line();
            self.current_line = line;
            self.current_pc = pc;
            self.line_reuse_left = self.profile.accesses_per_line;
        }
        self.line_reuse_left -= 1;
        (self.current_line, self.current_pc)
    }
}

impl TraceSource for TraceGen {
    fn next_op(&mut self) -> TraceOp {
        let phase = self.phase_at(self.instr_index);
        if phase != self.current_phase {
            self.enter_phase(phase);
        }
        self.instr_index += 1;
        if !self.rng.gen_bool(self.profile.mem_ratio) {
            return TraceOp::Compute;
        }
        let (rel_line, pc) = self.next_mem_line();
        let line = LineAddr::new(self.base_line + rel_line);
        // Touch a pseudo-random byte in the line for realism; the memory
        // system is line-granular anyway.
        let addr = Addr::new(line.base_addr().raw() + self.rng.gen_range(0..LINE_BYTES / 8) * 8);
        if self.rng.gen_bool(self.profile.store_fraction) {
            TraceOp::Store { addr, pc }
        } else {
            let dep = self.rng.gen_bool(self.profile.dependent_fraction);
            TraceOp::Load { addr, pc, dep }
        }
    }

    fn fork(&self) -> Box<dyn TraceSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use crate::{PhaseSpec, PrefetchClass};

    use super::*;

    fn profile(pattern: Pattern) -> BenchProfile {
        BenchProfile {
            name: "test".into(),
            class: PrefetchClass::Friendly,
            mem_ratio: 1.0,
            store_fraction: 0.0,
            hot_fraction: 0.0,
            hot_lines: 16,
            working_set_lines: 1 << 24,
            accesses_per_line: 1,
            dependent_fraction: 0.0,
            irregular_fraction: 0.0,
            phases: vec![PhaseSpec {
                pattern,
                instructions: 10_000,
            }],
        }
    }

    fn lines(gen: &mut TraceGen, n: usize) -> Vec<u64> {
        (0..n)
            .map(|_| match gen.next_op() {
                TraceOp::Load { addr, .. } | TraceOp::Store { addr, .. } => addr.line().raw(),
                TraceOp::Compute => panic!("mem_ratio is 1.0"),
            })
            .collect()
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let p = profile(Pattern::Stream { streams: 4 });
        let mut a = TraceGen::new(&p, 0, 42);
        let mut b = TraceGen::new(&p, 0, 42);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = profile(Pattern::Random);
        let mut a = TraceGen::new(&p, 0, 1);
        let mut b = TraceGen::new(&p, 0, 2);
        let same = (0..100).filter(|_| a.next_op() == b.next_op()).count();
        assert!(same < 100);
    }

    #[test]
    fn cores_use_disjoint_address_spaces() {
        let p = profile(Pattern::Random);
        let mut a = TraceGen::new(&p, 0, 1);
        let mut b = TraceGen::new(&p, 1, 1);
        let la = lines(&mut a, 200);
        let lb = lines(&mut b, 200);
        assert!(la.iter().all(|l| *l < CORE_ADDRESS_SPAN_LINES));
        assert!(lb.iter().all(|l| *l >= CORE_ADDRESS_SPAN_LINES));
    }

    #[test]
    fn stream_pattern_is_sequential_per_stream() {
        let p = profile(Pattern::Stream { streams: 1 });
        let mut g = TraceGen::new(&p, 0, 7);
        let ls = lines(&mut g, 100);
        for w in ls.windows(2) {
            assert_eq!(w[1], w[0] + 1, "single stream must be sequential");
        }
    }

    #[test]
    fn strided_pattern_steps_by_stride() {
        let p = profile(Pattern::Strided {
            stride: 5,
            streams: 1,
        });
        let mut g = TraceGen::new(&p, 0, 7);
        let ls = lines(&mut g, 50);
        for w in ls.windows(2) {
            assert_eq!(w[1], w[0] + 5);
        }
    }

    #[test]
    fn short_runs_jump_after_run_len() {
        let p = profile(Pattern::ShortRuns { run_len: 4 });
        let mut g = TraceGen::new(&p, 0, 7);
        let ls = lines(&mut g, 40);
        // Within a run of 4, deltas are +1; at run boundaries they jump.
        let mut jumps = 0;
        for w in ls.windows(2) {
            if w[1] != w[0] + 1 {
                jumps += 1;
            }
        }
        assert!(jumps >= 8, "expected ~10 jumps, saw {jumps}");
    }

    #[test]
    fn fork_produces_identical_continuation() {
        let p = profile(Pattern::Stream { streams: 4 });
        let mut g = TraceGen::new(&p, 0, 7);
        for _ in 0..100 {
            g.next_op();
        }
        let mut f = g.fork();
        let expected: Vec<_> = (0..50).map(|_| f.next_op()).collect();
        let actual: Vec<_> = (0..50).map(|_| g.next_op()).collect();
        assert_eq!(expected, actual);
    }

    #[test]
    fn phases_change_pattern() {
        let mut p = profile(Pattern::Stream { streams: 1 });
        p.phases = vec![
            PhaseSpec {
                pattern: Pattern::Stream { streams: 1 },
                instructions: 100,
            },
            PhaseSpec {
                pattern: Pattern::Random,
                instructions: 100,
            },
        ];
        let mut g = TraceGen::new(&p, 0, 7);
        let first = lines(&mut g, 100);
        let second = lines(&mut g, 100);
        let seq = |v: &[u64]| v.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(seq(&first) > 90);
        assert!(seq(&second) < 20);
    }

    #[test]
    fn accesses_per_line_creates_reuse() {
        let mut p = profile(Pattern::Stream { streams: 1 });
        p.accesses_per_line = 4;
        let mut g = TraceGen::new(&p, 0, 7);
        let ls = lines(&mut g, 40);
        let distinct: std::collections::BTreeSet<_> = ls.iter().collect();
        assert_eq!(distinct.len(), 10);
    }

    #[test]
    fn hot_fraction_concentrates_accesses() {
        let mut p = profile(Pattern::Random);
        p.hot_fraction = 0.9;
        p.hot_lines = 4;
        let mut g = TraceGen::new(&p, 0, 7);
        let ls = lines(&mut g, 1000);
        let hot_base = p.working_set_lines;
        let hot = ls
            .iter()
            .filter(|l| **l >= hot_base && **l < hot_base + 4)
            .count();
        assert!(hot > 800, "hot accesses: {hot}");
    }

    #[test]
    fn mem_ratio_controls_memory_op_density() {
        let mut p = profile(Pattern::Random);
        p.mem_ratio = 0.25;
        let mut g = TraceGen::new(&p, 0, 7);
        let mem = (0..10_000).filter(|_| g.next_op().is_memory()).count();
        assert!((2000..3000).contains(&mem), "mem ops: {mem}");
    }
}
