use serde::{Deserialize, Serialize};

/// The paper's three-way benchmark classification (§5.1): prefetching has
/// little effect (0), helps (1), or hurts (2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum PrefetchClass {
    /// Class 0 — prefetch-insensitive.
    Insensitive,
    /// Class 1 — prefetch-friendly.
    Friendly,
    /// Class 2 — prefetch-unfriendly.
    Unfriendly,
}

impl PrefetchClass {
    /// The paper's numeric class code.
    pub fn code(self) -> u8 {
        match self {
            PrefetchClass::Insensitive => 0,
            PrefetchClass::Friendly => 1,
            PrefetchClass::Unfriendly => 2,
        }
    }
}

/// The address-generation pattern of one phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Pattern {
    /// Long sequential streams over `streams` concurrent regions —
    /// prefetch-friendly, high row-buffer locality.
    Stream {
        /// Concurrent stream cursors.
        streams: usize,
    },
    /// Sequential runs of `run_len` lines followed by a random jump. Short
    /// runs train the stream prefetcher and then strand its prefetches
    /// (useless); runs moderately longer than the prefetch distance yield
    /// intermediate accuracy.
    ShortRuns {
        /// Lines per sequential run before jumping.
        run_len: u32,
    },
    /// Uniform random lines over the working set — low row-buffer locality,
    /// never triggers the stream prefetcher.
    Random,
    /// Constant-stride walks over `streams` regions (trains PC-stride
    /// prefetchers; strides > 1 defeat simple next-line prefetching).
    Strided {
        /// Stride in lines.
        stride: i64,
        /// Concurrent strided cursors.
        streams: usize,
    },
}

/// One phase of a benchmark: a pattern active for a number of instructions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Address pattern during the phase.
    pub pattern: Pattern,
    /// Phase length in instructions; the phase list cycles.
    pub instructions: u64,
}

/// A named synthetic benchmark, standing in for one SPEC benchmark of the
/// paper's Table 5.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct BenchProfile {
    /// Benchmark name (paper's naming, e.g. `"libquantum_06"`).
    pub name: String,
    /// Prefetch-friendliness class the profile is tuned to reproduce.
    pub class: PrefetchClass,
    /// Memory operations per instruction.
    pub mem_ratio: f64,
    /// Fraction of memory ops that are stores.
    pub store_fraction: f64,
    /// Fraction of memory ops that go to a small hot set (cache hits).
    pub hot_fraction: f64,
    /// Hot-set size in lines (should fit in L1/L2).
    pub hot_lines: u64,
    /// Working-set size in lines for the pattern accesses.
    pub working_set_lines: u64,
    /// Consecutive accesses to each line before moving on (spatial reuse;
    /// raises L1 hit rate, lowers MPKI).
    pub accesses_per_line: u32,
    /// Fraction of loads whose address depends on in-flight loads (bounds
    /// memory-level parallelism: MLP ≈ 1/dependent_fraction). Pointer-chase
    /// codes approach 1.0; vectorizable streaming codes sit near 0.2.
    pub dependent_fraction: f64,
    /// Fraction of pattern accesses that go to a random line instead of
    /// following the pattern — the residual irregular (index/pointer)
    /// misses every real streaming code has. These are not covered by the
    /// stream prefetcher and usually conflict with the streamed rows, which
    /// is what makes rigid demand-first scheduling destroy row locality
    /// (paper §3).
    pub irregular_fraction: f64,
    /// Cyclic phase list.
    pub phases: Vec<PhaseSpec>,
}

impl BenchProfile {
    /// Total instructions in one cycle of the phase list.
    pub fn phase_cycle_len(&self) -> u64 {
        self.phases.iter().map(|p| p.instructions).sum()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if ratios are out of range, the phase list is empty, or sizes
    /// are zero.
    pub fn validate(&self) {
        assert!(!self.name.is_empty(), "profile must be named");
        assert!(
            (0.0..=1.0).contains(&self.mem_ratio),
            "{}: mem_ratio out of range",
            self.name
        );
        assert!(
            (0.0..=1.0).contains(&self.store_fraction),
            "{}: store_fraction out of range",
            self.name
        );
        assert!(
            (0.0..=1.0).contains(&self.hot_fraction),
            "{}: hot_fraction out of range",
            self.name
        );
        assert!(self.hot_lines > 0, "{}: hot set empty", self.name);
        assert!(
            self.working_set_lines > 0,
            "{}: working set empty",
            self.name
        );
        assert!(self.accesses_per_line > 0, "{}: zero reuse", self.name);
        assert!(
            (0.0..=1.0).contains(&self.dependent_fraction),
            "{}: dependent_fraction out of range",
            self.name
        );
        assert!(
            (0.0..=1.0).contains(&self.irregular_fraction),
            "{}: irregular_fraction out of range",
            self.name
        );
        assert!(!self.phases.is_empty(), "{}: no phases", self.name);
        assert!(
            self.phases.iter().all(|p| p.instructions > 0),
            "{}: empty phase",
            self.name
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> BenchProfile {
        BenchProfile {
            name: "t".into(),
            class: PrefetchClass::Friendly,
            mem_ratio: 0.3,
            store_fraction: 0.3,
            hot_fraction: 0.5,
            hot_lines: 64,
            working_set_lines: 1 << 20,
            accesses_per_line: 4,
            dependent_fraction: 0.5,
            irregular_fraction: 0.0,
            phases: vec![PhaseSpec {
                pattern: Pattern::Stream { streams: 2 },
                instructions: 1000,
            }],
        }
    }

    #[test]
    fn minimal_profile_validates() {
        minimal().validate();
        assert_eq!(minimal().phase_cycle_len(), 1000);
    }

    #[test]
    #[should_panic(expected = "mem_ratio out of range")]
    fn bad_mem_ratio_rejected() {
        let mut p = minimal();
        p.mem_ratio = 1.5;
        p.validate();
    }

    #[test]
    #[should_panic(expected = "no phases")]
    fn empty_phases_rejected() {
        let mut p = minimal();
        p.phases.clear();
        p.validate();
    }

    #[test]
    fn class_codes_match_paper() {
        assert_eq!(PrefetchClass::Insensitive.code(), 0);
        assert_eq!(PrefetchClass::Friendly.code(), 1);
        assert_eq!(PrefetchClass::Unfriendly.code(), 2);
    }
}
