//! The benchmark catalog: one synthetic profile per SPEC benchmark the
//! paper evaluates (Table 5 plus the remaining SPEC 2000/2006 programs that
//! round out the 55-benchmark suite).
//!
//! Tuning rationale (see crate docs): memory intensity is set by
//! `mem_ratio`, spatial reuse, and the hot fraction; prefetch-friendliness
//! by the sequential run length relative to the stream prefetcher's
//! 64-line distance (long runs ⇒ accurate, ~100-line runs ⇒ ~35% accurate,
//! short runs ⇒ useless prefetches); `milc`'s accuracy phases alternate
//! friendly and hostile patterns (Fig. 4(b)).

use crate::{BenchProfile, Pattern, PhaseSpec, PrefetchClass};

/// Builds a profile. `mpki` is the approximate L2 MPKI target used to
/// derive the hot-set fraction: `hot = 1 - mpki*apl/(1000*mem_ratio)`.
#[allow(clippy::too_many_arguments)]
fn build(
    name: &str,
    class: PrefetchClass,
    mem_ratio: f64,
    accesses_per_line: u32,
    mpki: f64,
    working_set_lines: u64,
    dependent_fraction: f64,
    phases: Vec<PhaseSpec>,
) -> BenchProfile {
    build_irr(
        name,
        class,
        mem_ratio,
        accesses_per_line,
        mpki,
        working_set_lines,
        dependent_fraction,
        0.0,
        phases,
    )
}

/// [`build`] with an explicit irregular-access fraction.
#[allow(clippy::too_many_arguments)]
fn build_irr(
    name: &str,
    class: PrefetchClass,
    mem_ratio: f64,
    accesses_per_line: u32,
    mpki: f64,
    working_set_lines: u64,
    dependent_fraction: f64,
    irregular_fraction: f64,
    phases: Vec<PhaseSpec>,
) -> BenchProfile {
    let hot = 1.0 - (mpki * accesses_per_line as f64) / (1000.0 * mem_ratio);
    let p = BenchProfile {
        name: name.to_string(),
        class,
        mem_ratio,
        store_fraction: 0.3,
        hot_fraction: hot.clamp(0.0, 0.995),
        hot_lines: 256,
        working_set_lines,
        accesses_per_line,
        dependent_fraction,
        irregular_fraction,
        phases,
    };
    p.validate();
    p
}

fn stream_phase(streams: usize, instructions: u64) -> PhaseSpec {
    PhaseSpec {
        pattern: Pattern::Stream { streams },
        instructions,
    }
}

fn runs_phase(run_len: u32, instructions: u64) -> PhaseSpec {
    PhaseSpec {
        pattern: Pattern::ShortRuns { run_len },
        instructions,
    }
}

fn random_phase(instructions: u64) -> PhaseSpec {
    PhaseSpec {
        pattern: Pattern::Random,
        instructions,
    }
}

const WS_LARGE: u64 = 1 << 22; // 256MB: streaming working sets
const WS_MED: u64 = 1 << 19; // 32MB: larger than any L2 we sweep
const WS_SMALL: u64 = 1 << 14; // 1MB

// ---- Prefetch-friendly, highly streaming (ACC ≈ 100%) ----

/// `libquantum_06` — the paper's canonical prefetch-friendly benchmark:
/// one long sequential stream, ~100% prefetch accuracy, MPKI ≈ 13.5.
pub fn libquantum() -> BenchProfile {
    build(
        "libquantum_06",
        PrefetchClass::Friendly,
        0.30,
        16,
        13.5,
        WS_LARGE,
        0.25,
        vec![stream_phase(1, 1_000_000)],
    )
}

/// `swim_00` — multi-array streaming, MPKI ≈ 27.6, ACC ≈ 100%.
pub fn swim() -> BenchProfile {
    build(
        "swim_00",
        PrefetchClass::Friendly,
        0.35,
        8,
        27.6,
        WS_LARGE,
        0.25,
        vec![stream_phase(4, 1_000_000)],
    )
}

/// `bwaves_06` — streaming, MPKI ≈ 18.7, ACC ≈ 100%.
pub fn bwaves() -> BenchProfile {
    build(
        "bwaves_06",
        PrefetchClass::Friendly,
        0.32,
        10,
        18.7,
        WS_LARGE,
        0.25,
        vec![stream_phase(3, 1_000_000)],
    )
}

/// `leslie3d_06` — streaming with a little irregularity, ACC ≈ 90%.
pub fn leslie3d() -> BenchProfile {
    build(
        "leslie3d_06",
        PrefetchClass::Friendly,
        0.33,
        8,
        20.9,
        WS_LARGE,
        0.3,
        vec![stream_phase(4, 900_000), runs_phase(80, 100_000)],
    )
}

/// `lbm_06` — streaming stencil, ACC ≈ 94%.
pub fn lbm() -> BenchProfile {
    build(
        "lbm_06",
        PrefetchClass::Friendly,
        0.34,
        10,
        20.2,
        WS_LARGE,
        0.25,
        vec![stream_phase(2, 950_000), runs_phase(100, 50_000)],
    )
}

/// `GemsFDTD_06` — streaming stencil, ACC ≈ 91%.
pub fn gems_fdtd() -> BenchProfile {
    build(
        "GemsFDTD_06",
        PrefetchClass::Friendly,
        0.33,
        10,
        15.6,
        WS_LARGE,
        0.3,
        vec![stream_phase(6, 900_000), runs_phase(90, 100_000)],
    )
}

/// `equake_00` — streaming sparse solve, ACC ≈ 96%.
pub fn equake() -> BenchProfile {
    build(
        "equake_00",
        PrefetchClass::Friendly,
        0.33,
        8,
        19.9,
        WS_LARGE,
        0.3,
        vec![stream_phase(3, 950_000), runs_phase(100, 50_000)],
    )
}

/// `soplex_06` — mixed streaming/irregular, ACC ≈ 80%.
pub fn soplex() -> BenchProfile {
    build(
        "soplex_06",
        PrefetchClass::Friendly,
        0.33,
        8,
        21.3,
        WS_LARGE,
        0.35,
        vec![stream_phase(3, 750_000), runs_phase(90, 250_000)],
    )
}

/// `sphinx3_06` — streaming with random lookups, ACC ≈ 55%.
pub fn sphinx3() -> BenchProfile {
    build(
        "sphinx3_06",
        PrefetchClass::Friendly,
        0.31,
        8,
        12.9,
        WS_MED,
        0.4,
        vec![stream_phase(2, 600_000), runs_phase(90, 400_000)],
    )
}

/// `lucas_00` — strided FFT-like access, ACC ≈ 87%.
pub fn lucas() -> BenchProfile {
    build(
        "lucas_00",
        PrefetchClass::Friendly,
        0.30,
        8,
        10.6,
        WS_LARGE,
        0.3,
        vec![stream_phase(2, 850_000), runs_phase(100, 150_000)],
    )
}

/// `mgrid_00` — multigrid streaming, ACC ≈ 97%.
pub fn mgrid() -> BenchProfile {
    build(
        "mgrid_00",
        PrefetchClass::Friendly,
        0.32,
        10,
        6.5,
        WS_LARGE,
        0.25,
        vec![stream_phase(4, 1_000_000)],
    )
}

/// `wrf_06` — streaming weather model, ACC ≈ 95%.
pub fn wrf() -> BenchProfile {
    build(
        "wrf_06",
        PrefetchClass::Friendly,
        0.31,
        10,
        8.1,
        WS_LARGE,
        0.3,
        vec![stream_phase(5, 1_000_000)],
    )
}

/// `cactusADM_06` — moderate-accuracy streaming, ACC ≈ 45%.
pub fn cactus_adm() -> BenchProfile {
    build(
        "cactusADM_06",
        PrefetchClass::Friendly,
        0.30,
        8,
        4.5,
        WS_MED,
        0.4,
        vec![stream_phase(2, 400_000), runs_phase(100, 600_000)],
    )
}

/// `mcf_06` — pointer-heavy but prefetching still helps a little
/// (class 1, ACC ≈ 31%): runs just beyond the prefetch distance.
pub fn mcf() -> BenchProfile {
    build(
        "mcf_06",
        PrefetchClass::Friendly,
        0.40,
        3,
        33.7,
        WS_LARGE,
        0.9,
        vec![runs_phase(96, 1_000_000)],
    )
}

/// `gcc_06` — mixed, ACC ≈ 33%.
pub fn gcc() -> BenchProfile {
    build(
        "gcc_06",
        PrefetchClass::Friendly,
        0.30,
        6,
        6.3,
        WS_MED,
        0.5,
        vec![
            runs_phase(100, 700_000),
            stream_phase(1, 100_000),
            random_phase(200_000),
        ],
    )
}

/// `astar_06` — weakly friendly graph search, ACC ≈ 18%.
pub fn astar() -> BenchProfile {
    build(
        "astar_06",
        PrefetchClass::Friendly,
        0.33,
        4,
        10.2,
        WS_MED,
        0.7,
        vec![runs_phase(78, 900_000), random_phase(100_000)],
    )
}

/// `facerec_00` — streaming with reuse, ACC ≈ 55%.
pub fn facerec() -> BenchProfile {
    build(
        "facerec_00",
        PrefetchClass::Friendly,
        0.30,
        10,
        3.5,
        WS_MED,
        0.4,
        vec![stream_phase(2, 500_000), runs_phase(90, 500_000)],
    )
}

/// `zeusmp_06` — streaming physics, ACC ≈ 56%.
pub fn zeusmp() -> BenchProfile {
    build(
        "zeusmp_06",
        PrefetchClass::Friendly,
        0.30,
        8,
        4.6,
        WS_MED,
        0.4,
        vec![stream_phase(3, 500_000), runs_phase(85, 500_000)],
    )
}

// ---- Prefetch-unfriendly (class 2) ----

/// `art_00` — extremely memory-intensive with ~36% prefetch accuracy:
/// 100-line runs over a big working set, MPKI ≈ 89.
pub fn art() -> BenchProfile {
    build(
        "art_00",
        PrefetchClass::Unfriendly,
        0.45,
        4,
        89.4,
        WS_LARGE,
        0.55,
        vec![runs_phase(100, 1_000_000)],
    )
}

/// `galgel_00` — short runs, ACC ≈ 31%, moderate MPKI.
pub fn galgel() -> BenchProfile {
    build(
        "galgel_00",
        PrefetchClass::Unfriendly,
        0.30,
        6,
        4.3,
        WS_MED,
        0.6,
        vec![runs_phase(94, 800_000), random_phase(200_000)],
    )
}

/// `ammp_00` — almost all prefetches useless (ACC ≈ 6%): very short runs.
pub fn ammp() -> BenchProfile {
    build(
        "ammp_00",
        PrefetchClass::Unfriendly,
        0.30,
        6,
        0.8,
        WS_MED,
        0.85,
        vec![runs_phase(8, 1_000_000)],
    )
}

/// `milc_06` — strong accuracy *phases* (Fig. 4(b)): long useful-prefetch
/// stretches alternating with stretches of useless prefetches. Lifetime
/// ACC ≈ 19%, MPKI ≈ 29.
pub fn milc() -> BenchProfile {
    build(
        "milc_06",
        PrefetchClass::Unfriendly,
        0.38,
        6,
        29.3,
        WS_LARGE,
        0.5,
        vec![
            stream_phase(2, 200_000),
            runs_phase(8, 500_000),
            random_phase(300_000),
        ],
    )
}

/// `omnetpp_06` — discrete-event simulator, ACC ≈ 10%.
pub fn omnetpp() -> BenchProfile {
    build(
        "omnetpp_06",
        PrefetchClass::Unfriendly,
        0.33,
        4,
        10.2,
        WS_MED,
        0.85,
        vec![runs_phase(8, 700_000), random_phase(300_000)],
    )
}

/// `xalancbmk_06` — XML processing, ACC ≈ 9%.
pub fn xalancbmk() -> BenchProfile {
    build(
        "xalancbmk_06",
        PrefetchClass::Unfriendly,
        0.30,
        6,
        1.7,
        WS_MED,
        0.8,
        vec![runs_phase(7, 800_000), random_phase(200_000)],
    )
}

// ---- Prefetch-insensitive (class 0) ----

fn insensitive(name: &str, mpki: f64) -> BenchProfile {
    build(
        name,
        PrefetchClass::Insensitive,
        0.25,
        4,
        mpki.max(0.01),
        WS_SMALL,
        0.5,
        vec![random_phase(900_000), runs_phase(60, 100_000)],
    )
}

/// `eon_00` — compute-bound, MPKI ≈ 0.01.
pub fn eon() -> BenchProfile {
    insensitive("eon_00", 0.01)
}

/// `sjeng_06` — compute-bound chess engine, MPKI ≈ 0.4.
pub fn sjeng() -> BenchProfile {
    insensitive("sjeng_06", 0.4)
}

/// `gamess_06` — compute-bound chemistry, MPKI ≈ 0.04.
pub fn gamess() -> BenchProfile {
    insensitive("gamess_06", 0.04)
}

/// `hmmer_06` — compute-bound with accurate but rare prefetches.
pub fn hmmer() -> BenchProfile {
    build(
        "hmmer_06",
        PrefetchClass::Insensitive,
        0.28,
        8,
        1.8,
        WS_SMALL,
        0.3,
        vec![stream_phase(1, 1_000_000)],
    )
}

/// The full 55-benchmark suite (Table 5's 28 named profiles plus the
/// remaining SPEC 2000/2006 programs, which are predominantly
/// prefetch-insensitive).
pub fn all() -> Vec<BenchProfile> {
    let mut v = vec![
        // Table 5, in paper order.
        eon(),
        mgrid(),
        art(),
        facerec(),
        lucas(),
        mcf(),
        sjeng(),
        libquantum(),
        xalancbmk(),
        gamess(),
        zeusmp(),
        leslie3d(),
        gems_fdtd(),
        wrf(),
        swim(),
        galgel(),
        equake(),
        ammp(),
        gcc(),
        hmmer(),
        omnetpp(),
        astar(),
        bwaves(),
        milc(),
        cactus_adm(),
        soplex(),
        lbm(),
        sphinx3(),
    ];
    // The rest of the 55-benchmark suite. Mostly compute-bound (class 0),
    // with a few mildly memory-intensive entries.
    for (name, mpki) in [
        ("gzip_00", 0.3),
        ("vpr_00", 1.2),
        ("crafty_00", 0.2),
        ("parser_00", 1.0),
        ("perlbmk_00", 0.1),
        ("gap_00", 0.8),
        ("vortex_00", 0.6),
        ("bzip2_00", 1.5),
        ("twolf_00", 0.9),
        ("mesa_00", 0.3),
        ("fma3d_00", 1.1),
        ("sixtrack_00", 0.2),
        ("perlbench_06", 0.4),
        ("bzip2_06", 1.8),
        ("gobmk_06", 0.3),
        ("h264ref_06", 0.5),
        ("tonto_06", 0.3),
        ("namd_06", 0.2),
        ("dealII_06", 0.8),
        ("povray_06", 0.05),
        ("calculix_06", 0.3),
        ("gromacs_06", 0.4),
    ] {
        v.push(insensitive(name, mpki));
    }
    // A few remaining memory-sensitive FP 2000 codes, streaming-friendly.
    for (name, mpki, streams) in [
        ("wupwise_00", 2.0, 2usize),
        ("applu_00", 5.0, 3),
        ("apsi_00", 3.0, 2),
        ("mesa_06_like_sweep", 2.5, 2),
        ("fortran_stream_06", 6.0, 4),
    ] {
        v.push(build(
            name,
            PrefetchClass::Friendly,
            0.30,
            10,
            mpki,
            WS_MED,
            0.3,
            vec![stream_phase(streams, 1_000_000)],
        ));
    }
    assert_eq!(v.len(), 55, "suite must contain 55 benchmarks");
    v
}

/// Looks a profile up by its paper name.
///
/// ```
/// use padc_workloads::profiles;
/// assert!(profiles::by_name("milc_06").is_some());
/// assert!(profiles::by_name("nonesuch").is_none());
/// ```
pub fn by_name(name: &str) -> Option<BenchProfile> {
    all().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_55_valid_unique_profiles() {
        let v = all();
        assert_eq!(v.len(), 55);
        for p in &v {
            p.validate();
        }
        let names: std::collections::BTreeSet<_> = v.iter().map(|p| p.name.clone()).collect();
        assert_eq!(names.len(), 55, "names must be unique");
    }

    #[test]
    fn class_mix_matches_paper_shape() {
        // The paper says 29 of 55 are class 1; we aim for a similar split
        // with a class-1 plurality and a healthy class-2 set.
        let v = all();
        let count = |c: PrefetchClass| v.iter().filter(|p| p.class == c).count();
        assert!(count(PrefetchClass::Friendly) >= 20);
        assert!(count(PrefetchClass::Unfriendly) >= 6);
        assert!(count(PrefetchClass::Insensitive) >= 20);
    }

    #[test]
    fn friendly_profiles_are_stream_dominated() {
        for p in [libquantum(), swim(), bwaves()] {
            let stream_instr: u64 = p
                .phases
                .iter()
                .filter(|ph| matches!(ph.pattern, Pattern::Stream { .. }))
                .map(|ph| ph.instructions)
                .sum();
            assert!(stream_instr * 2 > p.phase_cycle_len(), "{}", p.name);
        }
    }

    #[test]
    fn unfriendly_profiles_avoid_long_streams() {
        for p in [ammp(), omnetpp(), xalancbmk()] {
            let stream_instr: u64 = p
                .phases
                .iter()
                .filter(|ph| matches!(ph.pattern, Pattern::Stream { .. }))
                .map(|ph| ph.instructions)
                .sum();
            assert_eq!(stream_instr, 0, "{}", p.name);
        }
    }

    #[test]
    fn milc_has_phases() {
        assert!(milc().phases.len() >= 2);
    }

    #[test]
    fn memory_intensive_profiles_have_low_hot_fraction() {
        assert!(art().hot_fraction < 0.6);
        assert!(eon().hot_fraction > 0.9);
    }

    #[test]
    fn by_name_round_trips() {
        for p in all() {
            assert_eq!(by_name(&p.name).unwrap().name, p.name);
        }
    }
}
