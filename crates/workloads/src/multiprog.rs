use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{profiles, BenchProfile};

/// A multiprogrammed workload: one benchmark per core.
#[derive(Clone, PartialEq, Debug)]
pub struct Workload {
    /// Benchmarks, index = core index.
    pub benchmarks: Vec<BenchProfile>,
}

impl Workload {
    /// Builds a workload from profiles (one per core).
    ///
    /// # Panics
    ///
    /// Panics if `benchmarks` is empty.
    pub fn new(benchmarks: Vec<BenchProfile>) -> Self {
        assert!(!benchmarks.is_empty(), "workload needs at least one core");
        Workload { benchmarks }
    }

    /// Builds a workload by paper benchmark names.
    ///
    /// # Panics
    ///
    /// Panics if any name is unknown.
    pub fn from_names(names: &[&str]) -> Self {
        Workload::new(
            names
                .iter()
                .map(|n| profiles::by_name(n).unwrap_or_else(|| panic!("unknown benchmark {n}")))
                .collect(),
        )
    }

    /// Number of cores the workload occupies.
    pub fn cores(&self) -> usize {
        self.benchmarks.len()
    }

    /// A short display name, e.g. `"swim_00+bwaves_06"`.
    pub fn label(&self) -> String {
        self.benchmarks
            .iter()
            .map(|b| b.name.as_str())
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// Generates `count` pseudo-random multiprogrammed workloads of `cores`
/// benchmarks each, drawn from the 55-benchmark suite — the paper's
/// methodology for its 54 2-core / 32 4-core / 21 8-core workload sets.
/// Deterministic in `seed`.
///
/// ```
/// use padc_workloads::random_workloads;
/// let w = random_workloads(32, 4, 1);
/// assert_eq!(w.len(), 32);
/// assert!(w.iter().all(|wl| wl.cores() == 4));
/// // Same seed, same workloads.
/// assert_eq!(w, random_workloads(32, 4, 1));
/// ```
pub fn random_workloads(count: usize, cores: usize, seed: u64) -> Vec<Workload> {
    let suite = profiles::all();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0FF_EE00_D15E_A5E5);
    (0..count)
        .map(|_| {
            Workload::new(
                (0..cores)
                    .map(|_| suite[rng.gen_range(0..suite.len())].clone())
                    .collect(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_names_builds_case_study_mixes() {
        let w = Workload::from_names(&["swim_00", "bwaves_06", "leslie3d_06", "soplex_06"]);
        assert_eq!(w.cores(), 4);
        assert_eq!(w.label(), "swim_00+bwaves_06+leslie3d_06+soplex_06");
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        let _ = Workload::from_names(&["not_a_benchmark"]);
    }

    #[test]
    fn random_workloads_are_deterministic_and_sized() {
        let a = random_workloads(21, 8, 7);
        let b = random_workloads(21, 8, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|w| w.cores() == 8));
    }

    #[test]
    fn different_seeds_give_different_sets() {
        assert_ne!(random_workloads(10, 4, 1), random_workloads(10, 4, 2));
    }
}
