//! Property tests for the memory controller: under every scheduling
//! policy, arbitrary request mixes are serviced exactly once, without
//! starvation, and with sane statistics.

use padc_core::{AccuracyTracker, ControllerConfig, MemoryController, SchedulingPolicy};
use padc_dram::{DramConfig, MappingScheme};
use padc_types::{AccessKind, CoreId, LineAddr, RequestKind};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct ReqSpec {
    line: u64,
    core: usize,
    prefetch: bool,
    write: bool,
}

fn arb_req() -> impl Strategy<Value = ReqSpec> {
    (0u64..4096, 0usize..4, any::<bool>(), any::<bool>()).prop_map(
        |(line, core, prefetch, write)| {
            ReqSpec {
                line,
                core,
                // Writebacks are demands in this model.
                prefetch: prefetch && !write,
                write,
            }
        },
    )
}

fn all_policies() -> [SchedulingPolicy; 6] {
    [
        SchedulingPolicy::DemandPrefetchEqual,
        SchedulingPolicy::DemandFirst,
        SchedulingPolicy::PrefetchFirst,
        SchedulingPolicy::ApsOnly,
        SchedulingPolicy::Padc,
        SchedulingPolicy::PadcRank,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every accepted request either completes exactly once or (if APD is
    /// on and it is a prefetch) is dropped exactly once — and the
    /// controller always drains.
    #[test]
    fn requests_complete_exactly_once(reqs in prop::collection::vec(arb_req(), 1..80),
                                      policy_idx in 0usize..6) {
        let policy = all_policies()[policy_idx];
        let mut cfg = ControllerConfig::from_policy(policy, 4);
        cfg.buffer_entries = 32;
        let mut mc = MemoryController::new(cfg, DramConfig::default(), MappingScheme::Linear);
        let tracker = AccuracyTracker::new(4, 100_000);

        let mut now = 0u64;
        let mut accepted = std::collections::BTreeMap::new();
        let mut completed = std::collections::BTreeMap::new();
        let mut dropped = std::collections::BTreeMap::new();
        for r in &reqs {
            // Drain while full.
            while !mc.has_space() {
                let out = mc.tick(now, &tracker);
                for c in out.completions {
                    *completed.entry(c.request.id.raw()).or_insert(0) += 1;
                }
                for d in out.dropped {
                    *dropped.entry(d.id.raw()).or_insert(0) += 1;
                }
                now += 1;
            }
            let kind = if r.prefetch { RequestKind::Prefetch } else { RequestKind::Demand };
            let access = if r.write { AccessKind::Store } else { AccessKind::Load };
            if let Some(id) = mc.enqueue(CoreId::new(r.core), LineAddr::new(r.line), access, kind, now) {
                accepted.insert(id.raw(), ());
            }
            now += 3;
        }
        let deadline = now + 2_000_000;
        while !mc.is_idle() {
            let out = mc.tick(now, &tracker);
            for c in out.completions {
                *completed.entry(c.request.id.raw()).or_insert(0) += 1;
            }
            for d in out.dropped {
                *dropped.entry(d.id.raw()).or_insert(0) += 1;
            }
            now += 1;
            prop_assert!(now < deadline, "controller wedged under {policy:?}");
        }
        for id in accepted.keys() {
            let c = completed.get(id).copied().unwrap_or(0);
            let d = dropped.get(id).copied().unwrap_or(0);
            prop_assert_eq!(c + d, 1, "request {} finished {}x / dropped {}x", id, c, d);
        }
    }

    /// Statistics stay internally consistent for arbitrary mixes.
    #[test]
    fn stats_are_consistent(reqs in prop::collection::vec(arb_req(), 1..60)) {
        let mut cfg = ControllerConfig::from_policy(SchedulingPolicy::Padc, 4);
        cfg.buffer_entries = 64;
        let mut mc = MemoryController::new(cfg, DramConfig::default(), MappingScheme::Linear);
        let tracker = AccuracyTracker::new(4, 100_000);
        let mut now = 0;
        let mut sent = 0u64;
        for r in &reqs {
            if mc.has_space() {
                let kind = if r.prefetch { RequestKind::Prefetch } else { RequestKind::Demand };
                let access = if r.write { AccessKind::Store } else { AccessKind::Load };
                if mc
                    .enqueue(CoreId::new(r.core), LineAddr::new(r.line), access, kind, now)
                    .is_some()
                {
                    sent += 1;
                }
            }
            mc.tick(now, &tracker);
            now += 2;
        }
        while !mc.is_idle() {
            mc.tick(now, &tracker);
            now += 1;
        }
        let s = mc.stats();
        prop_assert_eq!(s.total_serviced() + s.prefetches_dropped, sent);
        prop_assert!(s.demand_row_hits <= s.demands_serviced);
        prop_assert!(s.prefetch_row_hits <= s.prefetches_serviced);
        prop_assert!(s.row_hit_rate() <= 1.0);
        prop_assert!(s.peak_occupancy <= 64);
    }

    /// Under FR-FCFS (equal), requests to the same bank and row are
    /// serviced in arrival order.
    #[test]
    fn same_row_requests_service_in_fcfs_order(count in 2usize..16) {
        let mut mc = MemoryController::new(
            ControllerConfig::from_policy(SchedulingPolicy::DemandPrefetchEqual, 1),
            DramConfig::default(),
            MappingScheme::Linear,
        );
        let tracker = AccuracyTracker::new(1, 100_000);
        let mut ids = Vec::new();
        for i in 0..count as u64 {
            ids.push(
                mc.enqueue(CoreId::new(0), LineAddr::new(i), AccessKind::Load, RequestKind::Demand, 0)
                    .expect("space"),
            );
        }
        let mut order = Vec::new();
        let mut now = 0;
        while !mc.is_idle() {
            for c in mc.tick(now, &tracker).completions {
                order.push(c.request.id);
            }
            now += 1;
            prop_assert!(now < 1_000_000);
        }
        prop_assert_eq!(order, ids, "same-row FCFS order violated");
    }
}
