//! Property test for the request buffer's incremental bookkeeping: after
//! arbitrary enqueue / writeback / promote / tick sequences, the slab's
//! bitsets, counts, APD heaps, and every *clean* cached bank owner must
//! equal a from-scratch recompute (`MemoryController::audit_buffer`
//! panics on divergence — invariants B1–B4 in DESIGN.md §13).

use padc_core::{AccuracyTracker, ControllerConfig, MemoryController, SchedulingPolicy};
use padc_dram::{DramConfig, ExtendedTiming, MappingScheme, RefreshPolicy, RowPolicy};
use padc_types::{AccessKind, CoreId, LineAddr, RequestKind};
use proptest::prelude::*;

/// One step of the driving sequence.
#[derive(Clone, Debug)]
enum Op {
    /// Enqueue a read request (demand or prefetch) if the buffer has space.
    Enqueue {
        line: u64,
        core: usize,
        prefetch: bool,
    },
    /// Enqueue a dirty-line writeback (forced, like the cache does).
    Writeback { line: u64, core: usize },
    /// Promote any buffered prefetch of this line to demand priority.
    Promote { line: u64 },
    /// Advance time and run the controller for a few cycles.
    Tick { cycles: u32 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    // The vendored proptest shim has no weighted `prop_oneof!`; weight the
    // common arms (enqueue, tick) by choosing a selector range instead.
    (0u32..10, 0u64..2048, 0usize..4, any::<bool>(), 1u32..24).prop_map(
        |(sel, line, core, prefetch, cycles)| match sel {
            0..=3 => Op::Enqueue {
                line,
                core,
                prefetch,
            },
            4 => Op::Writeback { line, core },
            5 => Op::Promote { line },
            _ => Op::Tick { cycles },
        },
    )
}

fn all_policies() -> [SchedulingPolicy; 6] {
    [
        SchedulingPolicy::DemandPrefetchEqual,
        SchedulingPolicy::DemandFirst,
        SchedulingPolicy::PrefetchFirst,
        SchedulingPolicy::ApsOnly,
        SchedulingPolicy::Padc,
        SchedulingPolicy::PadcRank,
    ]
}

/// Every row-buffer management policy, so B1–B4 cover the closed-row *and*
/// HAPPY policy-precharge invalidation rules automatically.
const ROW_POLICIES: [RowPolicy; 3] = [RowPolicy::Open, RowPolicy::Closed, RowPolicy::Happy];

/// Every refresh policy (with extended timing enabled). Short sequences
/// never reach a forced t_REFI boundary, but DARP's idle-bank pulls fire
/// from cycle 0 — each one a bank-state-changing command whose owner
/// invalidation (the §13 dirty-owner rule) the audit must confirm.
const REFRESH_POLICIES: [RefreshPolicy; 3] = [
    RefreshPolicy::AllBank,
    RefreshPolicy::PerBank,
    RefreshPolicy::Darp,
];

/// Runs the op sequence, auditing the buffer after every mutation point.
/// `accuracy_interval` is deliberately short so PAR rollovers (a cached-key
/// input change) happen mid-sequence.
fn drive_and_audit(ops: &[Op], mut cfg: ControllerConfig, dram: DramConfig) {
    cfg.buffer_entries = 16; // small slab: force free-list reuse and overflow
    let mut mc = MemoryController::new(cfg, dram, MappingScheme::Linear);
    let mut tracker = AccuracyTracker::new(4, 512);
    let mut now = 0u64;
    for op in ops {
        match *op {
            Op::Enqueue {
                line,
                core,
                prefetch,
            } => {
                if mc.has_space() {
                    let kind = if prefetch {
                        RequestKind::Prefetch
                    } else {
                        RequestKind::Demand
                    };
                    mc.enqueue(
                        CoreId::new(core),
                        LineAddr::new(line),
                        AccessKind::Load,
                        kind,
                        now,
                    );
                }
            }
            Op::Writeback { line, core } => {
                mc.enqueue_writeback(CoreId::new(core), LineAddr::new(line), now);
            }
            Op::Promote { line } => {
                mc.promote_prefetch(LineAddr::new(line));
            }
            Op::Tick { cycles } => {
                for _ in 0..cycles {
                    mc.tick(now, &tracker);
                    tracker.tick(now);
                    now += 1;
                }
            }
        }
        mc.audit_buffer(now, &tracker);
    }
    // Drain so completions/removals past the driven window get audited too.
    let deadline = now + 2_000_000;
    while !mc.is_idle() {
        mc.tick(now, &tracker);
        tracker.tick(now);
        now += 1;
        mc.audit_buffer(now, &tracker);
        assert!(now < deadline, "controller wedged during drain");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental owner caches, bitsets, counts, and APD heaps match a
    /// from-scratch recompute under every scheduling policy.
    #[test]
    fn incremental_state_matches_recompute(ops in prop::collection::vec(arb_op(), 1..60),
                                           policy_idx in 0usize..6) {
        let cfg = ControllerConfig::from_policy(all_policies()[policy_idx], 4);
        drive_and_audit(&ops, cfg, DramConfig::default());
    }

    /// Same property with the key inputs the owner cache is most sensitive
    /// to turned on explicitly: urgency, batching, write drain, every row
    /// policy (closed-row and HAPPY add policy precharges → extra owner
    /// invalidations, the closed-/HAPPY-precharge rules of §13), and every
    /// refresh policy (DARP adds refresh pulls → the same rule again).
    #[test]
    fn incremental_state_matches_recompute_extended(ops in prop::collection::vec(arb_op(), 1..60),
                                                    policy_idx in 3usize..6,
                                                    row_policy_idx in 0usize..ROW_POLICIES.len(),
                                                    refresh_idx in 0usize..REFRESH_POLICIES.len()) {
        let mut cfg = ControllerConfig::from_policy(all_policies()[policy_idx], 4);
        cfg.urgency = true;
        cfg.batching = true;
        cfg.batch_cap = 3;
        cfg.write_drain = true;
        cfg.write_drain_high = 6;
        cfg.write_drain_low = 2;
        let dram = DramConfig {
            row_policy: ROW_POLICIES[row_policy_idx],
            extended: Some(ExtendedTiming::default()),
            refresh_policy: REFRESH_POLICIES[refresh_idx],
            ..DramConfig::default()
        };
        drive_and_audit(&ops, cfg, dram);
    }
}
