//! Soundness of [`MemoryController::next_event`], independent of the
//! full-system byte-identity tests: whenever the controller claims it is
//! idle until cycle `ev`, stepping a clone cycle-by-cycle from `now`
//! toward `ev` must observe *no* state change at all — no completions,
//! no drops, no command issues, not a single mutated field. This is the
//! oracle-vs-stepped equivalence event-driven fast-forwarding rests on
//! (DESIGN.md §11, invariant E1): bounds may be early (the tick at `ev`
//! does nothing and stepping resumes) but never late.
//!
//! The claim is conditional on two things the caller must guarantee, and
//! the test mirrors both: no external mutation (the clone receives no
//! enqueues — invariant E2, policed by the mutation epoch, which the
//! test also pins), and a stable accuracy interval (the window is capped
//! at [`AccuracyTracker::next_rollover`] — invariant E3).

use padc_core::{AccuracyTracker, ControllerConfig, MemoryController, SchedulingPolicy};
use padc_dram::{DramConfig, ExtendedTiming, MappingScheme, RefreshPolicy, RowPolicy};
use padc_types::{AccessKind, CoreId, LineAddr, RequestKind};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct ReqSpec {
    line: u64,
    core: usize,
    prefetch: bool,
    write: bool,
    gap: u64,
}

fn arb_req() -> impl Strategy<Value = ReqSpec> {
    (
        0u64..4096,
        0usize..4,
        any::<bool>(),
        any::<bool>(),
        0u64..40,
    )
        .prop_map(|(line, core, prefetch, write, gap)| ReqSpec {
            line,
            core,
            // Writebacks are demands in this model.
            prefetch: prefetch && !write,
            write,
            gap,
        })
}

fn all_policies() -> [SchedulingPolicy; 6] {
    [
        SchedulingPolicy::DemandPrefetchEqual,
        SchedulingPolicy::DemandFirst,
        SchedulingPolicy::PrefetchFirst,
        SchedulingPolicy::ApsOnly,
        SchedulingPolicy::Padc,
        SchedulingPolicy::PadcRank,
    ]
}

/// Every row-buffer management policy: the closed-row and HAPPY policies
/// add spontaneous precharges that `next_event` must bound, and the HAPPY
/// predictor must never mutate inside a proven-idle window (the Debug
/// oracle below would catch it — predictor state is part of the string).
const ROW_POLICIES: [RowPolicy; 3] = [RowPolicy::Open, RowPolicy::Closed, RowPolicy::Happy];

/// Extended-timing / refresh-policy combinations: `None` disables extended
/// timing entirely; the per-bank policies add staggered forced refreshes
/// (and, for DARP, spontaneous refresh pulls) that `next_event` must bound.
const REFRESH_MODES: [Option<RefreshPolicy>; 4] = [
    None,
    Some(RefreshPolicy::AllBank),
    Some(RefreshPolicy::PerBank),
    Some(RefreshPolicy::Darp),
];

/// Steps a clone of `mc` from `now` up to (not including) the claimed
/// event cycle, asserting every tick is a proven no-op. Windows are
/// truncated to keep the test fast; soundness of a prefix is what event
/// mode consumes anyway (it re-proves after every executed tick).
fn assert_claim_holds(mc: &MemoryController, tracker: &AccuracyTracker, now: u64, claimed: u64) {
    const MAX_WINDOW: u64 = 1_500;
    let end = claimed.min(tracker.next_rollover()).min(now + MAX_WINDOW);
    if end <= now {
        return;
    }
    let mut probe = mc.clone();
    let before = format!("{probe:?}");
    for m in now..end {
        let out = probe.tick(m, tracker);
        prop_assert!(
            out.completions.is_empty() && out.dropped.is_empty(),
            "tick({m}) did work inside a window proven idle until {claimed} \
             ({} completions, {} drops)",
            out.completions.len(),
            out.dropped.len()
        );
        let after = format!("{probe:?}");
        prop_assert_eq!(
            &after,
            &before,
            "tick({}) mutated controller state inside a window proven idle \
             until {}",
            m,
            claimed
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every `next_event` claim taken while servicing an arbitrary
    /// request mix is verified against cycle-by-cycle stepping, across
    /// all six policies, all three row policies, and every extended-timing
    /// / refresh-policy mode (off, all-bank, per-bank, DARP).
    #[test]
    fn next_event_never_claims_past_real_work(
        reqs in prop::collection::vec(arb_req(), 1..40),
        policy_idx in 0usize..6,
        row_policy_idx in 0usize..ROW_POLICIES.len(),
        refresh_idx in 0usize..REFRESH_MODES.len(),
    ) {
        let policy = all_policies()[policy_idx];
        let mut cfg = ControllerConfig::from_policy(policy, 4);
        cfg.buffer_entries = 24;
        let mut dram = DramConfig {
            row_policy: ROW_POLICIES[row_policy_idx],
            ..DramConfig::default()
        };
        if let Some(refresh_policy) = REFRESH_MODES[refresh_idx] {
            dram.extended = Some(ExtendedTiming::default());
            dram.refresh_policy = refresh_policy;
        }
        let mut mc = MemoryController::new(cfg, dram, MappingScheme::Linear);
        let tracker = AccuracyTracker::new(4, 100_000);

        let mut now = 0u64;
        for r in &reqs {
            if mc.has_space() {
                let kind = if r.prefetch { RequestKind::Prefetch } else { RequestKind::Demand };
                let access = if r.write { AccessKind::Store } else { AccessKind::Load };
                let epoch = mc.mutation_epoch();
                let accepted = mc
                    .enqueue(CoreId::new(r.core), LineAddr::new(r.line), access, kind, now)
                    .is_some();
                // E2: every accepted enqueue must invalidate cached bounds.
                prop_assert_eq!(
                    mc.mutation_epoch(),
                    epoch + u64::from(accepted),
                    "enqueue did not bump the mutation epoch"
                );
            }
            // Verify the claim as seen right after the external mutation.
            match mc.next_event(now, &tracker) {
                Some(ev) => assert_claim_holds(&mc, &tracker, now, ev),
                None => prop_assert!(
                    mc.is_idle(),
                    "next_event claimed quiescence on a non-idle controller"
                ),
            }
            // Advance for real: the claim must also hold from mid-service
            // cycles, not just from enqueue points.
            for _ in 0..=r.gap {
                mc.tick(now, &tracker);
                now += 1;
            }
        }
        // Drain, re-checking the claim after every executed tick exactly
        // the way event mode re-proves after firing an event.
        let deadline = now + 2_000_000;
        while !mc.is_idle() {
            match mc.next_event(now, &tracker) {
                Some(ev) => {
                    assert_claim_holds(&mc, &tracker, now, ev);
                    // Jump straight to the claimed cycle (capped at the
                    // rollover, as the system loop does) and tick there.
                    now = now.max(ev.min(tracker.next_rollover()));
                }
                None => prop_assert!(mc.is_idle(), "no claim on a non-idle controller"),
            }
            mc.tick(now, &tracker);
            now += 1;
            prop_assert!(now < deadline, "controller wedged under {policy:?}");
        }
    }
}
