use padc_types::{CoreId, Cycle};

/// Per-core prefetch-accuracy measurement (§4.1 of the paper).
///
/// Each core has a Prefetch Sent Counter (`PSC`), a Prefetch Used Counter
/// (`PUC`), and a Prefetch Accuracy Register (`PAR`). At the end of every
/// measurement interval, `PAR := PUC / PSC` and both counters reset, so the
/// controller always acts on the *previous* interval's accuracy — capturing
/// the phase behaviour shown in Fig. 4(b).
///
/// ```
/// use padc_core::AccuracyTracker;
/// use padc_types::CoreId;
///
/// let mut t = AccuracyTracker::new(1, 1_000);
/// let c = CoreId::new(0);
/// for _ in 0..10 { t.on_prefetch_sent(c); }
/// for _ in 0..9 { t.on_prefetch_used(c); }
/// assert_eq!(t.accuracy(c), 1.0); // PAR not yet updated (optimistic)
/// t.tick(1_000);                  // interval boundary: blend of 1.0 and 0.9
/// assert!((t.accuracy(c) - 0.95).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct AccuracyTracker {
    psc: Vec<u64>,
    puc: Vec<u64>,
    par: Vec<f64>,
    /// Lifetime totals (for end-of-run ACC metrics).
    total_sent: Vec<u64>,
    total_used: Vec<u64>,
    interval: Cycle,
    next_rollover: Cycle,
}

impl AccuracyTracker {
    /// Creates a tracker for `cores` cores with the given measurement
    /// interval in CPU cycles. `PAR` starts at 1 (optimistic: prefetches
    /// are critical and long-lived until an interval of evidence says
    /// otherwise — starting at 0 would make APD drop every prefetch during
    /// the first interval).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(cores: usize, interval: Cycle) -> Self {
        assert!(interval > 0, "interval must be positive");
        AccuracyTracker {
            psc: vec![0; cores],
            puc: vec![0; cores],
            par: vec![1.0; cores],
            total_sent: vec![0; cores],
            total_used: vec![0; cores],
            interval,
            next_rollover: interval,
        }
    }

    /// Number of cores tracked.
    pub fn cores(&self) -> usize {
        self.par.len()
    }

    /// Records a prefetch entering the memory request buffer (PSC += 1).
    pub fn on_prefetch_sent(&mut self, core: CoreId) {
        self.psc[core.index()] += 1;
        self.total_sent[core.index()] += 1;
    }

    /// Records a useful prefetch: a demand hit a prefetched cache line or
    /// matched an in-flight prefetch request (PUC += 1).
    pub fn on_prefetch_used(&mut self, core: CoreId) {
        self.puc[core.index()] += 1;
        self.total_used[core.index()] += 1;
    }

    /// Advances time; on an interval boundary, updates every core's `PAR`
    /// and resets the counters. Returns true when a rollover happened.
    ///
    /// `PAR` is an equal-weight blend of the previous value and the
    /// just-measured interval accuracy, clamped to [0, 1]. The blend
    /// filters the sampling noise inherent in interval measurement (a
    /// prefetch sent near the end of an interval is consumed in the next
    /// one, so a raw ratio whipsaws above 1 and below the true accuracy)
    /// while still tracking phase changes within two intervals.
    pub fn tick(&mut self, now: Cycle) -> bool {
        if now < self.next_rollover {
            return false;
        }
        for i in 0..self.par.len() {
            if self.psc[i] > 0 {
                let measured = (self.puc[i] as f64 / self.psc[i] as f64).min(1.0);
                self.par[i] = 0.5 * self.par[i] + 0.5 * measured;
            }
            // With no prefetches sent, PAR retains its previous value.
            self.psc[i] = 0;
            self.puc[i] = 0;
        }
        self.next_rollover = now - (now % self.interval) + self.interval;
        true
    }

    /// The accuracy the controller acts on: last interval's `PAR`.
    pub fn accuracy(&self, core: CoreId) -> f64 {
        self.par[core.index()]
    }

    /// The cycle of the next interval rollover: the first `now` at which
    /// [`AccuracyTracker::tick`] will update `PAR` and reset the counters.
    ///
    /// Fast-forwarding treats this as an explicit event source (DESIGN.md
    /// §11): every `PAR`-derived quantity — APD drop thresholds, APS
    /// criticality, urgency, rank — is constant strictly before this cycle,
    /// and a skip must never jump across it.
    pub fn next_rollover(&self) -> Cycle {
        self.next_rollover
    }

    /// Lifetime prefetches sent by `core`.
    pub fn lifetime_sent(&self, core: CoreId) -> u64 {
        self.total_sent[core.index()]
    }

    /// Lifetime useful prefetches from `core`.
    pub fn lifetime_used(&self, core: CoreId) -> u64 {
        self.total_used[core.index()]
    }

    /// Lifetime accuracy (`ACC` in §5.2), or 0 if nothing was sent.
    pub fn lifetime_accuracy(&self, core: CoreId) -> f64 {
        let sent = self.total_sent[core.index()];
        if sent == 0 {
            0.0
        } else {
            self.total_used[core.index()] as f64 / sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: usize) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn par_updates_only_at_interval_boundary() {
        let mut t = AccuracyTracker::new(1, 100);
        for _ in 0..4 {
            t.on_prefetch_sent(c(0));
        }
        t.on_prefetch_used(c(0));
        assert!(!t.tick(99));
        assert_eq!(t.accuracy(c(0)), 1.0, "optimistic until first rollover");
        assert!(t.tick(100));
        // Blend of the optimistic 1.0 and the measured 0.25.
        assert!((t.accuracy(c(0)) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn counters_reset_each_interval() {
        let mut t = AccuracyTracker::new(1, 100);
        for _ in 0..10 {
            t.on_prefetch_sent(c(0));
            t.on_prefetch_used(c(0));
        }
        t.tick(100);
        assert_eq!(t.accuracy(c(0)), 1.0);
        // Next interval: all useless.
        for _ in 0..10 {
            t.on_prefetch_sent(c(0));
        }
        t.tick(200);
        assert_eq!(t.accuracy(c(0)), 0.5, "one bad interval halves PAR");
        // Sustained uselessness converges toward zero.
        for k in 3..12 {
            for _ in 0..10 {
                t.on_prefetch_sent(c(0));
            }
            t.tick(k * 100);
        }
        assert!(t.accuracy(c(0)) < 0.01);
    }

    #[test]
    fn empty_interval_retains_previous_par() {
        let mut t = AccuracyTracker::new(1, 100);
        t.on_prefetch_sent(c(0));
        t.on_prefetch_used(c(0));
        t.tick(100);
        assert_eq!(t.accuracy(c(0)), 1.0);
        t.tick(200); // no prefetch activity
        assert_eq!(t.accuracy(c(0)), 1.0);
    }

    #[test]
    fn cores_are_independent() {
        let mut t = AccuracyTracker::new(2, 100);
        t.on_prefetch_sent(c(0));
        t.on_prefetch_used(c(0));
        t.on_prefetch_sent(c(1));
        t.tick(100);
        assert_eq!(t.accuracy(c(0)), 1.0);
        assert_eq!(t.accuracy(c(1)), 0.5);
    }

    #[test]
    fn lifetime_counters_survive_rollover() {
        let mut t = AccuracyTracker::new(1, 100);
        for _ in 0..4 {
            t.on_prefetch_sent(c(0));
        }
        t.on_prefetch_used(c(0));
        t.tick(100);
        t.on_prefetch_sent(c(0));
        t.on_prefetch_used(c(0));
        assert_eq!(t.lifetime_sent(c(0)), 5);
        assert_eq!(t.lifetime_used(c(0)), 2);
        assert!((t.lifetime_accuracy(c(0)) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn late_tick_still_rolls_over_to_aligned_boundary() {
        let mut t = AccuracyTracker::new(1, 100);
        t.on_prefetch_sent(c(0));
        t.on_prefetch_used(c(0));
        assert!(t.tick(250)); // we were called late
        assert_eq!(t.accuracy(c(0)), 1.0);
        // Next rollover aligns to 300, not 350.
        assert!(!t.tick(299));
        assert!(t.tick(300));
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let _ = AccuracyTracker::new(1, 0);
    }
}
