//! Hardware-cost accounting for PADC (paper Tables 1 and 2).
//!
//! The paper argues PADC is cheap: on the 4-core system it needs 34,720 bits
//! (~4.25KB), 0.2% of L2 data storage, and only 1,824 bits if the processor
//! already has prefetch bits in its caches. These functions reproduce that
//! arithmetic for any system size.

/// Storage cost of one PADC instance, in bits, broken down by bit field
/// exactly as Table 1/2 do.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CostBreakdown {
    /// Prefetch bit per cache line and per request-buffer entry.
    pub p_bits: u64,
    /// Prefetch Sent Counters (16 bits per core).
    pub psc_bits: u64,
    /// Prefetch Used Counters (16 bits per core).
    pub puc_bits: u64,
    /// Prefetch Accuracy Registers (8 bits per core).
    pub par_bits: u64,
    /// Urgent bit per request-buffer entry.
    pub urgent_bits: u64,
    /// Core-ID field per request-buffer entry (log2 cores).
    pub id_bits: u64,
    /// AGE field per request-buffer entry (10 bits).
    pub age_bits: u64,
}

impl CostBreakdown {
    /// Total storage in bits.
    pub fn total_bits(&self) -> u64 {
        self.p_bits
            + self.psc_bits
            + self.puc_bits
            + self.par_bits
            + self.urgent_bits
            + self.id_bits
            + self.age_bits
    }

    /// Total storage excluding the prefetch bits (for processors that
    /// already track them; paper: 1,824 bits on the 4-core system).
    pub fn total_bits_without_p(&self) -> u64 {
        self.total_bits() - self.p_bits
    }

    /// Total storage in bytes, rounded up.
    pub fn total_bytes(&self) -> u64 {
        self.total_bits().div_ceil(8)
    }
}

/// Computes Table 1 for a system with `cores` cores, `cache_lines_per_core`
/// L2 lines per core, and `request_buffer_entries` memory-request-buffer
/// entries.
///
/// ```
/// use padc_core::cost::padc_storage;
/// // The paper's 4-core system: 512KB/64B = 8192 lines per core, 128-entry
/// // request buffer.
/// let cost = padc_storage(4, 8192, 128);
/// assert_eq!(cost.total_bits(), 34_720);           // Table 2 total
/// assert_eq!(cost.total_bits_without_p(), 1_824);  // §4.4
/// ```
pub fn padc_storage(
    cores: u64,
    cache_lines_per_core: u64,
    request_buffer_entries: u64,
) -> CostBreakdown {
    let id_width = if cores <= 1 {
        1
    } else {
        64 - (cores - 1).leading_zeros() as u64 // ceil(log2(cores))
    };
    CostBreakdown {
        p_bits: cache_lines_per_core * cores + request_buffer_entries,
        psc_bits: 16 * cores,
        puc_bits: 16 * cores,
        par_bits: 8 * cores,
        urgent_bits: request_buffer_entries,
        id_bits: request_buffer_entries * id_width,
        age_bits: request_buffer_entries * 10,
    }
}

/// Additional storage for the ranking extension (§6.5): a RANK field of
/// log2(cores) bits per request-buffer entry plus a critical-request counter
/// (16 bits) per core.
pub fn ranking_extra_bits(cores: u64, request_buffer_entries: u64) -> u64 {
    let rank_width = if cores <= 1 {
        1
    } else {
        64 - (cores - 1).leading_zeros() as u64
    };
    request_buffer_entries * rank_width + 16 * cores
}

/// PADC storage as a fraction of L2 data capacity (the paper reports 0.2%
/// on the 4-core system).
pub fn fraction_of_l2(cost: &CostBreakdown, l2_bytes_total: u64) -> f64 {
    cost.total_bits() as f64 / (l2_bytes_total as f64 * 8.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2 of the paper, field by field.
    #[test]
    fn four_core_system_matches_table2() {
        let c = padc_storage(4, 8192, 128);
        assert_eq!(c.p_bits, 32_896);
        assert_eq!(c.psc_bits, 64);
        assert_eq!(c.puc_bits, 64);
        assert_eq!(c.par_bits, 32);
        assert_eq!(c.urgent_bits, 128);
        assert_eq!(c.id_bits, 256);
        assert_eq!(c.age_bits, 1_280);
        assert_eq!(c.total_bits(), 34_720);
    }

    #[test]
    fn fraction_of_l2_is_point_two_percent_on_4_core() {
        let c = padc_storage(4, 8192, 128);
        let frac = fraction_of_l2(&c, 4 * 512 * 1024);
        assert!((frac - 0.002).abs() < 0.0005, "got {frac}");
    }

    #[test]
    fn single_core_uses_one_id_bit() {
        let c = padc_storage(1, 16_384, 64);
        assert_eq!(c.id_bits, 64);
    }

    #[test]
    fn eight_core_id_field_is_three_bits() {
        let c = padc_storage(8, 8192, 256);
        assert_eq!(c.id_bits, 256 * 3);
    }

    #[test]
    fn without_p_bits_cost_is_small() {
        let c = padc_storage(4, 8192, 128);
        assert_eq!(c.total_bits_without_p(), 1_824);
        assert_eq!(c.total_bytes(), 4_340); // ~4.25KB
    }

    #[test]
    fn ranking_extra_cost() {
        // 4 cores, 128 entries: 128*2 + 64 = 320 bits.
        assert_eq!(ranking_extra_bits(4, 128), 320);
        assert_eq!(ranking_extra_bits(1, 64), 64 + 16);
    }
}
