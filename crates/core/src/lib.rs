//! The Prefetch-Aware DRAM Controller (PADC) — the paper's contribution.
//!
//! A [`MemoryController`] owns the memory request buffer and the DRAM
//! channels, and schedules one DRAM command per channel per DRAM bus cycle.
//! Its behaviour is configured by a [`ControllerConfig`], usually built from
//! a [`SchedulingPolicy`] preset:
//!
//! * [`SchedulingPolicy::DemandPrefetchEqual`] — FR-FCFS; prefetches and
//!   demands are indistinguishable (row-hit first, then oldest first).
//! * [`SchedulingPolicy::DemandFirst`] — demands strictly before prefetches.
//! * [`SchedulingPolicy::PrefetchFirst`] — prefetches strictly before
//!   demands (the paper's worst-performing straw man).
//! * [`SchedulingPolicy::ApsOnly`] — Adaptive Prefetch Scheduling (§4.2):
//!   `Critical > Row-hit > Urgent > FCFS`, driven by per-core prefetch
//!   accuracy from the [`AccuracyTracker`] (§4.1).
//! * [`SchedulingPolicy::Padc`] — APS plus Adaptive Prefetch Dropping
//!   (§4.3): prefetches older than a per-core, accuracy-dependent
//!   `drop_threshold` are removed from the buffer.
//! * [`SchedulingPolicy::PadcRank`] — PADC with shortest-job-first request
//!   ranking (§6.5).
//!
//! The [`cost`] module reproduces the paper's hardware-cost accounting
//! (Tables 1 and 2).
//!
//! # Example
//!
//! ```
//! use padc_core::{ControllerConfig, MemoryController, SchedulingPolicy, AccuracyTracker};
//! use padc_dram::{DramConfig, MappingScheme};
//! use padc_types::{AccessKind, CoreId, LineAddr, RequestKind};
//!
//! let cfg = ControllerConfig::from_policy(SchedulingPolicy::Padc, 4);
//! let mut tracker = AccuracyTracker::new(4, cfg.accuracy_interval);
//! let mut mc = MemoryController::new(cfg, DramConfig::default(), MappingScheme::Linear);
//! let id = mc
//!     .enqueue(CoreId::new(0), LineAddr::new(10), AccessKind::Load, RequestKind::Demand, 0)
//!     .expect("buffer has space");
//! // Drive time forward until the request completes.
//! let mut done = false;
//! for now in 0..10_000 {
//!     let out = mc.tick(now, &tracker);
//!     tracker.tick(now);
//!     if out.completions.iter().any(|c| c.request.id == id) {
//!         done = true;
//!         break;
//!     }
//! }
//! assert!(done);
//! ```

#![warn(missing_docs)]

mod accuracy;
mod config;
pub mod cost;
pub mod scheduler;
mod stats;

pub use accuracy::AccuracyTracker;
pub use config::{ControllerConfig, DropThresholds, SchedulingPolicy};
pub use scheduler::buffer::BufferStats;
pub use scheduler::{Completion, MemoryController, TickOutput};
pub use stats::ControllerStats;
