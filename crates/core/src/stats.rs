use serde::{Deserialize, Serialize};

/// Counters accumulated by a [`crate::MemoryController`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Demand requests serviced (CAS issued), including promoted prefetches.
    pub demands_serviced: u64,
    /// Prefetch requests serviced while still prefetches.
    pub prefetches_serviced: u64,
    /// Demand requests whose first DRAM command was the CAS (row hit).
    pub demand_row_hits: u64,
    /// Prefetch requests (still prefetches at service) that were row hits.
    pub prefetch_row_hits: u64,
    /// Prefetches dropped by Adaptive Prefetch Dropping.
    pub prefetches_dropped: u64,
    /// Requests rejected at enqueue because the buffer was full.
    pub enqueue_rejections: u64,
    /// In-buffer prefetches promoted to demands by a matching demand access.
    pub promotions: u64,
    /// Writebacks serviced.
    pub writebacks_serviced: u64,
    /// Peak buffer occupancy observed.
    pub peak_occupancy: usize,
    /// Total buffer-entry-to-data cycles over serviced demand reads.
    pub demand_latency_sum: u64,
    /// Demand reads included in [`ControllerStats::demand_latency_sum`].
    pub demand_latency_count: u64,
    /// Total buffer-entry-to-data cycles over serviced prefetches.
    pub prefetch_latency_sum: u64,
    /// Prefetches included in [`ControllerStats::prefetch_latency_sum`].
    pub prefetch_latency_count: u64,
}

impl ControllerStats {
    /// All requests serviced.
    pub fn total_serviced(&self) -> u64 {
        self.demands_serviced + self.prefetches_serviced
    }

    /// Mean memory-service time of demand reads (entry to data), cycles.
    pub fn avg_demand_latency(&self) -> f64 {
        if self.demand_latency_count == 0 {
            return 0.0;
        }
        self.demand_latency_sum as f64 / self.demand_latency_count as f64
    }

    /// Mean memory-service time of prefetches (entry to data), cycles.
    pub fn avg_prefetch_latency(&self) -> f64 {
        if self.prefetch_latency_count == 0 {
            return 0.0;
        }
        self.prefetch_latency_sum as f64 / self.prefetch_latency_count as f64
    }

    /// Row-buffer hit rate over serviced requests.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.total_serviced();
        if total == 0 {
            return 0.0;
        }
        (self.demand_row_hits + self.prefetch_row_hits) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hit_rate_is_zero_without_service() {
        assert_eq!(ControllerStats::default().row_hit_rate(), 0.0);
    }

    #[test]
    fn row_hit_rate_combines_kinds() {
        let s = ControllerStats {
            demands_serviced: 6,
            prefetches_serviced: 4,
            demand_row_hits: 3,
            prefetch_row_hits: 2,
            ..ControllerStats::default()
        };
        assert!((s.row_hit_rate() - 0.5).abs() < 1e-12);
    }
}
