//! Data-oriented memory request buffer: a slab of entries with free-list
//! reuse plus incrementally maintained scheduling state.
//!
//! The legacy controller kept a flat `Vec<Entry>` and rescanned all of it
//! every time it needed anything: the per-bank highest-priority entry (the
//! bank *owner*), the earliest APD drop deadline, the buffered writeback
//! count, the PAR-BS batch population, and the per-core critical-request
//! counts for ranking. [`RequestBuffer`] maintains each of those
//! incrementally, updated on every insert/promote/remove, so scheduling is
//! O(ready entries) instead of O(buffer size) per DRAM cycle:
//!
//! - a **slab** (`slots`) addressed by stable [`Slot`] indices with a LIFO
//!   free list — an entry never moves while queued, so bitsets and heaps
//!   can hold raw slot indices;
//! - an **order mirror** (`order`) replaying the legacy `Vec` push /
//!   `swap_remove` order exactly, so iteration-order-sensitive behaviour
//!   (APD drop emission order, promotion scan order) is bit-identical to
//!   the flat-vector controller;
//! - per-(channel, bank) **membership bitsets**, so owner recomputation
//!   touches only that bank's entries;
//! - a cached per-bank **owner** (highest [`PrioKey`]
//!   entry), recomputed lazily only when the bank is marked dirty by a
//!   mutation that can change it;
//! - per-core **min-heaps of APD drop arrivals**, so the earliest drop
//!   deadline is an O(cores) peek instead of an O(buffer) scan every CPU
//!   cycle;
//! - running **writeback / batched / per-core criticality counts** for the
//!   write-drain watermark, batch-reform trigger, and ranking.
//!
//! Cache state (owners, dirty flags, heaps, epoch snapshots, stats) is
//! excluded from the `Debug` representation: equality of `Debug` strings is
//! how the `next_event` soundness oracle detects observable mutation, and
//! cache fills during proven-idle windows are not observable.
//!
//! # Worked example
//!
//! ```
//! use padc_core::scheduler::buffer::{Entry, RequestBuffer};
//! use padc_dram::{AddressMapper, DramConfig, MappingScheme};
//! use padc_types::{AccessKind, CoreId, LineAddr, MemRequest, RequestId, RequestKind};
//!
//! let dram = DramConfig::default();
//! let mapper = AddressMapper::new(&dram, MappingScheme::Linear);
//! // 16-entry buffer over the default geometry, 2 cores, no ranking/APD.
//! let mut buf = RequestBuffer::new(16, dram.channels, dram.banks, 2, false, false);
//!
//! // Insert a demand and a prefetch; slots are stable identities.
//! let d = MemRequest::new(RequestId::new(0), CoreId::new(0), LineAddr::new(0),
//!                         AccessKind::Load, RequestKind::Demand, 0);
//! let p = MemRequest::new(RequestId::new(1), CoreId::new(1), LineAddr::new(64),
//!                         AccessKind::Load, RequestKind::Prefetch, 0);
//! let pt = mapper.map(p.line);
//! let s0 = buf.insert(Entry::new(d.clone(), mapper.map(d.line)));
//! let s1 = buf.insert(Entry::new(p, pt));
//! assert_eq!(buf.len(), 2);
//! assert_eq!(buf.demands_of_core(0), 1);
//! assert_eq!(buf.prefetches_of_core(1), 1);
//!
//! // Promotion flips the per-core kind counts and re-keys only s1's bank.
//! buf.promote(s1);
//! assert_eq!(buf.demands_of_core(1), 1);
//!
//! // Removal frees the slot for reuse (LIFO) and keeps legacy order.
//! let gone = buf.remove(s0);
//! assert_eq!(gone.req.id, RequestId::new(0));
//! assert_eq!(buf.len(), 1);
//! let s2 = buf.insert(Entry::new(d, mapper.map(LineAddr::new(0))));
//! assert_eq!(s2, s0, "freed slots are reused LIFO");
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use padc_dram::{Channel, RowBufferOutcome, Target};
use padc_types::{AccessKind, Cycle, MemRequest};

use crate::accuracy::AccuracyTracker;
use crate::config::DropThresholds;

use super::arbiter::{KeyCtx, PrioKey};

/// Stable slab index of a queued entry. Valid from [`RequestBuffer::insert`]
/// until the matching [`RequestBuffer::remove`]; never reused in between.
pub type Slot = u32;

/// True for buffered writebacks (store requests that never carried a
/// prefetch bit). Writebacks are demands in this model, but the write-drain
/// watermark and the stats need to tell them apart from demand loads.
pub fn is_writeback(req: &MemRequest) -> bool {
    req.access == AccessKind::Store && !req.was_prefetch
}

/// One queued request with its DRAM coordinates.
#[derive(Clone, Debug)]
pub struct Entry {
    /// The queued request (kind may change via promotion).
    pub req: MemRequest,
    /// Mapped DRAM coordinates of `req.line`.
    pub target: Target,
    /// Row-buffer classification at the time of the request's first DRAM
    /// command (`None` until scheduled at least once).
    pub first_service: Option<RowBufferOutcome>,
    /// Member of the current PAR-BS batch (always false without batching).
    pub batched: bool,
}

impl Entry {
    /// A freshly arrived entry: not yet serviced, not yet batched.
    pub fn new(req: MemRequest, target: Target) -> Self {
        Entry {
            req,
            target,
            first_service: None,
            batched: false,
        }
    }

    /// True for buffered writebacks (see [`is_writeback`]).
    pub fn is_writeback(&self) -> bool {
        is_writeback(&self.req)
    }
}

/// Telemetry for the incremental owner cache. Deliberately *not* part of
/// [`ControllerStats`](crate::ControllerStats): these counters depend on how
/// often the controller is stepped (fast-forward modes legitimately differ),
/// so serializing them would break cross-mode byte-identity of reports. They
/// surface through the opt-in simulation profile instead.
#[derive(Clone, Copy, Default)]
pub struct BufferStats {
    /// Bank-owner rebuilds performed (each scans one bank's member set).
    pub owner_recomputes: u64,
    /// Bank-owner cache invalidations (clean-to-dirty transitions). Every
    /// recompute consumes one invalidation, so
    /// `owner_recomputes <= owner_invalidations` always holds.
    pub owner_invalidations: u64,
    /// Scheduling queries answered from a still-valid cached owner.
    pub owner_reuses: u64,
    /// Entries examined across all owner rebuilds (bitset-scan volume).
    pub owner_scan_entries: u64,
}

/// Fixed-capacity bitset over slab slots.
#[derive(Clone, PartialEq, Eq)]
struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    fn new(bits: usize) -> Self {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
            len: 0,
        }
    }

    fn set(&mut self, i: usize) {
        let (w, b) = (i / 64, i % 64);
        debug_assert_eq!(self.words[w] >> b & 1, 0, "slot already a member");
        self.words[w] |= 1 << b;
        self.len += 1;
    }

    fn clear(&mut self, i: usize) {
        let (w, b) = (i / 64, i % 64);
        debug_assert_eq!(self.words[w] >> b & 1, 1, "slot not a member");
        self.words[w] &= !(1 << b);
        self.len -= 1;
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Calls `f` for every set bit, in ascending slot order.
    fn for_each(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                f(wi * 64 + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
    }

    fn to_vec(&self) -> Vec<usize> {
        let mut v = Vec::with_capacity(self.len);
        self.for_each(|i| v.push(i));
        v
    }
}

/// Per-(channel, bank) membership set plus the cached owner.
#[derive(Clone)]
struct BankSet {
    members: BitSet,
    /// Highest-[`PrioKey`] member, valid while `dirty` is false and the
    /// key inputs snapshotted by the controller are unchanged. Pure cache.
    owner: Option<(PrioKey, Slot)>,
    dirty: bool,
}

/// Min-heaps of APD drop candidates, one per core (drop thresholds are
/// per-core, so the earliest deadline per core is its earliest *arrival*).
/// Heap entries go stale when the slot is freed, reused, promoted, or
/// serviced; stale heads are popped lazily at the next peek. Pure cache.
#[derive(Clone, Default)]
struct DeadlineHeaps {
    /// `(arrival, slot, request id)` per core, min-ordered via `Reverse`.
    heaps: Vec<BinaryHeap<Reverse<(Cycle, Slot, u64)>>>,
}

/// The data-oriented request buffer. See the module docs for the layout and
/// the maintained invariants (DESIGN.md §13, B1–B4).
#[derive(Clone)]
pub struct RequestBuffer {
    cap: usize,
    /// Slab: `slots[s]` is the entry at slot `s`, `None` while free.
    slots: Vec<Option<Entry>>,
    /// LIFO free list of slab slots.
    free: Vec<Slot>,
    /// Legacy arrival-order mirror: replays the flat-vector controller's
    /// push / `swap_remove` sequence exactly (B1).
    order: Vec<Slot>,
    /// `pos[s]` = index of slot `s` in `order` (meaningless while free).
    pos: Vec<u32>,
    /// Banks per channel; bank sets are indexed `channel * stride + bank`.
    stride: usize,
    banks: Vec<BankSet>,
    /// Buffered writeback count (write-drain watermark input).
    writebacks: usize,
    /// Entries in the current PAR-BS batch.
    batched: usize,
    /// Per-core queued demand / prefetch counts (ranking input). Entries
    /// whose core index exceeds the configured core count are not counted,
    /// mirroring the legacy scan's bounds-checked accumulation.
    demands: Vec<u64>,
    prefetches: Vec<u64>,
    /// Key-input flags frozen at construction from the controller config.
    ranking: bool,
    apd: bool,
    apd_heaps: DeadlineHeaps,
    /// Accuracy epoch (tracker `next_rollover`) the owner caches were
    /// computed under; a change invalidates every adaptive-policy key.
    rollover_seen: Cycle,
    /// Per-channel refresh count the owner caches were computed under; a
    /// refresh resets every bank's row state, re-keying `row_hit`.
    refreshes_seen: Vec<u64>,
    stats: BufferStats,
}

impl RequestBuffer {
    /// An empty buffer for `cap` entries over `channels * banks_per_channel`
    /// banks. `ranking` widens invalidation to all banks on membership or
    /// criticality changes (per-core rank counts feed every key);
    /// `apd` enables the drop-deadline heaps.
    pub fn new(
        cap: usize,
        channels: usize,
        banks_per_channel: usize,
        cores: usize,
        ranking: bool,
        apd: bool,
    ) -> Self {
        let cores = cores.max(1);
        RequestBuffer {
            cap,
            slots: Vec::new(),
            free: Vec::new(),
            order: Vec::new(),
            pos: Vec::new(),
            stride: banks_per_channel,
            banks: vec![
                BankSet {
                    members: BitSet::new(cap),
                    owner: None,
                    dirty: false,
                };
                channels * banks_per_channel
            ],
            writebacks: 0,
            batched: 0,
            demands: vec![0; cores],
            prefetches: vec![0; cores],
            ranking,
            apd,
            apd_heaps: DeadlineHeaps {
                heaps: vec![BinaryHeap::new(); cores],
            },
            rollover_seen: 0,
            refreshes_seen: vec![0; channels],
            stats: BufferStats::default(),
        }
    }

    /// Queued entry count.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Buffered writeback count (write-drain watermark input).
    pub fn writeback_len(&self) -> usize {
        self.writebacks
    }

    /// Entries in the current PAR-BS batch.
    pub fn batched_len(&self) -> usize {
        self.batched
    }

    /// Queued demand count for `core` (0 for out-of-range cores).
    pub fn demands_of_core(&self, core: usize) -> u64 {
        self.demands.get(core).copied().unwrap_or(0)
    }

    /// Queued prefetch count for `core` (0 for out-of-range cores).
    pub fn prefetches_of_core(&self, core: usize) -> u64 {
        self.prefetches.get(core).copied().unwrap_or(0)
    }

    /// Owner-cache telemetry.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// The entry at `slot`. Panics if the slot is free.
    pub fn entry(&self, slot: Slot) -> &Entry {
        self.slots[slot as usize].as_ref().expect("free slot")
    }

    /// Slots in legacy (push / `swap_remove`) order.
    pub fn order_slots(&self) -> &[Slot] {
        &self.order
    }

    /// Entries in legacy order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.order.iter().map(|&s| self.entry(s))
    }

    fn bank_index(&self, target: &Target) -> usize {
        target.channel * self.stride + target.bank
    }

    /// Marks one bank's owner cache dirty.
    fn mark_bank_dirty(&mut self, bank_idx: usize) {
        let b = &mut self.banks[bank_idx];
        if !b.dirty {
            b.dirty = true;
            self.stats.owner_invalidations += 1;
        }
    }

    /// Marks every bank's owner cache dirty (a global key input changed:
    /// write-drain flip, batch reform, accuracy rollover, rank counts).
    pub fn invalidate_all_owners(&mut self) {
        for i in 0..self.banks.len() {
            self.mark_bank_dirty(i);
        }
    }

    /// Marks one bank dirty after a DRAM state change (ACT/PRE re-keys the
    /// bank's `row_hit` bits).
    pub fn note_bank_command(&mut self, channel: usize, bank: usize) {
        self.mark_bank_dirty(channel * self.stride + bank);
    }

    /// Reconciles the owner caches with the accuracy epoch: if the tracker
    /// rolled over since the last key computation, adaptive-policy keys
    /// (criticality, urgency, ranking) may all have changed. `adaptive`
    /// is false for policies whose keys never read accuracy.
    pub fn sync_rollover(&mut self, tracker: &AccuracyTracker, adaptive: bool) {
        let epoch = tracker.next_rollover();
        if self.rollover_seen != epoch {
            self.rollover_seen = epoch;
            if adaptive {
                self.invalidate_all_owners();
            }
        }
    }

    /// Reconciles one channel's owner caches with its refresh count: a
    /// refresh resets every bank's row state, re-keying `row_hit` for all
    /// of the channel's banks.
    pub fn sync_refresh(&mut self, channel: usize, refreshes: u64) {
        if self.refreshes_seen[channel] != refreshes {
            self.refreshes_seen[channel] = refreshes;
            for bank in 0..self.stride {
                self.mark_bank_dirty(channel * self.stride + bank);
            }
        }
    }

    /// Inserts an entry, returning its slot. Panics when full (the
    /// controller checks `has_space` first).
    pub fn insert(&mut self, e: Entry) -> Slot {
        assert!(self.len() < self.cap, "request buffer overflow");
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                self.pos.push(0);
                (self.slots.len() - 1) as Slot
            }
        };
        self.pos[slot as usize] = self.order.len() as u32;
        self.order.push(slot);
        if e.is_writeback() {
            self.writebacks += 1;
        }
        if e.batched {
            self.batched += 1;
        }
        let core = e.req.core.index();
        if e.req.kind.is_prefetch() {
            if let Some(c) = self.prefetches.get_mut(core) {
                *c += 1;
            }
            if self.apd {
                if let Some(h) = self.apd_heaps.heaps.get_mut(core) {
                    h.push(Reverse((e.req.arrival, slot, e.req.id.raw())));
                }
            }
        } else if let Some(c) = self.demands.get_mut(core) {
            *c += 1;
        }
        let bank_idx = self.bank_index(&e.target);
        self.banks[bank_idx].members.set(slot as usize);
        self.slots[slot as usize] = Some(e);
        // The new entry may outrank the cached owner; under ranking any
        // membership change shifts every core's rank counts.
        if self.ranking {
            self.invalidate_all_owners();
        } else {
            self.mark_bank_dirty(bank_idx);
        }
        slot
    }

    /// Removes and returns the entry at `slot`, replaying the legacy
    /// `Vec::swap_remove` on the order mirror.
    pub fn remove(&mut self, slot: Slot) -> Entry {
        let e = self.slots[slot as usize].take().expect("free slot");
        let oi = self.pos[slot as usize] as usize;
        self.order.swap_remove(oi);
        if let Some(&moved) = self.order.get(oi) {
            self.pos[moved as usize] = oi as u32;
        }
        self.free.push(slot);
        if e.is_writeback() {
            self.writebacks -= 1;
        }
        if e.batched {
            self.batched -= 1;
        }
        let core = e.req.core.index();
        if e.req.kind.is_prefetch() {
            if let Some(c) = self.prefetches.get_mut(core) {
                *c -= 1;
            }
        } else if let Some(c) = self.demands.get_mut(core) {
            *c -= 1;
        }
        let bank_idx = self.bank_index(&e.target);
        self.banks[bank_idx].members.clear(slot as usize);
        if self.ranking {
            self.invalidate_all_owners();
        } else {
            let b = &mut self.banks[bank_idx];
            // Removing a non-owner leaves the cached owner valid; removing
            // the owner (or touching a dirty bank) forces a rebuild.
            if b.owner.is_some_and(|(_, s)| s == slot) {
                self.mark_bank_dirty(bank_idx);
            }
        }
        e
    }

    /// Promotes the prefetch at `slot` to a demand (resets its `P` bit).
    /// The caller guarantees the entry is a prefetch.
    pub fn promote(&mut self, slot: Slot) {
        let e = self.slots[slot as usize].as_mut().expect("free slot");
        debug_assert!(e.req.kind.is_prefetch());
        e.req.promote_to_demand();
        let core = e.req.core.index();
        let bank_idx = e.target.channel * self.stride + e.target.bank;
        if let Some(c) = self.prefetches.get_mut(core) {
            *c -= 1;
        }
        if let Some(c) = self.demands.get_mut(core) {
            *c += 1;
        }
        // The promoted entry's own key changes (tier / droppability); its
        // stale APD heap item is popped lazily.
        if self.ranking {
            self.invalidate_all_owners();
        } else {
            self.mark_bank_dirty(bank_idx);
        }
    }

    /// Records the row-buffer classification of the entry's first DRAM
    /// command. Not a key input, so no owner invalidation; the entry's APD
    /// heap item (if any) goes permanently stale and is popped lazily.
    pub fn set_first_service(&mut self, slot: Slot, class: RowBufferOutcome) {
        let e = self.slots[slot as usize].as_mut().expect("free slot");
        debug_assert!(e.first_service.is_none());
        e.first_service = Some(class);
    }

    /// Adds the entry at `slot` to the current PAR-BS batch.
    pub fn set_batched(&mut self, slot: Slot) {
        let e = self.slots[slot as usize].as_mut().expect("free slot");
        debug_assert!(!e.batched);
        e.batched = true;
        let bank_idx = e.target.channel * self.stride + e.target.bank;
        self.batched += 1;
        // `batched` outranks everything below `class_match`, so the bank's
        // owner may change; rank counts (criticality) are unaffected.
        self.mark_bank_dirty(bank_idx);
    }

    /// Per-core critical-request counts for shortest-job ranking (§6.5),
    /// rebuilt O(cores) from the running kind counts: every demand is
    /// critical, and a core's prefetches are critical iff its accuracy
    /// clears `promotion_threshold`. `None` when ranking is disabled.
    pub fn rank_counts(
        &self,
        tracker: &AccuracyTracker,
        promotion_threshold: f64,
    ) -> Option<Vec<u64>> {
        if !self.ranking {
            return None;
        }
        Some(
            self.demands
                .iter()
                .zip(&self.prefetches)
                .enumerate()
                .map(|(core, (&d, &p))| {
                    if p > 0
                        && tracker.accuracy(padc_types::CoreId::new(core)) >= promotion_threshold
                    {
                        d + p
                    } else {
                        d
                    }
                })
                .collect(),
        )
    }

    /// Earliest APD drop deadline (`arrival + threshold + 1`) over all
    /// queued, unserviced prefetches, or `None` if there are none. O(cores)
    /// amortized: each core's heap head is its earliest droppable arrival,
    /// and per-core thresholds make that head the core's earliest deadline.
    /// Stale heads (freed, reused, promoted, or serviced slots) are popped
    /// here.
    pub fn earliest_drop_deadline(
        &mut self,
        thresholds: &DropThresholds,
        tracker: &AccuracyTracker,
    ) -> Option<Cycle> {
        debug_assert!(self.apd);
        let mut best: Option<Cycle> = None;
        for (core, heap) in self.apd_heaps.heaps.iter_mut().enumerate() {
            let head = loop {
                let Some(&Reverse((arrival, slot, id))) = heap.peek() else {
                    break None;
                };
                let live = self.slots.get(slot as usize).and_then(Option::as_ref);
                let valid = live.is_some_and(|e| {
                    e.req.id.raw() == id && e.req.kind.is_prefetch() && e.first_service.is_none()
                });
                if valid {
                    break Some(arrival);
                }
                heap.pop();
            };
            if let Some(arrival) = head {
                let limit =
                    thresholds.threshold_for(tracker.accuracy(padc_types::CoreId::new(core)));
                let deadline = arrival.saturating_add(limit).saturating_add(1);
                best = Some(best.map_or(deadline, |b: Cycle| b.min(deadline)));
            }
        }
        best
    }

    /// The bank's owner: its highest-[`PrioKey`] member under `ctx`, or
    /// `None` for an empty bank. Served from cache when clean; otherwise
    /// rebuilt by scanning the bank's membership bitset.
    pub fn owner(
        &mut self,
        channel: usize,
        bank: usize,
        ctx: &KeyCtx<'_>,
        ch: &Channel,
        now: Cycle,
    ) -> Option<(PrioKey, Slot)> {
        let bank_idx = channel * self.stride + bank;
        if self.banks[bank_idx].members.is_empty() {
            self.banks[bank_idx].owner = None;
            self.banks[bank_idx].dirty = false;
            return None;
        }
        if self.banks[bank_idx].dirty {
            self.stats.owner_recomputes += 1;
            let mut scanned = 0u64;
            let mut best: Option<(PrioKey, Slot)> = None;
            let members = std::mem::replace(&mut self.banks[bank_idx].members, BitSet::new(0));
            members.for_each(|slot| {
                scanned += 1;
                let e = self.slots[slot].as_ref().expect("member of freed slot");
                let key = ctx.key(e, ch, now);
                if best.is_none_or(|(bk, _)| key > bk) {
                    best = Some((key, slot as Slot));
                }
            });
            self.banks[bank_idx].members = members;
            self.stats.owner_scan_entries += scanned;
            self.banks[bank_idx].owner = best;
            self.banks[bank_idx].dirty = false;
        } else {
            self.stats.owner_reuses += 1;
        }
        self.banks[bank_idx].owner
    }

    /// True if any queued entry wants row `row` of `(channel, bank)` — the
    /// closed-row policy's "is this open row still useful" test, shared by
    /// the scheduler and `next_event`.
    pub fn wants_row(&self, channel: usize, bank: usize, row: u64) -> bool {
        let bank_idx = channel * self.stride + bank;
        let mut found = false;
        self.banks[bank_idx].members.for_each(|slot| {
            if !found {
                let e = self.slots[slot].as_ref().expect("member of freed slot");
                found = e.target.row == row;
            }
        });
        found
    }

    /// True when no queued entry targets `(channel, bank)` — the DARP
    /// refresh-pull pass's idle-bank test (DESIGN.md §15). Pure read of the
    /// membership bitset, so `next_event` may consult it freely.
    pub fn bank_is_empty(&self, channel: usize, bank: usize) -> bool {
        self.banks[channel * self.stride + bank].members.is_empty()
    }

    /// True if any queued writeback targets `(channel, bank)`. During
    /// write-drain phases a pending refresh can hide behind the drain on
    /// any bank the drain itself does not need (DESIGN.md §15).
    pub fn bank_has_writeback(&self, channel: usize, bank: usize) -> bool {
        let bank_idx = channel * self.stride + bank;
        let mut found = false;
        self.banks[bank_idx].members.for_each(|slot| {
            if !found {
                let e = self.slots[slot].as_ref().expect("member of freed slot");
                found = e.is_writeback();
            }
        });
        found
    }

    /// Consistency audit for the incremental state, used by the
    /// `buffer_consistency` proptest: recomputes every derived structure
    /// from the slab and panics on divergence. `ctx` lets it also check
    /// each *clean* cached owner against a from-scratch argmax.
    #[doc(hidden)]
    pub fn audit(&mut self, ctx: &KeyCtx<'_>, channels: &[Channel], now: Cycle) {
        // Order mirror / pos / free-list consistency.
        assert_eq!(
            self.order.len() + self.free.len(),
            self.slots.len(),
            "order + free must partition the slab"
        );
        for (oi, &slot) in self.order.iter().enumerate() {
            assert!(self.slots[slot as usize].is_some(), "queued slot is free");
            assert_eq!(self.pos[slot as usize] as usize, oi, "pos mirror broken");
        }
        for &slot in &self.free {
            assert!(self.slots[slot as usize].is_none(), "free slot occupied");
        }
        // Running counts.
        let live = || self.order.iter().map(|&s| self.entry(s));
        assert_eq!(
            self.writebacks,
            live().filter(|e| e.is_writeback()).count(),
            "writeback count drifted"
        );
        assert_eq!(
            self.batched,
            live().filter(|e| e.batched).count(),
            "batched count drifted"
        );
        for core in 0..self.demands.len() {
            let d = live()
                .filter(|e| e.req.core.index() == core && !e.req.kind.is_prefetch())
                .count() as u64;
            let p = live()
                .filter(|e| e.req.core.index() == core && e.req.kind.is_prefetch())
                .count() as u64;
            assert_eq!(
                self.demands[core], d,
                "demand count drifted for core {core}"
            );
            assert_eq!(
                self.prefetches[core], p,
                "prefetch count drifted for core {core}"
            );
        }
        // Membership bitsets and owners.
        #[allow(clippy::needless_range_loop)] // `ci` indexes two parallel arrays
        for ci in 0..self.refreshes_seen.len() {
            for bank in 0..self.stride {
                let bank_idx = ci * self.stride + bank;
                let members = self.banks[bank_idx].members.to_vec();
                let expect: Vec<usize> = (0..self.slots.len())
                    .filter(|&s| {
                        self.slots[s]
                            .as_ref()
                            .is_some_and(|e| e.target.channel == ci && e.target.bank == bank)
                    })
                    .collect();
                assert_eq!(members, expect, "bitset drifted for bank ({ci}, {bank})");
                if !self.banks[bank_idx].dirty {
                    let ch = &channels[ci];
                    let fresh = expect
                        .iter()
                        .map(|&s| {
                            let e = self.slots[s].as_ref().unwrap();
                            (ctx.key(e, ch, now), s as Slot)
                        })
                        .max_by_key(|&(k, _)| k);
                    assert_eq!(
                        self.banks[bank_idx].owner, fresh,
                        "clean owner cache diverged for bank ({ci}, {bank})"
                    );
                }
            }
        }
        // APD heaps: every droppable entry must be covered by a valid heap
        // item, and each heap's valid minimum must be the core's true
        // earliest droppable arrival.
        if self.apd {
            for (core, heap) in self.apd_heaps.heaps.iter().enumerate() {
                let valid_min = heap
                    .iter()
                    .filter(|&&Reverse((_, slot, id))| {
                        self.slots
                            .get(slot as usize)
                            .and_then(Option::as_ref)
                            .is_some_and(|e| {
                                e.req.id.raw() == id
                                    && e.req.kind.is_prefetch()
                                    && e.first_service.is_none()
                            })
                    })
                    .map(|&Reverse((arrival, _, _))| arrival)
                    .min();
                let true_min = self
                    .order
                    .iter()
                    .map(|&s| self.entry(s))
                    .filter(|e| {
                        e.req.core.index() == core
                            && e.req.kind.is_prefetch()
                            && e.first_service.is_none()
                    })
                    .map(|e| e.req.arrival)
                    .min();
                assert_eq!(
                    valid_min, true_min,
                    "APD heap minimum drifted for core {core}"
                );
            }
        }
        let stats = self.stats;
        assert!(
            stats.owner_recomputes <= stats.owner_invalidations,
            "owner recomputes ({}) exceeded invalidations ({})",
            stats.owner_recomputes,
            stats.owner_invalidations
        );
    }
}

/// Manual `Debug`: prints only *observable* state (slab order, entries,
/// free list, running counts, bank membership). The owner caches, dirty
/// flags, APD heaps, epoch snapshots, and stats counters are pure caches
/// that may legally mutate during proven-idle windows, and the `next_event`
/// soundness oracle detects mutation by comparing `Debug` strings.
impl fmt::Debug for RequestBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        struct Ordered<'a>(&'a RequestBuffer);
        impl fmt::Debug for Ordered<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_list().entries(self.0.iter()).finish()
            }
        }
        struct Members<'a>(&'a RequestBuffer);
        impl fmt::Debug for Members<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_list()
                    .entries(self.0.banks.iter().map(|b| b.members.to_vec()))
                    .finish()
            }
        }
        f.debug_struct("RequestBuffer")
            .field("cap", &self.cap)
            .field("order", &self.order)
            .field("entries", &Ordered(self))
            .field("free", &self.free)
            .field("writebacks", &self.writebacks)
            .field("batched", &self.batched)
            .field("demands", &self.demands)
            .field("prefetches", &self.prefetches)
            .field("bank_members", &Members(self))
            .finish()
    }
}
