//! Priority arbitration: the lexicographic [`PrioKey`] and the [`KeyCtx`]
//! snapshot of everything a key computation reads.
//!
//! The controller's two-level FR-FCFS selection (pick each bank's
//! highest-priority entry, then the best ready bank) compares entries by
//! [`PrioKey`], built from the scheduling policy (Prefetch-Aware DRAM
//! Controllers, MICRO 2008: Rule 1 / Rule 2 with optional PAR-BS batching,
//! urgency, and shortest-job ranking on top). [`KeyCtx`] bundles the key
//! inputs that live outside the entry itself — policy flags, write-drain
//! state, the accuracy tracker, and the per-core rank counts — so the
//! buffer's owner cache can recompute keys without borrowing the whole
//! controller, and so the invalidation rules can name exactly which input
//! changed (DESIGN.md §13).
//!
//! # Worked example
//!
//! ```
//! use padc_core::scheduler::arbiter::KeyCtx;
//! use padc_core::scheduler::buffer::Entry;
//! use padc_core::{AccuracyTracker, SchedulingPolicy};
//! use padc_dram::{AddressMapper, Channel, DramConfig, MappingScheme};
//! use padc_types::{AccessKind, CoreId, LineAddr, MemRequest, RequestId, RequestKind};
//!
//! let dram = DramConfig::default();
//! let mapper = AddressMapper::new(&dram, MappingScheme::Linear);
//! let ch = Channel::new(&dram);
//! let tracker = AccuracyTracker::new(1, 100_000);
//! let ctx = KeyCtx {
//!     policy: SchedulingPolicy::DemandFirst,
//!     write_drain: false,
//!     draining_writes: false,
//!     urgency: false,
//!     promotion_threshold: 0.85,
//!     accuracy: &tracker,
//!     rank_counts: None,
//! };
//!
//! // An older prefetch and a younger demand to the same closed bank:
//! // demand-first ranks the demand's key strictly higher.
//! let mk = |id: u64, kind| {
//!     let req = MemRequest::new(RequestId::new(id), CoreId::new(0), LineAddr::new(id * 64),
//!                               AccessKind::Load, kind, 0);
//!     let target = mapper.map(req.line);
//!     Entry::new(req, target)
//! };
//! let prefetch = mk(0, RequestKind::Prefetch);
//! let demand = mk(1, RequestKind::Demand);
//! assert!(ctx.key(&demand, &ch, 0) > ctx.key(&prefetch, &ch, 0));
//! ```

use std::cmp::Reverse;

use padc_dram::Channel;
use padc_types::{Cycle, MemRequest, RequestKind};

use crate::accuracy::AccuracyTracker;
use crate::config::SchedulingPolicy;

use super::buffer::{is_writeback, Entry};

/// Priority tuple compared lexicographically; larger wins. Field order
/// implements the paper's Rule 1 / Rule 2 (with optional PAR-BS batching
/// on top): batch > tier (critical / demand-first class) > row-hit >
/// urgent > rank > FCFS. Keys never tie: `fcfs` carries the unique request
/// id, so arbitration is independent of iteration order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct PrioKey {
    /// Write-drain service class (always true when write drain is off):
    /// reads match outside drain mode, writebacks match inside it.
    pub class_match: bool,
    /// Member of the current PAR-BS batch.
    pub batched: bool,
    /// Policy tier: criticality for the adaptive policies, the demand /
    /// prefetch class for the fixed-priority baselines, 0 when equal.
    pub tier: u8,
    /// Targets the bank's currently open row.
    pub row_hit: bool,
    /// Demand of a core whose prefetches are inaccurate (§6.4).
    pub urgent: bool,
    /// Shortest-job rank: fewer outstanding critical requests wins (§6.5).
    pub rank: Reverse<u64>,
    /// First-come-first-served tiebreak on the unique request id.
    pub fcfs: Reverse<u64>,
}

/// Everything a [`PrioKey`] computation reads besides the entry and the
/// channel: policy selection, write-drain state, and accuracy inputs.
/// Borrowed immutably for the duration of one scheduling pass; the cached
/// owners remain valid only while every field here is unchanged (the
/// controller invalidates on each mutation — DESIGN.md §13, B3).
#[derive(Clone, Copy)]
pub struct KeyCtx<'a> {
    /// Scheduling policy selecting the key shape.
    pub policy: SchedulingPolicy,
    /// Write-drain feature flag (`ControllerConfig::write_drain`).
    pub write_drain: bool,
    /// Write-drain mode currently active.
    pub draining_writes: bool,
    /// Urgency feature flag (`ControllerConfig::urgency`).
    pub urgency: bool,
    /// Prefetch-accuracy threshold for criticality (`promotion_threshold`).
    pub promotion_threshold: f64,
    /// Per-core prefetch accuracy (constant between rollovers).
    pub accuracy: &'a AccuracyTracker,
    /// Per-core outstanding critical-request counts; `Some` iff ranking.
    pub rank_counts: Option<&'a [u64]>,
}

impl KeyCtx<'_> {
    /// Criticality (§6.2): demands always, prefetches iff their core's
    /// accuracy clears the promotion threshold.
    pub fn is_critical(&self, req: &MemRequest) -> bool {
        match req.kind {
            RequestKind::Demand => true,
            RequestKind::Prefetch => self.accuracy.accuracy(req.core) >= self.promotion_threshold,
        }
    }

    /// Urgency (§6.4): demands of cores with inaccurate prefetchers.
    pub fn is_urgent(&self, req: &MemRequest) -> bool {
        req.kind.is_demand() && self.accuracy.accuracy(req.core) < self.promotion_threshold
    }

    /// The entry's full priority key under this context, with `row_hit`
    /// classified against the channel's current bank state.
    pub fn key(&self, e: &Entry, ch: &Channel, now: Cycle) -> PrioKey {
        let row_hit = ch.is_row_hit(e.target.bank, e.target.row, now);
        let fcfs = Reverse(e.req.id.raw());
        // Write-drain service class: when enabled, reads match outside
        // drain mode and writebacks match inside it.
        let class_match = !self.write_drain || (is_writeback(&e.req) == self.draining_writes);
        match self.policy {
            SchedulingPolicy::DemandPrefetchEqual => PrioKey {
                class_match,
                batched: e.batched,
                tier: 0,
                row_hit,
                urgent: false,
                rank: Reverse(0),
                fcfs,
            },
            SchedulingPolicy::DemandFirst => PrioKey {
                class_match,
                batched: e.batched,
                tier: u8::from(e.req.kind.is_demand()),
                row_hit,
                urgent: false,
                rank: Reverse(0),
                fcfs,
            },
            SchedulingPolicy::PrefetchFirst => PrioKey {
                class_match,
                batched: e.batched,
                tier: u8::from(e.req.kind.is_prefetch()),
                row_hit,
                urgent: false,
                rank: Reverse(0),
                fcfs,
            },
            SchedulingPolicy::ApsOnly | SchedulingPolicy::Padc | SchedulingPolicy::PadcRank => {
                let critical = self.is_critical(&e.req);
                let rank = match self.rank_counts {
                    Some(counts) if critical => {
                        Reverse(counts.get(e.req.core.index()).copied().unwrap_or(u64::MAX))
                    }
                    // Non-critical requests take the worst rank (§6.5
                    // footnote 12).
                    Some(_) => Reverse(u64::MAX),
                    None => Reverse(0),
                };
                PrioKey {
                    class_match,
                    batched: e.batched,
                    tier: u8::from(critical),
                    row_hit,
                    urgent: self.urgency && self.is_urgent(&e.req),
                    rank,
                    fcfs,
                }
            }
        }
    }
}
