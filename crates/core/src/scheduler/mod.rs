//! The memory controller: request buffer, DRAM channels, and the
//! scheduling policies.
//!
//! Split into three layers (DESIGN.md §13):
//!
//! - [`buffer`] — the data-oriented request buffer: slab + free list,
//!   legacy-order mirror, per-bank membership bitsets, cached per-bank
//!   owners, APD deadline heaps, and running counts;
//! - [`arbiter`] — the lexicographic [`PrioKey`] and the
//!   [`KeyCtx`] snapshot of its inputs;
//! - this module — [`MemoryController`]: the tick loop, DRAM command
//!   issue, APD, PAR-BS batching, write drain, and the `next_event` bound
//!   that event-mode fast-forwarding consumes.

pub mod arbiter;
pub mod buffer;

use std::collections::VecDeque;

use padc_dram::{
    AddressMapper, Channel, DramConfig, MappingScheme, RefreshCounters, RefreshPolicy,
    RowBufferOutcome, RowPolicy, StepOutcome,
};
use padc_types::{
    AccessKind, CoreId, Cycle, LineAddr, MemRequest, RequestId, RequestKind,
    CPU_CYCLES_PER_DRAM_CYCLE,
};

use crate::{AccuracyTracker, ControllerConfig, ControllerStats};

use arbiter::{KeyCtx, PrioKey};
use buffer::{BufferStats, Entry, RequestBuffer, Slot};

/// A serviced request handed back to the memory system.
#[derive(Clone, Debug)]
pub struct Completion {
    /// The request, with its final demand/prefetch classification.
    pub request: MemRequest,
    /// True if DRAM serviced it as a row hit (first command was the CAS).
    pub row_hit: bool,
}

/// Everything a [`MemoryController::tick`] produced this cycle.
#[derive(Clone, Debug, Default)]
pub struct TickOutput {
    /// Requests whose data burst finished this cycle.
    pub completions: Vec<Completion>,
    /// Prefetches removed from the buffer by Adaptive Prefetch Dropping.
    /// The caller must invalidate the corresponding MSHR entries.
    pub dropped: Vec<MemRequest>,
}

/// A request whose CAS has issued; completes at `completes_at`.
#[derive(Clone, Debug)]
struct InFlight {
    req: MemRequest,
    target: padc_dram::Target,
    completes_at: Cycle,
    row_hit: bool,
}

/// The Prefetch-Aware DRAM Controller (and all baseline controllers).
///
/// Owns the memory request buffer and the DRAM channels. See the crate docs
/// for the scheduling rules; the policy is selected by
/// [`ControllerConfig::policy`] with feature flags for APD, urgency, and
/// ranking.
#[derive(Clone, Debug)]
pub struct MemoryController {
    cfg: ControllerConfig,
    dram: DramConfig,
    mapper: AddressMapper,
    channels: Vec<Channel>,
    buffer: RequestBuffer,
    /// Writebacks that arrived while the buffer was full; drained in order.
    writeback_overflow: VecDeque<MemRequest>,
    inflight: Vec<InFlight>,
    next_id: u64,
    stats: ControllerStats,
    /// Write-drain mode currently active (see `ControllerConfig::write_drain`).
    draining_writes: bool,
    /// External-mutation epoch: bumped by every [`MemoryController::enqueue`],
    /// [`MemoryController::enqueue_writeback`], and successful
    /// [`MemoryController::promote_prefetch`]. A [`MemoryController::next_event`]
    /// bound is only valid while the epoch it was computed under is unchanged;
    /// event-mode fast-forwarding uses this to know when to re-prove.
    mutations: u64,
}

impl MemoryController {
    /// Creates a controller over fresh DRAM channels.
    pub fn new(cfg: ControllerConfig, dram: DramConfig, mapping: MappingScheme) -> Self {
        let mapper = AddressMapper::new(&dram, mapping);
        let channels = (0..dram.channels).map(|_| Channel::new(&dram)).collect();
        let buffer = RequestBuffer::new(
            cfg.buffer_entries,
            dram.channels,
            dram.banks,
            cfg.cores,
            cfg.ranking,
            cfg.apd,
        );
        MemoryController {
            cfg,
            mapper,
            channels,
            dram,
            buffer,
            writeback_overflow: VecDeque::new(),
            inflight: Vec::new(),
            next_id: 0,
            stats: ControllerStats::default(),
            draining_writes: false,
            mutations: 0,
        }
    }

    /// Monotone counter of external mutations (enqueues, writeback
    /// enqueues, prefetch promotions). Any change invalidates previously
    /// computed [`MemoryController::next_event`] bounds; the controller's
    /// own [`MemoryController::tick`] never bumps it.
    pub fn mutation_epoch(&self) -> u64 {
        self.mutations
    }

    /// Updates write-drain mode from the buffered writeback count. A flip
    /// changes every entry's write-drain service class, so it invalidates
    /// all cached bank owners.
    fn update_write_drain(&mut self) {
        if !self.cfg.write_drain {
            return;
        }
        let writes = self.buffer.writeback_len() + self.writeback_overflow.len();
        let drain = if self.draining_writes {
            writes > self.cfg.write_drain_low
        } else {
            writes >= self.cfg.write_drain_high
        };
        if drain != self.draining_writes {
            self.draining_writes = drain;
            self.buffer.invalidate_all_owners();
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Owner-cache telemetry from the request buffer (not serialized into
    /// reports; surfaced through the opt-in simulation profile).
    pub fn buffer_stats(&self) -> BufferStats {
        self.buffer.stats()
    }

    /// Per-channel DRAM statistics.
    pub fn channel_stats(&self) -> Vec<&padc_dram::ChannelStats> {
        self.channels.iter().map(|c| c.stats()).collect()
    }

    /// Refresh side counters summed over channels (not serialized into
    /// reports; surfaced through the opt-in simulation profile).
    pub fn refresh_counters(&self) -> RefreshCounters {
        self.channels.iter().map(|c| c.refresh_counters()).fold(
            RefreshCounters::default(),
            |a, c| RefreshCounters {
                pulls: a.pulls + c.pulls,
                stall_cycles: a.stall_cycles + c.stall_cycles,
            },
        )
    }

    /// Current buffer occupancy.
    pub fn occupancy(&self) -> usize {
        self.buffer.len()
    }

    /// True if a new request can enter the buffer.
    pub fn has_space(&self) -> bool {
        self.buffer.len() < self.cfg.buffer_entries
    }

    /// True when no work is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.buffer.is_empty() && self.inflight.is_empty() && self.writeback_overflow.is_empty()
    }

    /// True when this policy's priority keys read prefetch accuracy
    /// (criticality / urgency / ranking): such keys go stale at accuracy
    /// rollovers, which [`RequestBuffer::sync_rollover`] detects.
    fn adaptive_keys(&self) -> bool {
        self.cfg.policy.is_adaptive()
    }

    /// The key-computation context for one scheduling pass.
    fn key_ctx<'a>(
        &self,
        accuracy: &'a AccuracyTracker,
        rank_counts: Option<&'a [u64]>,
    ) -> KeyCtx<'a> {
        KeyCtx {
            policy: self.cfg.policy,
            write_drain: self.cfg.write_drain,
            draining_writes: self.draining_writes,
            urgency: self.cfg.urgency,
            promotion_threshold: self.cfg.promotion_threshold,
            accuracy,
            rank_counts,
        }
    }

    /// Enqueues a read request (demand fetch or prefetch). Returns the
    /// request id, or `None` if the buffer is full — the caller decides
    /// whether to retry (demands) or give up (prefetches), which is exactly
    /// the coverage-loss mechanism §6.1 describes.
    pub fn enqueue(
        &mut self,
        core: CoreId,
        line: LineAddr,
        access: AccessKind,
        kind: RequestKind,
        now: Cycle,
    ) -> Option<RequestId> {
        if !self.has_space() {
            self.stats.enqueue_rejections += 1;
            return None;
        }
        let id = RequestId::new(self.next_id);
        self.next_id += 1;
        let req = MemRequest::new(id, core, line, access, kind, now);
        let target = self.mapper.map(line);
        self.buffer.insert(Entry::new(req, target));
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.buffer.len());
        self.mutations += 1;
        Some(id)
    }

    /// Enqueues a dirty-line writeback. Never fails: writebacks that find
    /// the buffer full wait in a drain queue (modelling the write buffer in
    /// front of the controller).
    pub fn enqueue_writeback(&mut self, core: CoreId, line: LineAddr, now: Cycle) {
        self.mutations += 1;
        let id = RequestId::new(self.next_id);
        self.next_id += 1;
        let req = MemRequest::new(id, core, line, AccessKind::Store, RequestKind::Demand, now);
        if self.has_space() {
            let target = self.mapper.map(line);
            self.buffer.insert(Entry::new(req, target));
            self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.buffer.len());
        } else {
            self.writeback_overflow.push_back(req);
        }
    }

    /// A demand access matched an in-flight prefetch to `line` (MSHR hit on
    /// a prefetch entry): promote the request to a demand, resetting its `P`
    /// bit (§4.1). Returns true if a queued or in-flight prefetch was found.
    pub fn promote_prefetch(&mut self, line: LineAddr) -> bool {
        let queued = self.buffer.order_slots().iter().copied().find(|&s| {
            let e = self.buffer.entry(s);
            e.req.line == line && e.req.kind.is_prefetch()
        });
        if let Some(slot) = queued {
            self.buffer.promote(slot);
            self.stats.promotions += 1;
            self.mutations += 1;
            return true;
        }
        for f in &mut self.inflight {
            if f.req.line == line && f.req.kind.is_prefetch() {
                f.req.promote_to_demand();
                self.stats.promotions += 1;
                self.mutations += 1;
                return true;
            }
        }
        false
    }

    /// Advances one CPU cycle: collects completions, applies Adaptive
    /// Prefetch Dropping, and (on DRAM bus cycle boundaries) issues at most
    /// one DRAM command per channel.
    pub fn tick(&mut self, now: Cycle, accuracy: &AccuracyTracker) -> TickOutput {
        self.buffer.sync_rollover(accuracy, self.adaptive_keys());
        let mut out = TickOutput::default();
        self.collect_completions(now, &mut out);
        if self.cfg.apd {
            self.drop_old_prefetches(now, accuracy, &mut out);
        }
        self.drain_writebacks();
        if now.is_multiple_of(CPU_CYCLES_PER_DRAM_CYCLE) {
            if self.cfg.batching {
                self.reform_batch_if_drained();
            }
            self.update_write_drain();
            for ch in 0..self.channels.len() {
                self.channels[ch].sync(now);
                // A refresh closed every bank, re-keying row hits.
                let refreshes = self.channels[ch].stats().refreshes;
                self.buffer.sync_refresh(ch, refreshes);
                self.schedule_channel(ch, now, accuracy);
            }
            match self.dram.row_policy {
                RowPolicy::Open => {}
                RowPolicy::Closed => self.apply_closed_row_policy(now),
                RowPolicy::Happy => self.apply_happy_row_policy(now),
            }
            if self.dram.refresh_policy == RefreshPolicy::Darp {
                self.apply_darp_refresh_pulls(now);
            }
        }
        out
    }

    /// Lower bound on the first cycle `m >= now` at which
    /// [`MemoryController::tick`]`(m)` can perform observable work, assuming
    /// no external mutation (enqueue / promote) happens in between. `None`
    /// when the controller is fully quiescent and only external input can
    /// change its state.
    ///
    /// This is the controller's contribution to the fast-forward event
    /// contract (DESIGN.md §11). The bound folds together:
    ///
    /// - in-flight CAS completions (`completes_at`, exact);
    /// - APD drop deadlines (`arrival + threshold + 1`, exact while `PAR`
    ///   is stable — the caller separately bounds the skip by
    ///   [`AccuracyTracker::next_rollover`]), served by the buffer's
    ///   per-core deadline heaps in O(cores);
    /// - pending boundary-only recomputations: a drained PAR-BS batch
    ///   waiting to reform, a write-drain watermark crossing waiting to
    ///   flip, both due at the next DRAM bus boundary;
    /// - DRAM readiness of each bank's highest-priority queued request
    ///   ([`Channel::earliest_advance_at`] for the bank *owner* only —
    ///   two-level arbitration means no other entry can issue on that
    ///   bank), aligned up to the next DRAM bus boundary;
    /// - pending refresh boundaries ([`Channel::next_refresh_boundary`] —
    ///   per-bank staggered deadlines under the per-bank refresh policies);
    /// - DARP refresh-pull opportunities on pull-eligible banks
    ///   ([`Channel::earliest_refresh_pull_at`]); eligibility is a pure
    ///   read of bank membership and the write-drain flag, both constant
    ///   across a proven-idle window (membership changes only at executed
    ///   ticks or external mutations, drain flips are folded above);
    /// - closed-row-policy precharges of open banks no queued or in-flight
    ///   request wants ([`Channel::earliest_precharge_at`]); under the
    ///   HAPPY policy the same bound applies only to banks whose open row
    ///   the per-row predictor votes to close
    ///   ([`Channel::happy_votes_close`], a pure read — predictor state
    ///   mutates only when commands issue, i.e. only at executed ticks);
    /// - overflowed writebacks that could drain into freed buffer space
    ///   (due immediately, so the caller simply does not skip).
    ///
    /// Bounds may be *early* (the tick at the returned cycle does nothing
    /// and stepping resumes) but are never late — that is what keeps
    /// fast-forwarded runs bit-identical to cycle-by-cycle stepping.
    ///
    /// Takes `&mut self` purely for cache maintenance (lazy heap cleanup
    /// and owner-cache fills); observable controller state is unchanged.
    pub fn next_event(&mut self, now: Cycle, accuracy: &AccuracyTracker) -> Option<Cycle> {
        self.buffer.sync_rollover(accuracy, self.adaptive_keys());
        let mut ev: Option<Cycle> = None;
        let mut fold = |c: Cycle| ev = Some(ev.map_or(c, |e: Cycle| e.min(c)));
        for f in &self.inflight {
            fold(f.completes_at);
        }
        if self.cfg.apd {
            if let Some(d) = self
                .buffer
                .earliest_drop_deadline(&self.cfg.drop_thresholds, accuracy)
            {
                fold(d);
            }
        }
        if !self.writeback_overflow.is_empty() && self.has_space() {
            // A writeback can drain this very cycle; don't skip at all.
            fold(now);
        }
        if self.cfg.batching && !self.buffer.is_empty() && self.buffer.batched_len() == 0 {
            fold(align_up_dram(now));
        }
        if self.cfg.write_drain {
            let writes = self.buffer.writeback_len() + self.writeback_overflow.len();
            let flips = if self.draining_writes {
                writes <= self.cfg.write_drain_low
            } else {
                writes >= self.cfg.write_drain_high
            };
            if flips {
                fold(align_up_dram(now));
            }
        }
        for ch in &self.channels {
            if let Some(r) = ch.next_refresh_boundary(now) {
                fold(r);
            }
        }
        if self.dram.refresh_policy == RefreshPolicy::Darp {
            for (ci, ch) in self.channels.iter().enumerate() {
                for bank in 0..ch.bank_count() {
                    if !self.refresh_pull_eligible(ci, bank) {
                        continue;
                    }
                    if let Some(t) = ch.earliest_refresh_pull_at(bank, now) {
                        fold(align_up_dram(t));
                    }
                }
            }
        }
        // Owner-aware advance bound. [`MemoryController::schedule_channel`]'s
        // two-level selection means only the highest-priority entry per bank
        // (that bank's *owner*) can issue the bank's next command, so
        // non-owner entries cannot tighten the bound. Ownership is stable
        // across a proven-idle window: priority keys depend on the
        // row-buffer class (unchanged by passive ACT/PRE completions — an
        // activating row already classifies as its future hit, a precharging
        // bank as closed), on batch / write-drain flags (tick-mutated, and
        // their boundary flips are folded above), and on accuracy (constant
        // between rollovers; the caller caps every skip at
        // [`AccuracyTracker::next_rollover`]); buffer membership only
        // changes at executed ticks or external mutations, both of which
        // re-prove the bound. The same stability argument is what lets the
        // buffer serve owners from its per-bank cache here (DESIGN.md §13).
        if !self.buffer.is_empty() {
            let rank_counts = self
                .buffer
                .rank_counts(accuracy, self.cfg.promotion_threshold);
            let ctx = self.key_ctx(accuracy, rank_counts.as_deref());
            let (buffer, channels) = (&mut self.buffer, &self.channels);
            for (ci, ch) in channels.iter().enumerate() {
                for bank in 0..ch.bank_count() {
                    if let Some((_, slot)) = buffer.owner(ci, bank, &ctx, ch, now) {
                        let e = buffer.entry(slot);
                        fold(align_up_dram(ch.earliest_advance_at(
                            e.target.bank,
                            e.target.row,
                            now,
                        )));
                    }
                }
            }
        }
        if matches!(self.dram.row_policy, RowPolicy::Closed | RowPolicy::Happy) {
            let happy = self.dram.row_policy == RowPolicy::Happy;
            for (ci, ch) in self.channels.iter().enumerate() {
                for bank in 0..ch.bank_count() {
                    let Some(open) = ch.effective_row(bank, now) else {
                        continue;
                    };
                    if happy && !ch.happy_votes_close(bank, now) {
                        continue;
                    }
                    if !self.row_wanted(ci, bank, open) {
                        if let Some(t) = ch.earliest_precharge_at(bank, now) {
                            fold(align_up_dram(t));
                        }
                    }
                }
            }
        }
        ev
    }

    fn collect_completions(&mut self, now: Cycle, out: &mut TickOutput) {
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].completes_at <= now {
                let f = self.inflight.swap_remove(i);
                out.completions.push(Completion {
                    request: f.req,
                    row_hit: f.row_hit,
                });
            } else {
                i += 1;
            }
        }
    }

    /// Adaptive Prefetch Dropping (§4.3): remove queued prefetches older
    /// than their core's dynamic drop threshold. Requests already being
    /// serviced (first command issued) are left alone, as are promoted
    /// prefetches (they are demands now).
    ///
    /// The buffer's deadline heaps answer "is anything due?" in O(cores);
    /// only when a drop is actually due does the legacy-order scan run, so
    /// emission order stays bit-identical to the flat-vector controller.
    fn drop_old_prefetches(
        &mut self,
        now: Cycle,
        accuracy: &AccuracyTracker,
        out: &mut TickOutput,
    ) {
        match self
            .buffer
            .earliest_drop_deadline(&self.cfg.drop_thresholds, accuracy)
        {
            Some(deadline) if deadline <= now => {}
            _ => return,
        }
        let thresholds = self.cfg.drop_thresholds;
        let mut i = 0;
        while i < self.buffer.len() {
            let slot = self.buffer.order_slots()[i];
            let e = self.buffer.entry(slot);
            let droppable = e.req.kind.is_prefetch() && e.first_service.is_none();
            if droppable {
                let limit = thresholds.threshold_for(accuracy.accuracy(e.req.core));
                if e.req.age(now) > limit {
                    let e = self.buffer.remove(slot);
                    self.stats.prefetches_dropped += 1;
                    out.dropped.push(e.req);
                    continue;
                }
            }
            i += 1;
        }
    }

    fn drain_writebacks(&mut self) {
        while self.has_space() {
            let Some(req) = self.writeback_overflow.pop_front() else {
                break;
            };
            let target = self.mapper.map(req.line);
            self.buffer.insert(Entry::new(req, target));
        }
    }

    /// PAR-BS batching: when no batched request remains, mark the oldest
    /// `batch_cap` requests of each core as the new batch.
    fn reform_batch_if_drained(&mut self) {
        if self.buffer.batched_len() > 0 || self.buffer.is_empty() {
            return;
        }
        let mut slots: Vec<Slot> = self.buffer.order_slots().to_vec();
        slots.sort_by_key(|&s| self.buffer.entry(s).req.id);
        let mut per_core = vec![0usize; self.cfg.cores.max(1)];
        for s in slots {
            let core = self.buffer.entry(s).req.core.index();
            if let Some(count) = per_core.get_mut(core) {
                if *count < self.cfg.batch_cap {
                    *count += 1;
                    self.buffer.set_batched(s);
                }
            }
        }
    }

    /// Pick and issue at most one command on `channel`.
    fn schedule_channel(&mut self, channel: usize, now: Cycle, accuracy: &AccuracyTracker) {
        if !self.channels[channel].command_bus_free(now) {
            return;
        }
        // Per-core outstanding critical-request counts for ranking (§6.5),
        // rebuilt O(cores) from the buffer's running kind counts.
        let rank_counts = self
            .buffer
            .rank_counts(accuracy, self.cfg.promotion_threshold);
        let ctx = self.key_ctx(accuracy, rank_counts.as_deref());

        // Two-level selection, as in real FR-FCFS controllers: first pick
        // the highest-priority *request* per bank (that request owns the
        // bank — a lower-priority row-conflict must not precharge a row
        // that a higher-priority row-hit is still waiting to read), then
        // pick the best bank whose owner can issue a command this cycle.
        // The per-bank owners come from the buffer's cache; only banks
        // whose membership or key inputs changed are rescanned.
        let (buffer, channels) = (&mut self.buffer, &self.channels);
        let ch = &channels[channel];
        let mut best: Option<(PrioKey, Slot)> = None;
        for bank in 0..ch.bank_count() {
            let Some((key, slot)) = buffer.owner(channel, bank, &ctx, ch, now) else {
                continue;
            };
            let e = buffer.entry(slot);
            if !ch.can_advance(e.target.bank, e.target.row, now) {
                continue;
            }
            if best.is_none_or(|(bk, _)| key > bk) {
                best = Some((key, slot));
            }
        }
        let Some((_, slot)) = best else { return };
        let (bank, row) = {
            let t = &self.buffer.entry(slot).target;
            (t.bank, t.row)
        };
        // Record the row-buffer classification of the first command.
        if self.buffer.entry(slot).first_service.is_none() {
            let class = self.channels[channel].classify(bank, row, now);
            self.buffer.set_first_service(slot, class);
        }
        let is_write = self.buffer.entry(slot).req.access == AccessKind::Store;
        match self.channels[channel].advance(bank, row, is_write, now) {
            StepOutcome::CasIssued { completes_at } => {
                let e = self.buffer.remove(slot);
                let row_hit = e.first_service == Some(RowBufferOutcome::Hit);
                let service = completes_at.saturating_sub(e.req.arrival);
                match e.req.kind {
                    RequestKind::Demand if e.req.access == AccessKind::Load => {
                        self.stats.demand_latency_sum += service;
                        self.stats.demand_latency_count += 1;
                    }
                    RequestKind::Prefetch => {
                        self.stats.prefetch_latency_sum += service;
                        self.stats.prefetch_latency_count += 1;
                    }
                    RequestKind::Demand => {}
                }
                match e.req.kind {
                    RequestKind::Demand => {
                        if e.req.access == AccessKind::Store && !e.req.was_prefetch {
                            self.stats.writebacks_serviced += 1;
                        }
                        self.stats.demands_serviced += 1;
                        if row_hit {
                            self.stats.demand_row_hits += 1;
                        }
                    }
                    RequestKind::Prefetch => {
                        self.stats.prefetches_serviced += 1;
                        if row_hit {
                            self.stats.prefetch_row_hits += 1;
                        }
                    }
                }
                self.inflight.push(InFlight {
                    req: e.req,
                    target: e.target,
                    completes_at,
                    row_hit,
                });
            }
            StepOutcome::Precharged | StepOutcome::Activated => {
                // The bank's row state changed: row-hit bits of its queued
                // entries (the owner included) may have flipped.
                self.buffer.note_bank_command(channel, bank);
            }
            StepOutcome::Blocked => unreachable!("can_advance was checked"),
        }
    }

    /// True if any queued or in-flight request wants row `row` of
    /// `(channel, bank)` — the closed-row policy's "is this open row still
    /// useful" test, shared by the scheduler and [`MemoryController::next_event`].
    fn row_wanted(&self, channel: usize, bank: usize, row: u64) -> bool {
        self.buffer.wants_row(channel, bank, row)
            || self.inflight.iter().any(|f| {
                f.target.channel == channel && f.target.bank == bank && f.target.row == row
            })
    }

    /// Closed-row policy (§6.8): precharge any bank whose open row has no
    /// queued or in-flight request left.
    fn apply_closed_row_policy(&mut self, now: Cycle) {
        for ch_idx in 0..self.channels.len() {
            if !self.channels[ch_idx].command_bus_free(now) {
                continue;
            }
            for bank in 0..self.channels[ch_idx].bank_count() {
                let Some(open) = self.channels[ch_idx].effective_row(bank, now) else {
                    continue;
                };
                if !self.row_wanted(ch_idx, bank, open)
                    && self.channels[ch_idx].precharge_bank(bank, now)
                {
                    // The precharged bank's row state changed.
                    self.buffer.note_bank_command(ch_idx, bank);
                    // One command per DRAM cycle: stop after a precharge.
                    break;
                }
            }
        }
    }

    /// HAPPY hybrid page policy: like the closed-row policy, but a bank's
    /// idle open row is precharged only when the per-row predictor votes to
    /// close it ([`Channel::happy_votes_close`]); rows the predictor deems
    /// reusable stay open as under the open-row policy. Each policy
    /// precharge is a bank-state-changing command, so it must invalidate
    /// the bank's cached owner exactly like the closed-row path (the
    /// HAPPY-precharge rule of the owner-cache enumeration, DESIGN.md §13).
    fn apply_happy_row_policy(&mut self, now: Cycle) {
        for ch_idx in 0..self.channels.len() {
            if !self.channels[ch_idx].command_bus_free(now) {
                continue;
            }
            for bank in 0..self.channels[ch_idx].bank_count() {
                let Some(open) = self.channels[ch_idx].effective_row(bank, now) else {
                    continue;
                };
                if !self.channels[ch_idx].happy_votes_close(bank, now) {
                    continue;
                }
                if !self.row_wanted(ch_idx, bank, open)
                    && self.channels[ch_idx].precharge_bank(bank, now)
                {
                    // The precharged bank's row state changed.
                    self.buffer.note_bank_command(ch_idx, bank);
                    // One command per DRAM cycle: stop after a precharge.
                    break;
                }
            }
        }
    }

    /// True when pulling a refresh into `(channel, bank)` cannot delay work
    /// the scheduler still wants from the bank: the bank has no queued
    /// requests at all, or a write-drain phase is active and the bank has
    /// no queued writebacks (its reads are not being serviced anyway, so
    /// the refresh hides behind the drain — DARP's drain pairing).
    fn refresh_pull_eligible(&self, channel: usize, bank: usize) -> bool {
        self.buffer.bank_is_empty(channel, bank)
            || (self.draining_writes && !self.buffer.bank_has_writeback(channel, bank))
    }

    /// DARP out-of-order refresh pulls (DESIGN.md §15): on each channel
    /// with a free command bus, issue at most one pending per-bank refresh
    /// into a pull-eligible bank ([`MemoryController::refresh_pull_eligible`]),
    /// paying the bank's current refresh window early so its deadline-forced
    /// refresh never lands on top of demand work. Runs after the scheduler
    /// and the row policy, so a pull never displaces a real command. Each
    /// pull changes the bank's row state (the REF implicitly precharges),
    /// so the bank's cached owner is invalidated exactly like a policy
    /// precharge (the dirty-owner rule, DESIGN.md §13).
    fn apply_darp_refresh_pulls(&mut self, now: Cycle) {
        for ch_idx in 0..self.channels.len() {
            if !self.channels[ch_idx].command_bus_free(now) {
                continue;
            }
            for bank in 0..self.channels[ch_idx].bank_count() {
                if !self.channels[ch_idx].refresh_pending(bank, now)
                    || !self.refresh_pull_eligible(ch_idx, bank)
                {
                    continue;
                }
                if self.channels[ch_idx].pull_refresh(bank, now) {
                    self.buffer.note_bank_command(ch_idx, bank);
                    // One command per DRAM cycle: stop after a pull.
                    break;
                }
            }
        }
    }

    /// Audits the buffer's incremental state (bitsets, counts, heaps, and
    /// every *clean* cached owner) against a from-scratch recompute,
    /// panicking on divergence. Test-only support for the
    /// `buffer_consistency` proptest.
    #[doc(hidden)]
    pub fn audit_buffer(&mut self, now: Cycle, accuracy: &AccuracyTracker) {
        self.buffer.sync_rollover(accuracy, self.adaptive_keys());
        let rank_counts = self
            .buffer
            .rank_counts(accuracy, self.cfg.promotion_threshold);
        let ctx = self.key_ctx(accuracy, rank_counts.as_deref());
        let (buffer, channels) = (&mut self.buffer, &self.channels);
        buffer.audit(&ctx, channels, now);
    }
}

/// First DRAM command-bus boundary at or after `t` (commands issue only
/// when `now` is a multiple of `CPU_CYCLES_PER_DRAM_CYCLE`).
fn align_up_dram(t: Cycle) -> Cycle {
    t.div_ceil(CPU_CYCLES_PER_DRAM_CYCLE) * CPU_CYCLES_PER_DRAM_CYCLE
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchedulingPolicy;

    fn tracker(cores: usize) -> AccuracyTracker {
        AccuracyTracker::new(cores, 100_000)
    }

    /// Tracker whose PAR has converged to `acc` for every core.
    fn tracker_with_accuracy(cores: usize, acc: f64) -> AccuracyTracker {
        let mut t = AccuracyTracker::new(cores, 100);
        for k in 1..=24u64 {
            for i in 0..cores {
                for _ in 0..100 {
                    t.on_prefetch_sent(CoreId::new(i));
                }
                for _ in 0..(acc * 100.0).round() as usize {
                    t.on_prefetch_used(CoreId::new(i));
                }
            }
            t.tick(k * 100);
        }
        t
    }

    fn controller(policy: SchedulingPolicy) -> MemoryController {
        MemoryController::new(
            ControllerConfig::from_policy(policy, 1),
            DramConfig::default(),
            MappingScheme::Linear,
        )
    }

    fn run_until_idle(
        mc: &mut MemoryController,
        t: &AccuracyTracker,
        start: Cycle,
    ) -> Vec<Completion> {
        let mut done = Vec::new();
        let mut now = start;
        while !mc.is_idle() {
            let out = mc.tick(now, t);
            done.extend(out.completions);
            now += 1;
            assert!(now < start + 1_000_000, "controller wedged");
        }
        done
    }

    #[test]
    fn single_demand_completes_with_closed_row_latency() {
        let mut mc = controller(SchedulingPolicy::DemandFirst);
        let t = tracker(1);
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(0),
            AccessKind::Load,
            RequestKind::Demand,
            0,
        )
        .unwrap();
        let done = run_until_idle(&mut mc, &t, 0);
        assert_eq!(done.len(), 1);
        assert!(!done[0].row_hit);
        assert_eq!(mc.stats().demands_serviced, 1);
    }

    #[test]
    fn demand_first_services_demand_before_older_prefetch() {
        // Both target the same bank, different rows; the prefetch is older.
        let mut mc = controller(SchedulingPolicy::DemandFirst);
        let t = tracker(1);
        let lines_per_row = DramConfig::default().lines_per_row();
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(0),
            AccessKind::Load,
            RequestKind::Prefetch,
            0,
        )
        .unwrap();
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(lines_per_row * 8), // same bank, different row
            AccessKind::Load,
            RequestKind::Demand,
            0,
        )
        .unwrap();
        let done = run_until_idle(&mut mc, &t, 0);
        assert!(done[0].request.kind.is_demand(), "demand must finish first");
    }

    #[test]
    fn equal_policy_services_row_hit_prefetch_first() {
        // Open a row via a demand, then queue a row-hit prefetch and a
        // row-conflict demand: FR-FCFS picks the row hit.
        let mut mc = controller(SchedulingPolicy::DemandPrefetchEqual);
        let t = tracker(1);
        let lpr = DramConfig::default().lines_per_row();
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(0),
            AccessKind::Load,
            RequestKind::Demand,
            0,
        )
        .unwrap();
        let done = run_until_idle(&mut mc, &t, 0);
        assert_eq!(done.len(), 1);
        // Row 0 of bank 0 is now open.
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(lpr * 8), // same bank, conflicting row — demand
            AccessKind::Load,
            RequestKind::Demand,
            1000,
        )
        .unwrap();
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(1), // row hit — prefetch
            AccessKind::Load,
            RequestKind::Prefetch,
            1001,
        )
        .unwrap();
        let done = run_until_idle(&mut mc, &t, 1005);
        assert!(done[0].request.kind.is_prefetch());
        assert!(done[0].row_hit);
    }

    #[test]
    fn demand_first_sacrifices_row_hit_for_demand() {
        let mut mc = controller(SchedulingPolicy::DemandFirst);
        let t = tracker(1);
        let lpr = DramConfig::default().lines_per_row();
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(0),
            AccessKind::Load,
            RequestKind::Demand,
            0,
        )
        .unwrap();
        run_until_idle(&mut mc, &t, 0);
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(1),
            AccessKind::Load,
            RequestKind::Prefetch,
            1000,
        )
        .unwrap();
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(lpr * 8),
            AccessKind::Load,
            RequestKind::Demand,
            1001,
        )
        .unwrap();
        let done = run_until_idle(&mut mc, &t, 1005);
        assert!(done[0].request.kind.is_demand());
        assert!(!done[0].row_hit);
    }

    #[test]
    fn aps_with_high_accuracy_behaves_like_equal() {
        let mut mc = MemoryController::new(
            ControllerConfig::from_policy(SchedulingPolicy::ApsOnly, 1),
            DramConfig::default(),
            MappingScheme::Linear,
        );
        let t = tracker_with_accuracy(1, 0.95);
        let lpr = DramConfig::default().lines_per_row();
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(0),
            AccessKind::Load,
            RequestKind::Demand,
            0,
        )
        .unwrap();
        run_until_idle(&mut mc, &t, 0);
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(lpr * 8),
            AccessKind::Load,
            RequestKind::Demand,
            1000,
        )
        .unwrap();
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(1),
            AccessKind::Load,
            RequestKind::Prefetch,
            1001,
        )
        .unwrap();
        let done = run_until_idle(&mut mc, &t, 1005);
        // Accurate prefetches are critical: the row-hit prefetch goes first.
        assert!(done[0].request.kind.is_prefetch());
    }

    #[test]
    fn aps_with_low_accuracy_behaves_like_demand_first() {
        let mut mc = MemoryController::new(
            ControllerConfig::from_policy(SchedulingPolicy::ApsOnly, 1),
            DramConfig::default(),
            MappingScheme::Linear,
        );
        let t = tracker_with_accuracy(1, 0.10);
        let lpr = DramConfig::default().lines_per_row();
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(0),
            AccessKind::Load,
            RequestKind::Demand,
            0,
        )
        .unwrap();
        run_until_idle(&mut mc, &t, 0);
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(1),
            AccessKind::Load,
            RequestKind::Prefetch,
            1000,
        )
        .unwrap();
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(lpr * 8),
            AccessKind::Load,
            RequestKind::Demand,
            1001,
        )
        .unwrap();
        let done = run_until_idle(&mut mc, &t, 1005);
        assert!(done[0].request.kind.is_demand());
    }

    #[test]
    fn apd_drops_old_prefetches_with_low_accuracy() {
        let mut mc = MemoryController::new(
            ControllerConfig::from_policy(SchedulingPolicy::Padc, 1),
            DramConfig::default(),
            MappingScheme::Linear,
        );
        let t = tracker_with_accuracy(1, 0.05); // threshold: 100 cycles
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(123_456),
            AccessKind::Load,
            RequestKind::Prefetch,
            0,
        )
        .unwrap();
        // Stall scheduling by keeping the request un-advanceable? Simpler:
        // place a stream of demands in front so the prefetch ages out.
        // Actually with an empty system the prefetch is serviced quickly, so
        // drop needs age > 100 before first command; enqueue at time 0 and
        // tick starting from 200 without scheduling in between.
        let out = mc.tick(201, &t); // first tick is already past the limit
        assert_eq!(out.dropped.len(), 1);
        assert_eq!(mc.stats().prefetches_dropped, 1);
        assert!(mc.is_idle());
    }

    #[test]
    fn apd_keeps_prefetches_with_high_accuracy() {
        let mut mc = MemoryController::new(
            ControllerConfig::from_policy(SchedulingPolicy::Padc, 1),
            DramConfig::default(),
            MappingScheme::Linear,
        );
        let t = tracker_with_accuracy(1, 0.95); // threshold: 100_000 cycles
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(1),
            AccessKind::Load,
            RequestKind::Prefetch,
            0,
        )
        .unwrap();
        let out = mc.tick(201, &t);
        assert!(out.dropped.is_empty());
    }

    #[test]
    fn promoted_prefetch_completes_as_demand() {
        let mut mc = controller(SchedulingPolicy::DemandFirst);
        let t = tracker(1);
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(9),
            AccessKind::Load,
            RequestKind::Prefetch,
            0,
        )
        .unwrap();
        assert!(mc.promote_prefetch(LineAddr::new(9)));
        assert!(!mc.promote_prefetch(LineAddr::new(9)), "already promoted");
        let done = run_until_idle(&mut mc, &t, 0);
        assert!(done[0].request.kind.is_demand());
        assert!(done[0].request.was_prefetch);
        assert_eq!(mc.stats().promotions, 1);
    }

    #[test]
    fn promoted_prefetch_is_not_droppable() {
        let mut mc = MemoryController::new(
            ControllerConfig::from_policy(SchedulingPolicy::Padc, 1),
            DramConfig::default(),
            MappingScheme::Linear,
        );
        let t = tracker_with_accuracy(1, 0.0);
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(9),
            AccessKind::Load,
            RequestKind::Prefetch,
            0,
        )
        .unwrap();
        mc.promote_prefetch(LineAddr::new(9));
        let out = mc.tick(100_000, &t);
        assert!(out.dropped.is_empty());
    }

    #[test]
    fn buffer_full_rejects_and_counts() {
        let mut cfg = ControllerConfig::from_policy(SchedulingPolicy::DemandFirst, 1);
        cfg.buffer_entries = 2;
        let mut mc = MemoryController::new(cfg, DramConfig::default(), MappingScheme::Linear);
        for i in 0..2 {
            assert!(mc
                .enqueue(
                    CoreId::new(0),
                    LineAddr::new(i),
                    AccessKind::Load,
                    RequestKind::Demand,
                    0
                )
                .is_some());
        }
        assert!(mc
            .enqueue(
                CoreId::new(0),
                LineAddr::new(99),
                AccessKind::Load,
                RequestKind::Demand,
                0
            )
            .is_none());
        assert_eq!(mc.stats().enqueue_rejections, 1);
    }

    #[test]
    fn writeback_overflow_drains_in_order() {
        let mut cfg = ControllerConfig::from_policy(SchedulingPolicy::DemandFirst, 1);
        cfg.buffer_entries = 1;
        let mut mc = MemoryController::new(cfg, DramConfig::default(), MappingScheme::Linear);
        let t = tracker(1);
        mc.enqueue_writeback(CoreId::new(0), LineAddr::new(0), 0);
        mc.enqueue_writeback(CoreId::new(0), LineAddr::new(1), 0);
        mc.enqueue_writeback(CoreId::new(0), LineAddr::new(2), 0);
        assert_eq!(mc.occupancy(), 1);
        let done = run_until_idle(&mut mc, &t, 0);
        assert_eq!(done.len(), 3);
        assert_eq!(mc.stats().writebacks_serviced, 3);
    }

    #[test]
    fn urgency_prefers_low_accuracy_cores_demand() {
        // Two cores; core 0 accurate (its prefetches are critical), core 1
        // inaccurate. Queue a row-hit critical prefetch from core 0 and a
        // row-conflict demand from core 1. Under APS with urgency, critical
        // beats critical on row-hit... so instead compare two *critical*
        // requests where only urgency differs: both row-conflict demands
        // (core 0 demand vs core 1 demand), core 1's should win even though
        // core 0's is older.
        let mut cfg = ControllerConfig::from_policy(SchedulingPolicy::ApsOnly, 2);
        cfg.buffer_entries = 8;
        let mut mc = MemoryController::new(cfg, DramConfig::default(), MappingScheme::Linear);
        let mut t = AccuracyTracker::new(2, 100);
        // core 0: perfect accuracy; core 1: useless prefetches.
        for _ in 0..10 {
            t.on_prefetch_sent(CoreId::new(0));
            t.on_prefetch_used(CoreId::new(0));
            t.on_prefetch_sent(CoreId::new(1));
        }
        t.tick(100);
        let lpr = DramConfig::default().lines_per_row();
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(0),
            AccessKind::Load,
            RequestKind::Demand,
            0,
        )
        .unwrap();
        mc.enqueue(
            CoreId::new(1),
            LineAddr::new(lpr * 8),
            AccessKind::Load,
            RequestKind::Demand,
            1,
        )
        .unwrap();
        let done = run_until_idle(&mut mc, &t, 100);
        assert_eq!(done[0].request.core, CoreId::new(1), "urgent demand first");
    }

    #[test]
    fn ranking_prefers_core_with_fewer_critical_requests() {
        let mut cfg = ControllerConfig::from_policy(SchedulingPolicy::PadcRank, 2);
        cfg.urgency = false; // isolate the ranking rule
        let mut mc = MemoryController::new(cfg, DramConfig::default(), MappingScheme::Linear);
        let t = tracker(2); // both cores accuracy 0 -> all demands critical
        let lpr = DramConfig::default().lines_per_row();
        // Core 0: three demands (memory-intensive). Core 1: one demand.
        for i in 0..3u64 {
            mc.enqueue(
                CoreId::new(0),
                LineAddr::new(lpr * 8 * (i + 2)), // distinct rows, bank 0... spread
                AccessKind::Load,
                RequestKind::Demand,
                i,
            )
            .unwrap();
        }
        mc.enqueue(
            CoreId::new(1),
            LineAddr::new(lpr * 8 * 40),
            AccessKind::Load,
            RequestKind::Demand,
            3,
        )
        .unwrap();
        let done = run_until_idle(&mut mc, &t, 10);
        assert_eq!(
            done[0].request.core,
            CoreId::new(1),
            "shorter job must be serviced first"
        );
    }

    #[test]
    fn write_drain_defers_writebacks_until_the_watermark() {
        let mut cfg = ControllerConfig::from_policy(SchedulingPolicy::DemandFirst, 1);
        cfg.write_drain = true;
        cfg.write_drain_high = 4;
        cfg.write_drain_low = 1;
        let mut mc = MemoryController::new(cfg, DramConfig::default(), MappingScheme::Linear);
        let t = tracker(1);
        let lpr = DramConfig::default().lines_per_row();
        // Three writebacks (below the watermark) plus a younger read to a
        // different row of the same bank: the read must finish first even
        // though the writebacks are older demands.
        for i in 0..3u64 {
            mc.enqueue_writeback(CoreId::new(0), LineAddr::new(lpr * 8 * (i + 1)), 0);
        }
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(0),
            AccessKind::Load,
            RequestKind::Demand,
            1,
        )
        .unwrap();
        let done = run_until_idle(&mut mc, &t, 10);
        assert!(
            done[0].request.access == AccessKind::Load,
            "read must be serviced before sub-watermark writebacks"
        );
        // A fourth writeback crosses the high watermark: drain mode kicks
        // in and services buffered writes ahead of a new read.
        for i in 0..4u64 {
            mc.enqueue_writeback(CoreId::new(0), LineAddr::new(lpr * 8 * (i + 10)), 1000);
        }
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(1),
            AccessKind::Load,
            RequestKind::Demand,
            1001,
        )
        .unwrap();
        let done = run_until_idle(&mut mc, &t, 1010);
        assert!(
            done[0].request.access == AccessKind::Store,
            "drain mode must service writes first"
        );
    }

    #[test]
    fn batching_bounds_starvation_of_memory_intensive_cores() {
        // Core 0 floods the buffer with a row-hit river; core 1 has one
        // late, conflicting request. With PAR-BS batching, the first batch
        // caps core 0 at batch_cap entries, so core 1's request is reached
        // within two batches instead of waiting out the whole river.
        let mut cfg = ControllerConfig::from_policy(SchedulingPolicy::DemandPrefetchEqual, 2);
        cfg.batching = true;
        cfg.batch_cap = 2;
        let mut mc = MemoryController::new(cfg, DramConfig::default(), MappingScheme::Linear);
        let t = tracker(2);
        for i in 0..6u64 {
            mc.enqueue(
                CoreId::new(0),
                LineAddr::new(i),
                AccessKind::Load,
                RequestKind::Demand,
                0,
            )
            .unwrap();
        }
        mc.enqueue(
            CoreId::new(1),
            LineAddr::new(DramConfig::default().lines_per_row() * 8),
            AccessKind::Load,
            RequestKind::Demand,
            1,
        )
        .unwrap();
        let done = run_until_idle(&mut mc, &t, 10);
        let pos_core1 = done
            .iter()
            .position(|c| c.request.core == CoreId::new(1))
            .expect("core 1 serviced");
        assert!(
            pos_core1 <= 4,
            "batching must reach core 1 within two batches (finished {} of {})",
            pos_core1 + 1,
            done.len()
        );
    }

    #[test]
    fn closed_row_policy_precharges_idle_banks() {
        let dram = DramConfig {
            row_policy: RowPolicy::Closed,
            ..DramConfig::default()
        };
        let mut mc = MemoryController::new(
            ControllerConfig::from_policy(SchedulingPolicy::DemandFirst, 1),
            dram,
            MappingScheme::Linear,
        );
        let t = tracker(1);
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(0),
            AccessKind::Load,
            RequestKind::Demand,
            0,
        )
        .unwrap();
        run_until_idle(&mut mc, &t, 0);
        // Let the closed-row policy issue its precharge.
        for now in 1000..1200 {
            mc.tick(now, &t);
        }
        // A new access to a *different* row in the same bank is row-closed
        // (ACT+CAS), not conflict, because the bank was precharged.
        let lpr = DramConfig::default().lines_per_row();
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(lpr * 8),
            AccessKind::Load,
            RequestKind::Demand,
            1200,
        )
        .unwrap();
        let mut now = 1200;
        let mut completed_at = None;
        while completed_at.is_none() {
            if !mc.tick(now, &t).completions.is_empty() {
                completed_at = Some(now);
            }
            now += 1;
        }
        // Row-closed service: ACT + CAS + burst, plus command alignment.
        let d = DramConfig::default();
        let closed = d.t_rcd_cpu() + d.cl_cpu() + d.burst_cpu();
        let latency = completed_at.unwrap() - 1200;
        assert!(
            latency <= closed + 2 * CPU_CYCLES_PER_DRAM_CYCLE,
            "expected row-closed latency, got {latency} (conflict would add {})",
            d.t_rp_cpu()
        );
    }

    #[test]
    fn happy_policy_keeps_untrained_rows_open_and_precharges_trained_ones() {
        let dram = DramConfig {
            row_policy: RowPolicy::Happy,
            ..DramConfig::default()
        };
        let mut mc = MemoryController::new(
            ControllerConfig::from_policy(SchedulingPolicy::DemandFirst, 1),
            dram,
            MappingScheme::Linear,
        );
        let t = tracker(1);
        let lpr = DramConfig::default().lines_per_row();
        // Enqueues one demand at `at` and returns its service latency.
        fn service(mc: &mut MemoryController, t: &AccuracyTracker, line: u64, at: Cycle) -> Cycle {
            mc.enqueue(
                CoreId::new(0),
                LineAddr::new(line),
                AccessKind::Load,
                RequestKind::Demand,
                at,
            )
            .unwrap();
            let mut now = at;
            loop {
                if !mc.tick(now, t).completions.is_empty() {
                    return now - at;
                }
                now += 1;
                assert!(now < at + 100_000, "controller wedged");
            }
        }
        let d = DramConfig::default();
        let closed = d.t_rcd_cpu() + d.cl_cpu() + d.burst_cpu();
        let slack = 2 * CPU_CYCLES_PER_DRAM_CYCLE;

        // Residency 1: row 0 opens, serves a single CAS, then idles.
        // Untrained rows vote open, so the idle window must not precharge.
        service(&mut mc, &t, 0, 0);
        for now in 1000..1200 {
            mc.tick(now, &t);
        }
        // The conflicting access pays the full conflict penalty — proof the
        // row stayed open — and its precharge trains row 0 toward closed.
        let lat = service(&mut mc, &t, lpr * 8, 1200);
        assert!(
            lat > closed + slack,
            "untrained row must stay open like open-row policy (lat {lat})"
        );
        // Residency 2 of row 0: another single-CAS visit.
        service(&mut mc, &t, 0, 3000);
        // Row 0 now votes close: the HAPPY policy precharges it while idle.
        for now in 4000..4200 {
            mc.tick(now, &t);
        }
        let lat = service(&mut mc, &t, lpr * 16, 4200);
        assert!(
            lat <= closed + slack,
            "trained single-use row must be precharged like closed-row policy (lat {lat})"
        );
    }

    #[test]
    fn darp_pulls_refresh_into_idle_banks() {
        let dram = DramConfig {
            extended: Some(padc_dram::ExtendedTiming::default()),
            refresh_policy: RefreshPolicy::Darp,
            ..DramConfig::default()
        };
        let t_refi = dram.extended.unwrap().t_refi * CPU_CYCLES_PER_DRAM_CYCLE;
        let mut mc = MemoryController::new(
            ControllerConfig::from_policy(SchedulingPolicy::DemandFirst, 1),
            dram,
            MappingScheme::Linear,
        );
        let t = tracker(1);
        // An idle controller pulls each bank's refresh as soon as its
        // staggered window opens; by the first t_REFI boundary every bank
        // has been refreshed early and no forced refresh remains.
        for now in 0..t_refi {
            mc.tick(now, &t);
        }
        let rc = mc.refresh_counters();
        assert_eq!(rc.pulls, 8, "one pull per bank per t_REFI");
        assert_eq!(mc.channel_stats()[0].refreshes, 8, "all early, none forced");
        assert!(rc.stall_cycles > 0);
    }

    #[test]
    fn two_channels_service_in_parallel() {
        let dram = DramConfig {
            channels: 2,
            ..DramConfig::default()
        };
        let mut mc = MemoryController::new(
            ControllerConfig::from_policy(SchedulingPolicy::DemandFirst, 1),
            dram.clone(),
            MappingScheme::Linear,
        );
        let t = tracker(1);
        let lpr = dram.lines_per_row();
        // One request per channel.
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(0),
            AccessKind::Load,
            RequestKind::Demand,
            0,
        )
        .unwrap();
        mc.enqueue(
            CoreId::new(0),
            LineAddr::new(lpr), // second channel
            AccessKind::Load,
            RequestKind::Demand,
            0,
        )
        .unwrap();
        let mut now = 0;
        let mut completions = Vec::new();
        while !mc.is_idle() {
            completions.extend(mc.tick(now, &t).completions);
            now += 1;
        }
        assert_eq!(completions.len(), 2);
        // Both complete at the same closed-row latency: full overlap.
        let d = DramConfig::default();
        let expected = d.t_rcd_cpu() + d.cl_cpu() + d.burst_cpu();
        assert!(
            completions.iter().all(|c| {
                // completion observed the tick *after* completes_at
                (c.request.arrival..=expected + 1).contains(&(expected))
            }),
            "parallel service expected"
        );
        assert!(now <= expected + 2, "channels must overlap, took {now}");
    }
}
