use padc_types::Cycle;
use serde::{Deserialize, Serialize};

/// Named DRAM scheduling policies evaluated in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// FR-FCFS with no demand/prefetch distinction (§1, "demand-prefetch-equal").
    DemandPrefetchEqual,
    /// Demands strictly prioritized over prefetches (the paper's baseline).
    #[default]
    DemandFirst,
    /// Prefetches strictly prioritized over demands (footnote 2's straw man).
    PrefetchFirst,
    /// Adaptive Prefetch Scheduling only (§4.2), no dropping.
    ApsOnly,
    /// APS + Adaptive Prefetch Dropping — the full PADC (§4).
    Padc,
    /// PADC with shortest-job-first request ranking (§6.5).
    PadcRank,
}

impl SchedulingPolicy {
    /// Short stable label used in reports, matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SchedulingPolicy::DemandPrefetchEqual => "demand-pref-equal",
            SchedulingPolicy::DemandFirst => "demand-first",
            SchedulingPolicy::PrefetchFirst => "prefetch-first",
            SchedulingPolicy::ApsOnly => "aps-only",
            SchedulingPolicy::Padc => "aps-apd (PADC)",
            SchedulingPolicy::PadcRank => "PADC-rank",
        }
    }

    /// True if the policy adapts to measured prefetch accuracy.
    pub fn is_adaptive(self) -> bool {
        matches!(
            self,
            SchedulingPolicy::ApsOnly | SchedulingPolicy::Padc | SchedulingPolicy::PadcRank
        )
    }
}

/// The 4-level dynamic `drop_threshold` table of §4.3 (paper Table 6),
/// mapping the previous interval's prefetch accuracy to the age beyond which
/// a queued prefetch is dropped.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct DropThresholds {
    /// Accuracy breakpoints, ascending (fractions of 1).
    pub breakpoints: [f64; 3],
    /// Thresholds in CPU cycles for the four accuracy bands.
    pub thresholds: [Cycle; 4],
}

impl Default for DropThresholds {
    fn default() -> Self {
        DropThresholds {
            breakpoints: [0.10, 0.30, 0.70],
            thresholds: [100, 1_500, 50_000, 100_000],
        }
    }
}

impl DropThresholds {
    /// The drop threshold for a given prefetch accuracy.
    ///
    /// ```
    /// use padc_core::DropThresholds;
    /// let t = DropThresholds::default();
    /// assert_eq!(t.threshold_for(0.05), 100);
    /// assert_eq!(t.threshold_for(0.20), 1_500);
    /// assert_eq!(t.threshold_for(0.50), 50_000);
    /// assert_eq!(t.threshold_for(0.95), 100_000);
    /// ```
    pub fn threshold_for(&self, accuracy: f64) -> Cycle {
        let band = self
            .breakpoints
            .iter()
            .position(|&b| accuracy < b)
            .unwrap_or(3);
        self.thresholds[band]
    }
}

/// Full configuration of a [`crate::MemoryController`].
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Which preset the controller implements.
    pub policy: SchedulingPolicy,
    /// Memory request buffer entries (paper Table 4: 64/64/128/256 for
    /// 1/2/4/8 cores).
    pub buffer_entries: usize,
    /// Number of cores feeding this controller (sizes per-core state).
    pub cores: usize,
    /// Prefetch accuracy at or above which a core's prefetches become
    /// critical (§4.2; the paper uses 85%).
    pub promotion_threshold: f64,
    /// Adaptive Prefetch Dropping enabled (derived from the policy preset
    /// but overridable, e.g. for the `demand-first-apd` bar of Fig. 29).
    pub apd: bool,
    /// Urgent-request prioritization enabled (§4.2 rule 3; Table 8 ablates
    /// it).
    pub urgency: bool,
    /// Shortest-job-first ranking enabled (§6.5).
    pub ranking: bool,
    /// PAR-BS-style request batching (Mutlu & Moscibroda, ISCA-35 — the
    /// mechanism §6.5's ranking is borrowed from): when the current batch
    /// drains, the oldest `batch_cap` requests of each core are marked and
    /// prioritized over all newer arrivals, bounding starvation.
    pub batching: bool,
    /// Maximum requests per core marked into one batch.
    pub batch_cap: usize,
    /// Watermark-based write drain (extension; real controllers buffer
    /// writebacks and service them in bursts): writebacks are deprioritized
    /// below everything until their buffered count reaches
    /// `write_drain_high`, then drained with priority until it falls to
    /// `write_drain_low`. Disabled by default (the paper treats writebacks
    /// as demands).
    pub write_drain: bool,
    /// Drain-mode entry watermark (buffered writebacks).
    pub write_drain_high: usize,
    /// Drain-mode exit watermark.
    pub write_drain_low: usize,
    /// Drop-threshold table for APD.
    pub drop_thresholds: DropThresholds,
    /// Prefetch-accuracy measurement interval in CPU cycles (§4.1: 100K).
    pub accuracy_interval: Cycle,
}

impl ControllerConfig {
    /// Builds the configuration the paper uses for `policy` on a
    /// `cores`-core system, including the Table 4 buffer size.
    pub fn from_policy(policy: SchedulingPolicy, cores: usize) -> Self {
        ControllerConfig {
            policy,
            buffer_entries: Self::buffer_entries_for(cores),
            cores,
            promotion_threshold: 0.85,
            apd: matches!(policy, SchedulingPolicy::Padc | SchedulingPolicy::PadcRank),
            urgency: true,
            ranking: matches!(policy, SchedulingPolicy::PadcRank),
            batching: false,
            batch_cap: 5,
            write_drain: false,
            write_drain_high: Self::buffer_entries_for(cores) / 4,
            write_drain_low: Self::buffer_entries_for(cores) / 16,
            drop_thresholds: DropThresholds::default(),
            accuracy_interval: 100_000,
        }
    }

    /// The paper's Table 4 memory-request-buffer sizing.
    pub fn buffer_entries_for(cores: usize) -> usize {
        match cores {
            0..=2 => 64,
            3..=4 => 128,
            _ => 256,
        }
    }
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self::from_policy(SchedulingPolicy::DemandFirst, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_enable_the_right_features() {
        let c = ControllerConfig::from_policy(SchedulingPolicy::DemandFirst, 4);
        assert!(!c.apd && !c.ranking);
        let c = ControllerConfig::from_policy(SchedulingPolicy::ApsOnly, 4);
        assert!(!c.apd && !c.ranking && c.urgency);
        let c = ControllerConfig::from_policy(SchedulingPolicy::Padc, 4);
        assert!(c.apd && !c.ranking);
        let c = ControllerConfig::from_policy(SchedulingPolicy::PadcRank, 4);
        assert!(c.apd && c.ranking);
    }

    #[test]
    fn buffer_sizes_match_table4() {
        assert_eq!(ControllerConfig::buffer_entries_for(1), 64);
        assert_eq!(ControllerConfig::buffer_entries_for(2), 64);
        assert_eq!(ControllerConfig::buffer_entries_for(4), 128);
        assert_eq!(ControllerConfig::buffer_entries_for(8), 256);
    }

    #[test]
    fn drop_thresholds_match_table6() {
        let t = DropThresholds::default();
        assert_eq!(t.threshold_for(0.0), 100);
        assert_eq!(t.threshold_for(0.099), 100);
        assert_eq!(t.threshold_for(0.10), 1_500);
        assert_eq!(t.threshold_for(0.299), 1_500);
        assert_eq!(t.threshold_for(0.30), 50_000);
        assert_eq!(t.threshold_for(0.699), 50_000);
        assert_eq!(t.threshold_for(0.70), 100_000);
        assert_eq!(t.threshold_for(1.0), 100_000);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SchedulingPolicy::Padc.label(), "aps-apd (PADC)");
        assert_eq!(SchedulingPolicy::DemandFirst.label(), "demand-first");
    }

    #[test]
    fn adaptivity_flags() {
        assert!(SchedulingPolicy::Padc.is_adaptive());
        assert!(!SchedulingPolicy::DemandFirst.is_adaptive());
        assert!(!SchedulingPolicy::DemandPrefetchEqual.is_adaptive());
    }
}
