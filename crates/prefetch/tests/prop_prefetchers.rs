//! Property tests for the prefetchers.

use padc_prefetch::{
    AccessEvent, CdcConfig, CdcPrefetcher, Ddpf, DdpfConfig, DsPatchConfig, DsPatchPrefetcher,
    MarkovConfig, MarkovPrefetcher, Prefetcher, StreamConfig, StreamPrefetcher, StrideConfig,
    StridePrefetcher, PAGE_LINES,
};
use padc_types::{CoreId, LineAddr};
use proptest::prelude::*;

fn ev(line: u64, hit: bool) -> AccessEvent {
    AccessEvent {
        core: CoreId::new(0),
        line: LineAddr::new(line),
        pc: 0x400 + (line % 8) * 4,
        hit,
        runahead: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On a pure ascending stream, every stream-prefetcher candidate is
    /// strictly ahead of the access pointer and within distance + degree.
    #[test]
    fn stream_prefetches_stay_ahead_and_bounded(start in 0u64..1_000_000, len in 10usize..300) {
        let cfg = StreamConfig::default();
        let mut p = StreamPrefetcher::new(cfg);
        let mut out = Vec::new();
        for i in 0..len as u64 {
            out.clear();
            p.on_access(&ev(start + i, i > 0), &mut out);
            for cand in &out {
                let dist = cand.distance_from(LineAddr::new(start + i));
                prop_assert!(dist > 0, "prefetch {cand} behind access at {}", start + i);
                prop_assert!(
                    dist <= (cfg.distance + cfg.degree) as i64 + 1,
                    "prefetch {dist} lines ahead exceeds bound"
                );
            }
        }
    }

    /// The stream prefetcher never emits the same line twice for one
    /// monotone stream (no duplicate prefetches to waste bandwidth).
    #[test]
    fn stream_has_no_duplicates_on_monotone_streams(start in 0u64..1_000_000, len in 10usize..300) {
        let mut p = StreamPrefetcher::new(StreamConfig::default());
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for i in 0..len as u64 {
            out.clear();
            p.on_access(&ev(start + i, i > 0), &mut out);
            for cand in &out {
                prop_assert!(seen.insert(cand.raw()), "duplicate prefetch {cand}");
            }
        }
    }

    /// Arbitrary access sequences never panic any prefetcher and produce
    /// bounded candidate lists.
    #[test]
    fn all_prefetchers_are_total(lines in prop::collection::vec((0u64..100_000, any::<bool>()), 1..300)) {
        let mut prefetchers: Vec<Box<dyn Prefetcher>> = vec![
            Box::new(StreamPrefetcher::new(StreamConfig::default())),
            Box::new(StridePrefetcher::new(StrideConfig::default())),
            Box::new(MarkovPrefetcher::new(MarkovConfig::default())),
            Box::new(CdcPrefetcher::new(CdcConfig::default())),
            Box::new(DsPatchPrefetcher::new(DsPatchConfig::default())),
        ];
        let mut out = Vec::new();
        for (line, hit) in &lines {
            for p in &mut prefetchers {
                out.clear();
                p.on_access(&ev(*line, *hit), &mut out);
                prop_assert!(out.len() <= 16, "{} emitted {}", p.name(), out.len());
            }
        }
    }

    /// The stride prefetcher's predictions continue the trained stride.
    #[test]
    fn stride_predictions_follow_the_stride(start in 0u64..1_000_000, stride in 1i64..32) {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        let mut out = Vec::new();
        let mut line = start;
        for _ in 0..8 {
            out.clear();
            p.on_access(
                &AccessEvent {
                    core: CoreId::new(0),
                    line: LineAddr::new(line),
                    pc: 0x400,
                    hit: false,
                    runahead: false,
                },
                &mut out,
            );
            for cand in &out {
                let delta = cand.distance_from(LineAddr::new(line));
                prop_assert_eq!(delta % stride, 0, "prediction off-stride");
                prop_assert!(delta > 0);
            }
            line = line.wrapping_add(stride as u64);
        }
    }

    /// The DSPatch modulator can only *select* a prediction one of its two
    /// pattern tables produced: every candidate a trigger emits corresponds
    /// to a set bit of the signature's CovP or AccP pattern (anchored at
    /// the trigger offset), lies inside the triggering page, and never
    /// duplicates the trigger line itself.
    #[test]
    fn dspatch_candidates_come_from_a_pattern_table(
        accesses in prop::collection::vec((0u64..2048, 0u64..8, any::<bool>()), 1..400),
        pages in 1usize..8,
        interval in 1u32..8,
    ) {
        let mut p = DsPatchPrefetcher::new(DsPatchConfig {
            pages,
            interval_triggers: interval,
            ..DsPatchConfig::default()
        });
        let mut out = Vec::new();
        for (line, pc_slot, hit) in &accesses {
            let pc = 0x400 + pc_slot * 4;
            out.clear();
            p.on_access(
                &AccessEvent {
                    core: CoreId::new(0),
                    line: LineAddr::new(*line),
                    pc,
                    hit: *hit,
                    runahead: false,
                },
                &mut out,
            );
            if out.is_empty() {
                continue;
            }
            // Candidates only appear on a page trigger; tables are not
            // mutated after prediction within the call, so the patterns we
            // read now are the ones prediction selected from.
            let (cov, acc) = p.signature_patterns(pc);
            let union = (cov | acc) & !1;
            let page = line / PAGE_LINES;
            let trigger_off = (line % PAGE_LINES) as u32;
            for cand in &out {
                prop_assert_eq!(cand.raw() / PAGE_LINES, page, "candidate left the page");
                prop_assert_ne!(cand.raw(), *line, "trigger line re-predicted");
                let off = (cand.raw() % PAGE_LINES) as u32;
                let anchored = (off + PAGE_LINES as u32 - trigger_off) % PAGE_LINES as u32;
                prop_assert_eq!(
                    union >> anchored & 1,
                    1,
                    "candidate bit {} set in neither CovP {:#x} nor AccP {:#x}",
                    anchored, cov, acc
                );
            }
        }
    }

    /// DDPF filtering is sound: counters only saturate within [0, 3] and a
    /// fully-useful history never filters.
    #[test]
    fn ddpf_never_filters_always_useful_lines(lines in prop::collection::vec(0u64..512, 1..200)) {
        let mut d = Ddpf::new(DdpfConfig::default());
        for l in &lines {
            d.train(LineAddr::new(*l), true);
        }
        for l in &lines {
            prop_assert!(d.should_issue(LineAddr::new(*l)));
        }
        prop_assert_eq!(d.filtered(), 0);
    }
}
