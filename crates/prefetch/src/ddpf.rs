use padc_types::LineAddr;
use serde::{Deserialize, Serialize};

/// Parameters of Dynamic Data Prefetch Filtering.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DdpfConfig {
    /// Entries in the prefetch history table (2-bit counters).
    pub table_entries: usize,
    /// Counter value at or above which a prefetch is predicted useless and
    /// filtered (the paper tunes this to 3).
    pub filter_threshold: u8,
}

impl Default for DdpfConfig {
    fn default() -> Self {
        DdpfConfig {
            table_entries: 4096,
            filter_threshold: 3,
        }
    }
}

/// Dynamic Data Prefetch Filtering (Zhuang & Lee, §6.12): a gshare-style
/// table of 2-bit uselessness counters, indexed by the prefetch address
/// hashed with recent global history. A prefetch whose counter saturates is
/// suppressed before it enters the memory system.
///
/// The trade-off the paper highlights — DDPF removes useless prefetches
/// *and* a good number of useful ones due to aliasing — emerges naturally
/// from the shared table.
///
/// ```
/// use padc_prefetch::{Ddpf, DdpfConfig};
/// use padc_types::LineAddr;
///
/// let mut f = Ddpf::new(DdpfConfig::default());
/// let line = LineAddr::new(77);
/// assert!(f.should_issue(line)); // optimistic start
/// for _ in 0..3 { f.train(line, false); }
/// assert!(!f.should_issue(line)); // learned useless
/// ```
#[derive(Clone, Debug)]
pub struct Ddpf {
    cfg: DdpfConfig,
    counters: Vec<u8>,
    history: u64,
    filtered: u64,
}

impl Ddpf {
    /// Creates a filter with all counters at zero (everything issues).
    ///
    /// # Panics
    ///
    /// Panics if `table_entries` is not a power of two.
    pub fn new(cfg: DdpfConfig) -> Self {
        assert!(
            cfg.table_entries.is_power_of_two(),
            "table entries must be 2^k"
        );
        Ddpf {
            counters: vec![0; cfg.table_entries],
            cfg,
            history: 0,
            filtered: 0,
        }
    }

    fn index(&self, line: LineAddr) -> usize {
        let h = line.raw() ^ (self.history & 0xFFF);
        (h as usize) & (self.cfg.table_entries - 1)
    }

    /// Number of prefetches suppressed so far.
    pub fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Consults the table: should a prefetch of `line` be issued?
    pub fn should_issue(&mut self, line: LineAddr) -> bool {
        let idx = self.index(line);
        if self.counters[idx] >= self.cfg.filter_threshold {
            self.filtered += 1;
            false
        } else {
            true
        }
    }

    /// Trains the table with the observed outcome of a prefetch of `line`:
    /// `useful = true` when a demand consumed it, false when it was evicted
    /// unused or dropped.
    pub fn train(&mut self, line: LineAddr, useful: bool) {
        let idx = self.index(line);
        let c = &mut self.counters[idx];
        if useful {
            *c = c.saturating_sub(1);
        } else {
            *c = (*c + 1).min(3);
        }
        self.history = (self.history << 1) | u64::from(useful);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn starts_permissive() {
        let mut f = Ddpf::new(DdpfConfig::default());
        for i in 0..100 {
            assert!(f.should_issue(l(i)));
        }
        assert_eq!(f.filtered(), 0);
    }

    #[test]
    fn useless_training_filters_and_useful_training_restores() {
        let mut f = Ddpf::new(DdpfConfig::default());
        // history must stay fixed for a stable index; train with the same
        // outcome repeatedly, then flip.
        for _ in 0..3 {
            f.train(l(5), false);
        }
        // After three useless outcomes history = 0b000; index is stable.
        assert!(!f.should_issue(l(5)));
        for _ in 0..3 {
            f.train(l(5), true);
        }
        // History changed; check the counter through a fresh filter exercise
        // of both paths rather than a specific index. The aggregate filtered
        // count must have grown exactly once above.
        assert_eq!(f.filtered(), 1);
    }

    #[test]
    fn aliasing_can_filter_unrelated_useful_prefetches() {
        // Two lines that collide in the table: with history 0 the index is
        // line & mask, so line and line + table_entries alias.
        let cfg = DdpfConfig {
            table_entries: 64,
            filter_threshold: 3,
        };
        let mut f = Ddpf::new(cfg);
        for _ in 0..3 {
            f.train(l(7), false);
            // Reset history to zero by training an always-useless pattern:
            // history bits appended are 0 for useless, keeping index stable.
        }
        // line 7 + 64 aliases line 7 (history is all-zero bits).
        assert!(!f.should_issue(l(7 + 64)), "aliased victim gets filtered");
    }
}
