use padc_types::LineAddr;
use serde::{Deserialize, Serialize};

use crate::{AccessEvent, Prefetcher};

/// Parameters of the Markov (miss-correlation) prefetcher.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MarkovConfig {
    /// Entries in the (direct-mapped) correlation table.
    pub table_entries: usize,
    /// Successor addresses remembered per entry.
    pub successors: usize,
    /// Successors prefetched per miss.
    pub degree: u32,
}

impl Default for MarkovConfig {
    fn default() -> Self {
        MarkovConfig {
            table_entries: 4096,
            successors: 4,
            degree: 2,
        }
    }
}

#[derive(Clone, Debug)]
struct MarkovEntry {
    tag: u64,
    /// MRU-first successor list.
    successors: Vec<LineAddr>,
}

/// Markov prefetcher (Joseph & Grunwald, §2.2): records, for each miss
/// address, the miss addresses that followed it, and prefetches the recorded
/// successors when the miss recurs. Exploits temporal rather than spatial
/// correlation.
#[derive(Clone, Debug)]
pub struct MarkovPrefetcher {
    cfg: MarkovConfig,
    table: Vec<Option<MarkovEntry>>,
    last_miss: Option<LineAddr>,
}

impl MarkovPrefetcher {
    /// Creates a Markov prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `table_entries` is not a power of two.
    pub fn new(cfg: MarkovConfig) -> Self {
        assert!(
            cfg.table_entries.is_power_of_two(),
            "table entries must be 2^k"
        );
        MarkovPrefetcher {
            table: vec![None; cfg.table_entries],
            cfg,
            last_miss: None,
        }
    }

    fn index(&self, line: LineAddr) -> usize {
        // Simple multiplicative hash keeps neighbouring lines apart.
        let h = line.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 16) as usize & (self.cfg.table_entries - 1)
    }

    fn record_transition(&mut self, from: LineAddr, to: LineAddr) {
        let idx = self.index(from);
        let max = self.cfg.successors;
        match &mut self.table[idx] {
            Some(e) if e.tag == from.raw() => {
                if let Some(pos) = e.successors.iter().position(|&s| s == to) {
                    e.successors.remove(pos);
                }
                e.successors.insert(0, to);
                e.successors.truncate(max);
            }
            slot => {
                *slot = Some(MarkovEntry {
                    tag: from.raw(),
                    successors: vec![to],
                });
            }
        }
    }
}

impl Prefetcher for MarkovPrefetcher {
    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<LineAddr>) {
        // The Markov prefetcher observes only the miss stream.
        if ev.hit {
            return;
        }
        if let Some(prev) = self.last_miss {
            if prev != ev.line && !ev.runahead {
                self.record_transition(prev, ev.line);
            }
        }
        if !ev.runahead {
            self.last_miss = Some(ev.line);
        }
        let idx = self.index(ev.line);
        if let Some(e) = &self.table[idx] {
            if e.tag == ev.line.raw() {
                out.extend(e.successors.iter().take(self.cfg.degree as usize).copied());
            }
        }
    }

    fn name(&self) -> &'static str {
        "markov"
    }
}

#[cfg(test)]
mod tests {
    use padc_types::CoreId;

    use super::*;

    fn miss(line: u64) -> AccessEvent {
        AccessEvent {
            core: CoreId::new(0),
            line: LineAddr::new(line),
            pc: 0,
            hit: false,
            runahead: false,
        }
    }

    #[test]
    fn repeated_miss_sequence_prefetches_successor() {
        let mut p = MarkovPrefetcher::new(MarkovConfig::default());
        let mut out = Vec::new();
        // First pass records A -> B -> C.
        for l in [100u64, 200, 300] {
            p.on_access(&miss(l), &mut out);
        }
        assert!(out.is_empty(), "nothing learned yet");
        // Second pass: hitting A predicts B.
        p.on_access(&miss(100), &mut out);
        assert_eq!(out, vec![LineAddr::new(200)]);
    }

    #[test]
    fn successors_are_mru_ordered_and_bounded() {
        let cfg = MarkovConfig {
            successors: 2,
            degree: 2,
            ..MarkovConfig::default()
        };
        let mut p = MarkovPrefetcher::new(cfg);
        let mut out = Vec::new();
        // A -> B, A -> C, A -> D; only the two most recent survive.
        for next in [200u64, 300, 400] {
            p.on_access(&miss(100), &mut out);
            p.on_access(&miss(next), &mut out);
        }
        out.clear();
        p.on_access(&miss(100), &mut out);
        assert_eq!(out, vec![LineAddr::new(400), LineAddr::new(300)]);
    }

    #[test]
    fn hits_are_ignored() {
        let mut p = MarkovPrefetcher::new(MarkovConfig::default());
        let mut out = Vec::new();
        p.on_access(&miss(100), &mut out);
        p.on_access(
            &AccessEvent {
                hit: true,
                ..miss(200)
            },
            &mut out,
        );
        p.on_access(&miss(100), &mut out);
        assert!(out.is_empty(), "hit must not create a transition");
    }

    #[test]
    fn runahead_misses_do_not_train() {
        let mut p = MarkovPrefetcher::new(MarkovConfig::default());
        let mut out = Vec::new();
        p.on_access(&miss(100), &mut out);
        p.on_access(
            &AccessEvent {
                runahead: true,
                ..miss(200)
            },
            &mut out,
        );
        p.on_access(&miss(100), &mut out);
        assert!(out.is_empty());
    }
}
