use padc_types::LineAddr;
use serde::{Deserialize, Serialize};

/// One aggressiveness level of Feedback-Directed Prefetching: a
/// (degree, distance) pair for the stream prefetcher.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct FdpLevel {
    /// Prefetch degree (N).
    pub degree: u32,
    /// Prefetch distance (D) in lines.
    pub distance: u32,
}

/// Parameters of Feedback-Directed Prefetching (Srinath et al., HPCA-13),
/// with the thresholds the paper tuned for this system (§6.12): accuracy
/// 90%/40%, lateness 1%, pollution 0.5%, 4K-bit pollution filter.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct FdpConfig {
    /// Aggressiveness ladder, least to most aggressive.
    pub levels: Vec<FdpLevel>,
    /// Starting rung (index into `levels`).
    pub initial_level: usize,
    /// Accuracy above which the prefetcher is "accurate".
    pub accuracy_high: f64,
    /// Accuracy below which the prefetcher is "inaccurate".
    pub accuracy_low: f64,
    /// Late-prefetch fraction above which prefetches are "late".
    pub lateness_threshold: f64,
    /// Pollution fraction above which prefetches are "polluting".
    pub pollution_threshold: f64,
}

impl Default for FdpConfig {
    fn default() -> Self {
        FdpConfig {
            levels: vec![
                FdpLevel {
                    degree: 1,
                    distance: 4,
                },
                FdpLevel {
                    degree: 1,
                    distance: 8,
                },
                FdpLevel {
                    degree: 2,
                    distance: 16,
                },
                FdpLevel {
                    degree: 4,
                    distance: 32,
                },
                FdpLevel {
                    degree: 4,
                    distance: 64,
                },
            ],
            initial_level: 2,
            accuracy_high: 0.90,
            accuracy_low: 0.40,
            lateness_threshold: 0.01,
            pollution_threshold: 0.005,
        }
    }
}

/// Per-interval feedback counters the simulator supplies to [`Fdp`].
#[derive(Clone, Copy, Debug, Default)]
pub struct FdpFeedback {
    /// Prefetches sent this interval.
    pub sent: u64,
    /// Prefetches consumed by demands this interval.
    pub used: u64,
    /// Useful prefetches that arrived late (demand matched them in flight).
    pub late: u64,
    /// Demand misses caused by prefetch-induced evictions.
    pub pollution: u64,
    /// Total demand accesses this interval (pollution denominator).
    pub demands: u64,
}

/// Feedback-Directed Prefetching: moves the stream prefetcher up and down an
/// aggressiveness ladder based on measured accuracy, lateness, and cache
/// pollution.
///
/// ```
/// use padc_prefetch::{Fdp, FdpConfig};
/// use padc_prefetch::fdp_feedback;
///
/// let mut fdp = Fdp::new(FdpConfig::default());
/// // Accurate and late -> ramp up.
/// let lvl = fdp.end_interval(fdp_feedback(100, 95, 40, 0, 1_000));
/// assert!(lvl.degree >= 2);
/// ```
#[derive(Clone, Debug)]
pub struct Fdp {
    cfg: FdpConfig,
    level: usize,
}

/// Convenience constructor for [`FdpFeedback`].
pub fn fdp_feedback(sent: u64, used: u64, late: u64, pollution: u64, demands: u64) -> FdpFeedback {
    FdpFeedback {
        sent,
        used,
        late,
        pollution,
        demands,
    }
}

impl Fdp {
    /// Creates an FDP controller at the configured initial level.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty or the initial level is out of range.
    pub fn new(cfg: FdpConfig) -> Self {
        assert!(!cfg.levels.is_empty(), "need at least one level");
        assert!(cfg.initial_level < cfg.levels.len(), "initial out of range");
        Fdp {
            level: cfg.initial_level,
            cfg,
        }
    }

    /// Current (degree, distance).
    pub fn level(&self) -> FdpLevel {
        self.cfg.levels[self.level]
    }

    /// Digests one interval of feedback and returns the new level.
    ///
    /// Decision table (simplified from the FDP paper): accurate+late ⇒ up;
    /// mid-accuracy ⇒ up if late, down if polluting; inaccurate ⇒ down if
    /// polluting or late, else hold.
    pub fn end_interval(&mut self, fb: FdpFeedback) -> FdpLevel {
        let accuracy = if fb.sent == 0 {
            1.0
        } else {
            fb.used as f64 / fb.sent as f64
        };
        let lateness = if fb.used == 0 {
            0.0
        } else {
            fb.late as f64 / fb.used as f64
        };
        let pollution = if fb.demands == 0 {
            0.0
        } else {
            fb.pollution as f64 / fb.demands as f64
        };
        let late = lateness > self.cfg.lateness_threshold;
        let polluting = pollution > self.cfg.pollution_threshold;
        let max = self.cfg.levels.len() - 1;
        if accuracy >= self.cfg.accuracy_high {
            if late {
                self.level = (self.level + 1).min(max);
            }
        } else if accuracy >= self.cfg.accuracy_low {
            if polluting {
                self.level = self.level.saturating_sub(1);
            } else if late {
                self.level = (self.level + 1).min(max);
            }
        } else if polluting || late {
            self.level = self.level.saturating_sub(1);
        }
        self.level()
    }
}

/// Bit-vector pollution filter (the FDP paper's 4K-bit structure): remembers
/// demand lines evicted by prefetch fills; a subsequent demand miss to a
/// remembered line is counted as pollution.
///
/// ```
/// use padc_prefetch::PollutionFilter;
/// use padc_types::LineAddr;
///
/// let mut f = PollutionFilter::new(4096);
/// f.record_eviction(LineAddr::new(10));
/// assert!(f.check_and_clear(LineAddr::new(10)));
/// assert!(!f.check_and_clear(LineAddr::new(10)));
/// ```
#[derive(Clone, Debug)]
pub struct PollutionFilter {
    bits: Vec<bool>,
}

impl PollutionFilter {
    /// Creates a filter with at least `bits` entries (rounded up to a power
    /// of two).
    pub fn new(bits: usize) -> Self {
        PollutionFilter {
            bits: vec![false; bits.next_power_of_two().max(2)],
        }
    }

    fn index(&self, line: LineAddr) -> usize {
        (line.raw() as usize) & (self.bits.len() - 1)
    }

    /// Records that a demand-owned line was evicted by a prefetch fill.
    pub fn record_eviction(&mut self, line: LineAddr) {
        let i = self.index(line);
        self.bits[i] = true;
    }

    /// On a demand miss: was this line recently evicted by a prefetch?
    /// Clears the bit.
    pub fn check_and_clear(&mut self, line: LineAddr) -> bool {
        let i = self.index(line);
        std::mem::replace(&mut self.bits[i], false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accurate_and_late_ramps_up() {
        let mut f = Fdp::new(FdpConfig::default());
        let start = f.level();
        let next = f.end_interval(fdp_feedback(100, 95, 50, 0, 1000));
        assert!(next.distance > start.distance);
    }

    #[test]
    fn inaccurate_and_polluting_ramps_down() {
        let mut f = Fdp::new(FdpConfig::default());
        let start = f.level();
        let next = f.end_interval(fdp_feedback(100, 10, 0, 50, 1000));
        assert!(next.distance < start.distance);
    }

    #[test]
    fn accurate_and_timely_holds() {
        let mut f = Fdp::new(FdpConfig::default());
        let start = f.level();
        let next = f.end_interval(fdp_feedback(100, 95, 0, 0, 1000));
        assert_eq!(next, start);
    }

    #[test]
    fn level_saturates_at_both_ends() {
        let mut f = Fdp::new(FdpConfig::default());
        for _ in 0..10 {
            f.end_interval(fdp_feedback(100, 95, 95, 0, 1000));
        }
        let top = f.level();
        assert_eq!(top, *FdpConfig::default().levels.last().unwrap());
        for _ in 0..10 {
            f.end_interval(fdp_feedback(100, 0, 0, 500, 1000));
        }
        let bottom = f.level();
        assert_eq!(bottom, FdpConfig::default().levels[0]);
    }

    #[test]
    fn empty_interval_holds_level() {
        let mut f = Fdp::new(FdpConfig::default());
        let start = f.level();
        let next = f.end_interval(FdpFeedback::default());
        assert_eq!(next, start);
    }

    #[test]
    fn pollution_filter_round_trips() {
        let mut f = PollutionFilter::new(16);
        f.record_eviction(LineAddr::new(3));
        assert!(!f.check_and_clear(LineAddr::new(4)));
        assert!(f.check_and_clear(LineAddr::new(3)));
        assert!(!f.check_and_clear(LineAddr::new(3)));
    }

    #[test]
    fn mid_accuracy_reacts_to_pollution_before_lateness() {
        let mut f = Fdp::new(FdpConfig::default());
        let start = f.level();
        // 60% accuracy, late AND polluting: pollution wins, ramp down.
        let next = f.end_interval(fdp_feedback(100, 60, 30, 50, 1000));
        assert!(next.distance < start.distance);
    }
}
