use padc_types::LineAddr;
use serde::{Deserialize, Serialize};

use crate::{AccessEvent, Prefetcher};

/// Parameters of the PC-based stride prefetcher.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StrideConfig {
    /// Entries in the (direct-mapped, PC-indexed) reference prediction
    /// table.
    pub table_entries: usize,
    /// Prefetches issued per confident trigger.
    pub degree: u32,
    /// How many consecutive identical strides are needed before prefetching.
    pub confidence_threshold: u8,
    /// Lookahead multiple: the first prefetch targets
    /// `line + stride * lookahead`.
    pub lookahead: u32,
}

impl Default for StrideConfig {
    fn default() -> Self {
        StrideConfig {
            table_entries: 256,
            degree: 4,
            confidence_threshold: 2,
            lookahead: 4,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct StrideEntry {
    tag: u64,
    last_line: LineAddr,
    stride: i64,
    confidence: u8,
}

/// PC-based stride prefetcher (Baer & Chen): detects loads whose successive
/// line addresses differ by a constant stride and prefetches down the
/// pattern.
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    cfg: StrideConfig,
    table: Vec<Option<StrideEntry>>,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `table_entries` is not a power of two.
    pub fn new(cfg: StrideConfig) -> Self {
        assert!(
            cfg.table_entries.is_power_of_two(),
            "table entries must be 2^k"
        );
        StridePrefetcher {
            table: vec![None; cfg.table_entries],
            cfg,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.cfg.table_entries - 1)
    }
}

impl Prefetcher for StridePrefetcher {
    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<LineAddr>) {
        let idx = self.index(ev.pc);
        let cfg = self.cfg;
        match &mut self.table[idx] {
            Some(e) if e.tag == ev.pc => {
                let delta = ev.line.distance_from(e.last_line);
                if delta == 0 {
                    return; // same line; no training signal
                }
                if delta == e.stride {
                    e.confidence = e.confidence.saturating_add(1);
                } else {
                    e.stride = delta;
                    e.confidence = 0;
                }
                e.last_line = ev.line;
                if e.confidence >= cfg.confidence_threshold && e.stride != 0 {
                    for k in 0..cfg.degree as i64 {
                        out.push(ev.line.offset(e.stride * (cfg.lookahead as i64 + k)));
                    }
                }
            }
            slot => {
                if !ev.runahead {
                    *slot = Some(StrideEntry {
                        tag: ev.pc,
                        last_line: ev.line,
                        stride: 0,
                        confidence: 0,
                    });
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "stride"
    }

    fn set_aggressiveness(&mut self, degree: u32, _distance: u32) {
        self.cfg.degree = degree.max(1);
    }

    fn aggressiveness(&self) -> Option<(u32, u32)> {
        Some((self.cfg.degree, self.cfg.degree * self.cfg.lookahead))
    }
}

#[cfg(test)]
mod tests {
    use padc_types::CoreId;

    use super::*;

    fn ev(pc: u64, line: u64) -> AccessEvent {
        AccessEvent {
            core: CoreId::new(0),
            line: LineAddr::new(line),
            pc,
            hit: false,
            runahead: false,
        }
    }

    #[test]
    fn constant_stride_triggers_prefetch() {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        let mut out = Vec::new();
        for i in 0..4u64 {
            p.on_access(&ev(0x400, 100 + 3 * i), &mut out);
        }
        assert!(!out.is_empty());
        // First prefetch is lookahead strides ahead of the last access.
        assert_eq!(out[0], LineAddr::new(109 + 3 * 4));
    }

    #[test]
    fn irregular_pattern_stays_quiet() {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        let mut out = Vec::new();
        for line in [100u64, 250, 103, 777, 12, 399] {
            p.on_access(&ev(0x400, line), &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn streams_from_different_pcs_do_not_interfere() {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        let mut out = Vec::new();
        // PCs chosen to land in different table slots.
        for i in 0..4u64 {
            p.on_access(&ev(0x400, 100 + i), &mut out);
            p.on_access(&ev(0x404, 9000 + 7 * i), &mut out);
        }
        assert!(out.len() >= 8, "both strides should trigger");
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        let mut out = Vec::new();
        for i in 0..4u64 {
            p.on_access(&ev(0x400, 100 + i), &mut out);
        }
        out.clear();
        p.on_access(&ev(0x400, 500), &mut out); // break stride
        assert!(out.is_empty());
        p.on_access(&ev(0x400, 505), &mut out); // new stride, conf 0
        assert!(out.is_empty());
    }

    #[test]
    fn zero_stride_never_prefetches() {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        let mut out = Vec::new();
        for _ in 0..8 {
            p.on_access(&ev(0x400, 100), &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "table entries must be 2^k")]
    fn rejects_bad_table_size() {
        let _ = StridePrefetcher::new(StrideConfig {
            table_entries: 100,
            ..StrideConfig::default()
        });
    }
}
