use padc_types::LineAddr;
use serde::{Deserialize, Serialize};

use crate::{AccessEvent, Prefetcher};

/// Parameters of the CZone/Delta-Correlation prefetcher.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CdcConfig {
    /// log2 of the CZone size in lines (the address space is statically
    /// partitioned into CZones; deltas correlate only within a zone).
    pub czone_shift: u32,
    /// Concurrently tracked zones (direct-mapped).
    pub zones: usize,
    /// Delta-history length per zone.
    pub history: usize,
    /// Predicted deltas issued per trigger.
    pub degree: u32,
}

impl Default for CdcConfig {
    fn default() -> Self {
        CdcConfig {
            czone_shift: 10, // 1024 lines = 64KB zones
            zones: 64,
            history: 16,
            degree: 4,
        }
    }
}

#[derive(Clone, Debug)]
struct ZoneEntry {
    tag: u64,
    last_line: LineAddr,
    deltas: Vec<i64>,
}

/// CZone/Delta-Correlation (C/DC) prefetcher (Nesbit et al., §2.2): divides
/// the address space into fixed-size CZones and correlates the *delta*
/// sequence of accesses within each zone. When the two most recent deltas
/// reappear earlier in the history, the deltas that followed them predict
/// the next accesses.
#[derive(Clone, Debug)]
pub struct CdcPrefetcher {
    cfg: CdcConfig,
    zones: Vec<Option<ZoneEntry>>,
}

impl CdcPrefetcher {
    /// Creates a C/DC prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `zones` is not a power of two or `history < 4`.
    pub fn new(cfg: CdcConfig) -> Self {
        assert!(cfg.zones.is_power_of_two(), "zones must be 2^k");
        assert!(cfg.history >= 4, "history must hold at least two pairs");
        CdcPrefetcher {
            zones: vec![None; cfg.zones],
            cfg,
        }
    }

    fn zone_of(&self, line: LineAddr) -> u64 {
        line.raw() >> self.cfg.czone_shift
    }

    fn zone_index(&self, zone: u64) -> usize {
        (zone as usize) & (self.cfg.zones - 1)
    }

    /// Delta-correlation over one zone's history: find the most recent
    /// earlier occurrence of the final delta pair and return the deltas that
    /// followed it.
    fn predict(deltas: &[i64], degree: usize) -> Vec<i64> {
        let n = deltas.len();
        if n < 3 {
            return Vec::new();
        }
        let pair = (deltas[n - 2], deltas[n - 1]);
        // Search backwards, excluding the final pair itself.
        for i in (0..n - 2).rev() {
            if i + 1 < n - 1 && (deltas[i], deltas[i + 1]) == pair {
                let following: Vec<i64> = deltas[i + 2..n.min(i + 2 + degree)].to_vec();
                if !following.is_empty() {
                    return following;
                }
            }
        }
        Vec::new()
    }
}

impl Prefetcher for CdcPrefetcher {
    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<LineAddr>) {
        let zone = self.zone_of(ev.line);
        let idx = self.zone_index(zone);
        let cfg = self.cfg;
        match &mut self.zones[idx] {
            Some(z) if z.tag == zone => {
                let delta = ev.line.distance_from(z.last_line);
                if delta == 0 {
                    return;
                }
                z.last_line = ev.line;
                z.deltas.push(delta);
                if z.deltas.len() > cfg.history {
                    z.deltas.remove(0);
                }
                let predicted = Self::predict(&z.deltas, cfg.degree as usize);
                let mut cursor = ev.line;
                for d in predicted {
                    cursor = cursor.offset(d);
                    // Stay within the CZone: C/DC never crosses zones.
                    if cursor.raw() >> cfg.czone_shift == zone {
                        out.push(cursor);
                    }
                }
            }
            slot => {
                if !ev.runahead {
                    *slot = Some(ZoneEntry {
                        tag: zone,
                        last_line: ev.line,
                        deltas: Vec::with_capacity(cfg.history),
                    });
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "cdc"
    }

    fn set_aggressiveness(&mut self, degree: u32, _distance: u32) {
        self.cfg.degree = degree.max(1);
    }

    fn aggressiveness(&self) -> Option<(u32, u32)> {
        Some((self.cfg.degree, self.cfg.degree))
    }
}

#[cfg(test)]
mod tests {
    use padc_types::CoreId;

    use super::*;

    fn ev(line: u64) -> AccessEvent {
        AccessEvent {
            core: CoreId::new(0),
            line: LineAddr::new(line),
            pc: 0,
            hit: false,
            runahead: false,
        }
    }

    #[test]
    fn repeating_delta_pattern_is_predicted() {
        let mut p = CdcPrefetcher::new(CdcConfig::default());
        let mut out = Vec::new();
        // Deltas +1,+2 repeating: 0,1,3,4,6,7,...
        let mut line = 0u64;
        p.on_access(&ev(line), &mut out);
        for (i, d) in [1u64, 2, 1, 2, 1].iter().enumerate() {
            out.clear();
            line += d;
            p.on_access(&ev(line), &mut out);
            if i < 3 {
                assert!(out.is_empty(), "too early to predict at step {i}");
            }
        }
        assert!(!out.is_empty(), "pattern should be recognized");
        // After ...,+1 the history shows +2 followed; prediction starts with
        // +2 from the current line.
        assert_eq!(out[0], LineAddr::new(line + 2));
    }

    #[test]
    fn complex_delta_pattern_beyond_simple_stride() {
        let mut p = CdcPrefetcher::new(CdcConfig::default());
        let mut out = Vec::new();
        // Pattern of deltas: 3, 1, 3, 1 ...
        let mut line = 100u64;
        p.on_access(&ev(line), &mut out);
        for d in [3u64, 1, 3, 1, 3] {
            line += d;
            p.on_access(&ev(line), &mut out);
        }
        assert!(!out.is_empty());
    }

    #[test]
    fn predictions_do_not_cross_zone_boundary() {
        let cfg = CdcConfig {
            czone_shift: 4, // 16-line zones
            ..CdcConfig::default()
        };
        let mut p = CdcPrefetcher::new(cfg);
        let mut out = Vec::new();
        // Walk near the end of zone 0 with stride 1: 10,11,12,13,14,15.
        for l in 10..16u64 {
            p.on_access(&ev(l), &mut out);
        }
        for l in &out {
            assert!(l.raw() < 16, "prefetch {l} crossed the zone");
        }
    }

    #[test]
    fn different_zones_track_independently() {
        let mut p = CdcPrefetcher::new(CdcConfig::default());
        let mut out = Vec::new();
        // Interleave two zones with different strides.
        let z0 = 0u64;
        let z1 = 1u64 << 10; // next zone
        for i in 0..6u64 {
            p.on_access(&ev(z0 + i), &mut out);
            p.on_access(&ev(z1 + 2 * i), &mut out);
        }
        assert!(!out.is_empty());
    }

    #[test]
    fn random_accesses_stay_quiet() {
        let mut p = CdcPrefetcher::new(CdcConfig::default());
        let mut out = Vec::new();
        for l in [5u64, 900, 17, 444, 203, 88, 613] {
            p.on_access(&ev(l % 1024), &mut out);
        }
        assert!(out.is_empty());
    }
}
