//! DSPatch-style dual-spatial-pattern prefetcher (Bera et al., MICRO 2019;
//! see PAPERS.md).
//!
//! DSPatch learns per-page *bit patterns* of accessed cache lines, keyed by
//! the PC that first touched the page, and keeps **two** predictions per
//! signature: a coverage-biased pattern (`CovP`, the OR-union of every
//! observed pattern) and an accuracy-biased pattern (`AccP`, the running
//! intersection). A modulator driven by measured prefetch accuracy and
//! issued-bandwidth pressure selects which table drives prediction, so the
//! prefetcher's accuracy as seen by PADC's `AccuracyTracker` is *modal*: it
//! jumps discretely when the modulator flips, instead of drifting smoothly
//! like the stream/stride/Markov/C-DC prefetchers.

use padc_types::LineAddr;
use serde::{Deserialize, Serialize};

use crate::{AccessEvent, Prefetcher};

/// Cache lines per spatial region ("page"): 64 lines x 64 B = 4 KB.
pub const PAGE_LINES: u64 = 64;
const PAGE_SHIFT: u32 = 6;

/// Parameters of the DSPatch prefetcher.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DsPatchConfig {
    /// Concurrently tracked active pages (accumulation buffers).
    pub pages: usize,
    /// Signature (pattern) table entries, direct-mapped by PC hash.
    pub signatures: usize,
    /// Maximum candidates issued per page trigger.
    pub degree: u32,
    /// `CovP` population-count ceiling: an OR-merge that exceeds this
    /// density resets the pattern to the newest observation (the "rotate"
    /// step), keeping coverage predictions from saturating to all-ones.
    pub density_max: u32,
    /// Page evictions per modulator interval; the Cov/Acc choice is
    /// re-evaluated at each interval boundary.
    pub interval_triggers: u32,
    /// Accuracy (percent) below which the modulator drops to the
    /// accuracy-biased `AccP` pattern.
    pub acc_low_pct: u64,
    /// Accuracy (percent) at or above which the modulator returns to the
    /// coverage-biased `CovP` pattern (hysteresis band with `acc_low_pct`).
    pub acc_high_pct: u64,
    /// Issued-candidate budget per interval: exceeding it while accuracy is
    /// below `acc_high_pct` counts as bandwidth pressure and forces the
    /// accuracy-biased mode.
    pub bw_cap: u64,
}

impl Default for DsPatchConfig {
    fn default() -> Self {
        DsPatchConfig {
            pages: 32,
            signatures: 256,
            degree: 8,
            density_max: 48,
            interval_triggers: 16,
            acc_low_pct: 45,
            acc_high_pct: 60,
            bw_cap: 96,
        }
    }
}

/// Which pattern table currently drives prediction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DsPatchMode {
    /// Coverage-biased: predict from the OR-merged `CovP` pattern.
    Coverage,
    /// Accuracy-biased: predict from the intersected `AccP` pattern.
    Accuracy,
}

/// One active page accumulating its access bit pattern.
#[derive(Clone, Copy, Debug)]
struct ActivePage {
    page: u64,
    /// Raw per-offset access bitmap (bit `o` = line `page*64 + o` touched).
    bitmap: u64,
    /// Pattern issued at trigger time, anchored so bit 0 is the trigger
    /// offset; used to measure accuracy when the page retires.
    predicted: u64,
    trigger_offset: u32,
    sig: usize,
    lru: u64,
}

/// One signature-table entry: the dual predictions.
#[derive(Clone, Copy, Debug, Default)]
struct Signature {
    /// Coverage-biased pattern: OR of observed patterns (anchored).
    cov: u64,
    /// Accuracy-biased pattern: intersection of observed patterns.
    acc: u64,
}

/// DSPatch-style dual-spatial-pattern prefetcher (see module docs).
#[derive(Clone, Debug)]
pub struct DsPatchPrefetcher {
    cfg: DsPatchConfig,
    active: Vec<Option<ActivePage>>,
    sigs: Vec<Signature>,
    mode: DsPatchMode,
    mode_flips: u64,
    interval_issued: u64,
    interval_useful: u64,
    interval_evictions: u32,
    clock: u64,
}

impl DsPatchPrefetcher {
    /// Creates a DSPatch prefetcher with the given parameters.
    pub fn new(cfg: DsPatchConfig) -> Self {
        DsPatchPrefetcher {
            active: vec![None; cfg.pages.max(1)],
            sigs: vec![Signature::default(); cfg.signatures.max(1)],
            cfg,
            mode: DsPatchMode::Coverage,
            mode_flips: 0,
            interval_issued: 0,
            interval_useful: 0,
            interval_evictions: 0,
            clock: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DsPatchConfig {
        &self.cfg
    }

    /// The pattern table the modulator currently selects from.
    pub fn mode(&self) -> DsPatchMode {
        self.mode
    }

    /// The `(CovP, AccP)` anchored patterns stored for `pc`'s signature.
    ///
    /// Test introspection: every candidate a trigger emits must correspond
    /// to a set bit of one of these two patterns (the modulator can only
    /// *select*, never invent).
    pub fn signature_patterns(&self, pc: u64) -> (u64, u64) {
        let s = self.sigs[self.sig_index(pc)];
        (s.cov, s.acc)
    }

    fn sig_index(&self, pc: u64) -> usize {
        (((pc >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as usize) % self.sigs.len()
    }

    /// Retires an active page: trains both pattern tables with the observed
    /// bitmap and folds the page's prediction outcome into the modulator's
    /// interval accounting.
    fn retire(&mut self, entry: ActivePage) {
        let observed = entry.bitmap.rotate_right(entry.trigger_offset);
        let s = &mut self.sigs[entry.sig];
        s.cov |= observed;
        if s.cov.count_ones() > self.cfg.density_max {
            s.cov = observed;
        }
        if s.acc & !1 == 0 {
            s.acc = observed;
        } else {
            s.acc &= observed;
            if s.acc & !1 == 0 {
                s.acc = observed;
            }
        }
        self.interval_useful += u64::from((entry.predicted & observed).count_ones());
        self.interval_evictions += 1;
        if self.interval_evictions >= self.cfg.interval_triggers {
            self.modulate();
        }
    }

    /// Interval-boundary mode selection with a hysteresis band: low measured
    /// accuracy (or bandwidth overrun at mediocre accuracy) selects the
    /// accuracy-biased table, high accuracy restores the coverage-biased
    /// table, and the band between the thresholds keeps the current mode.
    fn modulate(&mut self) {
        // An interval with no issued predictions reads as full accuracy:
        // nothing to be cautious about, so favor coverage to regain
        // candidates.
        let acc_pct = (self.interval_useful * 100)
            .checked_div(self.interval_issued)
            .unwrap_or(100);
        let bandwidth_pressure =
            self.interval_issued > self.cfg.bw_cap && acc_pct < self.cfg.acc_high_pct;
        let next = if acc_pct < self.cfg.acc_low_pct || bandwidth_pressure {
            DsPatchMode::Accuracy
        } else if acc_pct >= self.cfg.acc_high_pct {
            DsPatchMode::Coverage
        } else {
            self.mode
        };
        if next != self.mode {
            self.mode = next;
            self.mode_flips += 1;
        }
        self.interval_issued = 0;
        self.interval_useful = 0;
        self.interval_evictions = 0;
    }

    /// Emits up to `degree` candidates for a fresh trigger at
    /// `page`/`trigger_offset` from the modulator-selected pattern. Returns
    /// the anchored bitmap of what was actually issued.
    fn predict(
        &mut self,
        page: u64,
        trigger_offset: u32,
        sig: usize,
        out: &mut Vec<LineAddr>,
    ) -> u64 {
        let s = self.sigs[sig];
        let pattern = match self.mode {
            DsPatchMode::Coverage => s.cov,
            DsPatchMode::Accuracy => s.acc,
        } & !1; // the trigger line itself is already being fetched
        let mut issued = 0u64;
        let mut n = 0u32;
        for b in 1..u64::BITS {
            if pattern >> b & 1 == 1 {
                let off = (trigger_offset + b) % PAGE_LINES as u32;
                out.push(LineAddr::new((page << PAGE_SHIFT) + u64::from(off)));
                issued |= 1 << b;
                n += 1;
                if n >= self.cfg.degree {
                    break;
                }
            }
        }
        self.interval_issued += u64::from(n);
        issued
    }
}

impl Prefetcher for DsPatchPrefetcher {
    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<LineAddr>) {
        self.clock += 1;
        let page = ev.line.raw() >> PAGE_SHIFT;
        let offset = (ev.line.raw() & (PAGE_LINES - 1)) as u32;

        // An access inside an already-active page just accumulates.
        if let Some(entry) = self.active.iter_mut().flatten().find(|e| e.page == page) {
            entry.bitmap |= 1 << offset;
            entry.lru = self.clock;
            return;
        }

        // Page trigger. Runahead accesses follow the paper's "only-train"
        // rule (§6.14): no new accumulation state, no predictions.
        if ev.runahead {
            return;
        }
        let slot = self
            .active
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                self.active
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.as_ref().map_or(0, |e| e.lru))
                    .map(|(i, _)| i)
                    .expect("active-page table is non-empty")
            });
        if let Some(old) = self.active[slot].take() {
            self.retire(old);
        }
        let sig = self.sig_index(ev.pc);
        let predicted = self.predict(page, offset, sig, out);
        self.active[slot] = Some(ActivePage {
            page,
            bitmap: 1 << offset,
            predicted,
            trigger_offset: offset,
            sig,
            lru: self.clock,
        });
    }

    fn name(&self) -> &'static str {
        "dspatch"
    }

    fn mode_flips(&self) -> u64 {
        self.mode_flips
    }
}

#[cfg(test)]
mod tests {
    use padc_types::CoreId;

    use super::*;

    fn ev(line: u64, pc: u64) -> AccessEvent {
        AccessEvent {
            core: CoreId::new(0),
            line: LineAddr::new(line),
            pc,
            hit: false,
            runahead: false,
        }
    }

    /// A one-page active table retires the previous page on every trigger,
    /// which makes training effects immediately observable.
    fn single_page() -> DsPatchPrefetcher {
        DsPatchPrefetcher::new(DsPatchConfig {
            pages: 1,
            ..DsPatchConfig::default()
        })
    }

    /// Touch offsets `offs` of `page` (first element is the trigger).
    fn touch(p: &mut DsPatchPrefetcher, page: u64, offs: &[u64], pc: u64) -> Vec<LineAddr> {
        let mut out = Vec::new();
        for &o in offs {
            p.on_access(&ev(page * PAGE_LINES + o, pc), &mut out);
        }
        out
    }

    #[test]
    fn covp_or_merges_observed_patterns() {
        let mut p = single_page();
        touch(&mut p, 1, &[0, 1, 2], 0x40);
        touch(&mut p, 2, &[0, 5], 0x40); // retires page 1
        touch(&mut p, 3, &[0], 0x40); // retires page 2
        let (cov, _) = p.signature_patterns(0x40);
        assert_eq!(cov, 0b10_0111, "CovP must be the union of both patterns");
    }

    #[test]
    fn covp_resets_when_density_exceeded() {
        let mut p = DsPatchPrefetcher::new(DsPatchConfig {
            pages: 1,
            density_max: 4,
            ..DsPatchConfig::default()
        });
        touch(&mut p, 1, &[0, 1, 2, 3], 0x40);
        touch(&mut p, 2, &[0, 9], 0x40); // merge would reach 5 bits > 4
        touch(&mut p, 3, &[0], 0x40);
        let (cov, _) = p.signature_patterns(0x40);
        assert_eq!(cov, 0b10_0000_0001, "dense CovP resets to newest pattern");
    }

    #[test]
    fn accp_intersects_and_reseeds_on_collapse() {
        let mut p = single_page();
        touch(&mut p, 1, &[0, 1, 2, 3], 0x40);
        touch(&mut p, 2, &[0, 1, 2], 0x40);
        touch(&mut p, 3, &[0], 0x40);
        let (_, acc) = p.signature_patterns(0x40);
        assert_eq!(acc, 0b0111, "AccP keeps only always-observed offsets");
        // A disjoint observation would collapse AccP to just the trigger
        // bit; it reseeds from the new pattern instead of going dead.
        touch(&mut p, 4, &[0, 9], 0x40);
        touch(&mut p, 5, &[0], 0x40);
        let (_, acc) = p.signature_patterns(0x40);
        assert_eq!(acc, 0b10_0000_0001);
    }

    #[test]
    fn patterns_are_anchored_to_the_trigger_offset() {
        let mut p = single_page();
        // Trigger at offset 10, then +1/+2: anchored pattern is 0b111.
        touch(&mut p, 1, &[10, 11, 12], 0x40);
        touch(&mut p, 2, &[0], 0x40);
        let (cov, _) = p.signature_patterns(0x40);
        assert_eq!(cov, 0b0111);
        // A new trigger at offset 20 predicts 21 and 22.
        let out = touch(&mut p, 3, &[20], 0x40);
        assert_eq!(
            out,
            vec![
                LineAddr::new(3 * PAGE_LINES + 21),
                LineAddr::new(3 * PAGE_LINES + 22)
            ]
        );
    }

    #[test]
    fn prediction_respects_degree_and_stays_in_page() {
        let mut p = DsPatchPrefetcher::new(DsPatchConfig {
            pages: 1,
            degree: 3,
            ..DsPatchConfig::default()
        });
        touch(&mut p, 1, &[0, 1, 2, 3, 4, 5, 6, 7], 0x40);
        let out = touch(&mut p, 2, &[60], 0x40);
        assert_eq!(out.len(), 3, "degree caps the candidate count");
        for cand in &out {
            assert_eq!(cand.raw() >> PAGE_SHIFT, 2, "candidates stay in-page");
        }
    }

    #[test]
    fn runahead_trigger_neither_allocates_nor_predicts() {
        let mut p = single_page();
        touch(&mut p, 1, &[0, 1, 2], 0x40);
        let mut out = Vec::new();
        p.on_access(
            &AccessEvent {
                runahead: true,
                ..ev(2 * PAGE_LINES, 0x40)
            },
            &mut out,
        );
        assert!(out.is_empty(), "runahead must not predict");
        // Page 1 was not retired: its pattern is still unlearned.
        let (cov, _) = p.signature_patterns(0x40);
        assert_eq!(cov, 0, "runahead must not retire/train either");
    }

    #[test]
    fn modulator_flips_between_modes_and_counts() {
        let mut p = DsPatchPrefetcher::new(DsPatchConfig {
            pages: 1,
            interval_triggers: 2,
            ..DsPatchConfig::default()
        });
        assert_eq!(p.mode(), DsPatchMode::Coverage);
        // Teach a dense pattern, then trigger pages that never touch the
        // predicted offsets: measured accuracy is 0% -> flip to Accuracy.
        touch(&mut p, 1, &[0, 1, 2, 3], 0x40);
        for page in 2..8 {
            touch(&mut p, page, &[0], 0x40);
        }
        assert_eq!(p.mode(), DsPatchMode::Accuracy);
        assert!(p.mode_flips() >= 1);
        // Now make every prediction land: accuracy 100% -> flip back.
        for page in 8..16 {
            touch(&mut p, page, &[0, 1, 2, 3], 0x40);
        }
        assert_eq!(p.mode(), DsPatchMode::Coverage);
        assert!(p.mode_flips() >= 2);
    }
}
