use padc_types::{CoreId, LineAddr};
use serde::{Deserialize, Serialize};

/// An L2 access observed by a prefetcher.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessEvent {
    /// Core performing the access.
    pub core: CoreId,
    /// Line being accessed.
    pub line: LineAddr,
    /// Program counter of the triggering load/store (used by PC-indexed
    /// prefetchers).
    pub pc: u64,
    /// True if the access hit in the L2.
    pub hit: bool,
    /// True while the core is in runahead mode. Per the paper's "only-train"
    /// policy (§6.14), prefetchers train existing state but must not
    /// allocate new entries for runahead accesses.
    pub runahead: bool,
}

/// Which prefetcher drives the evaluation (Fig. 28 compares all four).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum PrefetcherKind {
    /// Stream prefetcher (paper's default).
    #[default]
    Stream,
    /// PC-based stride prefetcher.
    Stride,
    /// Markov (miss-correlation) prefetcher.
    Markov,
    /// CZone/Delta-Correlation prefetcher.
    Cdc,
    /// DSPatch dual-spatial-pattern prefetcher (Bera et al.; extension arm,
    /// not part of the paper's Fig. 28 quartet).
    DsPatch,
}

impl PrefetcherKind {
    /// All kinds: the four of Fig. 28 in presentation order, then the
    /// extension arms.
    pub const ALL: [PrefetcherKind; 5] = [
        PrefetcherKind::Stream,
        PrefetcherKind::Stride,
        PrefetcherKind::Cdc,
        PrefetcherKind::Markov,
        PrefetcherKind::DsPatch,
    ];
}

/// A hardware prefetcher observing the L2 access stream.
///
/// Implementations push candidate prefetch line addresses into `out`; the
/// memory system decides whether each candidate actually enters the memory
/// request buffer (it may be filtered by DDPF, dropped for lack of MSHR or
/// buffer space, or already be resident).
pub trait Prefetcher {
    /// Observes one L2 access and emits zero or more prefetch candidates.
    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<LineAddr>);

    /// Short stable name for reports ("stream", "stride", ...).
    fn name(&self) -> &'static str;

    /// Adjusts aggressiveness (prefetch degree and distance, in lines).
    /// Used by Feedback-Directed Prefetching; prefetchers without a
    /// degree/distance notion may ignore it.
    fn set_aggressiveness(&mut self, _degree: u32, _distance: u32) {}

    /// Current (degree, distance), if the prefetcher has that notion.
    fn aggressiveness(&self) -> Option<(u32, u32)> {
        None
    }

    /// How many times the prefetcher has discretely switched prediction
    /// modes (nonzero only for modal prefetchers such as DSPatch, whose
    /// coverage/accuracy modulator is the interesting stressor for PADC's
    /// accuracy tracking). Surfaces in `--profile` output so CI can prove
    /// the modal path was exercised.
    fn mode_flips(&self) -> u64 {
        0
    }
}
