//! Hardware prefetchers and prefetch-management mechanisms for the PADC
//! simulation suite.
//!
//! The paper evaluates its DRAM controller under four prefetchers (§2.2,
//! §6.11) and against two orthogonal prefetch-control mechanisms (§6.12):
//!
//! * [`StreamPrefetcher`] — the IBM POWER4/5-style stream prefetcher used
//!   for most results: 32 streams, prefetch degree 4, distance 64.
//! * [`StridePrefetcher`] — PC-based stride detection (Baer & Chen).
//! * [`MarkovPrefetcher`] — miss-address correlation (Joseph & Grunwald).
//! * [`CdcPrefetcher`] — CZone/Delta-Correlation (Nesbit et al.).
//! * [`DsPatchPrefetcher`] — DSPatch dual-spatial-pattern prediction (Bera
//!   et al., MICRO 2019; see PAPERS.md): an extension arm whose
//!   coverage/accuracy modulator gives PADC a prefetcher with *modal*
//!   accuracy.
//! * [`Ddpf`] — Dynamic Data Prefetch Filtering (Zhuang & Lee): a history
//!   table predicts and suppresses useless prefetches at issue.
//! * [`Fdp`] — Feedback-Directed Prefetching (Srinath et al.): throttles the
//!   stream prefetcher's degree/distance from accuracy, lateness, and
//!   pollution feedback.
//!
//! All prefetchers implement the [`Prefetcher`] trait and are driven by L2
//! [`AccessEvent`]s.
//!
//! # Example
//!
//! ```
//! use padc_prefetch::{AccessEvent, Prefetcher, StreamPrefetcher, StreamConfig};
//! use padc_types::{CoreId, LineAddr};
//!
//! let mut pf = StreamPrefetcher::new(StreamConfig::default());
//! let mut out = Vec::new();
//! // A miss allocates a stream; nearby accesses train it...
//! for i in 0..4u64 {
//!     let ev = AccessEvent { core: CoreId::new(0), line: LineAddr::new(100 + i),
//!                            pc: 0x400, hit: i > 0, runahead: false };
//!     pf.on_access(&ev, &mut out);
//! }
//! // ...after which prefetches stream ahead of the access pointer.
//! assert!(!out.is_empty());
//! ```

#![warn(missing_docs)]

mod cdc;
mod ddpf;
mod dspatch;
mod fdp;
mod markov;
mod stream;
mod stride;
mod traits;

pub use cdc::{CdcConfig, CdcPrefetcher};
pub use ddpf::{Ddpf, DdpfConfig};
pub use dspatch::{DsPatchConfig, DsPatchMode, DsPatchPrefetcher, PAGE_LINES};
pub use fdp::{fdp_feedback, Fdp, FdpConfig, FdpFeedback, FdpLevel, PollutionFilter};
pub use markov::{MarkovConfig, MarkovPrefetcher};
pub use stream::{StreamConfig, StreamPrefetcher};
pub use stride::{StrideConfig, StridePrefetcher};
pub use traits::{AccessEvent, Prefetcher, PrefetcherKind};

/// Builds a boxed prefetcher of the requested kind with default parameters.
///
/// ```
/// use padc_prefetch::{build, PrefetcherKind};
/// let pf = build(PrefetcherKind::Stream);
/// assert_eq!(pf.name(), "stream");
/// ```
pub fn build(kind: PrefetcherKind) -> Box<dyn Prefetcher> {
    match kind {
        PrefetcherKind::Stream => Box::new(StreamPrefetcher::new(StreamConfig::default())),
        PrefetcherKind::Stride => Box::new(StridePrefetcher::new(StrideConfig::default())),
        PrefetcherKind::Markov => Box::new(MarkovPrefetcher::new(MarkovConfig::default())),
        PrefetcherKind::Cdc => Box::new(CdcPrefetcher::new(CdcConfig::default())),
        PrefetcherKind::DsPatch => Box::new(DsPatchPrefetcher::new(DsPatchConfig::default())),
    }
}
