use padc_types::LineAddr;
use serde::{Deserialize, Serialize};

use crate::{AccessEvent, Prefetcher};

/// Parameters of the stream prefetcher (paper Table 3: 32 streams, degree 4,
/// distance 64).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Number of concurrently tracked streams.
    pub streams: usize,
    /// Prefetches issued per trigger (N in §2.3).
    pub degree: u32,
    /// Monitoring-region length in lines (D in §2.3).
    pub distance: u32,
    /// Window around the start pointer within which accesses train a newly
    /// allocated stream.
    pub train_window: i64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            streams: 32,
            degree: 4,
            distance: 64,
            train_window: 16,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum StreamState {
    /// Allocated on a miss at `start`; waiting for a nearby access to reveal
    /// the direction.
    Allocated { start: LineAddr },
    /// Direction known; monitoring region is `[start, start + dir*distance]`
    /// and `last_issued` is the furthest line already prefetched.
    Monitoring {
        start: LineAddr,
        dir: i64,
        last_issued: LineAddr,
    },
}

#[derive(Clone, Copy, Debug)]
struct StreamEntry {
    state: StreamState,
    lru: u64,
}

/// IBM POWER4/5-style stream prefetcher (§2.3 of the paper).
///
/// Each stream entry begins at a miss address `S`; subsequent accesses
/// within `train_window` of `S` set the stream's direction and establish a
/// monitoring region `[S, S+D]`. An access inside the region triggers `N`
/// prefetches beyond the region, which then shifts forward by `N`.
#[derive(Clone, Debug)]
pub struct StreamPrefetcher {
    cfg: StreamConfig,
    entries: Vec<Option<StreamEntry>>,
    clock: u64,
}

impl StreamPrefetcher {
    /// Creates a stream prefetcher with the given parameters.
    pub fn new(cfg: StreamConfig) -> Self {
        StreamPrefetcher {
            entries: vec![None; cfg.streams],
            cfg,
            clock: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    fn find_matching(&self, line: LineAddr) -> Option<usize> {
        // Prefer a monitoring stream whose region contains the access; fall
        // back to an allocated stream the access can train.
        let mut training_match = None;
        for (i, e) in self.entries.iter().enumerate() {
            let Some(e) = e else { continue };
            match e.state {
                StreamState::Monitoring { start, dir, .. } => {
                    let delta = line.distance_from(start) * dir;
                    // Accesses slightly *behind* the region (the region
                    // shifts ahead of the access pointer) still belong to
                    // this stream; matching them prevents duplicate stream
                    // allocation, but only in-region accesses trigger.
                    if (-self.cfg.train_window..=self.cfg.distance as i64).contains(&delta) {
                        return Some(i);
                    }
                }
                StreamState::Allocated { start } => {
                    let delta = line.distance_from(start);
                    if delta != 0 && delta.abs() <= self.cfg.train_window {
                        training_match.get_or_insert(i);
                    }
                }
            }
        }
        training_match
    }

    fn allocate(&mut self, line: LineAddr) {
        let slot = self
            .entries
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                // Evict the LRU stream.
                self.entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.as_ref().map_or(0, |e| e.lru))
                    .map(|(i, _)| i)
                    .expect("stream table is non-empty")
            });
        self.entries[slot] = Some(StreamEntry {
            state: StreamState::Allocated { start: line },
            lru: self.clock,
        });
    }
}

impl Prefetcher for StreamPrefetcher {
    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<LineAddr>) {
        self.clock += 1;
        let line = ev.line;
        match self.find_matching(line) {
            Some(i) => {
                let cfg = self.cfg;
                let clock = self.clock;
                let entry = self.entries[i].as_mut().expect("matched entry exists");
                entry.lru = clock;
                match entry.state {
                    StreamState::Allocated { start } => {
                        // Direction revealed; set up the monitoring region.
                        let dir = if line.distance_from(start) > 0 { 1 } else { -1 };
                        entry.state = StreamState::Monitoring {
                            start,
                            dir,
                            last_issued: start.offset(dir * cfg.distance as i64),
                        };
                    }
                    StreamState::Monitoring {
                        start,
                        dir,
                        last_issued,
                    } => {
                        // Only accesses inside the region trigger; matched
                        // accesses behind the shifted region just keep the
                        // stream alive.
                        let delta = line.distance_from(start) * dir;
                        if delta >= 0 {
                            // Prefetch N lines beyond `last_issued` and
                            // shift the region forward by N.
                            for k in 1..=cfg.degree as i64 {
                                out.push(last_issued.offset(dir * k));
                            }
                            entry.state = StreamState::Monitoring {
                                start: start.offset(dir * cfg.degree as i64),
                                dir,
                                last_issued: last_issued.offset(dir * cfg.degree as i64),
                            };
                        }
                    }
                }
            }
            None => {
                // A miss that belongs to no stream allocates a new one
                // (unless we are in runahead "only-train" mode).
                if !ev.hit && !ev.runahead {
                    self.allocate(line);
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "stream"
    }

    fn set_aggressiveness(&mut self, degree: u32, distance: u32) {
        self.cfg.degree = degree.max(1);
        self.cfg.distance = distance.max(1);
    }

    fn aggressiveness(&self) -> Option<(u32, u32)> {
        Some((self.cfg.degree, self.cfg.distance))
    }
}

#[cfg(test)]
mod tests {
    use padc_types::CoreId;

    use super::*;

    fn ev(line: u64, hit: bool) -> AccessEvent {
        AccessEvent {
            core: CoreId::new(0),
            line: LineAddr::new(line),
            pc: 0,
            hit,
            runahead: false,
        }
    }

    fn pf() -> StreamPrefetcher {
        StreamPrefetcher::new(StreamConfig::default())
    }

    #[test]
    fn sequential_stream_prefetches_ahead() {
        let mut p = pf();
        let mut out = Vec::new();
        p.on_access(&ev(1000, false), &mut out); // allocate
        assert!(out.is_empty());
        p.on_access(&ev(1001, false), &mut out); // train ascending
        assert!(out.is_empty());
        p.on_access(&ev(1002, true), &mut out); // inside region -> prefetch
        assert_eq!(
            out,
            vec![
                LineAddr::new(1065),
                LineAddr::new(1066),
                LineAddr::new(1067),
                LineAddr::new(1068)
            ]
        );
    }

    #[test]
    fn descending_stream_is_detected() {
        let mut p = pf();
        let mut out = Vec::new();
        p.on_access(&ev(1000, false), &mut out);
        p.on_access(&ev(999, false), &mut out);
        p.on_access(&ev(998, true), &mut out);
        assert_eq!(out[0], LineAddr::new(1000 - 65));
    }

    #[test]
    fn region_shifts_after_issue() {
        let mut p = pf();
        let mut out = Vec::new();
        p.on_access(&ev(1000, false), &mut out);
        p.on_access(&ev(1001, false), &mut out);
        p.on_access(&ev(1002, true), &mut out);
        out.clear();
        // The region shifted to [1004, 1068]: an access just behind the new
        // start no longer triggers (the prefetcher self-paces)...
        p.on_access(&ev(1003, true), &mut out);
        assert!(out.is_empty());
        // ...but the next access inside the region continues the stream.
        p.on_access(&ev(1004, true), &mut out);
        assert_eq!(out[0], LineAddr::new(1069));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn far_away_miss_allocates_new_stream() {
        let mut p = pf();
        let mut out = Vec::new();
        p.on_access(&ev(1000, false), &mut out);
        p.on_access(&ev(500_000, false), &mut out); // new stream
        p.on_access(&ev(1001, false), &mut out); // still trains stream 1
        p.on_access(&ev(1002, true), &mut out);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn lru_stream_evicted_when_table_full() {
        let mut p = StreamPrefetcher::new(StreamConfig {
            streams: 2,
            ..StreamConfig::default()
        });
        let mut out = Vec::new();
        p.on_access(&ev(1_000, false), &mut out);
        p.on_access(&ev(100_000, false), &mut out);
        p.on_access(&ev(200_000, false), &mut out); // evicts stream at 1_000
        p.on_access(&ev(1_001, false), &mut out); // allocates anew (trains nothing)
        p.on_access(&ev(1_002, true), &mut out); // trains the new stream
        assert!(out.is_empty(), "old stream must be gone");
    }

    #[test]
    fn runahead_access_does_not_allocate_but_trains() {
        let mut p = pf();
        let mut out = Vec::new();
        // Runahead miss: no allocation.
        p.on_access(
            &AccessEvent {
                runahead: true,
                ..ev(1000, false)
            },
            &mut out,
        );
        p.on_access(&ev(1001, false), &mut out);
        p.on_access(&ev(1002, true), &mut out);
        assert!(out.is_empty(), "no stream should exist");

        // But an existing stream trains during runahead.
        p.on_access(&ev(2000, false), &mut out);
        p.on_access(
            &AccessEvent {
                runahead: true,
                ..ev(2001, false)
            },
            &mut out,
        );
        p.on_access(
            &AccessEvent {
                runahead: true,
                ..ev(2002, true)
            },
            &mut out,
        );
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn fdp_hooks_adjust_degree_and_distance() {
        let mut p = pf();
        p.set_aggressiveness(2, 16);
        assert_eq!(p.aggressiveness(), Some((2, 16)));
        let mut out = Vec::new();
        p.on_access(&ev(1000, false), &mut out);
        p.on_access(&ev(1001, false), &mut out);
        p.on_access(&ev(1002, true), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], LineAddr::new(1017));
    }
}
