//! Cross-crate conservation invariants: counters measured at different
//! layers of the stack must agree with each other.

use padc::core::SchedulingPolicy;
use padc::sim::{Report, SimConfig, System};
use padc::workloads::{profiles, Workload};

fn run(names: &[&str], policy: SchedulingPolicy) -> Report {
    let w = Workload::from_names(names);
    let mut cfg = SimConfig::new(names.len(), policy);
    cfg.max_instructions = 50_000;
    System::new(cfg, w.benchmarks).run()
}

/// Traffic counted by the per-core accounting must equal the lines moved
/// over the DRAM data bus (reads + writes), up to requests still in flight
/// when the run ends. (Single-core runs only: in multi-core runs each
/// core's counters freeze at its own finish cycle while DRAM keeps serving
/// the others.)
#[test]
fn traffic_matches_dram_cas_counts() {
    for policy in [
        SchedulingPolicy::DemandFirst,
        SchedulingPolicy::DemandPrefetchEqual,
        SchedulingPolicy::Padc,
    ] {
        let r = run(&["milc_06"], policy);
        let cas: u64 = r.channels.iter().map(|c| c.cas_total()).sum();
        let traffic = r.traffic().total();
        let diff = cas.abs_diff(traffic);
        assert!(
            diff <= 256,
            "{policy:?}: DRAM cas={cas} vs accounted traffic={traffic}"
        );
    }
}

/// Useful prefetches can never exceed sent prefetches, per core.
#[test]
fn used_prefetches_bounded_by_sent() {
    let r = run(
        &["swim_00", "omnetpp_06", "milc_06", "eon_00"],
        SchedulingPolicy::Padc,
    );
    for c in &r.per_core {
        assert!(
            c.prefetches_used <= c.prefetches_sent,
            "{}: used {} > sent {}",
            c.benchmark,
            c.prefetches_used,
            c.prefetches_sent
        );
        assert!(c.acc() <= 1.0);
        assert!(c.cov() <= 1.0);
        assert!(c.rbhu() <= 1.0);
    }
}

/// Dropped + serviced prefetches can never exceed sent.
#[test]
fn drops_bounded_by_sent() {
    let r = run(&["milc_06"], SchedulingPolicy::Padc);
    let c = &r.per_core[0];
    assert!(c.prefetches_dropped <= c.prefetches_sent);
    assert_eq!(c.prefetches_dropped, r.controller.prefetches_dropped);
}

/// Traffic categories decompose the prefetch fills exactly: useful +
/// useless = prefetch lines transferred.
#[test]
fn traffic_breakdown_is_exhaustive() {
    let r = run(&["soplex_06", "galgel_00"], SchedulingPolicy::DemandFirst);
    let t = r.traffic();
    assert!(t.total() > 0);
    assert_eq!(t.total(), t.demand + t.pref_useful + t.pref_useless);
}

/// The service-time histogram covers every prefetch that was transferred.
#[test]
fn service_histogram_accounts_for_prefetch_fills() {
    let mut cfg = SimConfig::single_core(SchedulingPolicy::DemandFirst);
    cfg.max_instructions = 50_000;
    let r = System::new(cfg, vec![profiles::milc()]).run();
    let hist_total: u64 = r
        .pf_service_hist_useful
        .iter()
        .chain(r.pf_service_hist_useless.iter())
        .sum();
    let t = r.traffic();
    let transferred = t.pref_useful + t.pref_useless;
    // Histogram entries are recorded at completion; the traffic counters
    // freeze at the core's finish cycle, so allow slack for the tail.
    assert!(
        hist_total >= transferred / 2 && hist_total <= transferred + 512,
        "hist={hist_total} vs transferred={transferred}"
    );
}

/// RBHU numerators never exceed their denominators.
#[test]
fn rbhu_parts_are_consistent() {
    let r = run(&["lbm_06", "xalancbmk_06"], SchedulingPolicy::Padc);
    for c in &r.per_core {
        assert!(c.rbhu_demand_hits <= c.rbhu_demand_total);
        assert!(c.rbhu_useful_hits <= c.rbhu_useful_total);
    }
}

/// Every DRAM activation pairs with at most one precharge plus the initial
/// closed-bank activations (banks are never double-opened).
#[test]
fn dram_command_counts_are_sane() {
    let r = run(
        &["swim_00", "art_00"],
        SchedulingPolicy::DemandPrefetchEqual,
    );
    for ch in &r.channels {
        assert!(ch.activations >= ch.precharges, "{ch:?}");
        assert!(ch.activations <= ch.precharges + 8, "{ch:?}"); // 8 banks
        assert!(ch.row_hit_rate() <= 1.0);
    }
}
