//! Behavioural check of the Table 5 substitution: each synthetic profile's
//! *measured* stream-prefetcher accuracy must land in the band implied by
//! its prefetch-friendliness class. This is the contract DESIGN.md §2
//! makes for the SPEC-trace substitution.

use padc::core::SchedulingPolicy;
use padc::sim::{SimConfig, System};
use padc::workloads::{profiles, PrefetchClass};

fn measured_acc(name: &str) -> (f64, f64) {
    let mut cfg = SimConfig::single_core(SchedulingPolicy::DemandFirst);
    cfg.max_instructions = 120_000;
    let bench = profiles::by_name(name).expect("catalog benchmark");
    let r = System::new(cfg, vec![bench]).run();
    (r.per_core[0].acc(), r.per_core[0].mpki())
}

#[test]
fn friendly_streaming_profiles_measure_high_accuracy() {
    for name in [
        "libquantum_06",
        "swim_00",
        "bwaves_06",
        "lbm_06",
        "mgrid_00",
    ] {
        let (acc, _) = measured_acc(name);
        assert!(
            acc > 0.75,
            "{name}: class-1 streaming profile measured ACC {acc:.2}"
        );
    }
}

#[test]
fn unfriendly_profiles_measure_low_accuracy() {
    for name in ["ammp_00", "omnetpp_06", "xalancbmk_06"] {
        let (acc, _) = measured_acc(name);
        assert!(acc < 0.40, "{name}: class-2 profile measured ACC {acc:.2}");
    }
}

#[test]
fn moderate_accuracy_profiles_sit_in_the_middle() {
    // art / galgel / mcf run just past the prefetch distance: accuracy in a
    // broad intermediate band, clearly separated from the extremes.
    for name in ["art_00", "galgel_00", "mcf_06"] {
        let (acc, _) = measured_acc(name);
        assert!(
            (0.15..0.75).contains(&acc),
            "{name}: expected intermediate ACC, measured {acc:.2}"
        );
    }
}

#[test]
fn memory_intensity_ordering_matches_table5() {
    // art is the most memory-intensive benchmark in Table 5 (MPKI 89 with
    // prefetching); eon is the least (~0.01). The ordering must survive the
    // substitution even if absolute values differ.
    let (_, art) = measured_acc("art_00");
    let (_, swim) = measured_acc("swim_00");
    let (_, eon) = measured_acc("eon_00");
    assert!(art > swim, "art ({art:.1}) must out-miss swim ({swim:.1})");
    assert!(
        swim > eon * 5.0,
        "swim ({swim:.1}) must out-miss eon ({eon:.1})"
    );
    // At short horizons eon's measured MPKI is dominated by cold-start
    // misses on its hot set; allow for that warm-up.
    assert!(eon < 3.0, "eon must be nearly miss-free, got {eon:.2}");
}

#[test]
fn insensitive_profiles_are_not_memory_bound() {
    let mut cfg = SimConfig::single_core(SchedulingPolicy::DemandFirst);
    cfg.max_instructions = 120_000;
    for name in ["eon_00", "gamess_06", "sjeng_06"] {
        let bench = profiles::by_name(name).expect("catalog benchmark");
        let r = System::new(cfg.clone(), vec![bench]).run();
        let c = &r.per_core[0];
        assert_eq!(
            profiles::by_name(name).unwrap().class,
            PrefetchClass::Insensitive
        );
        assert!(
            c.ipc() > 1.0,
            "{name}: class-0 profile should run near compute-bound, IPC {:.2}",
            c.ipc()
        );
    }
}
