//! End-to-end integration tests asserting the paper's qualitative result
//! shapes — who wins where — on the full system.

use padc::core::SchedulingPolicy;
use padc::sim::{Report, SimConfig, System};
use padc::workloads::{profiles, Workload};

fn run_single(policy: SchedulingPolicy, bench: &str, instructions: u64, prefetch: bool) -> Report {
    let mut cfg = SimConfig::single_core(policy);
    if !prefetch {
        cfg = cfg.without_prefetching();
    }
    cfg.max_instructions = instructions;
    System::new(
        cfg,
        vec![profiles::by_name(bench).expect("known benchmark")],
    )
    .run()
}

#[test]
fn prefetching_greatly_helps_streaming_workloads() {
    let base = run_single(
        SchedulingPolicy::DemandFirst,
        "libquantum_06",
        150_000,
        false,
    );
    let pf = run_single(
        SchedulingPolicy::DemandFirst,
        "libquantum_06",
        150_000,
        true,
    );
    let speedup = pf.per_core[0].ipc() / base.per_core[0].ipc();
    assert!(
        speedup > 1.5,
        "stream prefetching should speed libquantum up substantially, got {speedup:.2}x"
    );
}

#[test]
fn prefetching_barely_moves_insensitive_workloads() {
    let base = run_single(SchedulingPolicy::DemandFirst, "eon_00", 150_000, false);
    let pf = run_single(SchedulingPolicy::DemandFirst, "eon_00", 150_000, true);
    let ratio = pf.per_core[0].ipc() / base.per_core[0].ipc();
    assert!(
        (0.9..1.2).contains(&ratio),
        "class-0 benchmark should be prefetch-insensitive, got {ratio:.2}x"
    );
}

#[test]
fn stream_prefetcher_accuracy_tracks_benchmark_class() {
    let friendly = run_single(SchedulingPolicy::DemandFirst, "swim_00", 150_000, true);
    let unfriendly = run_single(SchedulingPolicy::DemandFirst, "omnetpp_06", 150_000, true);
    assert!(
        friendly.per_core[0].acc() > 0.75,
        "swim accuracy {:.2}",
        friendly.per_core[0].acc()
    );
    assert!(
        unfriendly.per_core[0].acc() < 0.35,
        "omnetpp accuracy {:.2}",
        unfriendly.per_core[0].acc()
    );
}

#[test]
fn apd_drops_useless_prefetches_and_saves_bandwidth() {
    // omnetpp is uniformly prefetch-unfriendly (milc's *first* phase is its
    // friendly one, so a short run would not arm APD).
    let df = run_single(SchedulingPolicy::DemandFirst, "omnetpp_06", 150_000, true);
    let padc = run_single(SchedulingPolicy::Padc, "omnetpp_06", 150_000, true);
    assert!(
        padc.per_core[0].prefetches_dropped > 100,
        "APD must fire on omnetpp (dropped {})",
        padc.per_core[0].prefetches_dropped
    );
    assert!(
        padc.traffic().total() < df.traffic().total(),
        "APD must reduce bus traffic ({} vs {})",
        padc.traffic().total(),
        df.traffic().total()
    );
    // And not lose meaningful performance while doing it.
    let ratio = padc.per_core[0].ipc() / df.per_core[0].ipc();
    assert!(ratio > 0.9, "PADC should be near demand-first, {ratio:.2}");
}

#[test]
fn apd_preserves_useful_prefetches_on_friendly_workloads() {
    let padc = run_single(SchedulingPolicy::Padc, "libquantum_06", 150_000, true);
    let sent = padc.per_core[0].prefetches_sent;
    let dropped = padc.per_core[0].prefetches_dropped;
    assert!(
        (dropped as f64) < 0.05 * sent as f64,
        "PADC must not drop accurate prefetches ({dropped}/{sent})"
    );
}

#[test]
fn padc_beats_the_worst_rigid_policy_on_a_mixed_4core_workload() {
    let w = Workload::from_names(&["omnetpp_06", "libquantum_06", "galgel_00", "GemsFDTD_06"]);
    let run = |policy: SchedulingPolicy| {
        let mut cfg = SimConfig::new(4, policy);
        cfg.max_instructions = 60_000;
        let r = System::new(cfg, w.benchmarks.clone()).run();
        let sum: f64 = r.per_core.iter().map(|c| c.ipc()).sum();
        (sum, r.traffic().total())
    };
    let (ipc_equal, _) = run(SchedulingPolicy::DemandPrefetchEqual);
    let (ipc_padc, traffic_padc) = run(SchedulingPolicy::Padc);
    let (_, traffic_df) = run(SchedulingPolicy::DemandFirst);
    assert!(
        ipc_padc > ipc_equal,
        "PADC ({ipc_padc:.3}) must beat demand-pref-equal ({ipc_equal:.3}) on a mixed workload"
    );
    assert!(
        traffic_padc < traffic_df,
        "PADC must save bandwidth on a mixed workload"
    );
}

#[test]
fn prefetch_first_is_the_worst_policy_on_unfriendly_workloads() {
    let pf_first = run_single(SchedulingPolicy::PrefetchFirst, "omnetpp_06", 100_000, true);
    let df = run_single(SchedulingPolicy::DemandFirst, "omnetpp_06", 100_000, true);
    assert!(
        pf_first.per_core[0].ipc() <= df.per_core[0].ipc() * 1.02,
        "prefetch-first must not beat demand-first on an unfriendly app"
    );
}

#[test]
fn dual_channel_systems_are_faster() {
    let w = Workload::from_names(&["swim_00", "bwaves_06", "leslie3d_06", "soplex_06"]);
    let run = |channels: usize| {
        let mut cfg = SimConfig::new(4, SchedulingPolicy::DemandFirst);
        cfg.dram.channels = channels;
        cfg.max_instructions = 60_000;
        let r = System::new(cfg, w.benchmarks.clone()).run();
        r.per_core.iter().map(|c| c.ipc()).sum::<f64>()
    };
    let one = run(1);
    let two = run(2);
    assert!(
        two > one * 1.1,
        "doubling memory channels must help bandwidth-bound workloads ({one:.3} -> {two:.3})"
    );
}

#[test]
fn bigger_caches_lift_baseline_performance() {
    let mut small = SimConfig::single_core(SchedulingPolicy::DemandFirst);
    small.l2.size_bytes = 512 * 1024;
    small.max_instructions = 100_000;
    let mut big = small.clone();
    big.l2.size_bytes = 8 * 1024 * 1024;
    let bench = profiles::by_name("sphinx3_06").unwrap(); // medium working set
    let s = System::new(small, vec![bench.clone()]).run().per_core[0].ipc();
    let b = System::new(big, vec![bench]).run().per_core[0].ipc();
    assert!(b >= s, "8MB L2 ({b:.3}) must not lose to 512KB ({s:.3})");
}

#[test]
fn runahead_generates_runahead_requests_and_does_not_hurt() {
    let mut cfg = SimConfig::single_core(SchedulingPolicy::Padc);
    cfg.core.runahead = true;
    cfg.max_instructions = 100_000;
    let bench = profiles::by_name("mcf_06").unwrap();
    let ra = System::new(cfg, vec![bench.clone()]).run();
    assert!(
        ra.per_core[0].runahead_episodes > 0,
        "a pointer-chasing app must trigger runahead"
    );
    let base = run_single(SchedulingPolicy::Padc, "mcf_06", 100_000, true);
    assert!(
        ra.per_core[0].ipc() > base.per_core[0].ipc() * 0.95,
        "runahead should not hurt ({:.3} vs {:.3})",
        ra.per_core[0].ipc(),
        base.per_core[0].ipc()
    );
}

#[test]
fn shared_cache_system_runs_and_reports_per_core() {
    let w = Workload::from_names(&["swim_00", "milc_06", "eon_00", "libquantum_06"]);
    let mut cfg = SimConfig::new(4, SchedulingPolicy::Padc);
    cfg.shared_l2 = true;
    cfg.max_instructions = 50_000;
    let r = System::new(cfg, w.benchmarks).run();
    assert_eq!(r.per_core.len(), 4);
    assert!(r.per_core.iter().all(|c| c.instructions >= 50_000));
}

#[test]
fn permutation_mapping_does_not_break_correctness() {
    let mut cfg = SimConfig::single_core(SchedulingPolicy::Padc);
    cfg.mapping = padc::dram::MappingScheme::Permutation;
    cfg.max_instructions = 60_000;
    let r = System::new(cfg, vec![profiles::swim()]).run();
    assert!(r.per_core[0].ipc() > 0.0);
    assert!(r.per_core[0].acc() > 0.5);
}
