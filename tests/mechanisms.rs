//! Integration tests for the orthogonal mechanisms: DDPF, FDP, extended
//! DRAM timing, PAR-BS batching, and the closed-row policy — each driven
//! through the full system.

use padc::core::SchedulingPolicy;
use padc::dram::{ExtendedTiming, RowPolicy};
use padc::sim::{Report, SimConfig, System};
use padc::workloads::profiles;

fn base_cfg(policy: SchedulingPolicy) -> SimConfig {
    let mut cfg = SimConfig::single_core(policy);
    cfg.max_instructions = 120_000;
    cfg
}

fn run(cfg: SimConfig, bench: &str) -> Report {
    System::new(cfg, vec![profiles::by_name(bench).expect("known")]).run()
}

#[test]
fn ddpf_filters_prefetches_on_unfriendly_workloads() {
    // DDPF learns uselessness from unused-prefetch evictions, so the test
    // uses a small L2 that wraps within the run.
    let small_l2 = |mut cfg: SimConfig| {
        cfg.l2.size_bytes = 64 * 1024;
        cfg
    };
    let mut cfg = small_l2(base_cfg(SchedulingPolicy::DemandFirst));
    cfg.ddpf = true;
    let with = run(cfg, "omnetpp_06");
    let without = run(
        small_l2(base_cfg(SchedulingPolicy::DemandFirst)),
        "omnetpp_06",
    );
    assert!(
        with.per_core[0].prefetches_filtered > 20,
        "DDPF should filter useless prefetches (filtered {})",
        with.per_core[0].prefetches_filtered
    );
    assert!(
        with.traffic().pref_useless < without.traffic().pref_useless,
        "DDPF must cut useless prefetch traffic ({} vs {})",
        with.traffic().pref_useless,
        without.traffic().pref_useless
    );
}

#[test]
fn ddpf_spares_accurate_prefetchers() {
    let mut cfg = base_cfg(SchedulingPolicy::DemandFirst);
    cfg.ddpf = true;
    let r = run(cfg, "libquantum_06");
    let c = &r.per_core[0];
    assert!(
        (c.prefetches_filtered as f64)
            < 0.15 * (c.prefetches_sent + c.prefetches_filtered).max(1) as f64,
        "DDPF should rarely filter accurate prefetches (filtered {} of {})",
        c.prefetches_filtered,
        c.prefetches_sent + c.prefetches_filtered
    );
}

#[test]
fn fdp_throttles_down_on_unfriendly_workloads() {
    let mut cfg = base_cfg(SchedulingPolicy::DemandFirst);
    cfg.fdp = true;
    let with = run(cfg, "omnetpp_06");
    let without = run(base_cfg(SchedulingPolicy::DemandFirst), "omnetpp_06");
    assert!(
        with.per_core[0].prefetches_sent < without.per_core[0].prefetches_sent,
        "FDP should throttle an inaccurate prefetcher ({} vs {})",
        with.per_core[0].prefetches_sent,
        without.per_core[0].prefetches_sent
    );
}

#[test]
fn extended_timing_slows_but_does_not_break_the_system() {
    let mut cfg = base_cfg(SchedulingPolicy::Padc);
    cfg.dram.extended = Some(ExtendedTiming::default());
    let ext = run(cfg, "milc_06");
    let plain = run(base_cfg(SchedulingPolicy::Padc), "milc_06");
    assert!(ext.per_core[0].instructions >= 120_000);
    assert!(
        ext.channels[0].refreshes > 0,
        "refreshes must occur over a long run"
    );
    assert!(
        ext.total_cycles >= plain.total_cycles,
        "extra constraints cannot speed DRAM up ({} vs {})",
        ext.total_cycles,
        plain.total_cycles
    );
}

#[test]
fn batching_improves_fairness_on_an_asymmetric_mix() {
    use padc::sim::metrics;
    use padc::workloads::Workload;
    let w = Workload::from_names(&["art_00", "eon_00", "art_00", "eon_00"]);
    let alone: Vec<f64> = w
        .benchmarks
        .iter()
        .map(|b| {
            let mut cfg = SimConfig::single_core(SchedulingPolicy::DemandFirst);
            cfg.max_instructions = 60_000;
            System::new(cfg, vec![b.clone()]).run().per_core[0].ipc()
        })
        .collect();
    let run4 = |batching: bool| {
        let mut cfg = SimConfig::new(4, SchedulingPolicy::Padc);
        cfg.controller.batching = batching;
        cfg.max_instructions = 60_000;
        let r = System::new(cfg, w.benchmarks.clone()).run();
        let ipcs: Vec<f64> = r.per_core.iter().map(|c| c.ipc()).collect();
        metrics::unfairness(&ipcs, &alone)
    };
    let without = run4(false);
    let with = run4(true);
    assert!(
        with <= without * 1.1,
        "batching must not worsen unfairness materially ({with:.2} vs {without:.2})"
    );
}

#[test]
fn closed_row_policy_runs_the_full_system() {
    let mut cfg = base_cfg(SchedulingPolicy::Padc);
    cfg.dram.row_policy = RowPolicy::Closed;
    let r = run(cfg, "swim_00");
    assert!(r.per_core[0].ipc() > 0.0);
    // The closed-row policy issues extra precharges relative to CAS count.
    assert!(r.channels[0].precharges > 0);
}

#[test]
fn prefetch_first_policy_runs_and_is_not_best() {
    let pf = run(base_cfg(SchedulingPolicy::PrefetchFirst), "milc_06");
    let padc = run(base_cfg(SchedulingPolicy::Padc), "milc_06");
    assert!(pf.per_core[0].ipc() > 0.0);
    assert!(
        padc.per_core[0].ipc() >= pf.per_core[0].ipc() * 0.98,
        "PADC should not lose to prefetch-first"
    );
}
