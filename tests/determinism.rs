//! The whole simulator must be bit-for-bit deterministic for a given
//! configuration and seed — experiments are only reproducible if reruns
//! agree exactly.

use padc::core::SchedulingPolicy;
use padc::sim::{Report, SimConfig, System};
use padc::workloads::{random_workloads, Workload};

fn run(cfg: SimConfig, w: &Workload) -> Report {
    System::new(cfg, w.benchmarks.clone()).run()
}

#[test]
fn identical_configs_produce_identical_reports() {
    let w = Workload::from_names(&["milc_06", "libquantum_06"]);
    let mut cfg = SimConfig::new(2, SchedulingPolicy::Padc);
    cfg.max_instructions = 40_000;
    let a = run(cfg.clone(), &w);
    let b = run(cfg, &w);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_produce_different_behaviour() {
    let w = Workload::from_names(&["milc_06"]);
    let mut cfg = SimConfig::single_core(SchedulingPolicy::Padc);
    cfg.max_instructions = 40_000;
    cfg.seed = 1;
    let a = run(cfg.clone(), &w);
    cfg.seed = 2;
    let b = run(cfg, &w);
    assert_ne!(
        a.total_cycles, b.total_cycles,
        "different trace seeds should perturb timing"
    );
}

#[test]
fn policy_changes_perturb_scheduling_but_not_the_trace() {
    // Instruction counts must match exactly (same trace), while timing
    // differs between policies.
    let w = Workload::from_names(&["milc_06"]);
    let mut cfg = SimConfig::single_core(SchedulingPolicy::DemandFirst);
    cfg.max_instructions = 40_000;
    let a = run(cfg.clone(), &w);
    cfg.controller = padc::core::ControllerConfig::from_policy(SchedulingPolicy::Padc, 1);
    let b = run(cfg, &w);
    // Retirement is up to 4-wide, so the freeze point may overshoot the
    // target by a partial retire group — but never by more.
    assert!(
        a.per_core[0]
            .instructions
            .abs_diff(b.per_core[0].instructions)
            < 4
    );
    assert_ne!(a.total_cycles, b.total_cycles);
}

#[test]
fn workload_generation_is_reproducible() {
    assert_eq!(random_workloads(12, 4, 9), random_workloads(12, 4, 9));
    assert_ne!(random_workloads(12, 4, 9), random_workloads(12, 4, 10));
}
