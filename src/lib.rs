//! # padc — Prefetch-Aware DRAM Controllers
//!
//! Facade crate for the PADC reproduction suite (Lee, Mutlu, Narasiman,
//! Patt, "Prefetch-Aware DRAM Controllers", MICRO-41 2008). Re-exports the
//! workspace crates under one roof:
//!
//! * [`types`] — addresses, ids, request records.
//! * [`dram`] — cycle-level DDR3 bank/channel/bus model.
//! * [`cache`] — set-associative caches with prefetch bits and MSHRs.
//! * [`prefetch`] — stream / stride / Markov / C/DC prefetchers, DDPF, FDP.
//! * [`core`] — the paper's contribution: the memory request buffer,
//!   scheduling policies (FR-FCFS, demand-first, prefetch-first, APS),
//!   adaptive prefetch dropping, and request ranking.
//! * [`cpu`] — trace-driven core model with window-stall accounting and
//!   runahead execution.
//! * [`workloads`] — synthetic SPEC-like benchmark profiles and
//!   multiprogrammed workload construction.
//! * [`sim`] — the full-system simulator, metrics, and experiment runner.
//!
//! # Quickstart
//!
//! ```
//! use padc::sim::{SimConfig, System};
//! use padc::core::SchedulingPolicy;
//! use padc::workloads::profiles;
//!
//! // One core running a streaming workload under the PADC controller.
//! let mut cfg = SimConfig::single_core(SchedulingPolicy::Padc);
//! cfg.max_instructions = 50_000;
//! let mut system = System::new(cfg, vec![profiles::libquantum()]);
//! let report = system.run();
//! assert!(report.per_core[0].ipc() > 0.0);
//! ```

pub use padc_cache as cache;
pub use padc_core as core;
pub use padc_cpu as cpu;
pub use padc_dram as dram;
pub use padc_prefetch as prefetch;
pub use padc_sim as sim;
pub use padc_types as types;
pub use padc_workloads as workloads;
