//! Runs the same benchmark under all four hardware prefetchers the paper
//! evaluates (stream, PC-stride, CZone/Delta-Correlation, Markov) with and
//! without PADC — the interactive version of Fig. 28.
//!
//! ```text
//! cargo run --release --example prefetcher_zoo
//! ```

use padc::core::SchedulingPolicy;
use padc::prefetch::PrefetcherKind;
use padc::sim::{SimConfig, System};
use padc::workloads::profiles;

fn main() {
    let bench = profiles::soplex();
    println!("benchmark: {} (mixed streaming/irregular)\n", bench.name);

    // No-prefetching baseline.
    let mut cfg = SimConfig::single_core(SchedulingPolicy::DemandFirst).without_prefetching();
    cfg.max_instructions = 250_000;
    let base = System::new(cfg, vec![bench.clone()]).run().per_core[0].ipc();
    println!("{:<8} {:<18} ipc={base:.3} (baseline)\n", "none", "-");

    for kind in PrefetcherKind::ALL {
        for policy in [SchedulingPolicy::DemandFirst, SchedulingPolicy::Padc] {
            let mut cfg = SimConfig::single_core(policy);
            cfg.prefetcher = Some(kind);
            cfg.max_instructions = 250_000;
            let r = System::new(cfg, vec![bench.clone()]).run();
            let c = &r.per_core[0];
            println!(
                "{:<8} {:<18} ipc={:.3} ({:+5.1}%) acc={:>3.0}% cov={:>3.0}% traffic={}",
                format!("{kind:?}"),
                policy.label(),
                c.ipc(),
                (c.ipc() / base - 1.0) * 100.0,
                c.acc() * 100.0,
                c.cov() * 100.0,
                c.traffic.total(),
            );
        }
        println!();
    }
}
