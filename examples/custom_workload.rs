//! Shows the workload API: define a custom synthetic benchmark (a phased
//! profile that alternates friendly streaming with hostile short runs) and
//! watch PADC's per-interval accuracy tracking adapt to the phases —
//! the mechanism behind the paper's Fig. 4(b).
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use padc::core::SchedulingPolicy;
use padc::sim::{SimConfig, System};
use padc::workloads::{BenchProfile, Pattern, PhaseSpec, PrefetchClass};

fn main() {
    let custom = BenchProfile {
        name: "my_phased_app".into(),
        class: PrefetchClass::Unfriendly,
        mem_ratio: 0.35,
        store_fraction: 0.25,
        hot_fraction: 0.3,
        hot_lines: 256,
        working_set_lines: 1 << 22,
        accesses_per_line: 6,
        dependent_fraction: 0.4,
        irregular_fraction: 0.02,
        phases: vec![
            PhaseSpec {
                pattern: Pattern::Stream { streams: 2 },
                instructions: 60_000,
            },
            PhaseSpec {
                pattern: Pattern::ShortRuns { run_len: 6 },
                instructions: 60_000,
            },
        ],
    };

    let mut cfg = SimConfig::single_core(SchedulingPolicy::Padc);
    cfg.max_instructions = 600_000;
    let mut sys = System::new(cfg, vec![custom]);

    println!("time(K cycles)  measured-accuracy (PAR)");
    let mut next = 100_000;
    while !sys.finished() && sys.now() < 50_000_000 {
        sys.step();
        if sys.now() >= next {
            let par = sys.accuracy(0);
            let bar = "#".repeat((par * 40.0) as usize);
            println!("{:>10}      {par:5.2} {bar}", next / 1000);
            next += 100_000;
        }
    }
    let r = sys.report();
    let c = &r.per_core[0];
    println!(
        "\nlifetime accuracy={:.0}%  sent={} dropped-by-APD={}",
        c.acc() * 100.0,
        c.prefetches_sent,
        c.prefetches_dropped
    );
}
