//! Quickstart: simulate one core running a streaming workload under the
//! Prefetch-Aware DRAM Controller and print the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use padc::core::SchedulingPolicy;
use padc::sim::{SimConfig, System};
use padc::workloads::profiles;

fn main() {
    // The paper's single-core baseline system (Tables 3-4), with the full
    // PADC (adaptive scheduling + adaptive dropping).
    let mut cfg = SimConfig::single_core(SchedulingPolicy::Padc);
    cfg.max_instructions = 300_000;

    // libquantum: the canonical prefetch-friendly SPEC benchmark.
    let mut system = System::new(cfg, vec![profiles::libquantum()]);
    let report = system.run();

    let core = &report.per_core[0];
    println!("benchmark        : {}", core.benchmark);
    println!("instructions     : {}", core.instructions);
    println!("cycles           : {}", core.cycles);
    println!("IPC              : {:.3}", core.ipc());
    println!("L2 MPKI          : {:.2}", core.mpki());
    println!("stall/load (SPL) : {:.2}", core.spl());
    println!("prefetch ACC     : {:.1}%", core.acc() * 100.0);
    println!("prefetch COV     : {:.1}%", core.cov() * 100.0);
    println!("prefetches sent  : {}", core.prefetches_sent);
    println!("prefetches drop  : {}", core.prefetches_dropped);
    let t = report.traffic();
    println!(
        "bus traffic      : {} lines (demand {}, useful pf {}, useless pf {})",
        t.total(),
        t.demand,
        t.pref_useful,
        t.pref_useless
    );
    println!(
        "DRAM row-hit rate: {:.1}%",
        report.channels[0].row_hit_rate() * 100.0
    );
}
