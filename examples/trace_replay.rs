//! Demonstrates the trace-file workflow: record a trace from a synthetic
//! profile, write it to disk in the text format, reload it, and run the
//! simulator on the replayed file.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use padc::core::SchedulingPolicy;
use padc::cpu::{TraceOp, TraceSource};
use padc::sim::{SimConfig, System};
use padc::workloads::{format_trace, profiles, TraceFileSource, TraceGen};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Record 100K operations of the milc profile.
    let mut gen = TraceGen::new(&profiles::milc(), 0, 42);
    let ops: Vec<TraceOp> = (0..100_000).map(|_| gen.next_op()).collect();

    // 2. Serialize to the text format and write it out.
    let path = std::env::temp_dir().join("padc_demo_trace.txt");
    std::fs::write(&path, format_trace(&ops))?;
    println!(
        "wrote {} ({} ops, {} bytes)",
        path.display(),
        ops.len(),
        std::fs::metadata(&path)?.len()
    );

    // 3. Reload and simulate the recorded trace under PADC.
    let src = TraceFileSource::from_path(&path)?;
    println!("reloaded {} ops; replaying cyclically", src.len());
    let mut cfg = SimConfig::single_core(SchedulingPolicy::Padc);
    cfg.max_instructions = 80_000;
    let mut sys = System::with_traces(cfg, vec![Box::new(src)], vec!["milc-trace".into()]);
    let report = sys.run();
    let c = &report.per_core[0];
    println!(
        "replay: IPC={:.3} MPKI={:.1} acc={:.0}% dropped={}",
        c.ipc(),
        c.mpki(),
        c.acc() * 100.0,
        c.prefetches_dropped
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
