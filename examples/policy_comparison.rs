//! Reproduces the paper's core motivation (Fig. 1 / Fig. 6) interactively:
//! run a prefetch-friendly and a prefetch-unfriendly benchmark under every
//! DRAM scheduling policy and watch the rigid policies each lose somewhere
//! while PADC adapts.
//!
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use padc::core::SchedulingPolicy;
use padc::sim::{SimConfig, System};
use padc::workloads::profiles;

fn main() {
    let policies = [
        SchedulingPolicy::DemandFirst,
        SchedulingPolicy::DemandPrefetchEqual,
        SchedulingPolicy::PrefetchFirst,
        SchedulingPolicy::ApsOnly,
        SchedulingPolicy::Padc,
    ];
    for bench in [
        profiles::libquantum(),
        profiles::milc(),
        profiles::omnetpp(),
    ] {
        // The no-prefetching baseline all bars are normalized to.
        let mut base_cfg =
            SimConfig::single_core(SchedulingPolicy::DemandFirst).without_prefetching();
        base_cfg.max_instructions = 300_000;
        let base = System::new(base_cfg, vec![bench.clone()]).run().per_core[0].ipc();

        println!("{} (class {}):", bench.name, bench.class.code());
        println!("  {:<20} {:>6.3}  (1.00x)", "no prefetching", base);
        for policy in policies {
            let mut cfg = SimConfig::single_core(policy);
            cfg.max_instructions = 300_000;
            let r = System::new(cfg, vec![bench.clone()]).run();
            let c = &r.per_core[0];
            println!(
                "  {:<20} {:>6.3}  ({:.2}x)  acc={:>4.0}% dropped={}",
                policy.label(),
                c.ipc(),
                c.ipc() / base,
                c.acc() * 100.0,
                c.prefetches_dropped,
            );
        }
        println!();
    }
}
